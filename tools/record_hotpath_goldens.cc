// Regenerates the golden fingerprint table for tests/hotpath_golden_test.cc.
//
// Run it from a build of the KNOWN-GOOD tree (e.g. main before an engine
// change), then paste the emitted table over kGoldenFingerprints. The golden
// test then pins the refactored engine to byte-identical end-to-end traces.
#include <cstdio>

#include "../tests/trace_fingerprint.h"

int main() {
  const auto battery = pase::fingerprint_battery();
  std::printf("constexpr GoldenFingerprint kGoldenFingerprints[] = {\n");
  for (const auto& c : battery) {
    const auto result = pase::workload::run_scenario(c.config);
    std::printf("    {\"%s\", 0x%016llxull},\n", c.label.c_str(),
                static_cast<unsigned long long>(pase::trace_fingerprint(result)));
  }
  std::printf("};\n");
  return 0;
}
