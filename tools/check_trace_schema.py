#!/usr/bin/env python3
"""Validates a pase-trace JSONL file (the --trace=<path> output).

Standard library only, so it runs anywhere the benches do:

    python3 tools/check_trace_schema.py trace.jsonl

Checks:
  * line 1 is a header object with schema == "pase-trace", a supported
    version, a category list, and event/dropped counts;
  * the event count in the header matches the number of event lines;
  * every event line is a JSON object with a finite numeric "t" and a known
    "type", carrying exactly the fields that type promises;
  * timestamps never decrease (the sinks serialize in merged order).

Exit status 0 on success; 1 with a message naming the first offending line
otherwise.
"""

import json
import math
import sys

SCHEMA_NAME = "pase-trace"
SUPPORTED_VERSIONS = {1}

KNOWN_CATEGORIES = {"flow", "packet", "arb", "endpoint", "queue", "engine"}

# type -> required fields beyond {"t", "type"}; extra fields are an error so
# the schema stays deliberate.
EVENT_FIELDS = {
    "flow.start": {"flow", "size", "deadline"},
    "flow.first_byte": {"flow"},
    "flow.complete": {"flow", "fct"},
    "flow.deadline_miss": {"flow", "late_by"},
    "pkt.drop": {"flow", "seq", "queue", "bytes"},
    "pkt.ecn_mark": {"flow", "seq", "queue", "bytes"},
    "arb.decision": {"flow", "prio", "half", "rref"},
    "ep.cwnd": {"flow", "cwnd", "srtt"},
    "ep.alpha": {"flow", "alpha", "frac"},
    "ep.rate": {"flow", "rate", "paused"},
    "queue.sample": {"queue", "occupancy", "drops", "marks"},
    "engine.sample": {"domain", "events", "heap_closures"},
    "engine.round": {"rounds", "posts", "horizon", "drains"},
}


def fail(lineno, message):
    print(f"check_trace_schema: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def check_header(line):
    try:
        header = json.loads(line)
    except json.JSONDecodeError as e:
        fail(1, f"header is not valid JSON: {e}")
    if not isinstance(header, dict):
        fail(1, "header must be a JSON object")
    if header.get("schema") != SCHEMA_NAME:
        fail(1, f"schema is {header.get('schema')!r}, expected {SCHEMA_NAME!r}")
    if header.get("version") not in SUPPORTED_VERSIONS:
        fail(1, f"unsupported version {header.get('version')!r}")
    cats = header.get("categories")
    if not isinstance(cats, str):
        fail(1, "header is missing the categories string")
    for cat in filter(None, cats.split(",")):
        if cat not in KNOWN_CATEGORIES:
            fail(1, f"unknown category {cat!r}")
    for key in ("events", "dropped"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            fail(1, f"header {key!r} must be a non-negative integer")
    return header


def check_event(lineno, line, last_t):
    try:
        event = json.loads(line)
    except json.JSONDecodeError as e:
        fail(lineno, f"event is not valid JSON: {e}")
    if not isinstance(event, dict):
        fail(lineno, "event must be a JSON object")
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or not math.isfinite(t):
        fail(lineno, f"event 't' must be a finite number, got {t!r}")
    if last_t is not None and t < last_t:
        fail(lineno, f"timestamps went backwards ({t} after {last_t})")
    etype = event.get("type")
    if etype not in EVENT_FIELDS:
        fail(lineno, f"unknown event type {etype!r}")
    fields = set(event) - {"t", "type"}
    expected = EVENT_FIELDS[etype]
    if fields != expected:
        missing = sorted(expected - fields)
        extra = sorted(fields - expected)
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        fail(lineno, f"{etype} fields wrong: {', '.join(detail)}")
    return t


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_trace_schema: {e}", file=sys.stderr)
        return 1
    if not lines:
        fail(1, "empty file (expected a header line)")
    header = check_header(lines[0])
    events = lines[1:]
    if header["events"] != len(events):
        fail(1, f"header says {header['events']} events, file has {len(events)}")
    last_t = None
    for i, line in enumerate(events, start=2):
        last_t = check_event(i, line, last_t)
    print(
        f"check_trace_schema: OK — {len(events)} events, "
        f"{header['dropped']} dropped, categories [{header['categories']}]"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
