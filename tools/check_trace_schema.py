#!/usr/bin/env python3
"""Validates a pase JSONL file: a pase-trace (the --trace=<path> output) or
a pase-telemetry summary (the --telemetry=<path> output). The format is
auto-detected from the header's "schema" field.

Standard library only, so it runs anywhere the benches do:

    python3 tools/check_trace_schema.py trace.jsonl
    python3 tools/check_trace_schema.py telemetry.jsonl

pase-trace checks:
  * line 1 is a header object with schema == "pase-trace", a supported
    version, a category list, and event/dropped counts;
  * the event count in the header matches the number of event lines;
  * every event line is a JSON object with a finite numeric "t" and a known
    "type", carrying exactly the fields that type promises;
  * timestamps never decrease (the sinks serialize in merged order).

pase-telemetry checks:
  * the header carries the sampling geometry (period, samples_per_window,
    samples, end_time, queues, groups, windows, top_k);
  * every record line has a known "type" with exactly the promised fields;
  * group ids are dense and each window/total references a declared group;
  * windows arrive group-major in window order, utilization stats are finite
    with mean <= p99 <= max, and there is exactly one total per group;
  * heavy-hitter ranks are dense and byte counts never increase with rank.

Exit status 0 on success; 1 with a message naming the first offending line
otherwise.
"""

import json
import math
import sys

SCHEMA_NAME = "pase-trace"
SUPPORTED_VERSIONS = {1}

TELEMETRY_SCHEMA_NAME = "pase-telemetry"
TELEMETRY_SUPPORTED_VERSIONS = {1}

TELEMETRY_HEADER_FIELDS = {
    "schema", "version", "period", "samples_per_window", "samples",
    "end_time", "queues", "groups", "windows", "top_k",
}

# type -> required fields beyond {"type"}; extra fields are an error so the
# schema stays deliberate.
TELEMETRY_RECORD_FIELDS = {
    "group": {"id", "name"},
    "window": {"w", "group", "t0", "t1", "samples", "util_mean", "util_max",
               "util_p99", "depth_mean", "depth_max", "depth_p99", "drops",
               "marks", "bytes"},
    "total": {"group", "samples", "util_mean", "util_max", "util_p99",
              "depth_mean", "depth_max", "drops", "marks", "bytes"},
    "hot_link": {"rank", "name", "bytes", "error"},
    "hot_flow": {"rank", "flow", "bytes", "error"},
}

KNOWN_CATEGORIES = {"flow", "packet", "arb", "endpoint", "queue", "engine"}

# type -> required fields beyond {"t", "type"}; extra fields are an error so
# the schema stays deliberate.
EVENT_FIELDS = {
    "flow.start": {"flow", "size", "deadline"},
    "flow.first_byte": {"flow"},
    "flow.complete": {"flow", "fct"},
    "flow.deadline_miss": {"flow", "late_by"},
    "pkt.drop": {"flow", "seq", "queue", "bytes"},
    "pkt.ecn_mark": {"flow", "seq", "queue", "bytes"},
    "arb.decision": {"flow", "prio", "half", "rref"},
    "ep.cwnd": {"flow", "cwnd", "srtt"},
    "ep.alpha": {"flow", "alpha", "frac"},
    "ep.rate": {"flow", "rate", "paused"},
    "queue.sample": {"queue", "occupancy", "drops", "marks"},
    "engine.sample": {"domain", "events", "heap_closures"},
    "engine.round": {"rounds", "posts", "horizon", "drains"},
}


def fail(lineno, message):
    print(f"check_trace_schema: line {lineno}: {message}", file=sys.stderr)
    sys.exit(1)


def check_header(line):
    try:
        header = json.loads(line)
    except json.JSONDecodeError as e:
        fail(1, f"header is not valid JSON: {e}")
    if not isinstance(header, dict):
        fail(1, "header must be a JSON object")
    if header.get("schema") != SCHEMA_NAME:
        fail(1, f"schema is {header.get('schema')!r}, expected {SCHEMA_NAME!r}")
    if header.get("version") not in SUPPORTED_VERSIONS:
        fail(1, f"unsupported version {header.get('version')!r}")
    cats = header.get("categories")
    if not isinstance(cats, str):
        fail(1, "header is missing the categories string")
    for cat in filter(None, cats.split(",")):
        if cat not in KNOWN_CATEGORIES:
            fail(1, f"unknown category {cat!r}")
    for key in ("events", "dropped"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            fail(1, f"header {key!r} must be a non-negative integer")
    return header


def check_event(lineno, line, last_t):
    try:
        event = json.loads(line)
    except json.JSONDecodeError as e:
        fail(lineno, f"event is not valid JSON: {e}")
    if not isinstance(event, dict):
        fail(lineno, "event must be a JSON object")
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool) or not math.isfinite(t):
        fail(lineno, f"event 't' must be a finite number, got {t!r}")
    if last_t is not None and t < last_t:
        fail(lineno, f"timestamps went backwards ({t} after {last_t})")
    etype = event.get("type")
    if etype not in EVENT_FIELDS:
        fail(lineno, f"unknown event type {etype!r}")
    fields = set(event) - {"t", "type"}
    expected = EVENT_FIELDS[etype]
    if fields != expected:
        missing = sorted(expected - fields)
        extra = sorted(fields - expected)
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        fail(lineno, f"{etype} fields wrong: {', '.join(detail)}")
    return t


def is_finite_number(v):
    return (
        isinstance(v, (int, float))
        and not isinstance(v, bool)
        and math.isfinite(v)
    )


def check_telemetry_header(line):
    try:
        header = json.loads(line)
    except json.JSONDecodeError as e:
        fail(1, f"header is not valid JSON: {e}")
    if not isinstance(header, dict):
        fail(1, "header must be a JSON object")
    if set(header) != TELEMETRY_HEADER_FIELDS:
        fail(1, f"header fields must be exactly {sorted(TELEMETRY_HEADER_FIELDS)}")
    if header["version"] not in TELEMETRY_SUPPORTED_VERSIONS:
        fail(1, f"unsupported version {header['version']!r}")
    if not is_finite_number(header["period"]) or header["period"] <= 0:
        fail(1, "header 'period' must be a positive number")
    if not is_finite_number(header["end_time"]) or header["end_time"] < 0:
        fail(1, "header 'end_time' must be a non-negative number")
    for key in ("samples_per_window", "samples", "queues", "groups",
                "windows", "top_k"):
        if not isinstance(header[key], int) or isinstance(header[key], bool) \
                or header[key] < 0:
            fail(1, f"header {key!r} must be a non-negative integer")
    return header


def check_telemetry_stats(lineno, rec):
    """Shared window/total stat sanity: finite, ordered, non-negative."""
    for key in ("util_mean", "util_max", "util_p99", "depth_mean"):
        if not is_finite_number(rec[key]) or rec[key] < 0:
            fail(lineno, f"{rec['type']} {key!r} must be a non-negative number")
    if rec["util_mean"] > rec["util_max"] + 1e-9:
        fail(lineno, "util_mean exceeds util_max")
    if rec["util_p99"] > rec["util_max"] + 1e-9:
        fail(lineno, "util_p99 exceeds util_max")
    for key in ("samples", "depth_max", "drops", "marks", "bytes"):
        if not isinstance(rec[key], int) or isinstance(rec[key], bool) \
                or rec[key] < 0:
            fail(lineno, f"{rec['type']} {key!r} must be a non-negative integer")


def check_telemetry(lines):
    header = check_telemetry_header(lines[0])
    group_names = {}
    windows = 0
    totals_seen = set()
    prev_window_key = None
    hot_ranks = {"hot_link": [], "hot_flow": []}
    hot_bytes = {"hot_link": [], "hot_flow": []}
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(lineno, f"record is not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(lineno, "record must be a JSON object")
        rtype = rec.get("type")
        if rtype not in TELEMETRY_RECORD_FIELDS:
            fail(lineno, f"unknown record type {rtype!r}")
        fields = set(rec) - {"type"}
        expected = TELEMETRY_RECORD_FIELDS[rtype]
        if fields != expected:
            missing = sorted(expected - fields)
            extra = sorted(fields - expected)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unexpected {extra}")
            fail(lineno, f"{rtype} fields wrong: {', '.join(detail)}")
        if rtype == "group":
            if rec["id"] != len(group_names):
                fail(lineno, f"group ids must be dense, got {rec['id']}")
            if not isinstance(rec["name"], str) or not rec["name"]:
                fail(lineno, "group name must be a non-empty string")
            group_names[rec["id"]] = rec["name"]
        elif rtype == "window":
            if rec["group"] not in group_names:
                fail(lineno, f"window references undeclared group {rec['group']}")
            key = (rec["w"], rec["group"])
            if prev_window_key is not None and key <= prev_window_key:
                fail(lineno, "windows must arrive in (window, group) order")
            prev_window_key = key
            if not is_finite_number(rec["t0"]) or not is_finite_number(rec["t1"]) \
                    or rec["t1"] < rec["t0"]:
                fail(lineno, "window [t0, t1) must be a forward interval")
            check_telemetry_stats(lineno, rec)
            windows += 1
        elif rtype == "total":
            if rec["group"] not in group_names:
                fail(lineno, f"total references undeclared group {rec['group']}")
            if rec["group"] in totals_seen:
                fail(lineno, f"duplicate total for group {rec['group']}")
            totals_seen.add(rec["group"])
            check_telemetry_stats(lineno, rec)
        elif rtype in ("hot_link", "hot_flow"):
            ranks = hot_ranks[rtype]
            if rec["rank"] != len(ranks):
                fail(lineno, f"{rtype} ranks must be dense, got {rec['rank']}")
            ranks.append(rec["rank"])
            prev = hot_bytes[rtype]
            if prev and rec["bytes"] > prev[-1]:
                fail(lineno, f"{rtype} bytes must be non-increasing by rank")
            prev.append(rec["bytes"])
    if len(group_names) != header["groups"]:
        fail(1, f"header says {header['groups']} groups, file declares "
                f"{len(group_names)}")
    if header["groups"] and windows != header["windows"] * header["groups"]:
        fail(1, f"header says {header['windows']} windows x "
                f"{header['groups']} groups, file has {windows} window rows")
    if totals_seen != set(group_names):
        fail(1, "every group needs exactly one total record")
    for rtype in ("hot_link", "hot_flow"):
        if len(hot_ranks[rtype]) > header["top_k"]:
            fail(1, f"more {rtype} records than header top_k")
    print(
        f"check_trace_schema: OK — pase-telemetry, {len(group_names)} groups, "
        f"{header['windows']} windows, {header['samples']} samples, "
        f"top-{header['top_k']} hitters"
    )
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_trace_schema: {e}", file=sys.stderr)
        return 1
    if not lines:
        fail(1, "empty file (expected a header line)")
    if f'"schema":"{TELEMETRY_SCHEMA_NAME}"' in lines[0] or \
            TELEMETRY_SCHEMA_NAME in lines[0][:128]:
        return check_telemetry(lines)
    header = check_header(lines[0])
    events = lines[1:]
    if header["events"] != len(events):
        fail(1, f"header says {header['events']} events, file has {len(events)}")
    last_t = None
    for i, line in enumerate(events, start=2):
        last_t = check_event(i, line, last_t)
    print(
        f"check_trace_schema: OK — {len(events)} events, "
        f"{header['dropped']} dropped, categories [{header['categories']}]"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
