#!/usr/bin/env bash
# Header-hygiene gate for the layered architecture.
#
# The profile-registry refactor (PR 2) deliberately broke the include chains
# that used to leak every transport header into every bench via
# workload/scenario.h. This script keeps them broken:
#
#   1. Layering bans (fatal, grep-based, run everywhere): the workload layer
#      must stay protocol-agnostic, and only the proto layer may see the
#      concrete profile implementations.
#   2. Full include-cleanliness (advisory): clang-tidy misc-include-cleaner
#      over the tree, when clang-tidy is installed. CI images without it
#      still get the fatal layering checks.
#
# Usage: tools/check_includes.sh [build-dir]   (build dir only needed for
# the advisory clang-tidy pass; defaults to ./build)
set -u
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
failures=0

fail() {
  echo "HYGIENE FAIL: $1" >&2
  echo "$2" | sed 's/^/    /' >&2
  failures=$((failures + 1))
}

# Returns matching "file:line: include" lines, or nothing.
scan() { # <pattern> <paths...>
  local pattern="$1"
  shift
  grep -RnE --include='*.h' --include='*.cc' "^#include \"$pattern" "$@" \
    2>/dev/null
}

# 1a. The scenario harness is pure assembly: no transport, queue-discipline,
#     or arbitration-plane headers anywhere in the workload layer.
hits=$(scan '(transport/(dctcp|d2tcp|l2dct|pdq|pfabric|window_sender)|net/(droptail_queue|red_ecn_queue|pfabric_queue|priority_queue_bank)|core/(arbitration_plane|pase_sender))' src/workload)
[ -n "$hits" ] && fail \
  "src/workload must not include protocol machinery (use proto/registry.h)" \
  "$hits"

# 1b. Concrete profile implementations are private to the proto layer:
#     builtin_profiles.h and proto/profiles/ headers stay inside src/proto.
hits=$(scan 'proto/(builtin_profiles\.h|profiles/)' \
  src/sim src/net src/topo src/transport src/core src/stats src/workload \
  src/exp bench examples tests)
[ -n "$hits" ] && fail \
  "proto profile internals leaked outside src/proto" \
  "$hits"

# 1c. Production code must never include test fixtures.
hits=$(grep -RnE '^#include ".*legacy_scenario' src bench examples 2>/dev/null)
[ -n "$hits" ] && fail "legacy_scenario is a test-only golden fixture" "$hits"

# 1d. The topology/fabric layers must not know about transports or the
#     control plane (dependency direction: transport -> topo, never back).
hits=$(scan '(transport/|core/|proto/|workload/)' src/sim src/net src/topo)
[ -n "$hits" ] && fail \
  "lower layers (sim/net/topo) must not include upper layers" \
  "$hits"

# 1f. The obs layer is the bottom of the tree (sim and net emit into it), so
#     it must stay standard-library-pure: no includes from any other layer.
#     Exception: obs/telemetry.* is the fabric telemetry plane, which sits
#     ABOVE sim/topo/stats by design (it samples built topologies) — it gets
#     its own, looser rule below (1g).
hits=$(scan '(sim/|net/|topo/|transport/|core/|proto/|workload/|stats/|exp/)' \
  src/obs | grep -v 'src/obs/telemetry\.')
[ -n "$hits" ] && fail \
  "src/obs must depend only on the standard library (it sits below sim/net)" \
  "$hits"

# 1g. The telemetry plane may see the fabric (sim/net/topo/stats) but must
#     stay protocol- and harness-agnostic: no transport, control-plane,
#     proto, workload, or exp headers.
hits=$(grep -nE '^#include "(transport/|core/|proto/|workload/|exp/)' \
  src/obs/telemetry.h src/obs/telemetry.cc 2>/dev/null)
[ -n "$hits" ] && fail \
  "obs/telemetry must not include transport/core/proto/workload/exp" \
  "$hits"

# 1h. Dependency direction: the fabric layers never reach up into the
#     telemetry plane (workload/bench own it; sim/net only see obs/trace.h).
hits=$(scan 'obs/telemetry' src/sim src/net src/topo src/transport src/core \
  src/proto src/stats)
[ -n "$hits" ] && fail \
  "lower layers must not include obs/telemetry.h (owned by workload/bench)" \
  "$hits"

# 1e. scenario.h itself: the refactor's headline. Only the interfaces it
#     actually re-exports are allowed.
hits=$(grep -nE '^#include "(transport|net)/' src/workload/scenario.h)
[ -n "$hits" ] && fail \
  "workload/scenario.h regained transport/net includes" \
  "$hits"

if [ "$failures" -gt 0 ]; then
  echo "" >&2
  echo "$failures header-hygiene violation group(s). These bans keep the" >&2
  echo "protocol layer pluggable; include proto/registry.h instead of" >&2
  echo "concrete transports." >&2
  exit 1
fi
echo "Layering checks passed."

# 2. Advisory include-cleaner pass (never fails the build: the checker is
#    noisy on system headers and not installed everywhere).
if command -v clang-tidy >/dev/null 2>&1 && \
   [ -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "Running clang-tidy misc-include-cleaner (advisory)..."
  clang-tidy --checks='-*,misc-include-cleaner' -p "$BUILD_DIR" \
    src/workload/scenario.cc src/proto/registry.cc \
    src/proto/transport_profile.cc 2>/dev/null | grep -E "warning:" | head -40 \
    || true
else
  echo "clang-tidy or compile_commands.json unavailable; skipped advisory pass."
fi
exit 0
