// Renders a "pase-telemetry" JSONL summary (see src/obs/telemetry.h) as
// terminal tables: run header, per-group utilization/depth totals, a
// per-window mean-utilization matrix over the tier groups, and the top-K
// heavy-hitter links and flows.
//
//   ./build/tools/telemetry_report TELEMETRY.k16.jsonl
//
// The sink's records are flat one-line JSON objects with a fixed field
// order, so this reads them with plain string scanning — no JSON library.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

// Value of "key":<number> in a one-line JSON object; 0 when absent.
double num_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + needle.size(), nullptr);
}

// Value of "key":"string" in a one-line JSON object; "" when absent.
// Telemetry strings (tier/pod/link names, "flow:<id>") never contain
// escapes, so scanning to the closing quote is enough.
std::string str_field(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

bool type_is(const std::string& line, const char* type) {
  return line.find(std::string("\"type\":\"") + type + "\"") !=
         std::string::npos;
}

struct GroupTotal {
  std::string name;
  std::uint64_t samples = 0;
  double util_mean = 0.0, util_max = 0.0, util_p99 = 0.0;
  double depth_mean = 0.0, depth_max = 0.0;
  std::uint64_t drops = 0, marks = 0, bytes = 0;
};

struct WindowRow {
  std::uint32_t window = 0;
  std::uint32_t group = 0;
  double t0 = 0.0, t1 = 0.0;
  double util_mean = 0.0;
};

struct Hitter {
  std::string name;
  std::uint64_t bytes = 0, error = 0;
};

const char* human_bytes(std::uint64_t b, char* buf, std::size_t n) {
  if (b >= 1ull << 30) {
    std::snprintf(buf, n, "%.2f GB", static_cast<double>(b) / (1ull << 30));
  } else if (b >= 1ull << 20) {
    std::snprintf(buf, n, "%.2f MB", static_cast<double>(b) / (1ull << 20));
  } else if (b >= 1ull << 10) {
    std::snprintf(buf, n, "%.1f KB", static_cast<double>(b) / (1ull << 10));
  } else {
    std::snprintf(buf, n, "%llu B", static_cast<unsigned long long>(b));
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s TELEMETRY.jsonl\n", argv[0]);
    return 2;
  }
  std::ifstream f(argv[1]);
  if (!f) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }

  std::vector<std::string> group_names;
  std::vector<GroupTotal> totals;
  std::vector<WindowRow> windows;
  std::vector<Hitter> hot_links, hot_flows;
  double period = 0.0, end_time = 0.0;
  std::uint64_t samples = 0, queues = 0;
  int samples_per_window = 0;
  bool saw_header = false;

  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    if (!saw_header) {
      if (str_field(line, "schema") != "pase-telemetry") {
        std::fprintf(stderr, "error: %s is not a pase-telemetry file\n",
                     argv[1]);
        return 1;
      }
      if (static_cast<int>(num_field(line, "version")) != 1) {
        std::fprintf(stderr, "error: unsupported telemetry schema version\n");
        return 1;
      }
      period = num_field(line, "period");
      samples_per_window = static_cast<int>(num_field(line, "samples_per_window"));
      samples = static_cast<std::uint64_t>(num_field(line, "samples"));
      end_time = num_field(line, "end_time");
      queues = static_cast<std::uint64_t>(num_field(line, "queues"));
      saw_header = true;
      continue;
    }
    if (type_is(line, "group")) {
      const auto id = static_cast<std::size_t>(num_field(line, "id"));
      if (group_names.size() <= id) group_names.resize(id + 1);
      group_names[id] = str_field(line, "name");
    } else if (type_is(line, "window")) {
      WindowRow w;
      w.window = static_cast<std::uint32_t>(num_field(line, "w"));
      w.group = static_cast<std::uint32_t>(num_field(line, "group"));
      w.t0 = num_field(line, "t0");
      w.t1 = num_field(line, "t1");
      w.util_mean = num_field(line, "util_mean");
      windows.push_back(w);
    } else if (type_is(line, "total")) {
      GroupTotal t;
      const auto g = static_cast<std::size_t>(num_field(line, "group"));
      t.name = g < group_names.size() ? group_names[g] : "?";
      t.samples = static_cast<std::uint64_t>(num_field(line, "samples"));
      t.util_mean = num_field(line, "util_mean");
      t.util_max = num_field(line, "util_max");
      t.util_p99 = num_field(line, "util_p99");
      t.depth_mean = num_field(line, "depth_mean");
      t.depth_max = num_field(line, "depth_max");
      t.drops = static_cast<std::uint64_t>(num_field(line, "drops"));
      t.marks = static_cast<std::uint64_t>(num_field(line, "marks"));
      t.bytes = static_cast<std::uint64_t>(num_field(line, "bytes"));
      totals.push_back(t);
    } else if (type_is(line, "hot_link")) {
      hot_links.push_back({str_field(line, "name"),
                           static_cast<std::uint64_t>(num_field(line, "bytes")),
                           static_cast<std::uint64_t>(num_field(line, "error"))});
    } else if (type_is(line, "hot_flow")) {
      char name[40];
      std::snprintf(name, sizeof(name), "flow %llu",
                    static_cast<unsigned long long>(num_field(line, "flow")));
      hot_flows.push_back({name,
                           static_cast<std::uint64_t>(num_field(line, "bytes")),
                           static_cast<std::uint64_t>(num_field(line, "error"))});
    }
  }
  if (!saw_header) {
    std::fprintf(stderr, "error: %s is empty or has no header\n", argv[1]);
    return 1;
  }

  std::printf("pase-telemetry report: %s\n", argv[1]);
  std::printf(
      "period %.3g ms, %d samples/window, %llu samples, end %.4g s, "
      "%llu queues, %zu groups\n\n",
      period * 1e3, samples_per_window,
      static_cast<unsigned long long>(samples), end_time,
      static_cast<unsigned long long>(queues), group_names.size());

  std::printf("group totals (utilization as a fraction, depth in packets)\n");
  std::printf("%-12s %10s %10s %9s %9s %11s %10s %8s %8s %11s\n", "group",
              "samples", "util_mean", "util_max", "util_p99", "depth_mean",
              "depth_max", "drops", "marks", "bytes");
  char hb[32];
  for (const GroupTotal& t : totals) {
    std::printf("%-12s %10llu %10.4f %9.4f %9.4f %11.2f %10.0f %8llu %8llu "
                "%11s\n",
                t.name.c_str(), static_cast<unsigned long long>(t.samples),
                t.util_mean, t.util_max, t.util_p99, t.depth_mean, t.depth_max,
                static_cast<unsigned long long>(t.drops),
                static_cast<unsigned long long>(t.marks),
                human_bytes(t.bytes, hb, sizeof(hb)));
  }

  // Per-window mean utilization over the tier groups (pods stay in the
  // totals — a k=32 fat-tree has 32 of them, too wide for a matrix).
  std::vector<std::size_t> tier_groups;
  for (std::size_t g = 0; g < group_names.size(); ++g) {
    if (group_names[g].rfind("tier:", 0) == 0) tier_groups.push_back(g);
  }
  std::uint32_t num_windows = 0;
  for (const WindowRow& w : windows) {
    num_windows = w.window + 1 > num_windows ? w.window + 1 : num_windows;
  }
  if (num_windows > 0 && !tier_groups.empty()) {
    std::printf("\nper-window mean utilization by tier\n");
    std::printf("%-8s %12s", "window", "t(ms)");
    for (const std::size_t g : tier_groups) {
      std::printf(" %10s", group_names[g].c_str());
    }
    std::printf("\n");
    for (std::uint32_t w = 0; w < num_windows; ++w) {
      double t0 = 0.0, t1 = 0.0;
      std::vector<double> util(group_names.size(), 0.0);
      for (const WindowRow& row : windows) {
        if (row.window != w) continue;
        t0 = row.t0;
        t1 = row.t1;
        if (row.group < util.size()) util[row.group] = row.util_mean;
      }
      char span[32];
      std::snprintf(span, sizeof(span), "%.1f-%.1f", t0 * 1e3, t1 * 1e3);
      std::printf("%-8u %12s", w, span);
      for (const std::size_t g : tier_groups) std::printf(" %10.4f", util[g]);
      std::printf("\n");
    }
  }

  if (!hot_links.empty()) {
    std::printf("\ntop links by bytes (estimate; +/- error)\n");
    for (std::size_t r = 0; r < hot_links.size(); ++r) {
      std::printf("%3zu. %-28s %11s  (err %llu)\n", r + 1,
                  hot_links[r].name.c_str(),
                  human_bytes(hot_links[r].bytes, hb, sizeof(hb)),
                  static_cast<unsigned long long>(hot_links[r].error));
    }
  }
  if (!hot_flows.empty()) {
    std::printf("\ntop flows by bytes (estimate; +/- error)\n");
    for (std::size_t r = 0; r < hot_flows.size(); ++r) {
      std::printf("%3zu. %-28s %11s  (err %llu)\n", r + 1,
                  hot_flows[r].name.c_str(),
                  human_bytes(hot_flows[r].bytes, hb, sizeof(hb)),
                  static_cast<unsigned long long>(hot_flows[r].error));
    }
  }
  return 0;
}
