// Emits a built topology as Graphviz DOT: nodes grouped by tier (core /
// agg / tor-edge / host) with rank=same so dot lays the fabric out in
// layers, and — when --domains=N is given — cut edges from the partitioner
// drawn red/bold so the parallel engine's communication surface is visible
// at a glance.
//
//   dump_topology --topology=fattree --k=4 --domains=4 --out=ft4.dot
//   dump_topology --topology=threetier
//   dump_topology --topology=singlerack --hosts=8
//
// --summary collapses each tier to a single node (hosts / edge / agg /
// core) with node counts in the label and link multiplicities on the
// aggregated edges, so a k=32 fabric (8k hosts, 1.2k switches) renders as
// a four-box diagram instead of an unreadable hairball. With --domains=N
// the aggregate edges also carry the number of cut links they contain.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/droptail_queue.h"
#include "sim/simulator.h"
#include "topo/builder.h"
#include "topo/partition.h"

namespace {

using namespace pase;

struct Options {
  std::string topology = "fattree";
  int k = 4;
  int pods = 0;  // 0 = full k pods
  double oversub = 1.0;
  int hosts = 8;          // single-rack
  int domains = 0;        // 0 = no partition overlay
  bool summary = false;   // tier-collapsed view
  std::string out;        // empty = stdout
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology=fattree|threetier|singlerack] [--k=N] "
               "[--pods=N] [--oversub=X] [--hosts=N] [--domains=N] "
               "[--summary] [--out=FILE]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&arg](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return arg.compare(0, n, key) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--topology=")) {
      o.topology = v;
    } else if (const char* v = val("--k=")) {
      o.k = std::atoi(v);
    } else if (const char* v = val("--pods=")) {
      o.pods = std::atoi(v);
    } else if (const char* v = val("--oversub=")) {
      o.oversub = std::atof(v);
    } else if (const char* v = val("--hosts=")) {
      o.hosts = std::atoi(v);
    } else if (const char* v = val("--domains=")) {
      o.domains = std::atoi(v);
    } else if (arg == "--summary") {
      o.summary = true;
    } else if (const char* v = val("--out=")) {
      o.out = v;
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

std::unique_ptr<topo::TopologyBuilder> make_builder(const Options& o) {
  if (o.topology == "fattree" || o.topology == "fat_tree") {
    topo::FatTreeConfig cfg;
    cfg.k = o.k;
    cfg.num_pods = o.pods;
    cfg.oversubscription = o.oversub;
    return std::make_unique<topo::FatTreeBuilder>(cfg);
  }
  if (o.topology == "threetier" || o.topology == "three_tier") {
    return std::make_unique<topo::ThreeTierBuilder>(topo::ThreeTierConfig{});
  }
  if (o.topology == "singlerack" || o.topology == "single_rack") {
    topo::SingleRackConfig cfg;
    cfg.num_hosts = o.hosts;
    return std::make_unique<topo::SingleRackBuilder>(cfg);
  }
  std::fprintf(stderr, "unknown topology '%s'\n", o.topology.c_str());
  std::exit(2);
}

// Hosts are tier 0; a switch's tier is 1 + min tier below it, computed by
// sweeping switch adjacency until fixpoint (hosts pin the bottom).
std::vector<int> compute_tiers(topo::Topology& topo) {
  const std::size_t n = topo.hosts().size() + topo.switches().size();
  std::vector<int> tier(n, -1);
  for (const auto& h : topo.hosts()) {
    tier[static_cast<std::size_t>(h->id())] = 0;
  }
  // Distance-to-nearest-host BFS over switch ports; switches adjacent to a
  // host are tier 1, their host-free neighbors tier 2, and so on.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& sw : topo.switches()) {
      int best = -1;
      for (int p = 0; p < sw->num_ports(); ++p) {
        const int nt = tier[static_cast<std::size_t>(
            sw->port_neighbor(p)->id())];
        if (nt >= 0 && (best < 0 || nt + 1 < best)) best = nt + 1;
      }
      auto& t = tier[static_cast<std::size_t>(sw->id())];
      if (best >= 0 && (t < 0 || best < t)) {
        t = best;
        changed = true;
      }
    }
  }
  return tier;
}

// Conventional tier names for the diagrams; tiers past the named ones fall
// back to "tier N".
std::string tier_label(int t) {
  switch (t) {
    case 0: return "hosts";
    case 1: return "edge";
    case 2: return "agg";
    case 3: return "core";
    default: return "tier " + std::to_string(t);
  }
}

// Tier-collapsed view: one box per tier, aggregated edges labeled with link
// multiplicity (and cut-link counts under a partition overlay).
void emit_summary(std::ostream& os, topo::Topology& topo,
                  const std::vector<int>& tier, const topo::Partition& part,
                  const std::set<const net::Link*>& cut) {
  const bool overlay = part.domains > 1;
  std::map<int, std::size_t> tier_nodes;
  for (const auto& h : topo.hosts()) {
    ++tier_nodes[tier[static_cast<std::size_t>(h->id())]];
  }
  for (const auto& sw : topo.switches()) {
    ++tier_nodes[tier[static_cast<std::size_t>(sw->id())]];
  }

  // Aggregate undirected adjacencies by (lower tier, higher tier): count
  // each once per unordered node pair, tallying cut links alongside.
  struct EdgeAgg {
    std::size_t links = 0;
    std::size_t cut = 0;
  };
  std::map<std::pair<int, int>, EdgeAgg> agg;
  std::set<std::pair<net::NodeId, net::NodeId>> drawn;
  const auto tally = [&](const net::Link& l, net::NodeId src,
                         net::NodeId dst) {
    const auto key = std::minmax(src, dst);
    if (!drawn.insert(key).second) return;
    const auto tk = std::minmax(tier[static_cast<std::size_t>(src)],
                                tier[static_cast<std::size_t>(dst)]);
    EdgeAgg& e = agg[tk];
    ++e.links;
    if (overlay && cut.count(&l) > 0) ++e.cut;
  };
  for (const auto& h : topo.hosts()) {
    tally(h->uplink(), h->id(), h->uplink().destination()->id());
  }
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      tally(sw->port_link(p), sw->id(), sw->port_neighbor(p)->id());
    }
  }

  os << "digraph topology_summary {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n"
     << "  edge [dir=none, fontname=\"monospace\"];\n";
  for (const auto& [t, count] : tier_nodes) {
    os << "  t" << t << " [label=\"" << tier_label(t) << "\\n" << count
       << " nodes\"";
    if (t == 0) os << ", shape=ellipse";
    os << "];\n";
  }
  for (const auto& [tk, e] : agg) {
    os << "  t" << tk.first << " -> t" << tk.second << " [label=\""
       << e.links << " links";
    if (e.cut > 0) os << " (" << e.cut << " cut)";
    os << "\"";
    if (e.cut > 0) os << ", color=red";
    os << "];\n";
  }
  os << "}\n";
}

void emit(std::ostream& os, topo::BuiltTopology& built, int domains,
          bool summary) {
  topo::Topology& topo = built.topo();

  topo::Partition part;
  if (domains > 1) part = topo::partition_topology(topo, domains);
  const bool overlay = part.domains > 1;
  std::set<const net::Link*> cut;
  for (const auto& c : part.cut_links) cut.insert(c.link);

  const std::vector<int> tier = compute_tiers(topo);

  if (summary) {
    emit_summary(os, topo, tier, part, cut);
    std::cerr << "nodes: " << topo.hosts().size() << " hosts + "
              << topo.switches().size() << " switches (summary)\n";
    return;
  }

  os << "digraph topology {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=box, fontname=\"monospace\"];\n"
     << "  edge [dir=none];\n";

  // One rank per tier so dot stacks the fabric in layers.
  std::map<int, std::vector<const net::Node*>> by_tier;
  for (const auto& h : topo.hosts()) by_tier[0].push_back(h.get());
  for (const auto& sw : topo.switches()) {
    by_tier[tier[static_cast<std::size_t>(sw->id())]].push_back(sw.get());
  }
  for (const auto& [t, nodes] : by_tier) {
    os << "  { rank=same;";
    for (const net::Node* nd : nodes) os << " n" << nd->id() << ";";
    os << " }  // tier " << t << "\n";
  }
  for (const auto& [t, nodes] : by_tier) {
    for (const net::Node* nd : nodes) {
      os << "  n" << nd->id() << " [label=\"" << nd->name() << "\"";
      if (t == 0) os << ", shape=ellipse";
      if (overlay) {
        os << ", xlabel=\"d"
           << part.domain_of[static_cast<std::size_t>(nd->id())] << "\"";
      }
      os << "];\n";
    }
  }

  // Undirected edge set: draw each adjacency once (lower id first), marking
  // it cut when either directed link crosses domains.
  std::set<std::pair<net::NodeId, net::NodeId>> drawn;
  const auto draw = [&](const net::Link& l, net::NodeId src,
                        net::NodeId dst) {
    const auto key = std::minmax(src, dst);
    if (!drawn.insert(key).second) return;
    const bool is_cut = overlay && cut.count(&l) > 0;
    os << "  n" << src << " -> n" << dst;
    if (is_cut) os << " [color=red, penwidth=2.5]";
    os << ";\n";
  };
  for (const auto& h : topo.hosts()) {
    draw(h->uplink(), h->id(), h->uplink().destination()->id());
  }
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      draw(sw->port_link(p), sw->id(), sw->port_neighbor(p)->id());
    }
  }
  os << "}\n";

  std::cerr << "nodes: " << topo.hosts().size() << " hosts + "
            << topo.switches().size() << " switches";
  if (overlay) {
    std::cerr << "; domains: " << part.domains
              << ", cut links: " << part.cut_links.size()
              << ", lookahead: " << part.lookahead << "s";
  }
  std::cerr << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  sim::Simulator sim;
  const topo::QueueFactory q = [](double) {
    return std::make_unique<net::DropTailQueue>(100);
  };
  std::unique_ptr<topo::BuiltTopology> built =
      make_builder(o)->build(sim, q);

  if (o.out.empty()) {
    emit(std::cout, *built, o.domains, o.summary);
  } else {
    std::ofstream f(o.out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", o.out.c_str());
      return 1;
    }
    emit(f, *built, o.domains, o.summary);
    std::fprintf(stderr, "wrote %s\n", o.out.c_str());
  }
  return 0;
}
