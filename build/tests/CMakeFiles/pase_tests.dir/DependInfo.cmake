
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arbitration_test.cc" "tests/CMakeFiles/pase_tests.dir/arbitration_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/arbitration_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/pase_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/pase_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/pase_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/link_switch_test.cc" "tests/CMakeFiles/pase_tests.dir/link_switch_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/link_switch_test.cc.o.d"
  "/root/repo/tests/net_queue_test.cc" "tests/CMakeFiles/pase_tests.dir/net_queue_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/net_queue_test.cc.o.d"
  "/root/repo/tests/pase_plane_test.cc" "tests/CMakeFiles/pase_tests.dir/pase_plane_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/pase_plane_test.cc.o.d"
  "/root/repo/tests/pdq_test.cc" "tests/CMakeFiles/pase_tests.dir/pdq_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/pdq_test.cc.o.d"
  "/root/repo/tests/pfabric_test.cc" "tests/CMakeFiles/pase_tests.dir/pfabric_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/pfabric_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/pase_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/pase_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/telemetry_test.cc" "tests/CMakeFiles/pase_tests.dir/telemetry_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/telemetry_test.cc.o.d"
  "/root/repo/tests/topo_test.cc" "tests/CMakeFiles/pase_tests.dir/topo_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/topo_test.cc.o.d"
  "/root/repo/tests/transport_test.cc" "tests/CMakeFiles/pase_tests.dir/transport_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/transport_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/pase_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/pase_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pase_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
