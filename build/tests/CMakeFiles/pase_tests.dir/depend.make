# Empty dependencies file for pase_tests.
# This may be replaced when dependencies are built.
