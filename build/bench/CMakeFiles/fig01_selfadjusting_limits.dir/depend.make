# Empty dependencies file for fig01_selfadjusting_limits.
# This may be replaced when dependencies are built.
