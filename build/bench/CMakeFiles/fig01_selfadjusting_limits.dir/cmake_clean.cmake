file(REMOVE_RECURSE
  "CMakeFiles/fig01_selfadjusting_limits.dir/fig01_selfadjusting_limits.cpp.o"
  "CMakeFiles/fig01_selfadjusting_limits.dir/fig01_selfadjusting_limits.cpp.o.d"
  "fig01_selfadjusting_limits"
  "fig01_selfadjusting_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_selfadjusting_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
