file(REMOVE_RECURSE
  "CMakeFiles/fig09c_deadline_throughput.dir/fig09c_deadline_throughput.cpp.o"
  "CMakeFiles/fig09c_deadline_throughput.dir/fig09c_deadline_throughput.cpp.o.d"
  "fig09c_deadline_throughput"
  "fig09c_deadline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09c_deadline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
