# Empty dependencies file for fig09c_deadline_throughput.
# This may be replaced when dependencies are built.
