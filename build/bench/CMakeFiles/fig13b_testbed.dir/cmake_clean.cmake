file(REMOVE_RECURSE
  "CMakeFiles/fig13b_testbed.dir/fig13b_testbed.cpp.o"
  "CMakeFiles/fig13b_testbed.dir/fig13b_testbed.cpp.o.d"
  "fig13b_testbed"
  "fig13b_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
