# Empty dependencies file for fig13b_testbed.
# This may be replaced when dependencies are built.
