file(REMOVE_RECURSE
  "CMakeFiles/fig13a_reference_rate.dir/fig13a_reference_rate.cpp.o"
  "CMakeFiles/fig13a_reference_rate.dir/fig13a_reference_rate.cpp.o.d"
  "fig13a_reference_rate"
  "fig13a_reference_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_reference_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
