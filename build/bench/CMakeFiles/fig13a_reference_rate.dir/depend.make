# Empty dependencies file for fig13a_reference_rate.
# This may be replaced when dependencies are built.
