file(REMOVE_RECURSE
  "CMakeFiles/ablation_arbitration_knobs.dir/ablation_arbitration_knobs.cpp.o"
  "CMakeFiles/ablation_arbitration_knobs.dir/ablation_arbitration_knobs.cpp.o.d"
  "ablation_arbitration_knobs"
  "ablation_arbitration_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_arbitration_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
