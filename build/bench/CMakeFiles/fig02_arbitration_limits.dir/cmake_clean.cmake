file(REMOVE_RECURSE
  "CMakeFiles/fig02_arbitration_limits.dir/fig02_arbitration_limits.cpp.o"
  "CMakeFiles/fig02_arbitration_limits.dir/fig02_arbitration_limits.cpp.o.d"
  "fig02_arbitration_limits"
  "fig02_arbitration_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_arbitration_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
