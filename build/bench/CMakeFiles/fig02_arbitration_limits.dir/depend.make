# Empty dependencies file for fig02_arbitration_limits.
# This may be replaced when dependencies are built.
