file(REMOVE_RECURSE
  "CMakeFiles/fig10c_all_to_all.dir/fig10c_all_to_all.cpp.o"
  "CMakeFiles/fig10c_all_to_all.dir/fig10c_all_to_all.cpp.o.d"
  "fig10c_all_to_all"
  "fig10c_all_to_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10c_all_to_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
