# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12a_local_vs_e2e.
