# Empty compiler generated dependencies file for fig12a_local_vs_e2e.
# This may be replaced when dependencies are built.
