file(REMOVE_RECURSE
  "CMakeFiles/fig12a_local_vs_e2e.dir/fig12a_local_vs_e2e.cpp.o"
  "CMakeFiles/fig12a_local_vs_e2e.dir/fig12a_local_vs_e2e.cpp.o.d"
  "fig12a_local_vs_e2e"
  "fig12a_local_vs_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12a_local_vs_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
