file(REMOVE_RECURSE
  "CMakeFiles/fig10a_tail_fct.dir/fig10a_tail_fct.cpp.o"
  "CMakeFiles/fig10a_tail_fct.dir/fig10a_tail_fct.cpp.o.d"
  "fig10a_tail_fct"
  "fig10a_tail_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_tail_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
