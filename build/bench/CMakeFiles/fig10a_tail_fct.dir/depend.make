# Empty dependencies file for fig10a_tail_fct.
# This may be replaced when dependencies are built.
