# Empty dependencies file for ablation_task_aware.
# This may be replaced when dependencies are built.
