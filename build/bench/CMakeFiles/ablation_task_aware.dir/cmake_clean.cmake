file(REMOVE_RECURSE
  "CMakeFiles/ablation_task_aware.dir/ablation_task_aware.cpp.o"
  "CMakeFiles/ablation_task_aware.dir/ablation_task_aware.cpp.o.d"
  "ablation_task_aware"
  "ablation_task_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_task_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
