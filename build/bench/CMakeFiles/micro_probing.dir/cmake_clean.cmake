file(REMOVE_RECURSE
  "CMakeFiles/micro_probing.dir/micro_probing.cpp.o"
  "CMakeFiles/micro_probing.dir/micro_probing.cpp.o.d"
  "micro_probing"
  "micro_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
