# Empty dependencies file for micro_probing.
# This may be replaced when dependencies are built.
