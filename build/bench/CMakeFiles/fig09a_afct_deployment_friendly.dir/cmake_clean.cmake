file(REMOVE_RECURSE
  "CMakeFiles/fig09a_afct_deployment_friendly.dir/fig09a_afct_deployment_friendly.cpp.o"
  "CMakeFiles/fig09a_afct_deployment_friendly.dir/fig09a_afct_deployment_friendly.cpp.o.d"
  "fig09a_afct_deployment_friendly"
  "fig09a_afct_deployment_friendly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_afct_deployment_friendly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
