# Empty dependencies file for fig09a_afct_deployment_friendly.
# This may be replaced when dependencies are built.
