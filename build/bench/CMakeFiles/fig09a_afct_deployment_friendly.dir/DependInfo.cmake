
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09a_afct_deployment_friendly.cpp" "bench/CMakeFiles/fig09a_afct_deployment_friendly.dir/fig09a_afct_deployment_friendly.cpp.o" "gcc" "bench/CMakeFiles/fig09a_afct_deployment_friendly.dir/fig09a_afct_deployment_friendly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pase_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
