file(REMOVE_RECURSE
  "CMakeFiles/table03_parameters.dir/table03_parameters.cpp.o"
  "CMakeFiles/table03_parameters.dir/table03_parameters.cpp.o.d"
  "table03_parameters"
  "table03_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
