# Empty compiler generated dependencies file for table03_parameters.
# This may be replaced when dependencies are built.
