file(REMOVE_RECURSE
  "CMakeFiles/fig11_arbitration_optimizations.dir/fig11_arbitration_optimizations.cpp.o"
  "CMakeFiles/fig11_arbitration_optimizations.dir/fig11_arbitration_optimizations.cpp.o.d"
  "fig11_arbitration_optimizations"
  "fig11_arbitration_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_arbitration_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
