# Empty dependencies file for fig11_arbitration_optimizations.
# This may be replaced when dependencies are built.
