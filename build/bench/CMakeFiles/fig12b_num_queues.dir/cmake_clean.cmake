file(REMOVE_RECURSE
  "CMakeFiles/fig12b_num_queues.dir/fig12b_num_queues.cpp.o"
  "CMakeFiles/fig12b_num_queues.dir/fig12b_num_queues.cpp.o.d"
  "fig12b_num_queues"
  "fig12b_num_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12b_num_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
