# Empty dependencies file for fig12b_num_queues.
# This may be replaced when dependencies are built.
