# Empty compiler generated dependencies file for workload_distributions.
# This may be replaced when dependencies are built.
