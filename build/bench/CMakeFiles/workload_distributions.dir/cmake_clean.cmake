file(REMOVE_RECURSE
  "CMakeFiles/workload_distributions.dir/workload_distributions.cpp.o"
  "CMakeFiles/workload_distributions.dir/workload_distributions.cpp.o.d"
  "workload_distributions"
  "workload_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
