file(REMOVE_RECURSE
  "CMakeFiles/fig04_pfabric_loss.dir/fig04_pfabric_loss.cpp.o"
  "CMakeFiles/fig04_pfabric_loss.dir/fig04_pfabric_loss.cpp.o.d"
  "fig04_pfabric_loss"
  "fig04_pfabric_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pfabric_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
