# Empty compiler generated dependencies file for fig04_pfabric_loss.
# This may be replaced when dependencies are built.
