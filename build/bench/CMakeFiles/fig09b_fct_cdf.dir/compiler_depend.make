# Empty compiler generated dependencies file for fig09b_fct_cdf.
# This may be replaced when dependencies are built.
