file(REMOVE_RECURSE
  "CMakeFiles/fig09b_fct_cdf.dir/fig09b_fct_cdf.cpp.o"
  "CMakeFiles/fig09b_fct_cdf.dir/fig09b_fct_cdf.cpp.o.d"
  "fig09b_fct_cdf"
  "fig09b_fct_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_fct_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
