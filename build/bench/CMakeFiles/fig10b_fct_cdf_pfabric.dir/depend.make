# Empty dependencies file for fig10b_fct_cdf_pfabric.
# This may be replaced when dependencies are built.
