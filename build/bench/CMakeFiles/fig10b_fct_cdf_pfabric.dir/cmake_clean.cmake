file(REMOVE_RECURSE
  "CMakeFiles/fig10b_fct_cdf_pfabric.dir/fig10b_fct_cdf_pfabric.cpp.o"
  "CMakeFiles/fig10b_fct_cdf_pfabric.dir/fig10b_fct_cdf_pfabric.cpp.o.d"
  "fig10b_fct_cdf_pfabric"
  "fig10b_fct_cdf_pfabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_fct_cdf_pfabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
