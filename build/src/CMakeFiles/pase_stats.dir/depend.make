# Empty dependencies file for pase_stats.
# This may be replaced when dependencies are built.
