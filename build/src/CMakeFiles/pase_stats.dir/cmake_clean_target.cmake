file(REMOVE_RECURSE
  "libpase_stats.a"
)
