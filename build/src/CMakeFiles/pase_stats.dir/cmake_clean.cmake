file(REMOVE_RECURSE
  "CMakeFiles/pase_stats.dir/stats/summary.cc.o"
  "CMakeFiles/pase_stats.dir/stats/summary.cc.o.d"
  "libpase_stats.a"
  "libpase_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
