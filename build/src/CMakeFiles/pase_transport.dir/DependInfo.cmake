
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/d2tcp.cc" "src/CMakeFiles/pase_transport.dir/transport/d2tcp.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/d2tcp.cc.o.d"
  "/root/repo/src/transport/dctcp.cc" "src/CMakeFiles/pase_transport.dir/transport/dctcp.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/dctcp.cc.o.d"
  "/root/repo/src/transport/l2dct.cc" "src/CMakeFiles/pase_transport.dir/transport/l2dct.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/l2dct.cc.o.d"
  "/root/repo/src/transport/pdq.cc" "src/CMakeFiles/pase_transport.dir/transport/pdq.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/pdq.cc.o.d"
  "/root/repo/src/transport/pfabric.cc" "src/CMakeFiles/pase_transport.dir/transport/pfabric.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/pfabric.cc.o.d"
  "/root/repo/src/transport/receiver.cc" "src/CMakeFiles/pase_transport.dir/transport/receiver.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/receiver.cc.o.d"
  "/root/repo/src/transport/window_sender.cc" "src/CMakeFiles/pase_transport.dir/transport/window_sender.cc.o" "gcc" "src/CMakeFiles/pase_transport.dir/transport/window_sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pase_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
