file(REMOVE_RECURSE
  "CMakeFiles/pase_transport.dir/transport/d2tcp.cc.o"
  "CMakeFiles/pase_transport.dir/transport/d2tcp.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/dctcp.cc.o"
  "CMakeFiles/pase_transport.dir/transport/dctcp.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/l2dct.cc.o"
  "CMakeFiles/pase_transport.dir/transport/l2dct.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/pdq.cc.o"
  "CMakeFiles/pase_transport.dir/transport/pdq.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/pfabric.cc.o"
  "CMakeFiles/pase_transport.dir/transport/pfabric.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/receiver.cc.o"
  "CMakeFiles/pase_transport.dir/transport/receiver.cc.o.d"
  "CMakeFiles/pase_transport.dir/transport/window_sender.cc.o"
  "CMakeFiles/pase_transport.dir/transport/window_sender.cc.o.d"
  "libpase_transport.a"
  "libpase_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
