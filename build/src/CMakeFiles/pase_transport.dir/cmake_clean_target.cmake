file(REMOVE_RECURSE
  "libpase_transport.a"
)
