# Empty compiler generated dependencies file for pase_transport.
# This may be replaced when dependencies are built.
