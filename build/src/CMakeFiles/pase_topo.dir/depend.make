# Empty dependencies file for pase_topo.
# This may be replaced when dependencies are built.
