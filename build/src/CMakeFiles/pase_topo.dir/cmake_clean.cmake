file(REMOVE_RECURSE
  "CMakeFiles/pase_topo.dir/topo/single_rack.cc.o"
  "CMakeFiles/pase_topo.dir/topo/single_rack.cc.o.d"
  "CMakeFiles/pase_topo.dir/topo/three_tier.cc.o"
  "CMakeFiles/pase_topo.dir/topo/three_tier.cc.o.d"
  "CMakeFiles/pase_topo.dir/topo/topology.cc.o"
  "CMakeFiles/pase_topo.dir/topo/topology.cc.o.d"
  "libpase_topo.a"
  "libpase_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
