file(REMOVE_RECURSE
  "libpase_topo.a"
)
