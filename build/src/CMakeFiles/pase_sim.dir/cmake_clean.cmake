file(REMOVE_RECURSE
  "CMakeFiles/pase_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/pase_sim.dir/sim/simulator.cc.o.d"
  "libpase_sim.a"
  "libpase_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
