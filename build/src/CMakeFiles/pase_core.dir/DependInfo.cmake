
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arbitration_algorithm.cc" "src/CMakeFiles/pase_core.dir/core/arbitration_algorithm.cc.o" "gcc" "src/CMakeFiles/pase_core.dir/core/arbitration_algorithm.cc.o.d"
  "/root/repo/src/core/arbitration_plane.cc" "src/CMakeFiles/pase_core.dir/core/arbitration_plane.cc.o" "gcc" "src/CMakeFiles/pase_core.dir/core/arbitration_plane.cc.o.d"
  "/root/repo/src/core/link_arbitrator.cc" "src/CMakeFiles/pase_core.dir/core/link_arbitrator.cc.o" "gcc" "src/CMakeFiles/pase_core.dir/core/link_arbitrator.cc.o.d"
  "/root/repo/src/core/pase_sender.cc" "src/CMakeFiles/pase_core.dir/core/pase_sender.cc.o" "gcc" "src/CMakeFiles/pase_core.dir/core/pase_sender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pase_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
