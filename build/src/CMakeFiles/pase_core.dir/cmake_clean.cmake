file(REMOVE_RECURSE
  "CMakeFiles/pase_core.dir/core/arbitration_algorithm.cc.o"
  "CMakeFiles/pase_core.dir/core/arbitration_algorithm.cc.o.d"
  "CMakeFiles/pase_core.dir/core/arbitration_plane.cc.o"
  "CMakeFiles/pase_core.dir/core/arbitration_plane.cc.o.d"
  "CMakeFiles/pase_core.dir/core/link_arbitrator.cc.o"
  "CMakeFiles/pase_core.dir/core/link_arbitrator.cc.o.d"
  "CMakeFiles/pase_core.dir/core/pase_sender.cc.o"
  "CMakeFiles/pase_core.dir/core/pase_sender.cc.o.d"
  "libpase_core.a"
  "libpase_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
