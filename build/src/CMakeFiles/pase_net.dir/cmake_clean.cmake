file(REMOVE_RECURSE
  "CMakeFiles/pase_net.dir/net/droptail_queue.cc.o"
  "CMakeFiles/pase_net.dir/net/droptail_queue.cc.o.d"
  "CMakeFiles/pase_net.dir/net/host.cc.o"
  "CMakeFiles/pase_net.dir/net/host.cc.o.d"
  "CMakeFiles/pase_net.dir/net/link.cc.o"
  "CMakeFiles/pase_net.dir/net/link.cc.o.d"
  "CMakeFiles/pase_net.dir/net/pfabric_queue.cc.o"
  "CMakeFiles/pase_net.dir/net/pfabric_queue.cc.o.d"
  "CMakeFiles/pase_net.dir/net/priority_queue_bank.cc.o"
  "CMakeFiles/pase_net.dir/net/priority_queue_bank.cc.o.d"
  "CMakeFiles/pase_net.dir/net/red_ecn_queue.cc.o"
  "CMakeFiles/pase_net.dir/net/red_ecn_queue.cc.o.d"
  "CMakeFiles/pase_net.dir/net/switch.cc.o"
  "CMakeFiles/pase_net.dir/net/switch.cc.o.d"
  "libpase_net.a"
  "libpase_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
