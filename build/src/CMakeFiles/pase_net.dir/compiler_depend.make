# Empty compiler generated dependencies file for pase_net.
# This may be replaced when dependencies are built.
