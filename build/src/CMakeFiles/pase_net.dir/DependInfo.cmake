
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/droptail_queue.cc" "src/CMakeFiles/pase_net.dir/net/droptail_queue.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/droptail_queue.cc.o.d"
  "/root/repo/src/net/host.cc" "src/CMakeFiles/pase_net.dir/net/host.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/host.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/pase_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/pfabric_queue.cc" "src/CMakeFiles/pase_net.dir/net/pfabric_queue.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/pfabric_queue.cc.o.d"
  "/root/repo/src/net/priority_queue_bank.cc" "src/CMakeFiles/pase_net.dir/net/priority_queue_bank.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/priority_queue_bank.cc.o.d"
  "/root/repo/src/net/red_ecn_queue.cc" "src/CMakeFiles/pase_net.dir/net/red_ecn_queue.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/red_ecn_queue.cc.o.d"
  "/root/repo/src/net/switch.cc" "src/CMakeFiles/pase_net.dir/net/switch.cc.o" "gcc" "src/CMakeFiles/pase_net.dir/net/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pase_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
