file(REMOVE_RECURSE
  "libpase_net.a"
)
