file(REMOVE_RECURSE
  "libpase_workload.a"
)
