file(REMOVE_RECURSE
  "CMakeFiles/pase_workload.dir/workload/flow_generator.cc.o"
  "CMakeFiles/pase_workload.dir/workload/flow_generator.cc.o.d"
  "CMakeFiles/pase_workload.dir/workload/scenario.cc.o"
  "CMakeFiles/pase_workload.dir/workload/scenario.cc.o.d"
  "libpase_workload.a"
  "libpase_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pase_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
