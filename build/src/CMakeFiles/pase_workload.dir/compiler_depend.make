# Empty compiler generated dependencies file for pase_workload.
# This may be replaced when dependencies are built.
