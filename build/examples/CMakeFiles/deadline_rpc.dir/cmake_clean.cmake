file(REMOVE_RECURSE
  "CMakeFiles/deadline_rpc.dir/deadline_rpc.cpp.o"
  "CMakeFiles/deadline_rpc.dir/deadline_rpc.cpp.o.d"
  "deadline_rpc"
  "deadline_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
