# Empty compiler generated dependencies file for deadline_rpc.
# This may be replaced when dependencies are built.
