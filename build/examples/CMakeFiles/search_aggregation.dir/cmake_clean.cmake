file(REMOVE_RECURSE
  "CMakeFiles/search_aggregation.dir/search_aggregation.cpp.o"
  "CMakeFiles/search_aggregation.dir/search_aggregation.cpp.o.d"
  "search_aggregation"
  "search_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
