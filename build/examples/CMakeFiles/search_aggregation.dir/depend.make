# Empty dependencies file for search_aggregation.
# This may be replaced when dependencies are built.
