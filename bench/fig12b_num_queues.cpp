// Figure 12(b): PASE with a varying number of switch priority queues.
//
// Left-right inter-rack scenario. Expected: 4 queues already capture most of
// the benefit; more than that is marginal (paper §4.3.2) — exactly why PASE
// works on commodity switches (Table 2).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto queue_counts = {3, 4, 6, 8};
  Sweep sweep("fig12b");
  for (double load : standard_loads()) {
    for (int q : queue_counts) {
      auto cfg = left_right(Protocol::kPase, load);
      cfg.pase.num_queues = q;
      sweep.add(case_label(Protocol::kPase, load) + " q=" + std::to_string(q),
                cfg);
    }
  }
  sweep.run(argc, argv);

  print_header("Figure 12(b): AFCT (ms) vs number of priority queues",
               {"3 queues", "4 queues", "6 queues", "8 queues"});
  std::size_t i = 0;
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (std::size_t c = 0; c < queue_counts.size(); ++c) {
      row.push_back(sweep[i++].afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
