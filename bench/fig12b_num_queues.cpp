// Figure 12(b): PASE with a varying number of switch priority queues.
//
// Left-right inter-rack scenario. Expected: 4 queues already capture most of
// the benefit; more than that is marginal (paper §4.3.2) — exactly why PASE
// works on commodity switches (Table 2).
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 12(b): AFCT (ms) vs number of priority queues",
               {"3 queues", "4 queues", "6 queues", "8 queues"});
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (int q : {3, 4, 6, 8}) {
      auto cfg = left_right(Protocol::kPase, load);
      cfg.pase.num_queues = q;
      row.push_back(run_scenario(cfg).afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
