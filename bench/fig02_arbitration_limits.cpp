// Figure 2: limits of arbitration in isolation.
//
// Same intra-rack all-to-all workload as Fig. 1 but without deadlines;
// metric is AFCT (log scale in the paper). Expected shape: PDQ beats DCTCP
// at low load (fast convergence), then crosses over and loses at high load
// (flow-switching overhead).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols =
      protocols_from_cli(argc, argv, {Protocol::kPdq, Protocol::kDctcp});
  Sweep sweep("fig02");
  for (double load : standard_loads()) {
    for (auto p : protocols) {
      sweep.add(case_label(p, load), intra_rack_20(p, load, false));
    }
  }
  sweep.run(argc, argv);

  print_header("Figure 2: AFCT (ms), PDQ vs DCTCP",
               protocol_columns(protocols));
  std::size_t i = 0;
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (std::size_t c = 0; c < protocols.size(); ++c) {
      row.push_back(sweep[i++].afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
