// Figure 2: limits of arbitration in isolation.
//
// Same intra-rack all-to-all workload as Fig. 1 but without deadlines;
// metric is AFCT (log scale in the paper). Expected shape: PDQ beats DCTCP
// at low load (fast convergence), then crosses over and loses at high load
// (flow-switching overhead).
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 2: AFCT (ms), PDQ vs DCTCP", {"PDQ", "DCTCP"});
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (auto p : {Protocol::kPdq, Protocol::kDctcp}) {
      row.push_back(run_scenario(intra_rack_20(p, load, false)).afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
