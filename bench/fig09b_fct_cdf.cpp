// Figure 9(b): CDF of flow completion times at 70% load (left-right).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols = protocols_from_cli(
      argc, argv, {Protocol::kPase, Protocol::kL2dct, Protocol::kDctcp});
  Sweep sweep("fig09b");
  for (auto p : protocols) sweep.add(case_label(p, 0.7), left_right(p, 0.7));
  sweep.run(argc, argv);

  std::printf("Figure 9(b): FCT CDF at 70%% load, left-right inter-rack\n");
  std::printf("%-12s", "fraction");
  for (auto p : protocols) {
    std::printf("%16s", (std::string(pase::workload::protocol_name(p)) +
                         "(ms)").c_str());
  }
  std::printf("\n");
  std::vector<std::vector<pase::stats::CdfPoint>> cdfs;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    cdfs.push_back(sweep[i].fct_cdf(20));
  }
  for (std::size_t i = 0; i < cdfs[0].size(); ++i) {
    std::printf("%-12.2f", cdfs[0][i].fraction);
    for (const auto& cdf : cdfs) std::printf("%16.3f", cdf[i].x * 1e3);
    std::printf("\n");
  }
  return 0;
}
