// Figure 9(b): CDF of flow completion times at 70% load (left-right).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols = {Protocol::kPase, Protocol::kL2dct, Protocol::kDctcp};
  Sweep sweep("fig09b");
  for (auto p : protocols) sweep.add(case_label(p, 0.7), left_right(p, 0.7));
  sweep.run(parse_threads(argc, argv));

  std::printf("Figure 9(b): FCT CDF at 70%% load, left-right inter-rack\n");
  std::printf("%-12s%16s%16s%16s\n", "fraction", "PASE(ms)", "L2DCT(ms)",
              "DCTCP(ms)");
  std::vector<std::vector<pase::stats::CdfPoint>> cdfs;
  for (std::size_t i = 0; i < protocols.size(); ++i) {
    cdfs.push_back(pase::stats::fct_cdf(sweep[i].records, 20));
  }
  for (std::size_t i = 0; i < cdfs[0].size(); ++i) {
    std::printf("%-12.2f%16.3f%16.3f%16.3f\n", cdfs[0][i].fraction,
                cdfs[0][i].x * 1e3, cdfs[1][i].x * 1e3, cdfs[2][i].x * 1e3);
  }
  return 0;
}
