// Robustness beyond the paper's uniform sizes: the empirical web-search and
// data-mining distributions (heavy-tailed) on the all-to-all rack.
// The paper's claim that PASE "performs well for a wide range of application
// workloads" is exercised here.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  using pase::workload::SizeDistribution;
  struct Dist {
    const char* name;
    SizeDistribution d;
    int flows;
  };
  for (const auto& dist :
       {Dist{"web-search", SizeDistribution::kWebSearch, 500},
        Dist{"data-mining", SizeDistribution::kDataMining, 500}}) {
    std::printf("=== %s distribution, all-to-all intra-rack ===\n", dist.name);
    std::printf("%-10s%14s%14s%14s%14s%14s\n", "load(%)", "PASE", "pFabric",
                "DCTCP", "PASE-p99", "pFab-p99");
    for (double load : {0.3, 0.6, 0.8}) {
      std::vector<ScenarioResult> rs;
      for (auto p :
           {Protocol::kPase, Protocol::kPfabric, Protocol::kDctcp}) {
        auto cfg = all_to_all_40(p, load, dist.flows, 43);
        cfg.traffic.size_dist = dist.d;
        cfg.max_duration = 60.0;  // elephants take a while
        rs.push_back(run_scenario(cfg));
      }
      std::printf("%-10.0f%14.3f%14.3f%14.3f%14.3f%14.3f\n", load * 100,
                  rs[0].afct() * 1e3, rs[1].afct() * 1e3, rs[2].afct() * 1e3,
                  rs[0].fct_p99() * 1e3, rs[1].fct_p99() * 1e3);
    }
  }
  return 0;
}
