// Million-flow capacity scaling: peak RSS, setup time and simulated
// packets per wall-clock second as the workload grows from 10^3 to 10^6
// flows on one rack.
//
// This is the memory-capacity counterpart to hotpath_throughput: the
// scenario is deliberately cheap per flow (small uniform sizes, moderate
// load) so the series isolates how harness state — endpoint slabs, pending
// descriptors, statistics — scales with flow count. Streaming statistics
// and endpoint recycling are on, so per-flow state is transient: live
// endpoint memory tracks concurrency (peak_live_flows), not total flows,
// and the run keeps no per-flow records at all. Setup is O(pending
// descriptors): endpoints materialize lazily at flow start.
//
// Each scale runs in a forked child so getrusage(RUSAGE_SELF).ru_maxrss is
// that scale's own high-water mark (RSS is process-monotone; measuring all
// scales in one process would report the largest for every row). Results
// land in BENCH_capacity.json.
//
// Flags:
//   --quick    stop at 10^5 flows (CI smoke; keeps the leg under ~2 s)
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace {

using namespace pase;
using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;

// Fixed-layout result a child ships to the parent over a pipe.
struct ScaleOut {
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t unfinished = 0;
  std::uint64_t sim_packets = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t peak_live_flows = 0;
  std::uint64_t slab_grow_events = 0;
  double setup_sec = 0.0;
  double wall_sec = 0.0;
  double packets_per_sec = 0.0;
  double afct_s = 0.0;
  double fct_p99_s = 0.0;
  double end_time_s = 0.0;
};

ScenarioConfig capacity_config(int num_flows) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDctcp;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 32;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = num_flows;
  // Small fixed-size flows: per-flow harness cost dominates packet cost, so
  // the series measures capacity, not congestion dynamics.
  cfg.traffic.size_min_bytes = 4380;  // 3 MSS
  cfg.traffic.size_max_bytes = 4380;
  cfg.traffic.seed = 17;
  cfg.max_duration = 120.0;  // arrivals finish long before this
  // The point of the exercise: O(1)-memory statistics and recycled
  // endpoint slots.
  cfg.stats_mode = ScenarioConfig::StatsMode::kStreaming;
  cfg.recycle_endpoints = true;
  return cfg;
}

ScaleOut run_scale(int num_flows) {
  const ScenarioConfig cfg = capacity_config(num_flows);
  const auto t0 = std::chrono::steady_clock::now();
  const workload::ScenarioResult r = workload::run_scenario(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  ScaleOut out;
  out.flows = r.total_flows();
  out.unfinished = r.unfinished();
  out.completed = out.flows - out.unfinished;
  out.sim_packets = r.data_packets_sent;
  out.peak_live_flows = r.peak_live_flows;
  out.slab_grow_events = r.slab_grow_events;
  out.setup_sec = r.setup_wall_sec;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  out.packets_per_sec =
      out.wall_sec > 0.0
          ? static_cast<double>(out.sim_packets) / out.wall_sec
          : 0.0;
  out.afct_s = r.afct();
  out.fct_p99_s = r.fct_p99();
  out.end_time_s = r.end_time;

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  out.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  return out;
}

// Forks, runs one scale in the child, and reads the result back. Returns
// false if the child failed.
bool run_scale_isolated(int num_flows, ScaleOut* out) {
  int fd[2];
  if (pipe(fd) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fd[0]);
    close(fd[1]);
    return false;
  }
  if (pid == 0) {
    close(fd[0]);
    const ScaleOut r = run_scale(num_flows);
    ssize_t n = write(fd[1], &r, sizeof(r));
    close(fd[1]);
    _exit(n == static_cast<ssize_t>(sizeof(r)) ? 0 : 1);
  }
  close(fd[1]);
  std::size_t got = 0;
  auto* dst = reinterpret_cast<unsigned char*>(out);
  while (got < sizeof(*out)) {
    const ssize_t n = read(fd[0], dst + got, sizeof(*out) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return got == sizeof(*out) && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::vector<int> scales = {1000, 10000, 100000};
  if (!quick) scales.push_back(1000000);

  std::printf("capacity scaling (%s): DCTCP single-rack, 3-MSS flows, "
              "streaming stats, recycled endpoints\n",
              quick ? "quick" : "full");
  std::printf("%-10s %12s %10s %10s %14s %12s %12s %10s\n", "flows",
              "peak RSS", "setup(s)", "wall(s)", "pkts/sec", "peak live",
              "slab grows", "afct(ms)");

  std::string json = "{\n  \"bench\": \"capacity\",\n  \"mode\": \"";
  json += quick ? "quick" : "full";
  json += "\",\n  \"cases\": [\n";

  bool ok = true;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    ScaleOut r;
    if (!run_scale_isolated(scales[i], &r)) {
      std::fprintf(stderr, "error: scale %d failed\n", scales[i]);
      ok = false;
      break;
    }
    std::printf("%-10llu %9.1f MB %10.3f %10.3f %14.0f %12llu %12llu %10.3f\n",
                static_cast<unsigned long long>(r.flows),
                static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0),
                r.setup_sec, r.wall_sec, r.packets_per_sec,
                static_cast<unsigned long long>(r.peak_live_flows),
                static_cast<unsigned long long>(r.slab_grow_events),
                r.afct_s * 1e3);
    std::fflush(stdout);

    char row[640];
    std::snprintf(
        row, sizeof(row),
        "    {\"flows\": %llu, \"completed\": %llu, \"unfinished\": %llu,\n"
        "     \"peak_rss_bytes\": %llu, \"setup_sec\": %.6f,\n"
        "     \"wall_sec\": %.6f, \"sim_packets\": %llu,\n"
        "     \"packets_per_sec\": %.1f, \"peak_live_flows\": %llu,\n"
        "     \"slab_grow_events\": %llu, \"afct_s\": %.9f,\n"
        "     \"fct_p99_s\": %.9f, \"end_time_s\": %.6f}%s\n",
        static_cast<unsigned long long>(r.flows),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.unfinished),
        static_cast<unsigned long long>(r.peak_rss_bytes), r.setup_sec,
        r.wall_sec, static_cast<unsigned long long>(r.sim_packets),
        r.packets_per_sec, static_cast<unsigned long long>(r.peak_live_flows),
        static_cast<unsigned long long>(r.slab_grow_events), r.afct_s,
        r.fct_p99_s, r.end_time_s, i + 1 < scales.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";

  if (!ok) return 1;
  std::FILE* f = std::fopen("BENCH_capacity.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write BENCH_capacity.json\n");
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote BENCH_capacity.json\n");
  return 0;
}
