// Figure 9(a): PASE vs the deployment-friendly transports.
//
// Left-right inter-rack scenario (80 left hosts -> 80 right hosts across the
// 10G core, U[2,198] KB flows + 2 background flows). Expected: PASE improves
// AFCT by ~40-60% over L2DCT and ~70% over DCTCP across loads.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 9(a): AFCT (ms), left-right inter-rack",
               {"PASE", "L2DCT", "DCTCP"});
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (auto p : {Protocol::kPase, Protocol::kL2dct, Protocol::kDctcp}) {
      row.push_back(run_scenario(left_right(p, load)).afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
