// Figure 9(a): PASE vs the deployment-friendly transports.
//
// Left-right inter-rack scenario (80 left hosts -> 80 right hosts across the
// 10G core, U[2,198] KB flows + 2 background flows). Expected: PASE improves
// AFCT by ~40-60% over L2DCT and ~70% over DCTCP across loads.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols = protocols_from_cli(
      argc, argv, {Protocol::kPase, Protocol::kL2dct, Protocol::kDctcp});
  Sweep sweep("fig09a");
  for (double load : standard_loads()) {
    for (auto p : protocols) {
      sweep.add(case_label(p, load), left_right(p, load));
    }
  }
  sweep.run(argc, argv);

  print_header("Figure 9(a): AFCT (ms), left-right inter-rack",
               protocol_columns(protocols));
  std::size_t i = 0;
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (std::size_t c = 0; c < protocols.size(); ++c) {
      row.push_back(sweep[i++].afct() * 1e3);
    }
    print_row(load, row);
  }
  return 0;
}
