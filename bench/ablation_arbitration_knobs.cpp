// Ablation: the control-plane design knobs DESIGN.md calls out.
//
// Left-right inter-rack at 80% load; each section varies one knob with the
// rest at defaults. Shows (i) the refresh-rate/overhead trade-off, (ii) the
// pruning depth sweet spot (paper §4.3.1 says top-2), (iii) delegation
// refresh period, (iv) virtual-link overcommit.
#include "bench_util.h"

namespace {
void report(const char* label, const pase::bench::ScenarioResult& res) {
  std::printf("%-28s afct=%8.3f ms   p99=%8.3f ms   msgs=%8llu\n", label,
              res.afct() * 1e3, res.fct_p99() * 1e3,
              static_cast<unsigned long long>(res.control.messages_sent));
}
}  // namespace

int main() {
  using namespace pase::bench;
  const double load = 0.8;
  std::printf("Arbitration knob ablations (left-right, load %.0f%%)\n\n",
              load * 100);

  std::printf("-- source refresh period (RTTs) --\n");
  for (double rtts : {0.5, 1.0, 2.0, 4.0}) {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.arbitration_period_rtts = rtts;
    char label[64];
    std::snprintf(label, sizeof label, "refresh = %.1f RTT", rtts);
    report(label, run_scenario(cfg));
  }

  std::printf("\n-- early-pruning depth (top-k queues ascend) --\n");
  for (int k : {1, 2, 3}) {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.pase.pruning_queues = k;
    char label[64];
    std::snprintf(label, sizeof label, "prune below queue %d", k);
    report(label, run_scenario(cfg));
  }
  {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.pase.early_pruning = false;
    report("no pruning", run_scenario(cfg));
  }

  std::printf("\n-- delegation update period --\n");
  for (double ms : {0.5, 1.0, 2.0}) {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.pase.delegation_update_period = ms * 1e-3;
    char label[64];
    std::snprintf(label, sizeof label, "delegation period %.1f ms", ms);
    report(label, run_scenario(cfg));
  }
  {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.pase.delegation = false;
    report("no delegation", run_scenario(cfg));
  }

  std::printf("\n-- virtual-link overcommit --\n");
  for (double oc : {1.0, 1.25, 1.5, 2.0}) {
    auto cfg = left_right(Protocol::kPase, load);
    cfg.pase.delegation_overcommit = oc;
    char label[64];
    std::snprintf(label, sizeof label, "overcommit %.2fx", oc);
    report(label, run_scenario(cfg));
  }
  return 0;
}
