// Figure 13(b): testbed reproduction.
//
// The paper's testbed: a single rack of 10 nodes (9 clients, 1 server),
// 1 Gbps links, 250 us RTT, 100-packet port queues, marking threshold K=20,
// 8 priority queues, flows U[100,500] KB toward the server plus one
// long-lived background flow. We reproduce it in simulation with identical
// parameters (substitution documented in DESIGN.md/EXPERIMENTS.md).
// Expected: PASE achieves ~50-60% lower AFCT than DCTCP.
#include "bench_util.h"

namespace {
pase::bench::ScenarioConfig testbed(pase::bench::Protocol p, double load) {
  using namespace pase::bench;
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 10;
  cfg.rack.per_link_delay = 62.5e-6;  // 4 hops -> 250 us RTT
  cfg.queue_capacity_pkts = 100;
  cfg.mark_threshold_pkts = 20;
  cfg.traffic.pattern = Pattern::kWorkerAggregator;  // clients -> server
  cfg.traffic.load = load;
  cfg.traffic.num_flows = 700;
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  cfg.traffic.num_background_flows = 1;
  cfg.traffic.seed = 23;
  return cfg;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig13b");
  for (double load : standard_loads()) {
    sweep.add(case_label(Protocol::kPase, load),
              testbed(Protocol::kPase, load));
    sweep.add(case_label(Protocol::kDctcp, load),
              testbed(Protocol::kDctcp, load));
  }
  sweep.run(argc, argv);

  print_header("Figure 13(b): testbed-like AFCT (ms), PASE vs DCTCP",
               {"PASE", "DCTCP", "improv(%)"});
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& res_pase = sweep[i++];
    const auto& res_dctcp = sweep[i++];
    const double improvement =
        100.0 * (res_dctcp.afct() - res_pase.afct()) / res_dctcp.afct();
    print_row(load, {res_pase.afct() * 1e3, res_dctcp.afct() * 1e3,
                     improvement});
  }
  return 0;
}
