// §4.3.2 micro-benchmark: impact of probe-based loss recovery.
//
// Probing matters when lower-queue flows actually time out, i.e. when the
// fabric is saturated enough that demoted flows wait long. We run the
// all-to-all rack at very high load (and a transient-overload variant) with
// probing on and off. The paper reports ~2.4% and ~11% AFCT improvements at
// 80%/90% load; with our (loss-free at these loads) fabric the effect is
// smaller — see EXPERIMENTS.md.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  std::printf("Probing ablation, all-to-all intra-rack (40 hosts)\n");
  std::printf("%-10s%16s%16s%14s%14s\n", "load(%)", "probing-afct",
              "noprobe-afct", "probes", "improv(%)");
  for (double load : {0.8, 0.9, 0.95}) {
    auto cfg = all_to_all_40(Protocol::kPase, load, 1500, 29);
    // Wider size spread: the big flows are the ones demoted long enough to
    // hit their (lowered) minRTO while starved.
    cfg.traffic.size_max_bytes = 1e6;
    cfg.pase.min_rto_low = 10e-3;
    auto with = run_scenario(cfg);
    cfg.pase.probing = false;
    auto without = run_scenario(cfg);
    const double improvement =
        100.0 * (without.afct() - with.afct()) / without.afct();
    std::printf("%-10.0f%16.3f%16.3f%14llu%14.1f\n", load * 100,
                with.afct() * 1e3, without.afct() * 1e3,
                static_cast<unsigned long long>(with.probes_sent),
                improvement);
  }
  return 0;
}
