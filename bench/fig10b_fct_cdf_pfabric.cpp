// Figure 10(b): CDF of FCTs at 70% load, PASE vs pFabric (left-right).
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  std::printf("Figure 10(b): FCT CDF at 70%% load, PASE vs pFabric\n");
  std::printf("%-12s%16s%16s\n", "fraction", "PASE(ms)", "pFabric(ms)");
  auto res_pase = run_scenario(left_right(Protocol::kPase, 0.7));
  auto res_pfab = run_scenario(left_right(Protocol::kPfabric, 0.7));
  auto c1 = pase::stats::fct_cdf(res_pase.records, 20);
  auto c2 = pase::stats::fct_cdf(res_pfab.records, 20);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    std::printf("%-12.2f%16.3f%16.3f\n", c1[i].fraction, c1[i].x * 1e3,
                c2[i].x * 1e3);
  }
  return 0;
}
