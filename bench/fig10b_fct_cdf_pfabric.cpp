// Figure 10(b): CDF of FCTs at 70% load, PASE vs pFabric (left-right).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig10b");
  sweep.add(case_label(Protocol::kPase, 0.7),
            left_right(Protocol::kPase, 0.7));
  sweep.add(case_label(Protocol::kPfabric, 0.7),
            left_right(Protocol::kPfabric, 0.7));
  sweep.run(argc, argv);

  std::printf("Figure 10(b): FCT CDF at 70%% load, PASE vs pFabric\n");
  std::printf("%-12s%16s%16s\n", "fraction", "PASE(ms)", "pFabric(ms)");
  auto c1 = sweep[0].fct_cdf(20);
  auto c2 = sweep[1].fct_cdf(20);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    std::printf("%-12.2f%16.3f%16.3f\n", c1[i].fraction, c1[i].x * 1e3,
                c2[i].x * 1e3);
  }
  return 0;
}
