// Figure 10(c): all-to-all intra-rack scenario, PASE vs pFabric.
//
// 40-host rack, random pairs, U[2,198] KB. pFabric's local drop decisions
// waste upstream capacity (the Fig. 3 toy example at scale); PASE's
// receiver-half arbitration pauses senders whose downlink is taken.
// Expected: PASE wins at every load, by up to ~85% at the high end.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig10c");
  for (double load : standard_loads()) {
    sweep.add(case_label(Protocol::kPase, load),
              all_to_all_40(Protocol::kPase, load));
    sweep.add(case_label(Protocol::kPfabric, load),
              all_to_all_40(Protocol::kPfabric, load));
  }
  sweep.run(argc, argv);

  print_header("Figure 10(c): AFCT (ms), all-to-all intra-rack",
               {"PASE", "pFabric", "improv(%)"});
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& res_pase = sweep[i++];
    const auto& res_pfab = sweep[i++];
    const double improvement =
        100.0 * (res_pfab.afct() - res_pase.afct()) / res_pfab.afct();
    print_row(load, {res_pase.afct() * 1e3, res_pfab.afct() * 1e3,
                     improvement});
  }
  return 0;
}
