// Figure 10(c): all-to-all intra-rack scenario, PASE vs pFabric.
//
// 40-host rack, random pairs, U[2,198] KB. pFabric's local drop decisions
// waste upstream capacity (the Fig. 3 toy example at scale); PASE's
// receiver-half arbitration pauses senders whose downlink is taken.
// Expected: PASE wins at every load, by up to ~85% at the high end.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 10(c): AFCT (ms), all-to-all intra-rack",
               {"PASE", "pFabric", "improv(%)"});
  for (double load : standard_loads()) {
    auto res_pase = run_scenario(all_to_all_40(Protocol::kPase, load));
    auto res_pfab = run_scenario(all_to_all_40(Protocol::kPfabric, load));
    const double improvement =
        100.0 * (res_pfab.afct() - res_pase.afct()) / res_pfab.afct();
    print_row(load, {res_pase.afct() * 1e3, res_pfab.afct() * 1e3,
                     improvement});
  }
  return 0;
}
