// Figure 13(a): value of the reference rate (guided rate control).
//
// Intra-rack 20-host scenario with U[100,500] KB flows. PASE-DCTCP keeps the
// arbitration-driven queue assignment but ignores Rref, running stock DCTCP
// slow start inside the priority queues.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig13a");
  for (double load : standard_loads()) {
    auto cfg = intra_rack_20(Protocol::kPase, load, false);
    sweep.add(case_label(Protocol::kPase, load) + " full", cfg);
    cfg.pase.use_reference_rate = false;
    sweep.add(case_label(Protocol::kPase, load) + " no-rref", cfg);
  }
  sweep.run(argc, argv);

  print_header("Figure 13(a): AFCT (ms), PASE vs PASE-DCTCP",
               {"PASE", "PASE-DCTCP", "improv(%)"});
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& full = sweep[i++];
    const auto& ablated = sweep[i++];
    const double improvement =
        100.0 * (ablated.afct() - full.afct()) / ablated.afct();
    print_row(load, {full.afct() * 1e3, ablated.afct() * 1e3, improvement});
  }
  return 0;
}
