// Fat-tree scale bench: packets per wall-clock second, peak RSS, route-table
// memory, setup time and core-link load balance as the fabric grows from k=4
// (16 hosts) through k=32 (8,192 hosts).
//
// The workload is DCTCP with the web-search flow-size distribution and
// random any-to-any traffic, so a large fraction of flows cross pods and
// every core link carries ECMP-hashed load. Three things are under test:
//   1. capacity — an 8k-host fabric simulates inside a tight RSS ceiling
//      (streaming stats + endpoint recycling keep harness state proportional
//      to concurrency, not flow count) and sets up in well under a second
//      (structural route synthesis, no per-destination BFS);
//   2. scale-invariant forwarding — route_table_bytes/switch is O(pod),
//      sublinear in host count, and ns/packet stays flat as the fabric
//      grows (compressed tables + the per-flow path memo);
//   3. hash quality — max/mean bytes over the core-facing links
//      (core_link_imbalance) stays near 1.0 when the per-flow hash spreads
//      flows evenly; CI fails the quick leg if k=4 exceeds 2.0.
//
// Each scale runs in a forked child so getrusage(RUSAGE_SELF).ru_maxrss is
// that scale's own high-water mark. Results land in BENCH_fattree.json.
//
// Flags:
//   --quick            k = {4, 8, 16} (CI smoke; CI gates route memory
//                      sublinearity and k=16 throughput against the
//                      pre-compression baseline)
//   --telemetry=BASE   enable the telemetry plane; each scale's child writes
//                      its summary to BASE.k<k>.jsonl ("pase-telemetry"
//                      schema). CI gates the telemetry-on overhead <= 5%.
//   --profile          enable the engine self-profiler; dispatch mix, scan
//                      stats and path-cache hit rate land in the JSON rows
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace {

using namespace pase;
using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::SizeDistribution;

// Fixed-layout result a child ships to the parent over a pipe.
struct ScaleOut {
  std::uint64_t k = 0;
  std::uint64_t hosts = 0;
  std::uint64_t switches = 0;
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t unfinished = 0;
  std::uint64_t sim_packets = 0;
  std::uint64_t peak_rss_bytes = 0;
  std::uint64_t core_links = 0;
  std::uint64_t route_table_bytes = 0;
  double route_bytes_per_switch = 0.0;
  double core_link_imbalance = 0.0;
  double setup_sec = 0.0;
  double wall_sec = 0.0;
  double packets_per_sec = 0.0;
  double ns_per_packet = 0.0;
  double afct_s = 0.0;
  double end_time_s = 0.0;
  // Self-profiler fields (zero unless --profile).
  std::uint64_t profile_dispatch_raw = 0;
  std::uint64_t profile_scan_max = 0;
  std::uint64_t profile_peak_pending = 0;
  double profile_scan_mean = 0.0;
  double path_cache_hit_rate = 0.0;
  // Telemetry fields (zero unless --telemetry).
  std::uint64_t telemetry_samples = 0;
};

// Per-run observability knobs, forwarded into each forked child.
struct ObsFlags {
  bool profile = false;
  std::string telemetry_base;  // empty = telemetry off
};

ScenarioConfig fattree_config(int k, int num_flows) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDctcp;
  cfg.topology = ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = k;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;  // any-to-any over hosts
  cfg.traffic.size_dist = SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.3;
  cfg.traffic.num_flows = num_flows;
  // No long-lived background elephants: each would pin one ECMP path for
  // the whole run and swamp the byte-balance signal this bench watches.
  cfg.traffic.num_background_flows = 0;
  cfg.traffic.seed = 29;
  cfg.max_duration = 60.0;
  cfg.stats_mode = ScenarioConfig::StatsMode::kStreaming;
  cfg.recycle_endpoints = true;
  return cfg;
}

double metric(const workload::ScenarioResult& r, const char* name) {
  for (const auto& m : r.metrics) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

ScaleOut run_scale(int k, int num_flows, const ObsFlags& obs) {
  ScenarioConfig cfg = fattree_config(k, num_flows);
  cfg.profile = obs.profile;
  if (!obs.telemetry_base.empty()) cfg.telemetry.enabled = true;
  const auto t0 = std::chrono::steady_clock::now();
  const workload::ScenarioResult r = workload::run_scenario(cfg);
  const auto t1 = std::chrono::steady_clock::now();

  ScaleOut out;
  out.k = static_cast<std::uint64_t>(k);
  out.hosts = static_cast<std::uint64_t>(cfg.fattree.num_hosts());
  out.switches = static_cast<std::uint64_t>(cfg.fattree.num_switches());
  out.flows = r.total_flows();
  out.unfinished = r.unfinished();
  out.completed = out.flows - out.unfinished;
  out.sim_packets = r.data_packets_sent;
  out.core_links = static_cast<std::uint64_t>(metric(r, "fabric.core_links"));
  out.route_table_bytes =
      static_cast<std::uint64_t>(metric(r, "fabric.route_table_bytes"));
  out.route_bytes_per_switch =
      out.switches > 0
          ? static_cast<double>(out.route_table_bytes) /
                static_cast<double>(out.switches)
          : 0.0;
  out.core_link_imbalance = metric(r, "fabric.core_link_imbalance");
  out.setup_sec = r.setup_wall_sec;
  out.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  out.packets_per_sec =
      out.wall_sec > 0.0
          ? static_cast<double>(out.sim_packets) / out.wall_sec
          : 0.0;
  out.ns_per_packet = out.sim_packets > 0
                          ? out.wall_sec * 1e9 /
                                static_cast<double>(out.sim_packets)
                          : 0.0;
  out.afct_s = r.afct();
  out.end_time_s = r.end_time;

  if (obs.profile) {
    out.profile_dispatch_raw =
        static_cast<std::uint64_t>(metric(r, "profile.engine.dispatch.raw"));
    out.profile_scan_max =
        static_cast<std::uint64_t>(metric(r, "profile.engine.scan_max"));
    out.profile_peak_pending =
        static_cast<std::uint64_t>(metric(r, "profile.engine.peak_pending"));
    out.profile_scan_mean = metric(r, "profile.engine.scan_mean");
    out.path_cache_hit_rate = metric(r, "profile.switch.path_cache_hit_rate");
  }
  if (r.telemetry) {
    out.telemetry_samples = r.telemetry->samples;
    const std::string path =
        obs.telemetry_base + ".k" + std::to_string(k) + ".jsonl";
    if (!r.telemetry->write_jsonl(path)) {
      std::fprintf(stderr, "warning: could not write telemetry to %s\n",
                   path.c_str());
    }
  }

  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  out.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  return out;
}

// Forks, runs one scale in the child, and reads the result back. Returns
// false if the child failed.
bool run_scale_isolated(int k, int num_flows, const ObsFlags& obs,
                        ScaleOut* out) {
  int fd[2];
  if (pipe(fd) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fd[0]);
    close(fd[1]);
    return false;
  }
  if (pid == 0) {
    close(fd[0]);
    const ScaleOut r = run_scale(k, num_flows, obs);
    ssize_t n = write(fd[1], &r, sizeof(r));
    close(fd[1]);
    _exit(n == static_cast<ssize_t>(sizeof(r)) ? 0 : 1);
  }
  close(fd[1]);
  std::size_t got = 0;
  auto* dst = reinterpret_cast<unsigned char*>(out);
  while (got < sizeof(*out)) {
    const ssize_t n = read(fd[0], dst + got, sizeof(*out) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  close(fd[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  return got == sizeof(*out) && WIFEXITED(status) &&
         WEXITSTATUS(status) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  ObsFlags obs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      obs.profile = true;
    } else if (std::strncmp(argv[i], "--telemetry=", 12) == 0) {
      obs.telemetry_base = argv[i] + 12;
    }
  }

  // Flow counts grow with the host population so per-host load is comparable
  // across the quick rows; the k=24/32 rows cap total flows (the scale
  // questions there — setup time, route memory, per-packet cost — do not
  // need proportional load, and proportional load would push the full run
  // past several minutes).
  struct Scale {
    int k;
    int flows;
  };
  std::vector<Scale> scales = {{4, 2000}, {8, 8000}, {16, 40000}};
  if (!quick) {
    scales.push_back({24, 60000});
    scales.push_back({32, 100000});
  }

  std::printf("fat-tree scaling (%s): DCTCP web-search any-to-any, ECMP "
              "multipath, streaming stats\n",
              quick ? "quick" : "full");
  std::printf("%-4s %7s %9s %9s %12s %11s %10s %10s %14s %8s %10s %10s\n",
              "k", "hosts", "switches", "flows", "peak RSS", "route B/sw",
              "setup(s)", "wall(s)", "pkts/sec", "ns/pkt", "imbalance",
              "afct(ms)");

  std::string json = "{\n  \"bench\": \"fattree\",\n  \"mode\": \"";
  json += quick ? "quick" : "full";
  json += "\",\n  \"cases\": [\n";

  bool ok = true;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    ScaleOut r;
    if (!run_scale_isolated(scales[i].k, scales[i].flows, obs, &r)) {
      std::fprintf(stderr, "error: k=%d failed\n", scales[i].k);
      ok = false;
      break;
    }
    std::printf(
        "%-4llu %7llu %9llu %9llu %9.1f MB %11.0f %10.3f %10.3f %14.0f "
        "%8.0f %10.3f %10.3f\n",
        static_cast<unsigned long long>(r.k),
        static_cast<unsigned long long>(r.hosts),
        static_cast<unsigned long long>(r.switches),
        static_cast<unsigned long long>(r.flows),
        static_cast<double>(r.peak_rss_bytes) / (1024.0 * 1024.0),
        r.route_bytes_per_switch, r.setup_sec, r.wall_sec, r.packets_per_sec,
        r.ns_per_packet, r.core_link_imbalance, r.afct_s * 1e3);
    std::fflush(stdout);

    char row[1536];
    std::snprintf(
        row, sizeof(row),
        "    {\"k\": %llu, \"hosts\": %llu, \"switches\": %llu,\n"
        "     \"flows\": %llu, \"completed\": %llu, \"unfinished\": %llu,\n"
        "     \"peak_rss_bytes\": %llu, \"setup_sec\": %.6f,\n"
        "     \"route_table_bytes\": %llu, \"route_bytes_per_switch\": %.1f,\n"
        "     \"wall_sec\": %.6f, \"sim_packets\": %llu,\n"
        "     \"packets_per_sec\": %.1f, \"ns_per_packet\": %.1f,\n"
        "     \"core_links\": %llu,\n"
        "     \"core_link_imbalance\": %.6f, \"afct_s\": %.9f,\n"
        "     \"end_time_s\": %.6f,\n"
        "     \"profile_dispatch_raw\": %llu, \"profile_scan_mean\": %.3f,\n"
        "     \"profile_scan_max\": %llu, \"profile_peak_pending\": %llu,\n"
        "     \"path_cache_hit_rate\": %.6f,\n"
        "     \"telemetry_samples\": %llu}%s\n",
        static_cast<unsigned long long>(r.k),
        static_cast<unsigned long long>(r.hosts),
        static_cast<unsigned long long>(r.switches),
        static_cast<unsigned long long>(r.flows),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.unfinished),
        static_cast<unsigned long long>(r.peak_rss_bytes), r.setup_sec,
        static_cast<unsigned long long>(r.route_table_bytes),
        r.route_bytes_per_switch, r.wall_sec,
        static_cast<unsigned long long>(r.sim_packets), r.packets_per_sec,
        r.ns_per_packet, static_cast<unsigned long long>(r.core_links),
        r.core_link_imbalance, r.afct_s, r.end_time_s,
        static_cast<unsigned long long>(r.profile_dispatch_raw),
        r.profile_scan_mean,
        static_cast<unsigned long long>(r.profile_scan_max),
        static_cast<unsigned long long>(r.profile_peak_pending),
        r.path_cache_hit_rate,
        static_cast<unsigned long long>(r.telemetry_samples),
        i + 1 < scales.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";

  if (!ok) return 1;
  std::FILE* f = std::fopen("BENCH_fattree.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write BENCH_fattree.json\n");
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote BENCH_fattree.json\n");
  return 0;
}
