// Shared helpers for the figure-reproduction benches: the paper's standard
// scenarios (§4.1), the parallel sweep-grid driver, and table printing.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "workload/scenario.h"

namespace pase::bench {

using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::ScenarioResult;

// Parses `--threads=N` (or `--threads N`) from the bench's argv. Returns 0
// when absent, which lets SweepRunner fall back to PASE_THREADS / core count.
inline unsigned parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long n = std::strtol(argv[i] + 10, nullptr, 10);
      if (n > 0) return static_cast<unsigned>(n);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long n = std::strtol(argv[i + 1], nullptr, 10);
      if (n > 0) return static_cast<unsigned>(n);
    }
  }
  return 0;
}

// Parses `--protocols=a,b,c` (or `--protocols a,b,c`; `--protocol` is an
// accepted alias) into Protocol values via workload::parse_protocol, so any
// figure can be re-run over a different protocol subset without recompiling:
//
//   ./build/bench/fig09a_afct_deployment_friendly --protocols=pase,pdq
//
// Returns `defaults` when the flag is absent; exits with a message naming
// the unknown spelling otherwise.
inline std::vector<Protocol> protocols_from_cli(
    int argc, char** argv, std::vector<Protocol> defaults) {
  std::string list;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--protocols=", 12) == 0) {
      list = a + 12;
    } else if (std::strncmp(a, "--protocol=", 11) == 0) {
      list = a + 11;
    } else if ((std::strcmp(a, "--protocols") == 0 ||
                std::strcmp(a, "--protocol") == 0) &&
               i + 1 < argc) {
      list = argv[++i];
    }
  }
  if (list.empty()) return defaults;

  std::vector<Protocol> chosen;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string tok =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      if (const auto p = workload::parse_protocol(tok)) {
        chosen.push_back(*p);
      } else {
        std::fprintf(stderr,
                     "unknown protocol '%s' (expected one of "
                     "dctcp,d2tcp,l2dct,pdq,pfabric,pase)\n",
                     tok.c_str());
        std::exit(1);
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (chosen.empty()) {
    std::fprintf(stderr, "--protocols needs at least one protocol\n");
    std::exit(1);
  }
  return chosen;
}

// Structured-trace request parsed from a bench's argv:
//   --trace=<path>              enable tracing, write the merged trace there
//   --trace-filter=<categories> comma list (flow,packet,arb,endpoint,queue,
//                               engine) or "all"; default all
// A path ending in ".chrome.json" selects the Chrome trace_event sink
// (openable in chrome://tracing); anything else gets schema-versioned JSONL.
struct TraceOptions {
  std::string path;  // empty = tracing off
  std::uint32_t categories = obs::kAllCategories;
  bool enabled() const { return !path.empty(); }
};

inline TraceOptions trace_from_cli(int argc, char** argv) {
  TraceOptions t;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      t.path = a + 8;
    } else if (std::strcmp(a, "--trace") == 0 && i + 1 < argc) {
      t.path = argv[++i];
    } else if (std::strncmp(a, "--trace-filter=", 15) == 0) {
      filter = a + 15;
    } else if (std::strcmp(a, "--trace-filter") == 0 && i + 1 < argc) {
      filter = argv[++i];
    }
  }
  if (!filter.empty()) t.categories = obs::parse_categories(filter);
  return t;
}

// Writes a result's merged trace in the format the path's suffix selects.
inline bool write_trace_file(const ScenarioResult& r, const std::string& path) {
  if (!r.trace) return false;
  static constexpr const char* kChromeSuffix = ".chrome.json";
  const std::size_t n = std::strlen(kChromeSuffix);
  const bool chrome =
      path.size() >= n && path.compare(path.size() - n, n, kChromeSuffix) == 0;
  return chrome ? r.trace->write_chrome_json(path) : r.trace->write_jsonl(path);
}

// Telemetry request parsed from a bench's argv:
//   --telemetry=<path>          enable the telemetry plane, write the
//                               "pase-telemetry" JSONL summary there
//   --telemetry-period=<sec>    sample grid period (default 1 ms)
// Like tracing, telemetry applies to the grid's first cell.
struct TelemetryOptions {
  std::string path;  // empty = telemetry off
  double period = 1e-3;
  bool enabled() const { return !path.empty(); }
};

inline TelemetryOptions telemetry_from_cli(int argc, char** argv) {
  TelemetryOptions t;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--telemetry=", 12) == 0) {
      t.path = a + 12;
    } else if (std::strcmp(a, "--telemetry") == 0 && i + 1 < argc) {
      t.path = argv[++i];
    } else if (std::strncmp(a, "--telemetry-period=", 19) == 0) {
      const double p = std::atof(a + 19);
      if (p > 0) t.period = p;
    }
  }
  return t;
}

// `--profile`: enable the engine self-profiler, folding profile.* entries
// (dispatch mix, calendar scan stats, path-cache hit rates) into every
// cell's metrics snapshot — and therefore into the sweep JSON.
inline bool profile_from_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) return true;
  }
  return false;
}

// Fabric override for any figure bench: `--topology=fattree [--k=N]`
// rebases every sweep cell onto a k-ary fat-tree (default k=16, 1024 hosts)
// so the paper's AFCT/CDF/deadline figures can be reproduced on a
// datacenter-scale Clos fabric instead of the small three-tier tree.
// Traffic pattern, load and flow counts carry over unchanged; the scenario
// layer re-derives per-host rates and host counts from the built topology,
// and structural route synthesis keeps setup time flat at any k.
inline void apply_topology_override(ScenarioConfig& cfg, int argc,
                                    char** argv) {
  bool fattree = false;
  int k = 16;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topology=fattree") == 0) {
      fattree = true;
    } else if (std::strncmp(argv[i], "--k=", 4) == 0) {
      k = std::atoi(argv[i] + 4);
    }
  }
  if (!fattree) return;
  cfg.topology = ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = k;
}

// Column headers matching a protocol list, for print_header.
inline std::vector<std::string> protocol_columns(
    const std::vector<Protocol>& protocols) {
  std::vector<std::string> cols;
  cols.reserve(protocols.size());
  for (Protocol p : protocols) cols.emplace_back(workload::protocol_name(p));
  return cols;
}

inline std::string case_label(Protocol p, double load) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s load=%.2f", workload::protocol_name(p),
                load);
  return buf;
}

// A figure's sweep grid: add() every cell in print order, run() once (fanning
// the cells out across worker threads and writing BENCH_<name>.json), then
// read the results back positionally.
class Sweep {
 public:
  explicit Sweep(std::string name) : name_(std::move(name)) {}

  // Returns the cell's index, in submission order.
  std::size_t add(std::string label, ScenarioConfig cfg) {
    cases_.push_back({std::move(label), std::move(cfg)});
    return cases_.size() - 1;
  }

  // Standard bench entry: honors --threads plus the tracing, telemetry and
  // profiling flags. Tracing and telemetry apply to the grid's first cell
  // (figures order cells per protocol, so pass --protocols=<one> to pick
  // which run is observed); --profile applies to every cell.
  const std::vector<ScenarioResult>& run(int argc, char** argv) {
    for (auto& c : cases_) apply_topology_override(c.config, argc, argv);
    const TraceOptions trace = trace_from_cli(argc, argv);
    if (trace.enabled() && !cases_.empty()) {
      cases_[0].config.trace.enabled = true;
      cases_[0].config.trace.categories = trace.categories;
    }
    const TelemetryOptions telemetry = telemetry_from_cli(argc, argv);
    if (telemetry.enabled() && !cases_.empty()) {
      cases_[0].config.telemetry.enabled = true;
      cases_[0].config.telemetry.sample_period = telemetry.period;
    }
    if (profile_from_cli(argc, argv)) {
      for (auto& c : cases_) c.config.profile = true;
    }
    run(parse_threads(argc, argv));
    if (trace.enabled() && !results_.empty()) {
      if (write_trace_file(results_[0], trace.path)) {
        std::fprintf(stderr, "trace for '%s' written to %s\n",
                     cases_[0].label.c_str(), trace.path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write trace to %s\n",
                     trace.path.c_str());
      }
    }
    if (telemetry.enabled() && !results_.empty()) {
      if (results_[0].telemetry &&
          results_[0].telemetry->write_jsonl(telemetry.path)) {
        std::fprintf(stderr, "telemetry for '%s' written to %s\n",
                     cases_[0].label.c_str(), telemetry.path.c_str());
      } else {
        std::fprintf(stderr, "warning: could not write telemetry to %s\n",
                     telemetry.path.c_str());
      }
    }
    return results_;
  }

  const std::vector<ScenarioResult>& run(unsigned threads = 0) {
    std::vector<ScenarioConfig> configs;
    configs.reserve(cases_.size());
    for (const auto& c : cases_) configs.push_back(c.config);
    results_ = exp::SweepRunner(threads).run(configs);
    const std::string path = "BENCH_" + name_ + ".json";
    if (!exp::write_sweep_json(path, name_, cases_, results_)) {
      std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
    }
    return results_;
  }

  const ScenarioResult& operator[](std::size_t i) const { return results_[i]; }

 private:
  std::string name_;
  std::vector<exp::SweepCase> cases_;
  std::vector<ScenarioResult> results_;
};

inline const std::vector<double>& standard_loads() {
  static const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9};
  return loads;
}

// §4.1 default: 3-tier tree, left-right traffic, U[2,198] KB, 2 background
// flows ("left-right inter-rack" scenario).
inline ScenarioConfig left_right(Protocol p, double load,
                                 int num_flows = 1000,
                                 std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
  cfg.traffic.pattern = Pattern::kLeftRight;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.seed = seed;
  return cfg;
}

// D2TCP's experiment 4.1.3 (paper §2/§4.2): 20-host rack, random pairs,
// U[100,500] KB, two background flows, optional U[5,25] ms deadlines.
inline ScenarioConfig intra_rack_20(Protocol p, double load,
                                    bool deadlines,
                                    int num_flows = 800,
                                    std::uint64_t seed = 13) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 20;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  if (deadlines) {
    cfg.traffic.deadline_min = 5e-3;
    cfg.traffic.deadline_max = 25e-3;
  }
  cfg.traffic.seed = seed;
  return cfg;
}

// §4.2.2 all-to-all scenario: 40-host rack, U[2,198] KB.
inline ScenarioConfig all_to_all_40(Protocol p, double load,
                                    int num_flows = 1000,
                                    std::uint64_t seed = 19) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 40;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.seed = seed;
  return cfg;
}

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("%s\n", title.c_str());
  std::printf("%-10s", "load(%)");
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
}

inline void print_row(double load, const std::vector<double>& values,
                      const char* fmt = "%16.3f") {
  std::printf("%-10.0f", load * 100);
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace pase::bench
