// Shared helpers for the figure-reproduction benches: the paper's standard
// scenarios (§4.1) and table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace pase::bench {

using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::ScenarioResult;

inline const std::vector<double>& standard_loads() {
  static const std::vector<double> loads{0.1, 0.2, 0.3, 0.4, 0.5,
                                         0.6, 0.7, 0.8, 0.9};
  return loads;
}

// §4.1 default: 3-tier tree, left-right traffic, U[2,198] KB, 2 background
// flows ("left-right inter-rack" scenario).
inline ScenarioConfig left_right(Protocol p, double load,
                                 int num_flows = 1000,
                                 std::uint64_t seed = 11) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
  cfg.traffic.pattern = Pattern::kLeftRight;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.seed = seed;
  return cfg;
}

// D2TCP's experiment 4.1.3 (paper §2/§4.2): 20-host rack, random pairs,
// U[100,500] KB, two background flows, optional U[5,25] ms deadlines.
inline ScenarioConfig intra_rack_20(Protocol p, double load,
                                    bool deadlines,
                                    int num_flows = 800,
                                    std::uint64_t seed = 13) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 20;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  if (deadlines) {
    cfg.traffic.deadline_min = 5e-3;
    cfg.traffic.deadline_max = 25e-3;
  }
  cfg.traffic.seed = seed;
  return cfg;
}

// §4.2.2 all-to-all scenario: 40-host rack, U[2,198] KB.
inline ScenarioConfig all_to_all_40(Protocol p, double load,
                                    int num_flows = 1000,
                                    std::uint64_t seed = 19) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 40;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.seed = seed;
  return cfg;
}

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("%s\n", title.c_str());
  std::printf("%-10s", "load(%)");
  for (const auto& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
}

inline void print_row(double load, const std::vector<double>& values,
                      const char* fmt = "%16.3f") {
  std::printf("%-10.0f", load * 100);
  for (double v : values) std::printf(fmt, v);
  std::printf("\n");
}

}  // namespace pase::bench
