// Figure 12(a): end-to-end arbitration vs endpoint-local arbitration.
//
// Left-right inter-rack scenario. Local mode arbitrates only the source's
// own access link and sends no arbitration messages at all. End-to-end
// arbitration protects short flows at the shared agg-core bottleneck.
//
// NOTE (reproduction deviation, see EXPERIMENTS.md): in our simulator the
// self-adjusting endpoints recover most of the bottleneck sharing in local
// mode, so the end-to-end win concentrates in small-flow FCT and drops
// rather than the paper's up-to-60% AFCT gap.
#include "bench_util.h"

namespace {
double small_flow_afct(const pase::bench::ScenarioResult& res) {
  double sum = 0;
  int n = 0;
  for (const auto& r : res.records) {
    if (r.background || !r.completed() || r.size_bytes > 50e3) continue;
    sum += r.fct();
    ++n;
  }
  return n ? sum / n : 0.0;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig12a");
  for (double load : standard_loads()) {
    auto local_cfg = left_right(Protocol::kPase, load);
    local_cfg.pase.local_only = true;
    sweep.add(case_label(Protocol::kPase, load) + " local", local_cfg);
    sweep.add(case_label(Protocol::kPase, load) + " e2e",
              left_right(Protocol::kPase, load));
  }
  sweep.run(argc, argv);

  std::printf("Figure 12(a): local vs end-to-end arbitration, left-right\n");
  std::printf("%-10s%14s%14s%14s%14s%14s%14s\n", "load(%)", "local-afct",
              "e2e-afct", "local-small", "e2e-small", "local-p99", "e2e-p99");
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& local = sweep[i++];
    const auto& e2e = sweep[i++];
    std::printf("%-10.0f%14.3f%14.3f%14.3f%14.3f%14.3f%14.3f\n", load * 100,
                local.afct() * 1e3, e2e.afct() * 1e3,
                small_flow_afct(local) * 1e3, small_flow_afct(e2e) * 1e3,
                local.fct_p99() * 1e3, e2e.fct_p99() * 1e3);
  }
  return 0;
}
