// Figure 1: limits of self-adjusting endpoints in isolation.
//
// Deadline-constrained intra-rack workload (20 hosts, U[100,500] KB flows,
// U[5,25] ms deadlines, 2 background flows). Application throughput =
// fraction of deadlines met, as a function of load, for D2TCP, DCTCP and
// pFabric. Expected shape: D2TCP tracks deadlines at low load but converges
// to DCTCP at high load; both fall far behind pFabric.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols = protocols_from_cli(
      argc, argv, {Protocol::kPfabric, Protocol::kD2tcp, Protocol::kDctcp});
  Sweep sweep("fig01");
  for (double load : standard_loads()) {
    for (auto p : protocols) {
      sweep.add(case_label(p, load),
                intra_rack_20(p, load, /*deadlines=*/true));
    }
  }
  sweep.run(argc, argv);

  print_header("Figure 1: application throughput (fraction of deadlines met)",
               protocol_columns(protocols));
  std::size_t i = 0;
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (std::size_t c = 0; c < protocols.size(); ++c) {
      row.push_back(sweep[i++].app_throughput());
    }
    print_row(load, row);
  }
  return 0;
}
