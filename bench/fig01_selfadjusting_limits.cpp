// Figure 1: limits of self-adjusting endpoints in isolation.
//
// Deadline-constrained intra-rack workload (20 hosts, U[100,500] KB flows,
// U[5,25] ms deadlines, 2 background flows). Application throughput =
// fraction of deadlines met, as a function of load, for D2TCP, DCTCP and
// pFabric. Expected shape: D2TCP tracks deadlines at low load but converges
// to DCTCP at high load; both fall far behind pFabric.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 1: application throughput (fraction of deadlines met)",
               {"pFabric", "D2TCP", "DCTCP"});
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (auto p : {Protocol::kPfabric, Protocol::kD2tcp, Protocol::kDctcp}) {
      row.push_back(
          run_scenario(intra_rack_20(p, load, /*deadlines=*/true))
              .app_throughput());
    }
    print_row(load, row);
  }
  return 0;
}
