// Figure 4: loss rate of pFabric under the worker->aggregator scenario.
//
// 40-host rack, flows U[2,198] KB, aggregators picked round-robin. The local
// per-hop drop decisions waste upstream transmissions, so the loss rate
// shoots up with load (the paper reports >40% beyond 80% load).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  std::vector<double> loads = standard_loads();
  loads.push_back(0.95);

  Sweep sweep("fig04");
  for (double load : loads) {
    ScenarioConfig cfg = all_to_all_40(Protocol::kPfabric, load, 1200, 17);
    cfg.traffic.pattern = Pattern::kWorkerAggregator;
    cfg.traffic.num_background_flows = 0;
    sweep.add(case_label(Protocol::kPfabric, load), cfg);
  }
  sweep.run(argc, argv);

  print_header("Figure 4: pFabric loss rate (%), worker->aggregator",
               {"loss", "AFCT(ms)"});
  std::size_t i = 0;
  for (double load : loads) {
    const auto& res = sweep[i++];
    print_row(load, {res.loss_rate() * 100, res.afct() * 1e3});
  }
  return 0;
}
