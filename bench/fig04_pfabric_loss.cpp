// Figure 4: loss rate of pFabric under the worker->aggregator scenario.
//
// 40-host rack, flows U[2,198] KB, aggregators picked round-robin. The local
// per-hop drop decisions waste upstream transmissions, so the loss rate
// shoots up with load (the paper reports >40% beyond 80% load).
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 4: pFabric loss rate (%), worker->aggregator",
               {"loss", "AFCT(ms)"});
  std::vector<double> loads = standard_loads();
  loads.push_back(0.95);
  for (double load : loads) {
    ScenarioConfig cfg = all_to_all_40(Protocol::kPfabric, load, 1200, 17);
    cfg.traffic.pattern = Pattern::kWorkerAggregator;
    cfg.traffic.num_background_flows = 0;
    auto res = run_scenario(cfg);
    print_row(load, {res.loss_rate() * 100, res.afct() * 1e3});
  }
  return 0;
}
