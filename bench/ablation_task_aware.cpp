// Ablation: task-aware arbitration (paper §3.1.1: "FlowSize can be replaced
// by ... task-id for task-aware scheduling [17]").
//
// Partition/aggregate queries (incast fan-in, 8 workers per query). A query
// finishes when its *last* response lands, so interleaving queries (SJF)
// hurts query completion time even when it helps per-flow FCT. Task-aware
// arbitration serializes whole tasks in arrival order (FIFO over tasks).
#include <algorithm>

#include "bench_util.h"

namespace {
std::vector<double> query_fcts(const pase::bench::ScenarioResult& res,
                               int fanout) {
  std::vector<double> out;
  double worst = 0;
  int in_query = 0;
  for (const auto& r : res.records) {
    if (r.background) continue;
    worst = std::max(worst, r.completed() ? r.fct() : 1.0);
    if (++in_query == fanout) {
      out.push_back(worst);
      worst = 0;
      in_query = 0;
    }
  }
  return out;
}
}  // namespace

int main() {
  using namespace pase::bench;
  const int fanout = 8;
  std::printf("Task-aware vs size-based arbitration, incast queries\n");
  std::printf("%-10s%18s%18s%18s%18s\n", "load(%)", "SJF-query-avg",
              "task-query-avg", "SJF-query-p99", "task-query-p99");
  for (double load : {0.3, 0.5, 0.7, 0.9}) {
    auto make = [&](pase::core::Criterion crit) {
      ScenarioConfig cfg = all_to_all_40(Protocol::kPase, load, 1600, 31);
      cfg.traffic.pattern = Pattern::kIncast;
      cfg.traffic.incast_fanout = fanout;
      cfg.traffic.assign_task_ids = true;
      cfg.traffic.num_background_flows = 0;
      cfg.pase.criterion = crit;
      return run_scenario(cfg);
    };
    auto sjf = make(pase::core::Criterion::kShortestFlowFirst);
    auto task = make(pase::core::Criterion::kTaskAware);
    auto qs = query_fcts(sjf, fanout);
    auto qt = query_fcts(task, fanout);
    std::printf("%-10.0f%18.3f%18.3f%18.3f%18.3f\n", load * 100,
                pase::stats::mean(qs) * 1e3, pase::stats::mean(qt) * 1e3,
                pase::stats::percentile(qs, 99) * 1e3,
                pase::stats::percentile(qt, 99) * 1e3);
  }
  return 0;
}
