// End-to-end hot-path throughput: simulated data packets per wall-clock
// second, per protocol, on the single-rack and three-tier topologies with
// the web-search flow-size distribution.
//
// This is the repo's perf trajectory for the steady-state packet path
// (event dispatch, link hop, queue discipline, host demux): the workload is
// deterministic per config, so packets/sec moves only when the engine does.
// Results are written to BENCH_hotpath.json together with the recorded
// pre-change baseline (captured on the reference dev machine with
// tools/record_hotpath_goldens-era sources), so every run reports its
// speedup against the same yardstick. Wall-clock numbers are machine
// dependent; the speedup column is only meaningful on comparable hardware,
// the packets/sec trend on the same machine is the series to track (see
// EXPERIMENTS.md).
//
// Flags:
//   --quick          smaller grids, one repetition (CI smoke)
//   --reps=N         timing repetitions per case (default 3; best-of-N)
//   --protocols=a,b  protocol subset (default: all six)
//   --workers=N      run every case with N parallel domains (labels gain a
//                    "-wN" suffix; baselines resolve to the sequential entry)
//   --trace=<path>   after the timing loop, rerun the first case once with
//                    tracing enabled and write the merged trace (JSONL, or
//                    Chrome trace_event when the path ends ".chrome.json");
//                    the timed measurements themselves always run untraced
//   --trace-filter=<categories>  comma list: flow,packet,arb,endpoint,queue,
//                    engine (default all)
//
// Full mode additionally records a workers ∈ {1,2,4,8} scaling series for
// the large three-tier web-search scenario (the "dctcp/three-tier" case is
// the 1-worker reference; "-w2/-w4/-w8" rows rerun it with that many
// domains). Speedups are against the same sequential baseline, so the series
// reads directly as parallel scaling — on a single-core machine expect <= 1x.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace pase;
using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::SizeDistribution;

struct Case {
  std::string label;      // "<protocol>/<topology>", stable JSON key
  std::string topology;   // "single-rack" | "three-tier"
  std::string workload;   // human-readable description
  ScenarioConfig config;
};

// Baseline packets/sec recorded on the pre-change tree (commit d98677b,
// std::function event dispatch, unordered_map host demux), best of 3, same
// configs as below. Quick-mode cases are keyed with a "-quick" suffix.
struct Baseline {
  const char* label;
  double packets_per_sec;
};
constexpr Baseline kBaseline[] = {
    {"dctcp/single-rack", 716404},   {"dctcp/three-tier", 325327},
    {"d2tcp/single-rack", 716696},   {"d2tcp/three-tier", 321023},
    {"l2dct/single-rack", 781483},   {"l2dct/three-tier", 266765},
    {"pdq/single-rack", 623241},     {"pdq/three-tier", 276070},
    {"pfabric/single-rack", 558266}, {"pfabric/three-tier", 341057},
    {"pase/single-rack", 558229},    {"pase/three-tier", 238904},
    {"dctcp/single-rack-quick", 817474},   {"dctcp/three-tier-quick", 372930},
    {"d2tcp/single-rack-quick", 913986},   {"d2tcp/three-tier-quick", 359656},
    {"l2dct/single-rack-quick", 917203},   {"l2dct/three-tier-quick", 358933},
    {"pdq/single-rack-quick", 804611},     {"pdq/three-tier-quick", 338028},
    {"pfabric/single-rack-quick", 667197}, {"pfabric/three-tier-quick", 330930},
    {"pase/single-rack-quick", 738537},    {"pase/three-tier-quick", 332213},
};

double baseline_for(const std::string& label) {
  // Parallel rows ("...-wN") share the sequential entry: the PR 3 baselines
  // are the 1-worker reference for the whole workers series.
  std::string key = label;
  const std::size_t w = key.rfind("-w");
  if (w != std::string::npos &&
      key.find_first_not_of("0123456789", w + 2) == std::string::npos) {
    key.erase(w);
  }
  for (const auto& b : kBaseline) {
    if (key == b.label) return b.packets_per_sec;
  }
  return 0.0;
}

std::string lower_name(Protocol p) {
  std::string s = workload::protocol_name(p);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::vector<Case> build_cases(const std::vector<Protocol>& protocols,
                              bool quick, int workers) {
  const std::string wsuffix =
      workers > 1 ? "-w" + std::to_string(workers) : "";
  std::vector<Case> cases;
  for (Protocol p : protocols) {
    {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
      cfg.rack.num_hosts = quick ? 20 : 40;
      cfg.traffic.pattern = Pattern::kIntraRackRandom;
      cfg.traffic.size_dist = SizeDistribution::kWebSearch;
      cfg.traffic.load = 0.7;
      cfg.traffic.num_flows = quick ? 200 : 1200;
      cfg.traffic.seed = 42;
      cfg.workers = workers;
      char desc[96];
      std::snprintf(desc, sizeof(desc),
                    "web-search all-to-all load=0.70 hosts=%d flows=%d",
                    cfg.rack.num_hosts, cfg.traffic.num_flows);
      cases.push_back({lower_name(p) + "/single-rack" +
                           (quick ? "-quick" : "") + wsuffix,
                       "single-rack", desc, cfg});
    }
    {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
      if (quick) cfg.tree.hosts_per_tor = 10;
      cfg.traffic.pattern = Pattern::kLeftRight;
      cfg.traffic.size_dist = SizeDistribution::kWebSearch;
      cfg.traffic.load = 0.6;
      cfg.traffic.num_flows = quick ? 150 : 800;
      cfg.traffic.seed = 42;
      cfg.workers = workers;
      char desc[96];
      std::snprintf(desc, sizeof(desc),
                    "web-search left-right load=0.60 hosts=%d flows=%d",
                    cfg.tree.num_tors * cfg.tree.hosts_per_tor,
                    cfg.traffic.num_flows);
      cases.push_back({lower_name(p) + "/three-tier" +
                           (quick ? "-quick" : "") + wsuffix,
                       "three-tier", desc, cfg});
    }
  }
  // Parallel scaling series: the large three-tier web-search scenario rerun
  // at 2/4/8 domains (the plain dctcp/three-tier row above is the 1-worker
  // point). Only in full sequential mode — an explicit --workers=N already
  // makes every row a parallel measurement.
  if (!quick && workers == 1) {
    for (const Case& c : cases) {
      if (c.label != "dctcp/three-tier") continue;
      for (const int w : {2, 4, 8}) {
        Case series = c;
        series.config.workers = w;
        series.label += "-w" + std::to_string(w);
        cases.push_back(std::move(series));
      }
      break;
    }
  }
  return cases;
}

struct Measurement {
  std::uint64_t sim_packets = 0;
  double wall_sec_best = 0.0;
  double packets_per_sec = 0.0;
  int workers_used = 1;
};

Measurement measure(const ScenarioConfig& cfg, int reps) {
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = workload::run_scenario(cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    m.sim_packets = result.data_packets_sent;
    m.workers_used = result.workers_used;
    if (r == 0 || wall < m.wall_sec_best) m.wall_sec_best = wall;
  }
  if (m.wall_sec_best > 0.0) {
    m.packets_per_sec =
        static_cast<double>(m.sim_packets) / m.wall_sec_best;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int reps = 3;
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--reps=", 7) == 0) {
      reps = std::atoi(argv[i] + 7);
      if (reps < 1) reps = 1;
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
      if (workers < 1) workers = 1;
    }
  }
  if (quick) reps = 1;

  const std::vector<Protocol> protocols = bench::protocols_from_cli(
      argc, argv,
      {Protocol::kDctcp, Protocol::kD2tcp, Protocol::kL2dct, Protocol::kPdq,
       Protocol::kPfabric, Protocol::kPase});
  const std::vector<Case> cases = build_cases(protocols, quick, workers);

  std::printf("hot-path throughput (%s, best of %d)\n",
              quick ? "quick" : "full", reps);
  std::printf("%-26s %12s %10s %14s %10s\n", "case", "sim pkts", "wall(s)",
              "pkts/sec", "speedup");

  std::string json = "{\n  \"bench\": \"hotpath\",\n  \"mode\": \"";
  json += quick ? "quick" : "full";
  json += "\",\n  \"reps\": " + std::to_string(reps) + ",\n  \"cases\": [\n";

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& c = cases[i];
    const Measurement m = measure(c.config, reps);
    const double base = baseline_for(c.label);
    const double speedup = base > 0.0 ? m.packets_per_sec / base : 0.0;

    std::printf("%-26s %12llu %10.3f %14.0f %9.2fx\n", c.label.c_str(),
                static_cast<unsigned long long>(m.sim_packets),
                m.wall_sec_best, m.packets_per_sec, speedup);
    std::fflush(stdout);

    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"label\": \"%s\", \"protocol\": \"%s\", \"topology\": \"%s\",\n"
        "     \"workload\": \"%s\",\n"
        "     \"workers\": %d, \"workers_used\": %d,\n"
        "     \"sim_packets\": %llu, \"wall_sec_best\": %.6f,\n"
        "     \"packets_per_sec\": %.1f, \"baseline_packets_per_sec\": %.1f,\n"
        "     \"speedup_vs_baseline\": %.4f}%s\n",
        c.label.c_str(),
        workload::protocol_name(c.config.protocol), c.topology.c_str(),
        c.workload.c_str(), c.config.workers, m.workers_used,
        static_cast<unsigned long long>(m.sim_packets),
        m.wall_sec_best, m.packets_per_sec, base, speedup,
        i + 1 < cases.size() ? "," : "");
    json += row;
  }
  json += "  ]\n}\n";

  const bench::TraceOptions trace = bench::trace_from_cli(argc, argv);
  if (trace.enabled() && !cases.empty()) {
    ScenarioConfig cfg = cases[0].config;
    cfg.trace.enabled = true;
    cfg.trace.categories = trace.categories;
    const auto traced = workload::run_scenario(cfg);
    if (bench::write_trace_file(traced, trace.path)) {
      std::printf("trace for '%s' written to %s\n", cases[0].label.c_str(),
                  trace.path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   trace.path.c_str());
    }
  }

  std::FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write BENCH_hotpath.json\n");
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote BENCH_hotpath.json\n");
  return 0;
}
