// Figure 11: effect of the arbitration optimizations (early pruning +
// delegation) on AFCT (a) and on control-plane message overhead (b).
//
// Left-right inter-rack scenario. Expected: tens of percent fewer messages,
// AFCT no worse (the paper reports 4-10% better).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig11");
  for (double load : standard_loads()) {
    auto basic_cfg = left_right(Protocol::kPase, load);
    basic_cfg.pase.early_pruning = false;
    basic_cfg.pase.delegation = false;
    sweep.add(case_label(Protocol::kPase, load) + " basic", basic_cfg);
    sweep.add(case_label(Protocol::kPase, load) + " optimized",
              left_right(Protocol::kPase, load));
  }
  sweep.run(argc, argv);

  std::printf(
      "Figure 11: early pruning + delegation, left-right inter-rack\n");
  std::printf("%-10s%14s%14s%14s%14s%16s%16s\n", "load(%)", "basic-afct",
              "opt-afct", "basic-msgs", "opt-msgs", "afct-impr(%)",
              "ovhd-red(%)");
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& basic = sweep[i++];
    const auto& opt = sweep[i++];
    const double afct_improvement =
        100.0 * (basic.afct() - opt.afct()) / basic.afct();
    const double overhead_reduction =
        100.0 *
        (static_cast<double>(basic.control.messages_sent) -
         static_cast<double>(opt.control.messages_sent)) /
        static_cast<double>(basic.control.messages_sent);
    std::printf("%-10.0f%14.3f%14.3f%14llu%14llu%16.1f%16.1f\n", load * 100,
                basic.afct() * 1e3, opt.afct() * 1e3,
                static_cast<unsigned long long>(basic.control.messages_sent),
                static_cast<unsigned long long>(opt.control.messages_sent),
                afct_improvement, overhead_reduction);
  }
  return 0;
}
