// google-benchmark micro-benchmarks for the simulation substrate: event
// queue throughput, queue disciplines, Algorithm 1, and whole-scenario
// simulation rate.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "core/arbitration_algorithm.h"
#include "exp/sweep.h"
#include "net/droptail_queue.h"
#include "net/flow_demux.h"
#include "net/host.h"
#include "net/pfabric_queue.h"
#include "net/priority_queue_bank.h"
#include "net/red_ecn_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "workload/scenario.h"

namespace {

using namespace pase;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    sim::Rng rng(1);
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      s.schedule(rng.uniform(0, 1.0), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_TimerRestartChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    sim::Timer t(s, [] {});
    for (int i = 0; i < 1000; ++i) t.restart(1e-3);
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TimerRestartChurn);

// Schedule/cancel churn: every scheduled event is cancelled via its
// generation-stamped handle before it can fire (the retransmission-timer
// pattern that dominates real transport runs).
void BM_EventCancelChurn(benchmark::State& state) {
  const int n = 1000;
  for (auto _ : state) {
    sim::Simulator s;
    sim::Rng rng(8);
    for (int i = 0; i < n; ++i) {
      sim::EventId id = s.schedule(rng.uniform(1e-3, 1.0), [] {});
      benchmark::DoNotOptimize(s.cancel(id));
    }
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventCancelChurn);

void BM_PacketPoolAcquire(benchmark::State& state) {
  for (auto _ : state) {
    auto p = net::make_data_packet(1, 0, 1, 0);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketPoolAcquire);

void BM_PacketMakeUnique(benchmark::State& state) {
  // Baseline: heap-allocate a fresh Packet each time, bypassing the pool.
  for (auto _ : state) {
    auto p = std::make_unique<net::Packet>();
    p->flow = 1;
    p->seq = 0;
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketMakeUnique);

template <typename Q>
void queue_churn(Q& q, int n, sim::Rng& rng) {
  struct Shim : net::Queue {
    using net::Queue::do_dequeue;
    using net::Queue::do_enqueue;
  };
  for (int i = 0; i < n; ++i) {
    auto p = net::make_data_packet(
        static_cast<net::FlowId>(rng.uniform_int(1, 64)), 0, 1,
        static_cast<std::uint32_t>(i));
    p->remaining_size = rng.uniform(1e3, 1e6);
    p->priority = static_cast<int>(rng.uniform_int(0, 7));
    (q.*(&Shim::do_enqueue))(std::move(p));
    if (i % 2 == 1) {
      auto out = (q.*(&Shim::do_dequeue))();
      benchmark::DoNotOptimize(out);
    }
  }
  while (!q.empty()) {
    auto out = (q.*(&Shim::do_dequeue))();
    benchmark::DoNotOptimize(out);
  }
}

void BM_RedEcnQueue(benchmark::State& state) {
  sim::Rng rng(2);
  for (auto _ : state) {
    net::RedEcnQueue q(225, 65);
    queue_churn(q, 1000, rng);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RedEcnQueue);

void BM_PriorityQueueBank(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) {
    net::PriorityQueueBank q(8, 500, 65);
    queue_churn(q, 1000, rng);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PriorityQueueBank);

void BM_PfabricQueue(benchmark::State& state) {
  sim::Rng rng(4);
  for (auto _ : state) {
    net::PfabricQueue q(76);
    queue_churn(q, 1000, rng);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PfabricQueue);

void BM_Algorithm1Arbitration(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  core::FlowTable table(10e9, 7, 40e6, 1.0);
  sim::Rng rng(5);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto id = static_cast<net::FlowId>(i++ % flows + 1);
    auto r = table.update_and_arbitrate(id, rng.uniform(2e3, 198e3), 1e9,
                                        0.0);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Algorithm1Arbitration)->Arg(16)->Arg(128)->Arg(1024);

void BM_FullScenarioPase(benchmark::State& state) {
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.protocol = workload::Protocol::kPase;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 10;
    cfg.traffic.load = 0.7;
    cfg.traffic.num_flows = 100;
    cfg.traffic.seed = 6;
    auto res = workload::run_scenario(cfg);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_FullScenarioPase)->Unit(benchmark::kMillisecond);

void BM_FullScenarioPfabric(benchmark::State& state) {
  for (auto _ : state) {
    workload::ScenarioConfig cfg;
    cfg.protocol = workload::Protocol::kPfabric;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 10;
    cfg.traffic.load = 0.7;
    cfg.traffic.num_flows = 100;
    cfg.traffic.seed = 6;
    auto res = workload::run_scenario(cfg);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_FullScenarioPfabric)->Unit(benchmark::kMillisecond);

// Parallel sweep scaling: 8 independent scenarios fanned across N worker
// threads. UseRealTime because the work happens off the timing thread;
// expect near-linear wall-clock scaling up to the core count.
void BM_SweepRunner(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::vector<workload::ScenarioConfig> configs;
  for (int i = 0; i < 8; ++i) {
    workload::ScenarioConfig cfg;
    cfg.protocol = workload::Protocol::kPase;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 10;
    cfg.traffic.load = 0.5 + 0.05 * i;
    cfg.traffic.num_flows = 100;
    cfg.traffic.seed = static_cast<unsigned>(6 + i);
    configs.push_back(cfg);
  }
  const exp::SweepRunner runner(threads);
  for (auto _ : state) {
    auto results = runner.run(configs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(configs.size()));
}
BENCHMARK(BM_SweepRunner)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Typed-event dispatch: raw fn-ptr events vs heap-spilled closures ---

void raw_count(void* ctx, void*) { ++*static_cast<int*>(ctx); }

// The post-refactor hot path: a raw function pointer plus context, written
// straight into the 64-byte event slot. No capture, no indirection beyond
// the call itself.
void BM_TypedEventDispatch(benchmark::State& state) {
  const int n = 1000;
  for (auto _ : state) {
    sim::Simulator s;
    sim::Rng rng(7);
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      s.schedule_raw(rng.uniform(0, 1.0), &raw_count, &fired);
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TypedEventDispatch);

// The pre-refactor cost model: every event carries a capture too big for the
// 24-byte inline payload, so each schedule allocates a heap closure — the
// same allocate/indirect/free cycle a std::function with a spilled capture
// paid on every event.
void BM_StdFunctionEventDispatch(benchmark::State& state) {
  const int n = 1000;
  for (auto _ : state) {
    sim::Simulator s;
    sim::Rng rng(7);
    int fired = 0;
    int* pf = &fired;
    const std::uint64_t pad1 = 1, pad2 = 2, pad3 = 3;  // 32-byte capture
    for (int i = 0; i < n; ++i) {
      s.schedule(rng.uniform(0, 1.0), [pf, pad1, pad2, pad3] {
        *pf += static_cast<int>(pad1 + pad2 + pad3 != 0);
      });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdFunctionEventDispatch);

// --- Host receive demux: dense FlowDemux vs the map it replaced ---

struct NullSink : net::PacketSink {
  void deliver(net::PacketPtr) override {}
};

void BM_HostDemuxFlat(benchmark::State& state) {
  const net::FlowId n = static_cast<net::FlowId>(state.range(0));
  net::FlowDemux demux;
  NullSink sink;
  for (net::FlowId f = 1; f <= n; ++f) demux.insert(f, &sink);
  net::FlowId f = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(demux.find(f));
    if (++f > n) f = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostDemuxFlat)->Arg(16)->Arg(1024);

void BM_HostDemuxUnorderedMap(benchmark::State& state) {
  const net::FlowId n = static_cast<net::FlowId>(state.range(0));
  std::unordered_map<net::FlowId, net::PacketSink*> demux;
  NullSink sink;
  for (net::FlowId f = 1; f <= n; ++f) demux.emplace(f, &sink);
  net::FlowId f = 1;
  for (auto _ : state) {
    auto it = demux.find(f);
    benchmark::DoNotOptimize(it);
    if (++f > n) f = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HostDemuxUnorderedMap)->Arg(16)->Arg(1024);

// --- Switch forwarding lookup: dense window vs grouped hash vs path memo ---

// Builds a switch with four ports and routes for `dsts` destinations
// installed by `route`. Lookup cost is what the per-hop path pays in
// Switch::receive.
struct PortForFixture {
  struct CountingNodeFwd : net::Node {
    explicit CountingNodeFwd(net::NodeId id) : net::Node(id, "nbr") {}
    void receive(net::PacketPtr) override {}
  };

  sim::Simulator sim;
  net::Switch sw{0, "bench-sw"};
  std::vector<std::unique_ptr<CountingNodeFwd>> neighbors;

  explicit PortForFixture(int ports) {
    for (int i = 0; i < ports; ++i) {
      auto nbr = std::make_unique<CountingNodeFwd>(
          static_cast<net::NodeId>(100 + i));
      sw.add_port(std::make_unique<net::DropTailQueue>(16),
                  std::make_unique<net::Link>(sim, 10e9, 1e-6),
                  nbr.get());
      neighbors.push_back(std::move(nbr));
    }
  }
};

// Single-path destinations: one dense-window load.
void BM_PortForDense(benchmark::State& state) {
  PortForFixture f(4);
  constexpr net::NodeId kDsts = 64;
  for (net::NodeId d = 1; d <= kDsts; ++d) {
    f.sw.set_route(d, static_cast<int>(d) % 4);
  }
  auto p = net::make_data_packet(7, 200, 1, 0);
  net::NodeId d = 1;
  for (auto _ : state) {
    p->dst = d;
    benchmark::DoNotOptimize(f.sw.port_for(*p));
    if (++d > kDsts) d = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PortForDense);

// Grouped destinations with the per-flow memo disabled: every lookup pays
// the full flow_path_hash (byte-serial FNV + finisher).
void BM_PortForGroupedHash(benchmark::State& state) {
  PortForFixture f(4);
  constexpr net::NodeId kDsts = 64;
  for (net::NodeId d = 1; d <= kDsts; ++d) {
    f.sw.set_route_group(d, {0, 1, 2, 3});
  }
  f.sw.set_path_cache_capacity(0);
  auto p = net::make_data_packet(7, 200, 1, 0);
  net::NodeId d = 1;
  for (auto _ : state) {
    p->dst = d;
    p->flow = static_cast<net::FlowId>(d * 31 + 1);
    benchmark::DoNotOptimize(f.sw.port_for(*p));
    if (++d > kDsts) d = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PortForGroupedHash);

// Grouped destinations with the memo on: steady state is a slot probe and
// compare; the hash runs only on the first packet of each flow direction.
void BM_PortForGroupedCached(benchmark::State& state) {
  PortForFixture f(4);
  constexpr net::NodeId kDsts = 64;
  for (net::NodeId d = 1; d <= kDsts; ++d) {
    f.sw.set_route_group(d, {0, 1, 2, 3});
  }
  f.sw.set_path_cache_capacity(1024);
  auto p = net::make_data_packet(7, 200, 1, 0);
  net::NodeId d = 1;
  for (auto _ : state) {
    p->dst = d;
    p->flow = static_cast<net::FlowId>(d * 31 + 1);
    benchmark::DoNotOptimize(f.sw.port_for(*p));
    if (++d > kDsts) d = 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PortForGroupedCached);

// --- Full link hop: enqueue -> dequeue -> serialize -> deliver ---

struct CountingNode : net::Node {
  CountingNode() : net::Node(1, "sink") {}
  std::uint64_t received = 0;
  void receive(net::PacketPtr) override { ++received; }
};

// One item = one packet hop = two raw events (tx-done, then delivery) plus
// the queue discipline's enqueue/dequeue. Reported time is ns per hop.
void BM_LinkHop(benchmark::State& state) {
  const int n = 1000;
  for (auto _ : state) {
    sim::Simulator s;
    net::DropTailQueue q(n + 8);
    net::Link link(s, 10e9, 1e-6, "bench");
    CountingNode dst;
    link.connect(&q, &dst);
    for (int i = 0; i < n; ++i) {
      q.enqueue(net::make_data_packet(1, 0, 1, static_cast<std::uint32_t>(i)));
    }
    s.run();
    benchmark::DoNotOptimize(dst.received);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinkHop);

}  // namespace

BENCHMARK_MAIN();
