// Figure 10(a): 99th-percentile FCT, PASE vs pFabric, left-right inter-rack.
//
// Expected: comparable at low/mid load; PASE wins at >= 60% load (pFabric's
// persistent high loss inflates its tail), by >85% at 90% load.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 10(a): 99th percentile FCT (ms), left-right",
               {"PASE", "pFabric", "PASE-afct", "pFab-afct"});
  for (double load : standard_loads()) {
    auto res_pase = run_scenario(left_right(Protocol::kPase, load));
    auto res_pfab = run_scenario(left_right(Protocol::kPfabric, load));
    print_row(load, {res_pase.fct_p99() * 1e3, res_pfab.fct_p99() * 1e3,
                     res_pase.afct() * 1e3, res_pfab.afct() * 1e3});
  }
  return 0;
}
