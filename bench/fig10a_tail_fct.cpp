// Figure 10(a): 99th-percentile FCT, PASE vs pFabric, left-right inter-rack.
//
// Expected: comparable at low/mid load; PASE wins at >= 60% load (pFabric's
// persistent high loss inflates its tail), by >85% at 90% load.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  Sweep sweep("fig10a");
  for (double load : standard_loads()) {
    sweep.add(case_label(Protocol::kPase, load),
              left_right(Protocol::kPase, load));
    sweep.add(case_label(Protocol::kPfabric, load),
              left_right(Protocol::kPfabric, load));
  }
  sweep.run(argc, argv);

  print_header("Figure 10(a): 99th percentile FCT (ms), left-right",
               {"PASE", "pFabric", "PASE-afct", "pFab-afct"});
  std::size_t i = 0;
  for (double load : standard_loads()) {
    const auto& res_pase = sweep[i++];
    const auto& res_pfab = sweep[i++];
    print_row(load, {res_pase.fct_p99() * 1e3, res_pfab.fct_p99() * 1e3,
                     res_pase.afct() * 1e3, res_pfab.afct() * 1e3});
  }
  return 0;
}
