// Table 3: the default simulation parameters every experiment runs with.
// Printed here so bench outputs are self-describing.
#include <cstdio>

#include "core/pase_config.h"
#include "proto/defaults.h"

int main() {
  using pase::proto::Table3;
  pase::core::PaseConfig pase_cfg;
  std::printf("Table 3: default parameter settings\n");
  std::printf("%-10s %-28s %s\n", "Scheme", "Parameter", "Value");
  std::printf("%-10s %-28s %zu pkts\n", "DCTCP", "qSize", Table3::kDctcpQueuePkts);
  std::printf("%-10s %-28s %zu (1G) / %zu (10G)\n", "D2TCP", "markingThresh",
              Table3::kMarkThreshold1G, Table3::kMarkThreshold10G);
  std::printf("%-10s %-28s %.0f ms\n", "L2DCT", "minRTO", Table3::kDctcpMinRto * 1e3);
  std::printf("%-10s %-28s %zu pkts (= 2xBDP)\n", "pFabric", "qSize", Table3::kPfabricQueuePkts);
  std::printf("%-10s %-28s %.0f pkts (= BDP)\n", "pFabric", "initCwnd", Table3::kPfabricInitCwnd);
  std::printf("%-10s %-28s %.0f ms (~3.3xRTT)\n", "pFabric", "minRTO", Table3::kPfabricMinRto * 1e3);
  std::printf("%-10s %-28s %zu pkts\n", "PASE", "qSize", Table3::kPaseQueuePkts);
  std::printf("%-10s %-28s %.0f ms\n", "PASE", "minRTO (top queue)", pase_cfg.min_rto_top * 1e3);
  std::printf("%-10s %-28s %.0f ms\n", "PASE", "minRTO (other queues)", pase_cfg.min_rto_low * 1e3);
  std::printf("%-10s %-28s %d\n", "PASE", "numQue", pase_cfg.num_queues);
  std::printf("%-10s %-28s %d (reserved for background)\n", "PASE",
              "background queue", pase_cfg.background_queue());
  return 0;
}
