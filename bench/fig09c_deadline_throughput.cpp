// Figure 9(c): deadline-constrained flows, PASE vs D2TCP vs DCTCP.
//
// Intra-rack 20-host scenario with U[100,500] KB flows and U[5,25] ms
// deadlines. Expected: PASE meets significantly more deadlines, especially
// at high load, because near-deadline flows are strictly prioritized.
#include "bench_util.h"

int main() {
  using namespace pase::bench;
  print_header("Figure 9(c): application throughput (deadlines met)",
               {"PASE", "D2TCP", "DCTCP"});
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (auto p : {Protocol::kPase, Protocol::kD2tcp, Protocol::kDctcp}) {
      row.push_back(
          run_scenario(intra_rack_20(p, load, true)).app_throughput());
    }
    print_row(load, row);
  }
  return 0;
}
