// Figure 9(c): deadline-constrained flows, PASE vs D2TCP vs DCTCP.
//
// Intra-rack 20-host scenario with U[100,500] KB flows and U[5,25] ms
// deadlines. Expected: PASE meets significantly more deadlines, especially
// at high load, because near-deadline flows are strictly prioritized.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace pase::bench;
  const auto protocols = protocols_from_cli(
      argc, argv, {Protocol::kPase, Protocol::kD2tcp, Protocol::kDctcp});
  Sweep sweep("fig09c");
  for (double load : standard_loads()) {
    for (auto p : protocols) {
      sweep.add(case_label(p, load), intra_rack_20(p, load, true));
    }
  }
  sweep.run(argc, argv);

  print_header("Figure 9(c): application throughput (deadlines met)",
               protocol_columns(protocols));
  std::size_t i = 0;
  for (double load : standard_loads()) {
    std::vector<double> row;
    for (std::size_t c = 0; c < protocols.size(); ++c) {
      row.push_back(sweep[i++].app_throughput());
    }
    print_row(load, row);
  }
  return 0;
}
