// Parallel-engine scaling bench: wall-clock, synchronization rounds, mailbox
// traffic and barrier-wait fractions as the domain count grows, per protocol
// and per fabric.
//
// Grid: workers {1, 2, 4, 8} x {three-tier web-search, k=8 fat-tree} x
// {pase, pfabric, dctcp}. Every parallel run uses the conditional-lookahead
// horizon (the default); the workers=4 rows are additionally re-run with the
// static min-cut horizon so the round-count saving is visible per case. The
// round counts are deterministic — they depend only on the event timeline
// and the horizon mode — so the "rounds drop" claim holds even on a 1-core
// container where wall-clock speedup cannot.
//
// A separate "lookahead" section isolates the conditional horizon's best
// case: pod-local traffic on a k=8 fat-tree (16 hosts per pod, one pod per
// domain at workers=4). No flow crosses a pod boundary, so every event sits
// at least an edge-agg-core store-and-forward distance from the nearest cut
// link, and the probe certifies windows that span whole ACK exchanges. CI
// gates conditional_rounds < static_rounds here, and rounds <= static rounds
// on every grid row that records both.
//
// Results land in BENCH_parallel.json.
//
// Flags:
//   --quick    workers {1, 2, 4}, smaller workloads (CI smoke)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "net/packet.h"
#include "workload/scenario.h"

namespace {

using namespace pase;
using workload::Pattern;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::SizeDistribution;

struct CaseOut {
  std::string protocol;
  std::string topology;
  int workers = 1;
  int workers_used = 1;
  std::string fallback_reason;
  std::uint64_t flows = 0;
  std::uint64_t sim_packets = 0;
  double wall_sec = 0.0;
  double packets_per_sec = 0.0;
  double afct_s = 0.0;
  double end_time_s = 0.0;
  // Engine round statistics (zero for sequential rows).
  std::uint64_t rounds = 0;
  std::uint64_t drains = 0;
  std::uint64_t quiet_rounds = 0;
  std::uint64_t cross_posts = 0;
  double horizon_width_mean_s = 0.0;
  double barrier_wait_sec = 0.0;
  double barrier_wait_frac = 0.0;
  // Static min-cut re-run of the same case (workers == 4 rows only).
  bool has_static = false;
  std::uint64_t static_rounds = 0;
  double static_horizon_width_mean_s = 0.0;
  double static_wall_sec = 0.0;
};

double metric(const workload::ScenarioResult& r, const char* name) {
  for (const auto& m : r.metrics) {
    if (m.name == name) return m.value;
  }
  return 0.0;
}

const char* lower_name(Protocol p) {
  switch (p) {
    case Protocol::kPase: return "pase";
    case Protocol::kPfabric: return "pfabric";
    default: return "dctcp";
  }
}

ScenarioConfig three_tier_config(bool quick) {
  ScenarioConfig cfg;
  cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
  cfg.tree.num_tors = quick ? 4 : 8;
  cfg.tree.hosts_per_tor = quick ? 4 : 8;
  cfg.traffic.pattern = Pattern::kLeftRight;
  cfg.traffic.size_dist = SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = quick ? 200 : 800;
  cfg.traffic.seed = 11;
  return cfg;
}

ScenarioConfig fattree_config(bool quick) {
  ScenarioConfig cfg;
  cfg.topology = ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 8;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;  // any-to-any over hosts
  cfg.traffic.size_dist = SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.3;
  cfg.traffic.num_background_flows = 0;
  cfg.traffic.num_flows = quick ? 300 : 1500;
  cfg.traffic.seed = 17;
  return cfg;
}

struct RunOut {
  workload::ScenarioResult result;
  double wall_sec = 0.0;
};

RunOut timed_run(ScenarioConfig cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  RunOut out;
  out.result = workload::run_scenario(cfg);
  out.wall_sec = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  return out;
}

CaseOut run_case(ScenarioConfig cfg, const char* topology, Protocol proto,
                 int workers, bool with_static) {
  cfg.protocol = proto;
  cfg.workers = workers;
  const RunOut run = timed_run(cfg);
  const workload::ScenarioResult& r = run.result;

  CaseOut c;
  c.protocol = lower_name(proto);
  c.topology = topology;
  c.workers = workers;
  c.workers_used = r.workers_used;
  c.fallback_reason = r.parallel_fallback_reason;
  c.flows = r.total_flows();
  c.sim_packets = r.data_packets_sent;
  c.wall_sec = run.wall_sec;
  c.packets_per_sec =
      run.wall_sec > 0.0
          ? static_cast<double>(r.data_packets_sent) / run.wall_sec
          : 0.0;
  c.afct_s = r.afct();
  c.end_time_s = r.end_time;
  c.rounds = static_cast<std::uint64_t>(metric(r, "parallel.rounds"));
  c.drains = static_cast<std::uint64_t>(metric(r, "parallel.drains"));
  c.quiet_rounds =
      static_cast<std::uint64_t>(metric(r, "parallel.quiet_rounds"));
  c.cross_posts =
      static_cast<std::uint64_t>(metric(r, "parallel.cross_posts"));
  c.horizon_width_mean_s = metric(r, "parallel.horizon_width_mean");
  c.barrier_wait_sec = r.parallel_barrier_wait_sec;
  // Fraction of total thread-seconds spent blocked past the spin burst.
  c.barrier_wait_frac =
      run.wall_sec > 0.0 && r.workers_used > 0
          ? r.parallel_barrier_wait_sec /
                (run.wall_sec * static_cast<double>(r.workers_used))
          : 0.0;

  if (with_static && workers > 1) {
    cfg.horizon_mode = ScenarioConfig::HorizonMode::kStaticMinCut;
    const RunOut st = timed_run(cfg);
    c.has_static = true;
    c.static_rounds =
        static_cast<std::uint64_t>(metric(st.result, "parallel.rounds"));
    c.static_horizon_width_mean_s =
        metric(st.result, "parallel.horizon_width_mean");
    c.static_wall_sec = st.wall_sec;
  }
  return c;
}

// Pod-local traffic for the lookahead section — in fact rack-local: every
// flow stays under its source's edge switch, so at one-pod-per-domain
// partitioning nothing crosses a cut link AND every active link stays at
// least two store-and-forward hops (edge->agg plus the cut's own
// serialization) away from the nearest agg->core uplink. That distance is
// exactly what the conditional probe certifies; cross-edge traffic inside a
// pod would keep edge->agg links busy and pin the bound one hop from the
// cut. Deterministic LCG so the case is reproducible.
std::vector<transport::Flow> pod_local_flows(const topo::FatTreeConfig& ft,
                                             int num_flows) {
  std::vector<transport::Flow> flows;
  flows.reserve(static_cast<std::size_t>(num_flows));
  std::uint64_t s = 0x9e3779b97f4a7c15ull;
  const auto lcg = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(s >> 33);
  };
  const int hpe = ft.hosts_per_edge();
  const int num_edges = ft.pods() * ft.edges_per_pod();
  double t = 1e-3;
  for (int i = 0; i < num_flows; ++i) {
    const int edge = i % num_edges;  // round-robin over all racks
    const int src = static_cast<int>(lcg()) % hpe;
    int dst = static_cast<int>(lcg()) % hpe;
    if (dst == src) dst = (src + 1) % hpe;
    transport::Flow f;
    f.id = static_cast<net::FlowId>(i + 1);
    f.src = static_cast<net::NodeId>(edge * hpe + src);  // host index
    f.dst = static_cast<net::NodeId>(edge * hpe + dst);
    f.size_bytes = static_cast<std::uint64_t>(1 + lcg() % 32) * net::kMss;
    f.start_time = t;
    t += 20e-6;
    flows.push_back(f);
  }
  return flows;
}

struct LookaheadOut {
  std::uint64_t conditional_rounds = 0;
  std::uint64_t static_rounds = 0;
  double conditional_width_s = 0.0;
  double static_width_s = 0.0;
  double conditional_wall_sec = 0.0;
  double static_wall_sec = 0.0;
  std::uint64_t cross_posts = 0;
  std::uint64_t flows = 0;
};

LookaheadOut run_lookahead(bool quick) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDctcp;
  cfg.topology = ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 8;
  cfg.workers = 4;  // one pod per domain (4 pods of 16 hosts)
  const std::vector<transport::Flow> flows =
      pod_local_flows(cfg.fattree, quick ? 200 : 800);

  LookaheadOut out;
  out.flows = flows.size();

  cfg.horizon_mode = ScenarioConfig::HorizonMode::kConditional;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const workload::ScenarioResult r =
        workload::run_scenario_with_flows(cfg, flows);
    out.conditional_wall_sec = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
    out.conditional_rounds =
        static_cast<std::uint64_t>(metric(r, "parallel.rounds"));
    out.conditional_width_s = metric(r, "parallel.horizon_width_mean");
    out.cross_posts =
        static_cast<std::uint64_t>(metric(r, "parallel.cross_posts"));
  }
  cfg.horizon_mode = ScenarioConfig::HorizonMode::kStaticMinCut;
  {
    const auto t0 = std::chrono::steady_clock::now();
    const workload::ScenarioResult r =
        workload::run_scenario_with_flows(cfg, flows);
    out.static_wall_sec = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    out.static_rounds =
        static_cast<std::uint64_t>(metric(r, "parallel.rounds"));
    out.static_width_s = metric(r, "parallel.horizon_width_mean");
  }
  return out;
}

void append_case_json(std::string& json, const CaseOut& c, bool last) {
  char row[1024];
  std::snprintf(
      row, sizeof(row),
      "    {\"protocol\": \"%s\", \"topology\": \"%s\", \"workers\": %d,\n"
      "     \"workers_used\": %d, \"fallback_reason\": \"%s\",\n"
      "     \"flows\": %llu, \"sim_packets\": %llu, \"wall_sec\": %.6f,\n"
      "     \"packets_per_sec\": %.1f, \"afct_s\": %.9f, "
      "\"end_time_s\": %.6f,\n"
      "     \"rounds\": %llu, \"drains\": %llu, \"quiet_rounds\": %llu,\n"
      "     \"cross_posts\": %llu, \"horizon_width_mean_s\": %.9g,\n"
      "     \"barrier_wait_sec\": %.6f, \"barrier_wait_frac\": %.6f",
      c.protocol.c_str(), c.topology.c_str(), c.workers, c.workers_used,
      c.fallback_reason.c_str(),
      static_cast<unsigned long long>(c.flows),
      static_cast<unsigned long long>(c.sim_packets), c.wall_sec,
      c.packets_per_sec, c.afct_s, c.end_time_s,
      static_cast<unsigned long long>(c.rounds),
      static_cast<unsigned long long>(c.drains),
      static_cast<unsigned long long>(c.quiet_rounds),
      static_cast<unsigned long long>(c.cross_posts),
      c.horizon_width_mean_s, c.barrier_wait_sec, c.barrier_wait_frac);
  json += row;
  if (c.has_static) {
    std::snprintf(row, sizeof(row),
                  ",\n     \"static_rounds\": %llu,"
                  " \"static_horizon_width_mean_s\": %.9g,\n"
                  "     \"static_wall_sec\": %.6f",
                  static_cast<unsigned long long>(c.static_rounds),
                  c.static_horizon_width_mean_s, c.static_wall_sec);
    json += row;
  }
  json += "}";
  if (!last) json += ",";
  json += "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const std::vector<int> worker_counts =
      quick ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const Protocol protocols[] = {Protocol::kPase, Protocol::kPfabric,
                                Protocol::kDctcp};
  struct Topo {
    const char* name;
    ScenarioConfig cfg;
  };
  const Topo topos[] = {{"three_tier", three_tier_config(quick)},
                        {"fat_tree_k8", fattree_config(quick)}};

  std::printf("parallel scaling (%s): conditional lookahead, static min-cut "
              "re-run at workers=4\n",
              quick ? "quick" : "full");
  std::printf("%-8s %-12s %3s %4s %8s %9s %9s %8s %9s %10s %7s %10s\n",
              "proto", "topo", "w", "used", "wall(s)", "rounds", "drains",
              "quiet", "posts", "width(us)", "bwait%", "static_rds");

  std::string json = "{\n  \"bench\": \"parallel\",\n  \"mode\": \"";
  json += quick ? "quick" : "full";
  json += "\",\n  \"cases\": [\n";

  std::vector<CaseOut> cases;
  for (const Topo& t : topos) {
    for (const Protocol p : protocols) {
      for (const int w : worker_counts) {
        const CaseOut c = run_case(t.cfg, t.name, p, w, /*with_static=*/w == 4);
        std::printf(
            "%-8s %-12s %3d %4d %8.3f %9llu %9llu %8llu %9llu %10.2f %7.2f",
            c.protocol.c_str(), c.topology.c_str(), c.workers, c.workers_used,
            c.wall_sec, static_cast<unsigned long long>(c.rounds),
            static_cast<unsigned long long>(c.drains),
            static_cast<unsigned long long>(c.quiet_rounds),
            static_cast<unsigned long long>(c.cross_posts),
            c.horizon_width_mean_s * 1e6, c.barrier_wait_frac * 100.0);
        if (c.has_static) {
          std::printf(" %10llu",
                      static_cast<unsigned long long>(c.static_rounds));
        }
        std::printf("\n");
        std::fflush(stdout);
        cases.push_back(c);
      }
    }
  }
  for (std::size_t i = 0; i < cases.size(); ++i) {
    append_case_json(json, cases[i], i + 1 == cases.size());
  }

  const LookaheadOut la = run_lookahead(quick);
  std::printf("\nlookahead (pod-local k=8 fat-tree, dctcp, workers=4): "
              "conditional %llu rounds (width %.2f us) vs static %llu rounds "
              "(width %.2f us), %llu cross posts\n",
              static_cast<unsigned long long>(la.conditional_rounds),
              la.conditional_width_s * 1e6,
              static_cast<unsigned long long>(la.static_rounds),
              la.static_width_s * 1e6,
              static_cast<unsigned long long>(la.cross_posts));

  char block[640];
  std::snprintf(
      block, sizeof(block),
      "  ],\n  \"lookahead\": {\n"
      "    \"topology\": \"fat_tree_k8_pod_local\", \"protocol\": \"dctcp\","
      " \"workers\": 4,\n"
      "    \"flows\": %llu, \"cross_posts\": %llu,\n"
      "    \"conditional_rounds\": %llu, \"static_rounds\": %llu,\n"
      "    \"conditional_width_s\": %.9g, \"static_width_s\": %.9g,\n"
      "    \"conditional_wall_sec\": %.6f, \"static_wall_sec\": %.6f\n"
      "  }\n}\n",
      static_cast<unsigned long long>(la.flows),
      static_cast<unsigned long long>(la.cross_posts),
      static_cast<unsigned long long>(la.conditional_rounds),
      static_cast<unsigned long long>(la.static_rounds),
      la.conditional_width_s, la.static_width_s, la.conditional_wall_sec,
      la.static_wall_sec);
  json += block;

  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: could not write BENCH_parallel.json\n");
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote BENCH_parallel.json\n");
  return 0;
}
