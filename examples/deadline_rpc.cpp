// Example: deadline-bound RPC tier.
//
// A 20-host rack serves RPCs of 100-500 KB that must complete within an SLA.
// We sweep the SLA tightness at fixed 70% load and compare how many RPCs
// each transport lands in time. PASE arbitrates earliest-deadline-first and
// strictly prioritizes urgent flows in the fabric; D2TCP only modulates its
// backoff; DCTCP is deadline-blind.
//
// Run: ./build/examples/deadline_rpc
#include <cstdio>

#include "workload/scenario.h"

int main() {
  using namespace pase;
  std::printf("Deadline RPC tier: 20 hosts, U[100,500] KB RPCs, 70%% load\n\n");
  std::printf("%-18s %10s %10s %10s\n", "SLA window", "PASE", "D2TCP",
              "DCTCP");

  struct Sla {
    const char* name;
    double lo, hi;
  };
  for (const auto& sla : {Sla{"tight  (5-10ms)", 5e-3, 10e-3},
                          Sla{"medium (5-25ms)", 5e-3, 25e-3},
                          Sla{"loose  (20-50ms)", 20e-3, 50e-3}}) {
    std::printf("%-18s", sla.name);
    for (auto proto : {workload::Protocol::kPase, workload::Protocol::kD2tcp,
                       workload::Protocol::kDctcp}) {
      workload::ScenarioConfig cfg;
      cfg.protocol = proto;
      cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
      cfg.rack.num_hosts = 20;
      cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
      cfg.traffic.load = 0.7;
      cfg.traffic.num_flows = 600;
      cfg.traffic.size_min_bytes = 100e3;
      cfg.traffic.size_max_bytes = 500e3;
      cfg.traffic.deadline_min = sla.lo;
      cfg.traffic.deadline_max = sla.hi;
      cfg.traffic.seed = 37;
      auto res = workload::run_scenario(cfg);
      std::printf(" %9.1f%%", res.app_throughput() * 100);
    }
    std::printf("\n");
  }
  std::printf("\n(values = RPCs completed within their deadline)\n");
  return 0;
}
