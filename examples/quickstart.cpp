// Quickstart: run a small PASE workload on a single rack and print per-flow
// completion times plus the arbitration-plane counters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "workload/scenario.h"

int main() {
  using namespace pase;

  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 10;

  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 50;
  cfg.traffic.size_min_bytes = 2e3;
  cfg.traffic.size_max_bytes = 198e3;
  cfg.traffic.num_background_flows = 1;
  cfg.traffic.seed = 42;

  workload::ScenarioResult res = workload::run_scenario(cfg);

  std::printf("PASE quickstart: 10-host rack, 50 flows at 60%% load\n");
  std::printf("%8s %12s %12s %12s\n", "flow", "size(KB)", "start(ms)",
              "fct(ms)");
  for (const auto& r : res.records) {
    if (r.background) continue;
    std::printf("%8llu %12.1f %12.3f %12.3f\n",
                static_cast<unsigned long long>(r.id), r.size_bytes / 1e3,
                r.start * 1e3, r.completed() ? r.fct() * 1e3 : -1.0);
  }
  std::printf("\nAFCT            : %.3f ms\n", res.afct() * 1e3);
  std::printf("99th pct FCT    : %.3f ms\n", res.fct_p99() * 1e3);
  std::printf("fabric drops    : %llu\n",
              static_cast<unsigned long long>(res.fabric_drops));
  std::printf("control msgs    : %llu (%.0f/s)\n",
              static_cast<unsigned long long>(res.control.messages_sent),
              res.control_msgs_per_sec());
  std::printf("arbitrations    : %llu\n",
              static_cast<unsigned long long>(res.control.arbitrations));
  return 0;
}
