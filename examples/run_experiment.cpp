// Example: a command-line experiment runner with fabric telemetry.
//
// Exposes the scenario harness as a small CLI, ns-2-script style, and uses
// the obs::TelemetryPlane to report where the backlog lived — handy for
// exploring parameter spaces without writing code.
//
//   ./build/examples/run_experiment --protocol pase --topology tree \
//       --pattern leftright --load 0.8 --flows 500 --seed 7 \
//       --telemetry run.jsonl
//
// Flags: --protocol NAME (any registered transport profile; the built-ins
//                         are dctcp,d2tcp,l2dct,pdq,pfabric,pase)
//        --topology {rack,tree}      --hosts N (rack size)
//        --pattern  {random,leftright,workeragg,incast}
//        --load X   --flows N  --seed S
//        --sizes  {uniform,websearch,datamining}
//        --deadlines LO_MS,HI_MS
//        --telemetry PATH (write a pase-telemetry JSONL summary; render it
//                          with tools/telemetry_report)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "workload/scenario.h"

namespace {

using namespace pase;

[[noreturn]] void usage(const char* msg) {
  std::fprintf(stderr, "error: %s (see header comment for flags)\n", msg);
  std::exit(1);
}

workload::Pattern parse_pattern(const std::string& s) {
  if (s == "random") return workload::Pattern::kIntraRackRandom;
  if (s == "leftright") return workload::Pattern::kLeftRight;
  if (s == "workeragg") return workload::Pattern::kWorkerAggregator;
  if (s == "incast") return workload::Pattern::kIncast;
  usage("unknown pattern");
}

workload::SizeDistribution parse_sizes(const std::string& s) {
  if (s == "uniform") return workload::SizeDistribution::kUniform;
  if (s == "websearch") return workload::SizeDistribution::kWebSearch;
  if (s == "datamining") return workload::SizeDistribution::kDataMining;
  usage("unknown size distribution");
}

}  // namespace

int main(int argc, char** argv) {
  workload::ScenarioConfig cfg;
  std::string telemetry_path;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 20;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 300;

  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string val = argv[i + 1];
    if (flag == "--protocol") {
      // The registry resolves any profile name, built-in or registered
      // later; an unknown spelling is rejected by validate_config below.
      cfg.profile_name = val;
    } else if (flag == "--topology") {
      cfg.topology = val == "tree"
                         ? workload::ScenarioConfig::TopologyKind::kThreeTier
                         : workload::ScenarioConfig::TopologyKind::kSingleRack;
    } else if (flag == "--hosts") {
      cfg.rack.num_hosts = std::atoi(val.c_str());
    } else if (flag == "--pattern") {
      cfg.traffic.pattern = parse_pattern(val);
    } else if (flag == "--load") {
      cfg.traffic.load = std::atof(val.c_str());
    } else if (flag == "--flows") {
      cfg.traffic.num_flows = std::atoi(val.c_str());
    } else if (flag == "--seed") {
      cfg.traffic.seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else if (flag == "--sizes") {
      cfg.traffic.size_dist = parse_sizes(val);
    } else if (flag == "--deadlines") {
      double lo = 0, hi = 0;
      if (std::sscanf(val.c_str(), "%lf,%lf", &lo, &hi) != 2) {
        usage("--deadlines expects LO_MS,HI_MS");
      }
      cfg.traffic.deadline_min = lo * 1e-3;
      cfg.traffic.deadline_max = hi * 1e-3;
    } else if (flag == "--telemetry") {
      telemetry_path = val;
      cfg.telemetry.enabled = true;
    } else {
      usage(("unknown flag " + flag).c_str());
    }
  }
  try {
    workload::validate_config(cfg);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }

  auto res = workload::run_scenario(cfg);

  std::printf("protocol        : %s\n",
              cfg.profile_name.empty()
                  ? workload::protocol_name(cfg.protocol)
                  : cfg.profile_name.c_str());
  std::printf("load            : %.0f%%  (%d flows, seed %llu)\n",
              cfg.traffic.load * 100, cfg.traffic.num_flows,
              static_cast<unsigned long long>(cfg.traffic.seed));
  std::printf("AFCT            : %.3f ms\n", res.afct() * 1e3);
  std::printf("median FCT      : %.3f ms\n",
              stats::fct_percentile(res.records, 50) * 1e3);
  std::printf("99th pct FCT    : %.3f ms\n", res.fct_p99() * 1e3);
  if (cfg.traffic.deadline_max > 0) {
    std::printf("deadlines met   : %.1f%%\n", res.app_throughput() * 100);
  }
  std::printf("fabric loss     : %.2f%% (%llu drops / %llu data pkts)\n",
              res.loss_rate() * 100,
              static_cast<unsigned long long>(res.fabric_drops),
              static_cast<unsigned long long>(res.data_packets_sent));
  std::printf("unfinished      : %zu\n", res.unfinished());
  if (res.control.messages_sent > 0) {
    std::printf("control msgs    : %llu (%.0f/s), %llu arbitrations, "
                "%llu pruned\n",
                static_cast<unsigned long long>(res.control.messages_sent),
                res.control_msgs_per_sec(),
                static_cast<unsigned long long>(res.control.arbitrations),
                static_cast<unsigned long long>(res.control.pruned_requests));
  }
  if (res.telemetry) {
    if (!res.telemetry->hot_links.empty()) {
      const auto& hot = res.telemetry->hot_links.front();
      std::printf("hottest link    : %s (%.1f MB)\n", hot.name.c_str(),
                  static_cast<double>(hot.bytes) / (1 << 20));
    }
    if (res.telemetry->write_jsonl(telemetry_path)) {
      std::printf("telemetry       : wrote %s (%llu samples, %zu groups)\n",
                  telemetry_path.c_str(),
                  static_cast<unsigned long long>(res.telemetry->samples),
                  res.telemetry->group_names.size());
    } else {
      std::fprintf(stderr, "warning: could not write %s\n",
                   telemetry_path.c_str());
    }
  }
  return 0;
}
