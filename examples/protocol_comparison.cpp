// Example: transport bake-off on the paper's 160-host data center.
//
// Runs the same left-right workload over every transport profile in the
// registry and prints the headline metrics side by side — a one-command tour
// of the public API and of the paper's central claim. Profiles registered
// beyond the built-in six are picked up automatically.
//
// Run: ./build/examples/protocol_comparison [load] [flows]
#include <cstdio>
#include <cstdlib>

#include "proto/registry.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace pase;
  const double load = argc > 1 ? std::atof(argv[1]) : 0.8;
  const int flows = argc > 2 ? std::atoi(argv[2]) : 800;

  std::printf(
      "Left-right inter-rack, 160 hosts, 4:1 oversubscription, load %.0f%%, "
      "%d flows\n\n",
      load * 100, flows);
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "protocol", "afct(ms)",
              "p50(ms)", "p99(ms)", "loss(%)", "ctrl msg/s");

  for (const auto* profile : proto::ProfileRegistry::instance().profiles()) {
    workload::ScenarioConfig cfg;
    cfg.profile_name = std::string(profile->name());
    cfg.topology = workload::ScenarioConfig::TopologyKind::kThreeTier;
    cfg.traffic.pattern = workload::Pattern::kLeftRight;
    cfg.traffic.load = load;
    cfg.traffic.num_flows = flows;
    cfg.traffic.seed = 41;
    auto res = workload::run_scenario(cfg);
    std::printf("%-10s %10.3f %10.3f %10.3f %10.2f %12.0f\n",
                std::string(profile->display_name()).c_str(), res.afct() * 1e3,
                stats::fct_percentile(res.records, 50) * 1e3,
                res.fct_p99() * 1e3, res.loss_rate() * 100,
                res.control_msgs_per_sec());
  }
  return 0;
}
