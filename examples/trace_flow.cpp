// Trace a PASE run and reconstruct the life of its slowest flow: every
// arbitration decision, rate/cwnd change, drop and ECN mark that shaped its
// completion time, printed as a timeline. The same data drives the JSONL /
// Chrome sinks; this example shows how to consume the in-memory trace
// directly.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_flow
#include <cstdio>
#include <string>

#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "workload/scenario.h"

int main() {
  using namespace pase;

  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 16;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.8;  // enough contention for drops and demotions
  cfg.traffic.num_flows = 120;
  cfg.traffic.seed = 23;
  cfg.trace.enabled = true;

  const workload::ScenarioResult res = workload::run_scenario(cfg);
  if (!res.trace) {
    std::fprintf(stderr, "tracing produced no trace\n");
    return 1;
  }

  // Slowest completed short flow by FCT.
  const stats::FlowRecord* slowest = nullptr;
  for (const auto& r : res.records) {
    if (r.background || !r.completed()) continue;
    if (slowest == nullptr || r.fct() > slowest->fct()) slowest = &r;
  }
  if (slowest == nullptr) {
    std::fprintf(stderr, "no completed flows\n");
    return 1;
  }

  std::printf("slowest flow: id=%llu size=%.1f KB fct=%.3f ms (%zu flows, "
              "%zu trace events)\n\n",
              static_cast<unsigned long long>(slowest->id),
              slowest->size_bytes / 1e3, slowest->fct() * 1e3,
              res.records.size(), res.trace->events.size());
  std::printf("%12s  %s\n", "t(ms)", "event");

  const auto queue_name = [&](std::uint32_t id) -> std::string {
    return id < res.trace->queue_names.size() ? res.trace->queue_names[id]
                                              : "q" + std::to_string(id);
  };

  int cwnd_samples = 0;
  for (const auto& e : res.trace->events) {
    if (e.flow != slowest->id) continue;
    const double ms = e.t * 1e3;
    switch (e.type) {
      case obs::EventType::kFlowStart:
        std::printf("%12.4f  start (size %.1f KB)\n", ms, e.v0 / 1e3);
        break;
      case obs::EventType::kFlowFirstByte:
        std::printf("%12.4f  first byte at receiver\n", ms);
        break;
      case obs::EventType::kFlowComplete:
        std::printf("%12.4f  complete (fct %.3f ms)\n", ms, e.v0 * 1e3);
        break;
      case obs::EventType::kFlowDeadlineMiss:
        std::printf("%12.4f  DEADLINE MISSED by %.3f ms\n", ms, e.v0 * 1e3);
        break;
      case obs::EventType::kPktDrop:
        std::printf("%12.4f  drop seq=%u at %s\n", ms, e.a,
                    queue_name(e.b).c_str());
        break;
      case obs::EventType::kPktEcnMark:
        std::printf("%12.4f  ECN mark seq=%u at %s\n", ms, e.a,
                    queue_name(e.b).c_str());
        break;
      case obs::EventType::kArbDecision:
        std::printf("%12.4f  arbitration (%s): queue %u, Rref %.1f Mbps\n",
                    ms, e.b == 0 ? "src" : "rx", e.a, e.v0 / 1e6);
        break;
      case obs::EventType::kRateSample:
        std::printf("%12.4f  rate -> %.1f Mbps%s\n", ms, e.v0 / 1e6,
                    e.a != 0 ? " (paused)" : "");
        break;
      case obs::EventType::kCwndSample:
        // Every ACK samples cwnd; print a sparse subset to keep the
        // timeline readable.
        if (++cwnd_samples % 25 == 0) {
          std::printf("%12.4f  cwnd %.1f pkts, srtt %.0f us\n", ms, e.v0,
                      e.v1 * 1e6);
        }
        break;
      default:
        break;
    }
  }
  return 0;
}
