// Example: partition/aggregate search traffic (the paper's motivating
// workload).
//
// A rack of 40 machines runs a search tier: every query fans out to 8
// workers whose responses converge on an aggregator (round-robin). This is
// the traffic pattern that breaks transports with local-only decisions —
// responses collide at the aggregator's downlink. We run the same workload
// over pFabric, DCTCP and PASE and compare completion times and fabric loss.
//
// Run: ./build/examples/search_aggregation [load]
#include <cstdio>
#include <cstdlib>

#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace pase;
  const double load = argc > 1 ? std::atof(argv[1]) : 0.7;

  std::printf("Search partition/aggregate: 40-host rack, fanout 8, load %.0f%%\n\n",
              load * 100);
  std::printf("%-10s %12s %12s %12s %12s\n", "protocol", "afct(ms)",
              "p99(ms)", "loss(%)", "query99(ms)");

  for (auto proto : {workload::Protocol::kPfabric, workload::Protocol::kDctcp,
                     workload::Protocol::kPase}) {
    workload::ScenarioConfig cfg;
    cfg.protocol = proto;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 40;
    cfg.traffic.pattern = workload::Pattern::kIncast;
    cfg.traffic.incast_fanout = 8;
    cfg.traffic.load = load;
    cfg.traffic.num_flows = 1600;  // 200 queries
    cfg.traffic.size_min_bytes = 2e3;
    cfg.traffic.size_max_bytes = 198e3;
    cfg.traffic.num_background_flows = 0;
    cfg.traffic.seed = 31;
    auto res = workload::run_scenario(cfg);

    // A query completes when its slowest response lands: group by query
    // (flows were generated in fanout-sized bursts with a shared start time).
    std::vector<double> query_fct;
    double worst = 0;
    int in_query = 0;
    for (const auto& r : res.records) {
      if (r.background) continue;
      worst = std::max(worst, r.completed() ? r.fct() : 1.0);
      if (++in_query == 8) {
        query_fct.push_back(worst);
        worst = 0;
        in_query = 0;
      }
    }
    std::printf("%-10s %12.3f %12.3f %12.2f %12.3f\n",
                workload::protocol_name(proto), res.afct() * 1e3,
                res.fct_p99() * 1e3, res.loss_rate() * 100,
                stats::percentile(query_fct, 99) * 1e3);
  }
  std::printf(
      "\nPASE's receiver-half arbitration pauses colliding responses before\n"
      "they waste fabric capacity; pFabric drops them at the aggregator.\n");
  return 0;
}
