// Telemetry plane tests: queue enumeration and naming, armed-mode sampling
// on the raw event path, window rollup math, the space-saving heavy-hitter
// sketch's guarantees, JSONL shape, and byte-identity of the serialized
// summary across worker counts (the plane's core determinism contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/droptail_queue.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "test_util.h"
#include "topo/builder.h"
#include "transport/dctcp.h"
#include "transport/window_sender.h"
#include "workload/scenario.h"

namespace pase::obs {
namespace {

// Single-rack fixture built through the builder seam, so the plane sees a
// BuiltTopology (tier/pod classification) rather than a bare Topology.
struct PlaneNet {
  sim::Simulator sim;
  std::unique_ptr<topo::BuiltTopology> built;

  topo::Topology& topo() { return built->topo(); }
  net::Host& host(int i) {
    return *built->topo().host(static_cast<std::size_t>(i));
  }
};

std::unique_ptr<PlaneNet> make_plane_net(int num_hosts) {
  auto n = std::make_unique<PlaneNet>();
  topo::SingleRackConfig cfg;
  cfg.num_hosts = num_hosts;
  n->built = topo::SingleRackBuilder(cfg).build(n->sim, [](double) {
    return std::make_unique<net::DropTailQueue>(100);
  });
  return n;
}

transport::Flow make_flow(PlaneNet& n, int src, int dst, std::uint64_t bytes) {
  transport::Flow f;
  f.id = 1;
  f.src = n.host(src).id();
  f.dst = n.host(dst).id();
  f.size_bytes = bytes;
  f.start_time = 0.0;
  return f;
}

std::unique_ptr<transport::Receiver> wire_flow(PlaneNet& n,
                                               transport::Sender& sender,
                                               const transport::Flow& flow) {
  auto* src = static_cast<net::Host*>(n.topo().node(flow.src));
  auto* dst = static_cast<net::Host*>(n.topo().node(flow.dst));
  auto receiver = std::make_unique<transport::Receiver>(n.sim, *dst, flow);
  src->register_flow(flow.id, &sender);
  dst->register_flow(flow.id, receiver.get());
  return receiver;
}

TelemetryConfig plane_cfg(sim::Time period, int per_window = 10) {
  TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = period;
  cfg.samples_per_window = per_window;
  return cfg;
}

TEST(TelemetryPlane, EnumeratesEveryQueue) {
  auto n = make_plane_net(4);
  TelemetryPlane tel(*n->built, plane_cfg(1e-3));
  // 4 host uplinks + 4 ToR downlinks.
  EXPECT_EQ(tel.num_queues(), 8u);
  EXPECT_EQ(tel.queue_names()[0], "h0.up");
  // Single rack: host uplinks plus edge (ToR) ports, no pods.
  ASSERT_EQ(tel.group_names().size(), 2u);
  EXPECT_EQ(tel.group_names()[0], "tier:host");
  EXPECT_EQ(tel.group_names()[1], "tier:edge");
}

TEST(TelemetryPlane, ArmedModeSamplesAtConfiguredPeriod) {
  auto n = make_plane_net(2);
  TelemetryPlane tel(*n->built, plane_cfg(1e-3));
  tel.arm(n->sim);
  n->sim.run(10.5e-3);
  EXPECT_EQ(tel.samples_taken(), 10u);
}

TEST(TelemetryPlane, StopEndsSampling) {
  auto n = make_plane_net(2);
  TelemetryPlane tel(*n->built, plane_cfg(1e-3));
  tel.arm(n->sim);
  n->sim.run(3.5e-3);
  tel.stop();
  n->sim.run(10e-3);
  EXPECT_EQ(tel.samples_taken(), 3u);
}

TEST(TelemetryPlane, ObservesBacklogAtBottleneck) {
  auto n = make_plane_net(3);
  // Two senders converge on host 2: the ToR downlink to host 2 backs up.
  auto f1 = make_flow(*n, 0, 2, 400 * net::kMss);
  f1.id = 1;
  auto f2 = make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  transport::DctcpSender s1(n->sim, n->host(0), f1, o);
  transport::DctcpSender s2(n->sim, n->host(1), f2, o);
  auto r1 = wire_flow(*n, s1, f1);
  auto r2 = wire_flow(*n, s2, f2);
  TelemetryPlane tel(*n->built, plane_cfg(50e-6));
  tel.arm(n->sim);
  s1.start();
  s2.start();
  n->sim.run(2e-3);
  EXPECT_GT(tel.peak_occupancy(), 10u);
  ASSERT_NE(tel.busiest(), nullptr);
  EXPECT_EQ(*tel.busiest(), "tor->h2");
  tel.stop();
  n->sim.run(1.0);
}

TEST(UtilizationProbe, MeasuresBusyFraction) {
  auto n = make_plane_net(2);
  auto flow = make_flow(*n, 0, 1, 800 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;  // fixed window (base sender has no growth law)
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  s.start();
  // 800 packets at 1 Gbps ~ 9.6 ms; measure utilization over the first 5 ms.
  n->sim.run(5e-3);
  EXPECT_GT(probe.utilization(n->sim.now()), 0.9);
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
}

TEST(UtilizationProbe, IdleLinkIsZero) {
  auto n = make_plane_net(2);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  n->sim.schedule(1e-3, [] {});
  n->sim.run();
  EXPECT_DOUBLE_EQ(probe.utilization(n->sim.now()), 0.0);
}

TEST(UtilizationProbe, NeverReportsMoreThanFullyBusy) {
  auto n = make_plane_net(2);
  auto flow = make_flow(*n, 0, 1, 100 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1e-3);
  // Probe over a window much shorter than one packet serialization: the
  // link's busy_time can exceed the elapsed window, but utilization is a
  // fraction and must clamp to [0, 1].
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  n->sim.run(n->sim.now() + 1e-9);
  const double u = probe.utilization(n->sim.now());
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
  n->sim.run(1.0);
}

TEST(TelemetryPlane, FoldsIntoMetricsRegistry) {
  auto n = make_plane_net(3);
  auto f1 = make_flow(*n, 0, 2, 400 * net::kMss);
  f1.id = 1;
  auto f2 = make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  transport::DctcpSender s1(n->sim, n->host(0), f1, o);
  transport::DctcpSender s2(n->sim, n->host(1), f2, o);
  auto r1 = wire_flow(*n, s1, f1);
  auto r2 = wire_flow(*n, s2, f2);
  TelemetryPlane tel(*n->built, plane_cfg(50e-6));
  tel.arm(n->sim);
  s1.start();
  s2.start();
  n->sim.run(2e-3);
  tel.stop();

  MetricsRegistry reg;
  tel.fold_into(reg);
  EXPECT_GT(reg.gauge("fabric.queue.tor->h2.occupancy_max"), 10.0);
  EXPECT_GT(reg.counter_value("fabric.enqueues"), 0u);
  EXPECT_EQ(reg.counter_value("fabric.queue.h0.up.drops") +
                reg.counter_value("fabric.queue.h0.up.marks"),
            n->host(0).uplink_queue().drops() +
                n->host(0).uplink_queue().marks());
  n->sim.run(1.0);
}

TEST(TelemetryPlane, LabelsQueuesWithTraceIds) {
  auto n = make_plane_net(4);
  const std::vector<std::string> names = label_fabric_queues(n->topo());
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "h0.up");
  // Trace ids follow the same walk, so drop records can resolve the name.
  EXPECT_EQ(n->host(0).uplink_queue().trace_id(), 0u);
  EXPECT_EQ(n->host(3).uplink_queue().trace_id(), 3u);
}

TEST(TelemetryPlane, SamplesOnRawEventPath) {
  auto n = make_plane_net(2);
  const std::uint64_t before = n->sim.heap_closure_events();
  TelemetryPlane tel(*n->built, plane_cfg(1e-3));
  tel.arm(n->sim);
  n->sim.run(10.5e-3);
  EXPECT_EQ(tel.samples_taken(), 10u);
  EXPECT_EQ(n->sim.heap_closure_events(), before)
      << "telemetry sampling spilled a closure to the heap";
  tel.stop();
}

// --- Window rollup math ------------------------------------------------------

TEST(TelemetryPlane, WindowRollupConservesBytesAndBoundsUtilization) {
  auto n = make_plane_net(2);
  auto flow = make_flow(*n, 0, 1, 800 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  TelemetryPlane tel(*n->built, plane_cfg(1e-3, /*per_window=*/4));
  s.start();
  // Drive the grid by hand, as the scenario harness does.
  for (std::uint64_t k = 1; k <= 12; ++k) {
    n->sim.run(tel.sample_time(k));
    tel.sample(n->sim.now());
  }
  const auto sum = tel.finish(n->sim.now());

  // 12 samples at 4 per window: 3 full windows, no trailing partial.
  ASSERT_EQ(sum->samples, 12u);
  ASSERT_EQ(sum->group_names.size(), 2u);
  EXPECT_EQ(sum->windows.size(), 3u * 2u);
  for (const auto& w : sum->windows) {
    EXPECT_DOUBLE_EQ(w.t1 - w.t0, 4e-3);
    EXPECT_GE(w.util_max, w.util_mean);
    EXPECT_GE(w.util_max, w.util_p99);
    EXPECT_LE(w.util_max, 1.0);
    EXPECT_GE(w.util_mean, 0.0);
    EXPECT_GE(static_cast<double>(w.depth_max), w.depth_mean);
  }
  // Window byte deltas add up to the whole-run totals, and the host-tier
  // total matches the host uplinks' own byte counters at the last sample.
  std::vector<std::uint64_t> by_group(sum->group_names.size(), 0);
  for (const auto& w : sum->windows) by_group[w.group] += w.bytes;
  std::uint64_t uplink_bytes = 0;
  uplink_bytes += n->host(0).uplink().bytes_sent();
  uplink_bytes += n->host(1).uplink().bytes_sent();
  ASSERT_EQ(sum->totals.size(), 2u);
  for (std::size_t g = 0; g < sum->totals.size(); ++g) {
    EXPECT_EQ(sum->totals[g].bytes, by_group[g]);
  }
  EXPECT_EQ(by_group[0], uplink_bytes);  // group 0 is tier:host
  // The busy flow shows up as a link heavy hitter.
  ASSERT_FALSE(sum->hot_links.empty());
  EXPECT_EQ(sum->hot_links[0].name, "h0.up");
}

TEST(TelemetryPlane, IdleFabricRollsUpToZero) {
  auto n = make_plane_net(2);
  TelemetryPlane tel(*n->built, plane_cfg(1e-3, /*per_window=*/2));
  for (std::uint64_t k = 1; k <= 4; ++k) {
    n->sim.run(tel.sample_time(k));
    tel.sample(n->sim.now());
  }
  const auto sum = tel.finish(n->sim.now());
  for (const auto& w : sum->windows) {
    EXPECT_DOUBLE_EQ(w.util_mean, 0.0);
    EXPECT_DOUBLE_EQ(w.util_max, 0.0);
    EXPECT_DOUBLE_EQ(w.util_p99, 0.0);  // all-idle window pins p99 to zero
    EXPECT_EQ(w.depth_max, 0u);
    EXPECT_EQ(w.bytes, 0u);
  }
  EXPECT_TRUE(sum->hot_links.empty());
}

// --- Space-saving sketch -----------------------------------------------------

TEST(SpaceSavingSketch, ExactUnderCapacity) {
  SpaceSavingSketch sk(8);
  sk.add(1, 100);
  sk.add(2, 50);
  sk.add(1, 25);
  EXPECT_EQ(sk.tracked(), 2u);
  EXPECT_EQ(sk.total_weight(), 175u);
  EXPECT_EQ(sk.min_estimate(), 0u);  // free slots: nothing was ever evicted
  const auto top = sk.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[0].estimate, 125u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(top[1].estimate, 50u);
}

TEST(SpaceSavingSketch, GuaranteesTopKUnderOverflow) {
  // 3 heavy keys among 200 light ones, capacity 16: the heavies must stay
  // tracked with estimate >= true >= estimate - error, and the eviction
  // floor must respect min_estimate <= total / capacity.
  SpaceSavingSketch sk(16);
  const std::uint64_t heavy[3] = {1000, 1001, 1002};
  const std::uint64_t heavy_w[3] = {5000, 4000, 3000};
  for (int round = 0; round < 10; ++round) {
    for (int h = 0; h < 3; ++h) sk.add(heavy[h], heavy_w[h] / 10);
    for (std::uint64_t k = 0; k < 20; ++k) {
      sk.add(round * 20 + k, 7);
    }
  }
  EXPECT_LE(sk.min_estimate(), sk.total_weight() / sk.capacity());
  const auto top = sk.top(3);
  ASSERT_EQ(top.size(), 3u);
  for (int h = 0; h < 3; ++h) {
    EXPECT_EQ(top[h].key, heavy[h]);
    EXPECT_GE(top[h].estimate, heavy_w[h]);              // upper bound
    EXPECT_GE(heavy_w[h], top[h].estimate - top[h].error);  // lower bound
  }
}

TEST(SpaceSavingSketch, DeterministicAcrossIdenticalFeeds) {
  SpaceSavingSketch a(4), b(4);
  for (std::uint64_t k = 0; k < 100; ++k) {
    a.add(k % 13, k + 1);
    b.add(k % 13, k + 1);
  }
  const auto ta = a.top(4), tb = b.top(4);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].estimate, tb[i].estimate);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
}

// --- JSONL sink and cross-worker determinism ---------------------------------

workload::ScenarioConfig telemetry_scenario(workload::Protocol p) {
  workload::ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 4;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.size_dist = workload::SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 120;
  cfg.traffic.seed = 7;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_period = 1e-3;
  cfg.telemetry.samples_per_window = 5;
  return cfg;
}

TEST(TelemetryJsonl, SchemaVersionedOneRecordPerLine) {
  auto cfg = telemetry_scenario(workload::Protocol::kDctcp);
  const auto r = workload::run_scenario(cfg);
  ASSERT_NE(r.telemetry, nullptr);
  const std::string doc = r.telemetry->to_jsonl();
  ASSERT_FALSE(doc.empty());
  EXPECT_NE(doc.find("\"schema\":\"pase-telemetry\""), std::string::npos);
  EXPECT_NE(doc.find("\"version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"window\""), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"total\""), std::string::npos);
  EXPECT_NE(doc.find("\"type\":\"hot_link\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
  // Fat-tree groups: 4 tiers + 4 pods.
  EXPECT_NE(doc.find("\"name\":\"tier:core\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"pod:3\""), std::string::npos);
  // Rendering is a pure function of the summary.
  EXPECT_EQ(r.telemetry->to_jsonl(), doc);
}

TEST(TelemetryDeterminism, JsonlByteIdenticalAcrossWorkerCounts) {
  const workload::Protocol protocols[] = {workload::Protocol::kPase,
                                          workload::Protocol::kPfabric,
                                          workload::Protocol::kDctcp};
  for (const auto p : protocols) {
    auto cfg = telemetry_scenario(p);
    cfg.workers = 1;
    const auto r1 = workload::run_scenario(cfg);
    ASSERT_NE(r1.telemetry, nullptr);
    ASSERT_GT(r1.telemetry->samples, 0u);
    const std::string ref = r1.telemetry->to_jsonl();

    for (const int w : {2, 4, 8}) {
      cfg.workers = w;
      const auto rw = workload::run_scenario(cfg);
      ASSERT_NE(rw.telemetry, nullptr);
      EXPECT_EQ(rw.telemetry->to_jsonl(), ref)
          << workload::protocol_name(p) << " workers=" << w
          << " (workers_used=" << rw.workers_used << ")";
    }
  }
}

TEST(TelemetryNonPerturbation, EnablingTelemetryKeepsResultsIdentical) {
  auto cfg = telemetry_scenario(workload::Protocol::kDctcp);
  cfg.telemetry.enabled = false;
  const auto plain = workload::run_scenario(cfg);
  cfg.telemetry.enabled = true;
  const auto tele = workload::run_scenario(cfg);
  EXPECT_EQ(tele.end_time, plain.end_time);
  EXPECT_EQ(tele.data_packets_sent, plain.data_packets_sent);
  EXPECT_EQ(tele.fabric_drops, plain.fabric_drops);
  ASSERT_EQ(tele.records.size(), plain.records.size());
  for (std::size_t i = 0; i < plain.records.size(); ++i) {
    EXPECT_EQ(tele.records[i].finish, plain.records[i].finish) << i;
  }
}

}  // namespace
}  // namespace pase::obs
