// FabricTelemetry and UtilizationProbe tests.
#include <gtest/gtest.h>

#include "stats/counters.h"
#include "test_util.h"
#include "transport/dctcp.h"
#include "transport/window_sender.h"

namespace pase::stats {
namespace {

TEST(FabricTelemetry, EnumeratesEveryQueue) {
  auto n = test::make_mini_net(4);
  FabricTelemetry tel(n->sim, n->topo());
  // 4 host uplinks + 4 ToR downlinks.
  EXPECT_EQ(tel.series().size(), 8u);
  EXPECT_EQ(tel.series()[0].name, "h0.up");
}

TEST(FabricTelemetry, SamplesAtConfiguredPeriod) {
  auto n = test::make_mini_net(2);
  FabricTelemetry tel(n->sim, n->topo(), 1e-3);
  n->sim.run(10.5e-3);
  EXPECT_EQ(tel.num_samples(), 10u);
  for (const auto& s : tel.series()) {
    EXPECT_EQ(s.occupancy_pkts.size(), 10u);
  }
}

TEST(FabricTelemetry, StopEndsSampling) {
  auto n = test::make_mini_net(2);
  FabricTelemetry tel(n->sim, n->topo(), 1e-3);
  n->sim.run(3.5e-3);
  tel.stop();
  n->sim.run(10e-3);
  EXPECT_EQ(tel.num_samples(), 3u);
}

TEST(FabricTelemetry, ObservesBacklogAtBottleneck) {
  auto n = test::make_mini_net(3);
  // Two senders converge on host 2: the ToR downlink to host 2 backs up.
  auto f1 = test::make_flow(*n, 0, 2, 400 * net::kMss);
  f1.id = 1;
  auto f2 = test::make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  transport::DctcpSender s1(n->sim, n->host(0), f1, o);
  transport::DctcpSender s2(n->sim, n->host(1), f2, o);
  auto r1 = test::wire_flow(*n, s1, f1);
  auto r2 = test::wire_flow(*n, s2, f2);
  FabricTelemetry tel(n->sim, n->topo(), 50e-6);
  s1.start();
  s2.start();
  n->sim.run(2e-3);
  EXPECT_GT(tel.peak_occupancy(), 10u);
  ASSERT_NE(tel.busiest(), nullptr);
  EXPECT_EQ(tel.busiest()->name, "tor->h2");
  tel.stop();
  n->sim.run(1.0);
}

TEST(UtilizationProbe, MeasuresBusyFraction) {
  auto n = test::make_mini_net(2);
  auto flow = test::make_flow(*n, 0, 1, 800 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;  // fixed window (base sender has no growth law)
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = test::wire_flow(*n, s, flow);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  s.start();
  // 800 packets at 1 Gbps ~ 9.6 ms; measure utilization over the first 5 ms.
  n->sim.run(5e-3);
  EXPECT_GT(probe.utilization(n->sim.now()), 0.9);
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
}

TEST(UtilizationProbe, IdleLinkIsZero) {
  auto n = test::make_mini_net(2);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  n->sim.schedule(1e-3, [] {});
  n->sim.run();
  EXPECT_DOUBLE_EQ(probe.utilization(n->sim.now()), 0.0);
}

}  // namespace
}  // namespace pase::stats
