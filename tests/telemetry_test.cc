// FabricTelemetry and UtilizationProbe tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stats/counters.h"
#include "test_util.h"
#include "transport/dctcp.h"
#include "transport/window_sender.h"

namespace pase::stats {
namespace {

TEST(FabricTelemetry, EnumeratesEveryQueue) {
  auto n = test::make_mini_net(4);
  FabricTelemetry tel(n->sim, n->topo());
  // 4 host uplinks + 4 ToR downlinks.
  EXPECT_EQ(tel.series().size(), 8u);
  EXPECT_EQ(tel.series()[0].name, "h0.up");
}

TEST(FabricTelemetry, SamplesAtConfiguredPeriod) {
  auto n = test::make_mini_net(2);
  FabricTelemetry tel(n->sim, n->topo(), 1e-3);
  n->sim.run(10.5e-3);
  EXPECT_EQ(tel.num_samples(), 10u);
  for (const auto& s : tel.series()) {
    EXPECT_EQ(s.occupancy_pkts.size(), 10u);
  }
}

TEST(FabricTelemetry, StopEndsSampling) {
  auto n = test::make_mini_net(2);
  FabricTelemetry tel(n->sim, n->topo(), 1e-3);
  n->sim.run(3.5e-3);
  tel.stop();
  n->sim.run(10e-3);
  EXPECT_EQ(tel.num_samples(), 3u);
}

TEST(FabricTelemetry, ObservesBacklogAtBottleneck) {
  auto n = test::make_mini_net(3);
  // Two senders converge on host 2: the ToR downlink to host 2 backs up.
  auto f1 = test::make_flow(*n, 0, 2, 400 * net::kMss);
  f1.id = 1;
  auto f2 = test::make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  transport::DctcpSender s1(n->sim, n->host(0), f1, o);
  transport::DctcpSender s2(n->sim, n->host(1), f2, o);
  auto r1 = test::wire_flow(*n, s1, f1);
  auto r2 = test::wire_flow(*n, s2, f2);
  FabricTelemetry tel(n->sim, n->topo(), 50e-6);
  s1.start();
  s2.start();
  n->sim.run(2e-3);
  EXPECT_GT(tel.peak_occupancy(), 10u);
  ASSERT_NE(tel.busiest(), nullptr);
  EXPECT_EQ(tel.busiest()->name, "tor->h2");
  tel.stop();
  n->sim.run(1.0);
}

TEST(UtilizationProbe, MeasuresBusyFraction) {
  auto n = test::make_mini_net(2);
  auto flow = test::make_flow(*n, 0, 1, 800 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;  // fixed window (base sender has no growth law)
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = test::wire_flow(*n, s, flow);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  s.start();
  // 800 packets at 1 Gbps ~ 9.6 ms; measure utilization over the first 5 ms.
  n->sim.run(5e-3);
  EXPECT_GT(probe.utilization(n->sim.now()), 0.9);
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
}

TEST(UtilizationProbe, IdleLinkIsZero) {
  auto n = test::make_mini_net(2);
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  n->sim.schedule(1e-3, [] {});
  n->sim.run();
  EXPECT_DOUBLE_EQ(probe.utilization(n->sim.now()), 0.0);
}

TEST(UtilizationProbe, NeverReportsMoreThanFullyBusy) {
  auto n = test::make_mini_net(2);
  auto flow = test::make_flow(*n, 0, 1, 100 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 50;
  transport::WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = test::wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1e-3);
  // Probe over a window much shorter than one packet serialization: the
  // link's busy_time can exceed the elapsed window, but utilization is a
  // fraction and must clamp to [0, 1].
  UtilizationProbe probe(n->host(0).uplink(), n->sim.now());
  n->sim.run(n->sim.now() + 1e-9);
  const double u = probe.utilization(n->sim.now());
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 1.0);
  n->sim.run(1.0);
}

TEST(FabricTelemetry, FoldsIntoMetricsRegistry) {
  auto n = test::make_mini_net(3);
  auto f1 = test::make_flow(*n, 0, 2, 400 * net::kMss);
  f1.id = 1;
  auto f2 = test::make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  transport::DctcpSender s1(n->sim, n->host(0), f1, o);
  transport::DctcpSender s2(n->sim, n->host(1), f2, o);
  auto r1 = test::wire_flow(*n, s1, f1);
  auto r2 = test::wire_flow(*n, s2, f2);
  FabricTelemetry tel(n->sim, n->topo(), 50e-6);
  s1.start();
  s2.start();
  n->sim.run(2e-3);
  tel.stop();

  obs::MetricsRegistry reg;
  tel.fold_into(reg);
  // One occupancy series per queue, exported with the telemetry's names.
  const auto* series = reg.find_series("fabric.queue.tor->h2.occupancy");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->size(), tel.num_samples());
  EXPECT_GT(*std::max_element(series->begin(), series->end()), 10.0);
  // Per-queue and aggregate enqueue/drop/mark counters are present.
  EXPECT_GT(reg.counter_value("fabric.enqueues"), 0u);
  EXPECT_EQ(reg.counter_value("fabric.queue.h0.up.drops") +
                reg.counter_value("fabric.queue.h0.up.marks"),
            n->host(0).uplink_queue().drops() +
                n->host(0).uplink_queue().marks());
  n->sim.run(1.0);
}

TEST(FabricTelemetry, LabelsQueuesWithTraceIds) {
  auto n = test::make_mini_net(4);
  const std::vector<std::string> names = label_fabric_queues(n->topo());
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "h0.up");
  // Trace ids follow the same walk, so drop records can resolve the name.
  EXPECT_EQ(n->host(0).uplink_queue().trace_id(), 0u);
  EXPECT_EQ(n->host(3).uplink_queue().trace_id(), 3u);
}

TEST(FabricTelemetry, SamplesOnRawEventPath) {
  auto n = test::make_mini_net(2);
  const std::uint64_t before = n->sim.heap_closure_events();
  FabricTelemetry tel(n->sim, n->topo(), 1e-3);
  n->sim.run(10.5e-3);
  EXPECT_EQ(tel.num_samples(), 10u);
  EXPECT_EQ(n->sim.heap_closure_events(), before)
      << "telemetry sampling spilled a closure to the heap";
  tel.stop();
}

}  // namespace
}  // namespace pase::stats
