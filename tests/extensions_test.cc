// Tests for the extension features: empirical size distributions and
// task-aware arbitration (paper §3.1.1's "task-id" criterion).
#include <gtest/gtest.h>

#include "core/arbitration_plane.h"
#include "net/priority_queue_bank.h"
#include "workload/distributions.h"
#include "workload/scenario.h"

namespace pase::workload {
namespace {

TEST(PiecewiseCdf, SamplesWithinSupport) {
  sim::Rng rng(3);
  const auto& cdf = web_search_cdf();
  for (int i = 0; i < 5000; ++i) {
    const double x = cdf.sample(rng);
    EXPECT_GE(x, cdf.points().front().first);
    EXPECT_LE(x, cdf.points().back().first);
  }
}

TEST(PiecewiseCdf, EmpiricalMeanMatchesAnalyticMean) {
  sim::Rng rng(5);
  const auto& cdf = web_search_cdf();
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += cdf.sample(rng);
  EXPECT_NEAR(sum / n, cdf.mean(), 0.03 * cdf.mean());
}

TEST(PiecewiseCdf, MedianRespectsCdf) {
  // Half the web-search samples should be below the 0.5-quantile point.
  sim::Rng rng(7);
  const auto& cdf = web_search_cdf();
  // Interpolate the x at p=0.5 by sampling u=0.5 deterministically: instead,
  // count the fraction below 53 KB (p=0.53 point).
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) below += cdf.sample(rng) <= 53e3 ? 1 : 0;
  EXPECT_NEAR(below / static_cast<double>(n), 0.53, 0.02);
}

TEST(PiecewiseCdf, DataMiningIsHeavierTailedThanWebSearch) {
  EXPECT_GT(data_mining_cdf().mean(), web_search_cdf().mean());
}

TEST(SizeDistributions, GeneratorUsesEmpiricalSizes) {
  WorkloadConfig cfg;
  cfg.num_hosts = 10;
  cfg.num_flows = 3000;
  cfg.size_dist = SizeDistribution::kWebSearch;
  cfg.num_background_flows = 0;
  cfg.seed = 9;
  double max_size = 0;
  double sum = 0;
  for (const auto& f : generate_flows(cfg)) {
    max_size = std::max(max_size, static_cast<double>(f.size_bytes));
    sum += static_cast<double>(f.size_bytes);
  }
  // Uniform [2,198] KB could never produce multi-MB flows.
  EXPECT_GT(max_size, 1e6);
  EXPECT_NEAR(sum / 3000, web_search_cdf().mean(),
              0.2 * web_search_cdf().mean());
}

TEST(SizeDistributions, ArrivalRateUsesDistributionMean) {
  WorkloadConfig cfg;
  cfg.num_hosts = 10;
  cfg.load = 0.5;
  cfg.size_dist = SizeDistribution::kWebSearch;
  const double uniform_mean = (cfg.size_min_bytes + cfg.size_max_bytes) / 2;
  const double rate = arrival_rate_per_sec(cfg);
  cfg.size_dist = SizeDistribution::kUniform;
  const double uniform_rate = arrival_rate_per_sec(cfg);
  // Web-search mean is far larger than the uniform default, so the arrival
  // rate must be proportionally smaller to offer the same load.
  EXPECT_LT(rate, uniform_rate);
  EXPECT_NEAR(rate / uniform_rate, uniform_mean / web_search_cdf().mean(),
              1e-6);
}

TEST(TaskAware, IncastQueriesCarryTaskIds) {
  WorkloadConfig cfg;
  cfg.num_hosts = 10;
  cfg.num_flows = 40;
  cfg.pattern = Pattern::kIncast;
  cfg.incast_fanout = 4;
  cfg.assign_task_ids = true;
  cfg.num_background_flows = 0;
  auto flows = generate_flows(cfg);
  for (int q = 0; q < 10; ++q) {
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(flows[static_cast<std::size_t>(q * 4 + i)].task_id,
                static_cast<std::uint64_t>(q + 1));
    }
  }
}

TEST(TaskAware, NoTaskIdsUnlessRequested) {
  WorkloadConfig cfg;
  cfg.num_hosts = 10;
  cfg.num_flows = 40;
  cfg.pattern = Pattern::kIncast;
  cfg.num_background_flows = 0;
  for (const auto& f : generate_flows(cfg)) EXPECT_EQ(f.task_id, 0u);
}

TEST(TaskAware, EarlierTaskOutranksSmallerFlow) {
  // Under kTaskAware, a big flow of task 1 must outrank a tiny flow of
  // task 2 at the arbitrator.
  sim::Simulator sim;
  topo::SingleRackConfig rc;
  rc.num_hosts = 3;
  topo::QueueFactory factory = [](double) -> std::unique_ptr<net::Queue> {
    return std::make_unique<net::PriorityQueueBank>(8, 500, 65);
  };
  auto rack = topo::build_single_rack(sim, rc, factory);
  core::PaseConfig cfg;
  cfg.criterion = core::Criterion::kTaskAware;
  core::ArbitrationPlane plane(sim, core::PlaneTopology::from(rack), cfg);

  struct C : core::ArbitrationClient {
    void arbitration_update(int, double, bool) override {}
  } c1, c2;
  transport::Flow f1;
  f1.id = 1;
  f1.src = rack.topo->host(0)->id();
  f1.dst = rack.topo->host(1)->id();
  f1.size_bytes = 500'000;
  f1.task_id = 1;
  transport::Flow f2 = f1;
  f2.id = 2;
  f2.size_bytes = 5'000;
  f2.task_id = 2;
  auto r1 = plane.register_sender(c1, f1, 500e3, 1e9);
  auto r2 = plane.register_sender(c2, f2, 5e3, 1e9);
  EXPECT_EQ(r1.prio_queue, 0);
  EXPECT_GE(r2.prio_queue, 1);  // SJF would have put the 5 KB flow on top
}

TEST(TaskAware, ScenarioCompletesWithTaskCriterion) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.pattern = Pattern::kIncast;
  cfg.traffic.incast_fanout = 4;
  cfg.traffic.assign_task_ids = true;
  cfg.traffic.num_flows = 120;
  cfg.traffic.load = 0.6;
  cfg.traffic.seed = 12;
  cfg.pase.criterion = core::Criterion::kTaskAware;
  auto res = run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
}

TEST(TaskAware, ImprovesQueryCompletionOverSjf) {
  auto run = [](core::Criterion crit) {
    ScenarioConfig cfg;
    cfg.protocol = Protocol::kPase;
    cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 20;
    cfg.traffic.pattern = Pattern::kIncast;
    cfg.traffic.incast_fanout = 6;
    cfg.traffic.assign_task_ids = true;
    cfg.traffic.num_flows = 300;
    cfg.traffic.load = 0.8;
    cfg.traffic.num_background_flows = 0;
    cfg.traffic.seed = 14;
    cfg.pase.criterion = crit;
    auto res = run_scenario(cfg);
    // Query completion: max FCT within each fanout-sized group.
    double sum = 0;
    int queries = 0, in_query = 0;
    double worst = 0;
    for (const auto& r : res.records) {
      worst = std::max(worst, r.completed() ? r.fct() : 1.0);
      if (++in_query == 6) {
        sum += worst;
        ++queries;
        in_query = 0;
        worst = 0;
      }
    }
    return sum / queries;
  };
  const double sjf = run(core::Criterion::kShortestFlowFirst);
  const double task = run(core::Criterion::kTaskAware);
  EXPECT_LT(task, sjf);
}

TEST(HeavyTail, PaseHandlesWebSearchWorkload) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.size_dist = SizeDistribution::kWebSearch;
  cfg.traffic.num_flows = 80;
  cfg.traffic.load = 0.6;
  cfg.traffic.seed = 15;
  cfg.max_duration = 60.0;
  auto res = run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
  EXPECT_EQ(res.fabric_drops, 0u);
}

}  // namespace
}  // namespace pase::workload
