// Golden equivalence for the profile-registry refactor: every protocol's
// seed scenario, run through the new proto::TransportProfile path, must be
// bit-identical to the frozen pre-refactor monolith (tests/legacy_scenario).
// Comparing two live runs (instead of baked hashes) keeps the golden robust
// across compilers and FP-contraction settings while still catching any
// behavioral drift in the refactored path: ordering of construction,
// control-plane wiring, queue parameters, RTT estimation.
#include <gtest/gtest.h>

#include <string>

#include "legacy_scenario.h"
#include "record_compare.h"
#include "workload/scenario.h"

namespace pase {
namespace {

using workload::Protocol;
using workload::ScenarioConfig;
using workload::ScenarioResult;

class GoldenEquivalence : public ::testing::TestWithParam<Protocol> {};

TEST_P(GoldenEquivalence, SingleRackSeedScenario) {
  ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 60;
  cfg.traffic.seed = 7;

  const ScenarioResult golden = legacy::run_scenario(cfg);
  const ScenarioResult current = workload::run_scenario(cfg);
  expect_identical(golden, current);
}

TEST_P(GoldenEquivalence, ThreeTierLeftRightScenario) {
  ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
  cfg.tree.num_tors = 4;
  cfg.tree.hosts_per_tor = 4;
  cfg.tree.tors_per_agg = 2;
  cfg.traffic.pattern = workload::Pattern::kLeftRight;
  cfg.traffic.load = 0.4;
  cfg.traffic.num_flows = 80;
  cfg.traffic.seed = 21;

  const ScenarioResult golden = legacy::run_scenario(cfg);
  const ScenarioResult current = workload::run_scenario(cfg);
  expect_identical(golden, current);
}

TEST_P(GoldenEquivalence, DeadlineWorkloadScenario) {
  // Deadlines flip PASE to EDF arbitration and enable PDQ early termination;
  // both knobs are set by the profile now, so cover that branch too.
  ScenarioConfig cfg;
  cfg.protocol = GetParam();
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 13;
  cfg.traffic.deadline_min = 5e-3;
  cfg.traffic.deadline_max = 25e-3;

  const ScenarioResult golden = legacy::run_scenario(cfg);
  const ScenarioResult current = workload::run_scenario(cfg);
  expect_identical(golden, current);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, GoldenEquivalence,
                         ::testing::Values(Protocol::kDctcp, Protocol::kD2tcp,
                                           Protocol::kL2dct, Protocol::kPdq,
                                           Protocol::kPfabric,
                                           Protocol::kPase),
                         [](const auto& info) {
                           return std::string(
                               workload::protocol_name(info.param));
                         });

}  // namespace
}  // namespace pase
