// Structural-vs-BFS route equivalence and compressed-table semantics.
//
// The fat-tree route synthesizer installs tables arithmetically (compressed
// windows + intervals + shared default groups); Topology::build_routes_bfs
// is the generic per-destination oracle. These tests pin exact equality —
// same route_ports (port sets AND order, hence identical ECMP member
// selection) and same port_for decisions on every switch — for k=4/8/16,
// partial pods, and oversubscribed edges, plus tree degeneration, the
// set_route group-release regression, shared-group safety, and path-cache
// purity.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/droptail_queue.h"
#include "net/switch.h"
#include "topo/fat_tree.h"
#include "topo/three_tier.h"
#include "trace_fingerprint.h"
#include "workload/scenario.h"

namespace pase {
namespace {

topo::QueueFactory droptail_factory() {
  return [](double) { return std::make_unique<net::DropTailQueue>(100); };
}

// Every (switch, destination) pair: identical port lists from the structural
// tables (a) and the BFS oracle re-run over the same fabric (b); then every
// grouped destination hashes flows to the same port on both.
void expect_equivalent_tables(const topo::FatTreeConfig& cfg) {
  sim::Simulator sim_a, sim_b;
  const topo::FatTree a = topo::build_fat_tree(sim_a, cfg, droptail_factory());
  const topo::FatTree b = topo::build_fat_tree(sim_b, cfg, droptail_factory());
  b.topo->build_routes_bfs();  // overwrite structural tables with the oracle

  const auto n_nodes = static_cast<net::NodeId>(
      b.topo->num_hosts() + b.topo->switches().size());
  for (std::size_t s = 0; s < a.topo->switches().size(); ++s) {
    const net::Switch* sa = a.topo->switches()[s].get();
    const net::Switch* sb = b.topo->switches()[s].get();
    for (net::NodeId dst = 0; dst <= n_nodes + 2; ++dst) {
      ASSERT_EQ(sa->route_ports(dst), sb->route_ports(dst))
          << sa->name() << " -> node " << dst;
    }
  }

  // port_for: sample flows between remote host pairs (both directions, so
  // every tier's groups are exercised) — selections must match bit for bit.
  const net::NodeId h0 = a.topo->host(0)->id();
  const net::NodeId hn =
      a.topo->host(a.topo->num_hosts() - 1)->id();
  for (net::FlowId f = 1; f <= 200; ++f) {
    const net::PacketPtr fwd = net::make_data_packet(f, h0, hn, 0);
    const net::PacketPtr rev = net::make_data_packet(f, hn, h0, 0);
    for (std::size_t s = 0; s < a.topo->switches().size(); ++s) {
      ASSERT_EQ(a.topo->switches()[s]->port_for(*fwd),
                b.topo->switches()[s]->port_for(*fwd))
          << a.topo->switches()[s]->name() << " flow " << f;
      ASSERT_EQ(a.topo->switches()[s]->port_for(*rev),
                b.topo->switches()[s]->port_for(*rev))
          << a.topo->switches()[s]->name() << " flow " << f << " (reverse)";
    }
  }
}

TEST(StructuralRoutes, MatchesBfsOracleK4) {
  topo::FatTreeConfig cfg;
  cfg.ecmp_seed = 3;
  expect_equivalent_tables(cfg);
}

TEST(StructuralRoutes, MatchesBfsOracleK8) {
  topo::FatTreeConfig cfg;
  cfg.k = 8;
  expect_equivalent_tables(cfg);
}

TEST(StructuralRoutes, MatchesBfsOracleK16) {
  topo::FatTreeConfig cfg;
  cfg.k = 16;
  expect_equivalent_tables(cfg);
}

TEST(StructuralRoutes, MatchesBfsOracleOnPartialPods) {
  topo::FatTreeConfig cfg;
  cfg.k = 8;
  cfg.num_pods = 3;
  expect_equivalent_tables(cfg);
}

TEST(StructuralRoutes, MatchesBfsOracleOnSinglePod) {
  topo::FatTreeConfig cfg;
  cfg.num_pods = 1;
  expect_equivalent_tables(cfg);
}

TEST(StructuralRoutes, MatchesBfsOracleOversubscribed) {
  topo::FatTreeConfig cfg;
  cfg.k = 8;
  cfg.oversubscription = 2.0;
  expect_equivalent_tables(cfg);
}

// Trees have no structural installer: build_routes stays the BFS path and
// the tables keep their legacy dense single-path shape (no groups at all on
// a tree — every destination has a unique min-hop port).
TEST(StructuralRoutes, TreesDegenerateToSinglePathBfs) {
  sim::Simulator sim;
  const topo::ThreeTier t =
      topo::build_three_tier(sim, topo::ThreeTierConfig{}, droptail_factory());
  const auto n_nodes = static_cast<net::NodeId>(
      t.topo->num_hosts() + t.topo->switches().size());
  for (const auto& sw : t.topo->switches()) {
    EXPECT_EQ(sw->num_route_groups(), 0u) << sw->name();
    for (net::NodeId dst = 0; dst < n_nodes; ++dst) {
      if (dst == sw->id()) continue;
      ASSERT_EQ(sw->route_width(dst), 1) << sw->name() << " -> " << dst;
      const net::PacketPtr p = net::make_data_packet(1, 0, dst, 0);
      ASSERT_EQ(sw->port_for(*p), sw->route_for(dst));
    }
  }
}

// Per-switch route state must be sublinear in fabric size: quadrupling the
// hosts (k=8 -> k=16 is 8x) should grow the per-switch footprint by roughly
// the pod size (~4x), never proportionally to total hosts.
TEST(StructuralRoutes, PerSwitchStateSublinearInHosts) {
  sim::Simulator sim8, sim16;
  topo::FatTreeConfig c8, c16;
  c8.k = 8;
  c16.k = 16;
  const topo::FatTree t8 = topo::build_fat_tree(sim8, c8, droptail_factory());
  const topo::FatTree t16 =
      topo::build_fat_tree(sim16, c16, droptail_factory());
  const double per_sw8 =
      static_cast<double>(t8.topo->route_table_bytes()) /
      static_cast<double>(t8.topo->switches().size());
  const double per_sw16 =
      static_cast<double>(t16.topo->route_table_bytes()) /
      static_cast<double>(t16.topo->switches().size());
  const double host_ratio = static_cast<double>(t16.topo->num_hosts()) /
                            static_cast<double>(t8.topo->num_hosts());  // 8x
  EXPECT_LT(per_sw16 / per_sw8, host_ratio / 1.5);
}

// --- set_route group release (regression) ------------------------------------

class CompressedSwitch : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Switch sw{0, "leak-sw"};
  net::Host a{1, "a"}, b{2, "b"};

  void SetUp() override {
    sw.add_port(std::make_unique<net::DropTailQueue>(16),
                std::make_unique<net::Link>(sim, 1e9, 1e-6, "sw->a"), &a);
    sw.add_port(std::make_unique<net::DropTailQueue>(16),
                std::make_unique<net::Link>(sim, 1e9, 1e-6, "sw->b"), &b);
  }
};

TEST_F(CompressedSwitch, SetRouteReleasesTheOverwrittenGroup) {
  sw.set_route_group(99, {0, 1});
  ASSERT_EQ(sw.num_route_groups(), 1u);
  // Overwriting a grouped destination with a single-path route used to leak
  // the group slot forever.
  sw.set_route(99, 0);
  EXPECT_EQ(sw.num_route_groups(), 0u);
  EXPECT_EQ(sw.route_width(99), 1);
  EXPECT_EQ(sw.route_for(99), 0);
  // The released slot is recycled by the next group install.
  sw.set_route_group(99, {1, 0});
  EXPECT_EQ(sw.num_route_groups(), 1u);
  EXPECT_EQ(sw.route_for(99), 1);
}

TEST_F(CompressedSwitch, SinglePortGroupOverwriteAlsoReleases) {
  sw.set_route_group(42, {0, 1});
  ASSERT_EQ(sw.num_route_groups(), 1u);
  // The degenerate single-port form routes through set_route and must
  // release just the same.
  sw.set_route_group(42, {1});
  EXPECT_EQ(sw.num_route_groups(), 0u);
  EXPECT_EQ(sw.route_for(42), 1);
}

TEST_F(CompressedSwitch, RepeatedOverwriteCyclesDoNotAccumulateGroups) {
  for (int i = 0; i < 100; ++i) {
    sw.set_route_group(7, {0, 1});
    sw.set_route(7, i % 2);
  }
  EXPECT_EQ(sw.num_route_groups(), 0u);
}

// --- Shared groups -----------------------------------------------------------

TEST_F(CompressedSwitch, SharedGroupsSurvivePerDestinationOverwrites) {
  const std::int32_t shared = sw.add_shared_group({0, 1});
  sw.set_route_entry(10, shared);
  sw.set_route_entry(11, shared);
  ASSERT_EQ(sw.num_route_groups(), 1u);
  EXPECT_EQ(sw.route_width(10), 2);
  // Overwriting one destination must not release (or clobber) the group the
  // other destination still routes through.
  sw.set_route(10, 0);
  EXPECT_EQ(sw.num_route_groups(), 1u);
  EXPECT_EQ(sw.route_width(11), 2);
  // Installing an owned group over a shared-entry slot allocates a fresh
  // slot instead of rewriting the shared group in place.
  sw.set_route_group(11, {1, 0});
  EXPECT_EQ(sw.num_route_groups(), 2u);
  sw.set_route_entry(12, shared);
  EXPECT_EQ(sw.route_width(12), 2);
  EXPECT_EQ(sw.route_ports(12), (std::vector<int>{0, 1}));
}

TEST_F(CompressedSwitch, SingleMemberSharedGroupIsAPlainPortEntry) {
  const std::int32_t entry = sw.add_shared_group({1});
  EXPECT_EQ(entry, 1);
  EXPECT_EQ(sw.num_route_groups(), 0u);
}

// --- Compressed layers -------------------------------------------------------

TEST_F(CompressedSwitch, IntervalAndDefaultLayersAreBoundedAndShadowed) {
  sw.set_dense_window(10, 12);
  sw.set_route_id_bound(100);
  const std::int32_t shared = sw.add_shared_group({0, 1});
  sw.set_default_route_entry(shared);
  sw.add_route_interval(20, 30, 1);
  sw.add_route_interval_strided(30, 34, 0, 2);  // 30,31 -> 0; 32,33 -> 1
  sw.set_route(10, 0);  // in-window single path

  EXPECT_EQ(sw.route_for(10), 0);
  // In-window kNoRoute is authoritative: no fall-through to the default.
  EXPECT_EQ(sw.route_width(11), 0);
  // Constant and strided intervals.
  EXPECT_EQ(sw.route_for(25), 1);
  EXPECT_EQ(sw.route_for(30), 0);
  EXPECT_EQ(sw.route_for(31), 0);
  EXPECT_EQ(sw.route_for(33), 1);
  // Gaps inside the bound hit the default group.
  EXPECT_EQ(sw.route_width(50), 2);
  EXPECT_EQ(sw.route_ports(50), (std::vector<int>{0, 1}));
  // At/above the bound: unrouted, even though a default exists.
  EXPECT_EQ(sw.route_width(100), 0);
  EXPECT_EQ(sw.route_width(5000), 0);
  // Grouped selection through the default is the usual per-flow hash.
  const net::PacketPtr p = net::make_data_packet(3, 1, 50, 0);
  const int port = sw.port_for(*p);
  EXPECT_TRUE(port == 0 || port == 1);

  sw.clear_routes();
  EXPECT_EQ(sw.num_route_groups(), 0u);
  EXPECT_EQ(sw.route_width(50), 0);
  EXPECT_EQ(sw.route_width(10), 0);
}

// --- Path cache --------------------------------------------------------------

TEST_F(CompressedSwitch, PathCacheIsAPureMemo) {
  sw.set_route_group(99, {0, 1});
  // Record selections with the cache off...
  sw.set_path_cache_capacity(0);
  std::vector<int> uncached;
  for (net::FlowId f = 1; f <= 500; ++f) {
    uncached.push_back(sw.port_for(*net::make_data_packet(f, 1, 99, 0)));
  }
  // ...then with a deliberately tiny (thrashing) cache, twice, so hits,
  // misses and overwrites all occur: selections must be identical.
  sw.set_path_cache_capacity(4);
  for (int round = 0; round < 2; ++round) {
    for (net::FlowId f = 1; f <= 500; ++f) {
      EXPECT_EQ(sw.port_for(*net::make_data_packet(f, 1, 99, 0)),
                uncached[static_cast<std::size_t>(f - 1)])
          << "flow " << f << " round " << round;
    }
  }
}

TEST_F(CompressedSwitch, PathCacheKeysOnFullFlowIdentity) {
  // ACKs reverse src/dst under the same flow id: the memo must treat the two
  // directions as distinct keys, matching the hash exactly.
  sw.set_route_group(99, {0, 1});
  sw.set_route_group(98, {1, 0});
  for (net::FlowId f = 1; f <= 200; ++f) {
    const net::PacketPtr fwd = net::make_data_packet(f, 1, 99, 0);
    const net::PacketPtr rev = net::make_data_packet(f, 99, 98, 0);
    const int pf = sw.port_for(*fwd);
    const int pr = sw.port_for(*rev);
    sw.set_path_cache_capacity(1024);  // also clears: next lookups re-derive
    EXPECT_EQ(sw.port_for(*fwd), pf);
    EXPECT_EQ(sw.port_for(*rev), pr);
  }
}

TEST_F(CompressedSwitch, SeedChangeInvalidatesCachedSelections) {
  sw.set_route_group(99, {0, 1});
  // Warm the cache under seed 0, then reseed: selections must match a
  // fresh switch configured with the new seed from scratch (stale cached
  // ports would break bit-reproducibility of reseeded runs).
  for (net::FlowId f = 1; f <= 300; ++f) {
    (void)sw.port_for(*net::make_data_packet(f, 1, 99, 0));
  }
  sw.set_ecmp_seed(1234);

  net::Switch fresh{0, "fresh"};
  net::Host fa{1, "fa"}, fb{2, "fb"};
  fresh.add_port(std::make_unique<net::DropTailQueue>(16),
                 std::make_unique<net::Link>(sim, 1e9, 1e-6, "f->a"), &fa);
  fresh.add_port(std::make_unique<net::DropTailQueue>(16),
                 std::make_unique<net::Link>(sim, 1e9, 1e-6, "f->b"), &fb);
  fresh.set_route_group(99, {0, 1});
  fresh.set_ecmp_seed(1234);
  for (net::FlowId f = 1; f <= 300; ++f) {
    const net::PacketPtr p = net::make_data_packet(f, 1, 99, 0);
    EXPECT_EQ(sw.port_for(*p), fresh.port_for(*p)) << "flow " << f;
  }
}

// End-to-end: a fat-tree scenario fingerprint is identical with the memo
// disabled on every switch — the cache provably never alters a selection.
TEST(PathCache, ScenarioFingerprintUnchangedWhenDisabled) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 4;
  cfg.fattree.fabric_rate_bps = cfg.fattree.host_rate_bps;  // congest fabric
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.8;
  cfg.traffic.num_flows = 150;
  cfg.traffic.seed = 11;
  const std::uint64_t cached = trace_fingerprint(workload::run_scenario(cfg));
  cfg.path_cache_entries = 0;
  const std::uint64_t uncached =
      trace_fingerprint(workload::run_scenario(cfg));
  EXPECT_EQ(cached, uncached);
}

}  // namespace
}  // namespace pase
