// FlowDemux dense/sparse split: the dense table must never grow past the
// configured limit, or find()'s dense fast path shadows sparse-registered
// ids with null slots and packets are silently dropped (regression: a
// non-power-of-two limit from prewarm_demux's byte budget let the doubling
// growth schedule overshoot the limit).
#include <gtest/gtest.h>

#include "net/flow_demux.h"
#include "net/host.h"

namespace pase {
namespace {

class NullSink : public net::PacketSink {
 public:
  void deliver(net::PacketPtr) override {}
};

TEST(FlowDemux, NonPowerOfTwoLimitKeepsSparseIdsFindable) {
  // 192-host three-tier style cap: 64 MB / 8 / 192 hosts = 43690 — not a
  // power of two. The demux rounds it down to 32768; ids in [32768, 65536)
  // go sparse and must stay findable even after dense inserts grow the
  // table to its ceiling.
  net::FlowDemux d;
  NullSink dense_sink, sparse_sink;
  d.set_dense_limit(43690);

  // The id range the dense table used to shadow: between the requested
  // limit (43690) and the next power of two the doubling schedule reached
  // (65536). Under the bug, 50000 registered sparse but find() indexed the
  // null dense slot and every packet of the flow vanished.
  const net::FlowId shadowed_id = 50000;
  d.insert(shadowed_id, &sparse_sink);
  // And an id between the rounded-down limit and the requested one.
  const net::FlowId sparse_id = 40000;
  d.insert(sparse_id, &sparse_sink);

  // Grow the dense table all the way to its ceiling; neither sparse id may
  // be shadowed by a null dense slot.
  const net::FlowId dense_id = 32767;  // last dense id under the round-down
  d.insert(dense_id, &dense_sink);
  EXPECT_EQ(d.find(dense_id), &dense_sink);
  EXPECT_EQ(d.find(shadowed_id), &sparse_sink);
  EXPECT_EQ(d.find(sparse_id), &sparse_sink);
  EXPECT_EQ(d.size(), 3u);

  // Unregistered ids on both sides of the split stay null.
  EXPECT_EQ(d.find(100), nullptr);
  EXPECT_EQ(d.find(33000), nullptr);

  // Erase from each table independently.
  d.erase(dense_id);
  d.erase(shadowed_id);
  d.erase(sparse_id);
  EXPECT_EQ(d.find(dense_id), nullptr);
  EXPECT_EQ(d.find(shadowed_id), nullptr);
  EXPECT_EQ(d.find(sparse_id), nullptr);
  EXPECT_EQ(d.size(), 0u);
}

TEST(FlowDemux, ReserveDenseRespectsNonPowerOfTwoLimit) {
  net::FlowDemux d;
  NullSink sink;
  d.set_dense_limit(100);  // rounds down to 64
  // Reserving past the limit must clamp, then a sparse id at the old shadow
  // range must still resolve.
  d.reserve_dense(1000);
  d.insert(80, &sink);   // >= 64: sparse
  d.insert(110, &sink);  // in [requested 100, old doubling target 128)
  EXPECT_EQ(d.find(80), &sink);
  EXPECT_EQ(d.find(110), &sink);
  d.insert(63, &sink);  // last dense id
  EXPECT_EQ(d.find(63), &sink);
  EXPECT_EQ(d.find(80), &sink);
  EXPECT_EQ(d.find(110), &sink);
}

TEST(FlowDemux, LimitClampsToFloorAndCeiling) {
  net::FlowDemux d;
  NullSink sink;
  d.set_dense_limit(1);  // below the floor: clamps to kMinDenseLimit
  d.insert(net::FlowDemux::kMinDenseLimit, &sink);  // first sparse id
  d.insert(net::FlowDemux::kMinDenseLimit - 1, &sink);  // last dense id
  EXPECT_EQ(d.find(net::FlowDemux::kMinDenseLimit), &sink);
  EXPECT_EQ(d.find(net::FlowDemux::kMinDenseLimit - 1), &sink);
}

}  // namespace
}  // namespace pase
