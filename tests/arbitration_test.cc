// Algorithm 1 (FlowTable) and LinkArbitrator unit tests.
#include <gtest/gtest.h>

#include "core/link_arbitrator.h"

namespace pase::core {
namespace {

constexpr double kGbps = 1e9;

FlowTable make_table(double capacity = kGbps, int queues = 7) {
  return FlowTable(capacity, queues, /*base_rate=*/40e6, /*timeout=*/1.0);
}

TEST(FlowTable, SoleFlowGetsTopQueueAndItsDemand) {
  auto t = make_table();
  auto r = t.update_and_arbitrate(1, 100e3, 600e6, 0.0);
  EXPECT_EQ(r.prio_queue, 0);
  EXPECT_DOUBLE_EQ(r.ref_rate, 600e6);
}

TEST(FlowTable, DemandCappedBySpareCapacity) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 700e6, 0.0);
  auto r = t.update_and_arbitrate(2, 20e3, 1e9, 0.0);  // only 300M spare
  EXPECT_EQ(r.prio_queue, 0);
  EXPECT_DOUBLE_EQ(r.ref_rate, 300e6);
}

TEST(FlowTable, FullLinkDemotesToSecondQueueAtBaseRate) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 1e9, 0.0);
  auto r = t.update_and_arbitrate(2, 20e3, 1e9, 0.0);
  EXPECT_EQ(r.prio_queue, 1);
  EXPECT_DOUBLE_EQ(r.ref_rate, 40e6);  // base rate
}

TEST(FlowTable, EachIntermediateQueueAbsorbsOneCapacityOfDemand) {
  auto t = make_table();
  // Flows of 1G demand each, increasingly less critical.
  for (int i = 1; i <= 5; ++i) {
    auto r = t.update_and_arbitrate(static_cast<net::FlowId>(i),
                                    1e3 * i, 1e9, 0.0);
    EXPECT_EQ(r.prio_queue, i - 1) << "flow " << i;
  }
}

TEST(FlowTable, OverflowFlowsClampToLowestQueue) {
  auto t = make_table(kGbps, /*queues=*/3);
  for (int i = 1; i <= 6; ++i) {
    t.update_and_arbitrate(static_cast<net::FlowId>(i), 1e3 * i, 1e9, 0.0);
  }
  auto r = t.arbitrate(6);
  EXPECT_EQ(r.prio_queue, 2);  // clamped to lowest of 3 data queues
}

TEST(FlowTable, SmallerKeyIsMoreCritical) {
  auto t = make_table();
  t.update_and_arbitrate(1, 500e3, 1e9, 0.0);
  auto r2 = t.update_and_arbitrate(2, 10e3, 1e9, 0.0);
  EXPECT_EQ(r2.prio_queue, 0);
  auto r1 = t.arbitrate(1);
  EXPECT_EQ(r1.prio_queue, 1);  // big flow displaced
}

TEST(FlowTable, UpdateReordersExistingFlow) {
  auto t = make_table();
  t.update_and_arbitrate(1, 100e3, 1e9, 0.0);
  t.update_and_arbitrate(2, 50e3, 1e9, 0.0);
  EXPECT_EQ(t.arbitrate(1).prio_queue, 1);
  // Flow 1 has drained down to 10 KB remaining: it should outrank flow 2.
  t.update_and_arbitrate(1, 10e3, 1e9, 0.0);
  EXPECT_EQ(t.arbitrate(1).prio_queue, 0);
  EXPECT_EQ(t.arbitrate(2).prio_queue, 1);
}

TEST(FlowTable, RemoveFreesCapacity) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 1e9, 0.0);
  t.update_and_arbitrate(2, 20e3, 1e9, 0.0);
  t.remove(1);
  EXPECT_FALSE(t.contains(1));
  EXPECT_EQ(t.arbitrate(2).prio_queue, 0);
}

TEST(FlowTable, StaleEntriesExpire) {
  FlowTable t(kGbps, 7, 40e6, /*timeout=*/1e-3);
  t.update_and_arbitrate(1, 10e3, 1e9, 0.0);
  // At t=5ms flow 1 hasn't refreshed: it is pruned on the next update.
  auto r = t.update_and_arbitrate(2, 20e3, 1e9, 5e-3);
  EXPECT_EQ(r.prio_queue, 0);
  EXPECT_FALSE(t.contains(1));
}

TEST(FlowTable, UnknownFlowArbitratesToLowestQueue) {
  auto t = make_table(kGbps, 5);
  auto r = t.arbitrate(42);
  EXPECT_EQ(r.prio_queue, 4);
  EXPECT_DOUBLE_EQ(r.ref_rate, 40e6);
}

TEST(FlowTable, TieBreaksByFlowId) {
  auto t = make_table();
  t.update_and_arbitrate(7, 10e3, 1e9, 0.0);
  t.update_and_arbitrate(3, 10e3, 1e9, 0.0);
  EXPECT_EQ(t.arbitrate(3).prio_queue, 0);
  EXPECT_EQ(t.arbitrate(7).prio_queue, 1);
}

TEST(FlowTable, TopQueueDemandIsCappedByCapacity) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 800e6, 0.0);
  EXPECT_DOUBLE_EQ(t.top_queue_demand(), 800e6);
  t.update_and_arbitrate(2, 20e3, 800e6, 0.0);
  EXPECT_DOUBLE_EQ(t.top_queue_demand(), kGbps);
}

TEST(FlowTable, TotalDemandIsUncapped) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 800e6, 0.0);
  t.update_and_arbitrate(2, 20e3, 800e6, 0.0);
  EXPECT_DOUBLE_EQ(t.total_demand(), 1.6e9);
}

TEST(FlowTable, CapacityChangeAffectsArbitration) {
  auto t = make_table();
  t.update_and_arbitrate(1, 10e3, 600e6, 0.0);
  t.update_and_arbitrate(2, 20e3, 600e6, 0.0);
  EXPECT_EQ(t.arbitrate(2).prio_queue, 0);  // 1.2G demand, 1G link: still fits partially
  t.set_capacity(500e6);  // delegation shrank the virtual link
  EXPECT_EQ(t.arbitrate(2).prio_queue, 1);
}

TEST(LinkArbitrator, CountsProcessedRequests) {
  PaseConfig cfg;
  LinkArbitrator arb("l", 3, kGbps, cfg);
  arb.process(1, 10e3, 1e9, 0.0);
  arb.process(1, 8e3, 1e9, 0.0);
  EXPECT_EQ(arb.processed(), 2u);
  EXPECT_EQ(arb.owner(), 3);
  EXPECT_EQ(arb.table().size(), 1u);
  arb.remove(1);
  EXPECT_EQ(arb.table().size(), 0u);
}

TEST(PaseConfig, QueueAccounting) {
  PaseConfig cfg;
  EXPECT_EQ(cfg.num_queues, 8);
  EXPECT_EQ(cfg.num_data_queues(), 7);
  EXPECT_EQ(cfg.background_queue(), 7);
  EXPECT_EQ(cfg.lowest_data_queue(), 6);
  cfg.reserve_background_queue = false;
  EXPECT_EQ(cfg.num_data_queues(), 8);
  cfg.num_queues = 3;
  cfg.reserve_background_queue = true;
  EXPECT_EQ(cfg.num_data_queues(), 2);
}

TEST(PaseConfig, BaseRateIsOnePacketPerRtt) {
  PaseConfig cfg;
  cfg.rtt = 300e-6;
  EXPECT_NEAR(cfg.base_rate_bps(), 1500.0 * 8 / 300e-6, 1.0);
}

}  // namespace
}  // namespace pase::core
