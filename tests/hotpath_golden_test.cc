// End-to-end golden fingerprints for the typed-event hot path.
//
// The table below was recorded (via tools/record_hotpath_goldens) at the
// commit immediately before the typed-event/flat-path engine rewrite, on the
// std::function-based engine. Every protocol must still produce bit-identical
// traces: the refactor is a pure performance change, and any fingerprint
// drift means event ordering (or arithmetic) changed somewhere.
//
// If a FUTURE change intentionally alters traces (new protocol feature, time
// model fix), re-record with tools/record_hotpath_goldens and say so in the
// commit message — never re-record to make a perf refactor pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>

#include "trace_fingerprint.h"

namespace pase {
namespace {

struct GoldenFingerprint {
  const char* label;
  std::uint64_t fingerprint;
};

constexpr GoldenFingerprint kGoldenFingerprints[] = {
    {"DCTCP/rack-random", 0x0c7ee6cf9123c39eull},
    {"DCTCP/incast-deadline", 0x0e9dc46bc39b7449ull},
    {"DCTCP/tree-leftright", 0x14376c3c9bebf3e3ull},
    {"D2TCP/rack-random", 0x0c7ee6cf9123c39eull},
    {"D2TCP/incast-deadline", 0x9ecacda45463f324ull},
    {"D2TCP/tree-leftright", 0x14376c3c9bebf3e3ull},
    {"L2DCT/rack-random", 0xc9988fd5d628a987ull},
    {"L2DCT/incast-deadline", 0x7ed12c6a49bf7376ull},
    {"L2DCT/tree-leftright", 0x296ed03a3ccfb809ull},
    {"PDQ/rack-random", 0x2748254a22cbd322ull},
    {"PDQ/incast-deadline", 0x3d8a583bc0705c93ull},
    {"PDQ/tree-leftright", 0x8080b1a8cfa9f49dull},
    {"pFabric/rack-random", 0x46b34f6a647c3cc6ull},
    {"pFabric/incast-deadline", 0x4444a0c257fcfa54ull},
    {"pFabric/tree-leftright", 0x016cd8d57b3104efull},
    {"PASE/rack-random", 0x997cdae9888aa8ffull},
    {"PASE/incast-deadline", 0xd664ea6979746f46ull},
    {"PASE/tree-leftright", 0xeb07f5415206b142ull},
};
// DCTCP and D2TCP intentionally share fingerprints on the non-deadline
// cases: with no deadlines, D2TCP's gamma-correction exponent is 1 and the
// two senders are algorithmically identical.

TEST(HotpathGolden, TracesMatchPreRefactorEngine) {
  const auto cases = fingerprint_battery();
  ASSERT_EQ(cases.size(), std::size(kGoldenFingerprints));
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ASSERT_EQ(cases[i].label, kGoldenFingerprints[i].label)
        << "battery order drifted from the recorded table at index " << i;
    const workload::ScenarioResult r = workload::run_scenario(cases[i].config);
    EXPECT_EQ(trace_fingerprint(r), kGoldenFingerprints[i].fingerprint)
        << "trace drift in " << cases[i].label
        << " — the engine no longer reproduces the pre-refactor schedule";
  }
}

}  // namespace
}  // namespace pase
