// Determinism guarantees: a scenario re-run with the same seed must be
// bit-identical, and the parallel SweepRunner must reproduce exactly what a
// sequential loop over the same configs produces, in submission order.
#include <gtest/gtest.h>

#include <vector>

#include "exp/sweep.h"
#include "record_compare.h"
#include "workload/scenario.h"

namespace pase {
namespace {

using workload::Protocol;
using workload::ScenarioConfig;
using workload::ScenarioResult;

ScenarioConfig small_scenario(Protocol p, double load, unsigned seed) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = 60;
  cfg.traffic.seed = seed;
  return cfg;
}

class ScenarioDeterminism : public ::testing::TestWithParam<Protocol> {};

TEST_P(ScenarioDeterminism, SameSeedSameResult) {
  const ScenarioConfig cfg = small_scenario(GetParam(), 0.6, 7);
  const ScenarioResult first = workload::run_scenario(cfg);
  const ScenarioResult second = workload::run_scenario(cfg);
  expect_identical(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ScenarioDeterminism,
                         ::testing::Values(Protocol::kDctcp, Protocol::kD2tcp,
                                           Protocol::kL2dct, Protocol::kPdq,
                                           Protocol::kPfabric, Protocol::kPase),
                         [](const auto& info) {
                           return std::string(
                               workload::protocol_name(info.param));
                         });

TEST(SweepRunnerDeterminism, ParallelMatchesSequential) {
  std::vector<ScenarioConfig> configs;
  for (double load : {0.3, 0.5, 0.7, 0.9}) {
    configs.push_back(small_scenario(Protocol::kPase, load, 11));
    configs.push_back(small_scenario(Protocol::kDctcp, load, 11));
  }

  std::vector<ScenarioResult> sequential;
  sequential.reserve(configs.size());
  for (const auto& cfg : configs) {
    sequential.push_back(workload::run_scenario(cfg));
  }

  const exp::SweepRunner runner(4);
  EXPECT_EQ(runner.threads(), 4u);
  const std::vector<ScenarioResult> parallel = runner.run(configs);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(parallel[i], sequential[i]);
  }
}

TEST(SweepRunnerDeterminism, SweepJsonStableAcrossThreadCounts) {
  std::vector<exp::SweepCase> cases;
  std::vector<ScenarioConfig> configs;
  for (double load : {0.4, 0.8}) {
    exp::SweepCase c;
    c.label = "case";
    c.config = small_scenario(Protocol::kPase, load, 3);
    configs.push_back(c.config);
    cases.push_back(std::move(c));
  }
  const auto r1 = exp::SweepRunner(1).run(configs);
  const auto r4 = exp::SweepRunner(4).run(configs);
  EXPECT_EQ(exp::sweep_to_json("x", cases, r1),
            exp::sweep_to_json("x", cases, r4));
}

TEST(SweepRunner, EmptySweepReturnsEmpty) {
  EXPECT_TRUE(exp::SweepRunner(2).run({}).empty());
}

}  // namespace
}  // namespace pase
