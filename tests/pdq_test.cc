// PDQ controller allocation logic and sender pacing/pause behaviour.
#include <gtest/gtest.h>

#include "test_util.h"
#include "transport/pdq.h"

namespace pase::transport {
namespace {

using test::make_flow;
using test::make_mini_net;
using test::wire_flow;

net::PacketPtr pdq_packet(net::FlowId flow, double remaining, double demand,
                          double deadline = 0.0, bool fin = false) {
  auto p = net::make_data_packet(flow, 0, 1, 0);
  p->fin = fin;
  p->pdq.rate = std::numeric_limits<double>::infinity();
  p->pdq.expected_remaining = remaining;
  p->pdq.demand = demand;
  p->pdq.deadline = deadline;
  return p;
}

PdqOptions no_es_opts() {
  PdqOptions o;
  o.early_start = false;
  o.utilization = 1.0;
  return o;
}

TEST(PdqController, SoleFlowGetsItsDemand) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p = pdq_packet(1, 100e3, 1e9);
  c.process(*p);
  EXPECT_FALSE(p->pdq.paused);
  EXPECT_DOUBLE_EQ(p->pdq.rate, 1e9);
}

TEST(PdqController, DemandBelowCapacityIsGrantedExactly) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p = pdq_packet(1, 100e3, 300e6);
  c.process(*p);
  EXPECT_DOUBLE_EQ(p->pdq.rate, 300e6);
}

TEST(PdqController, SecondLessCriticalFlowIsPaused) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p1 = pdq_packet(1, 50e3, 1e9);
  c.process(*p1);
  auto p2 = pdq_packet(2, 100e3, 1e9);  // larger remaining: less critical
  c.process(*p2);
  EXPECT_TRUE(p2->pdq.paused);
  EXPECT_EQ(p2->pdq.pauser, 10);
  EXPECT_DOUBLE_EQ(p2->pdq.rate, 0.0);
}

TEST(PdqController, SmallerFlowPreemptsLarger) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p1 = pdq_packet(1, 100e3, 1e9);
  c.process(*p1);
  EXPECT_FALSE(p1->pdq.paused);
  auto p2 = pdq_packet(2, 50e3, 1e9);  // more critical
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused);
  // Next packet of flow 1 is now paused.
  auto p3 = pdq_packet(1, 100e3, 1e9);
  c.process(*p3);
  EXPECT_TRUE(p3->pdq.paused);
}

TEST(PdqController, EarlierDeadlineOutranksSmallerSize) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p1 = pdq_packet(1, 10e3, 1e9, /*deadline=*/5.0);
  c.process(*p1);
  auto p2 = pdq_packet(2, 500e3, 1e9, /*deadline=*/1.0);  // big but urgent
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused);
  auto p3 = pdq_packet(1, 10e3, 1e9, 5.0);
  c.process(*p3);
  EXPECT_TRUE(p3->pdq.paused);
}

TEST(PdqController, CapacitySharedWhenFlowsAreNicLimited) {
  sim::Simulator sim;
  PdqController c(sim, 10, 10e9, no_es_opts());  // fabric link
  for (net::FlowId f = 1; f <= 10; ++f) {
    auto p = pdq_packet(f, 100e3 + 1e3 * static_cast<double>(f), 1e9);
    c.process(*p);
    EXPECT_FALSE(p->pdq.paused) << "flow " << f;
    EXPECT_DOUBLE_EQ(p->pdq.rate, 1e9);
  }
  auto p = pdq_packet(11, 500e3, 1e9);
  c.process(*p);
  EXPECT_TRUE(p->pdq.paused);  // the 11th 1G flow does not fit in 10G
}

TEST(PdqController, RateFieldTakesMinimumAlongPath) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p = pdq_packet(1, 100e3, 1e9);
  p->pdq.rate = 200e6;  // upstream already clamped
  c.process(*p);
  EXPECT_DOUBLE_EQ(p->pdq.rate, 200e6);
}

TEST(PdqController, FlowsPausedElsewhereDoNotConsumeCapacity) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  // Flow 1 (critical) is paused by another switch (node 99).
  auto p1 = pdq_packet(1, 10e3, 1e9);
  p1->pdq.pauser = 99;
  c.process(*p1);
  // Flow 2 should still get the full link here.
  auto p2 = pdq_packet(2, 100e3, 1e9);
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused);
  EXPECT_DOUBLE_EQ(p2->pdq.rate, 1e9);
}

TEST(PdqController, UpstreamPausedPacketIsLeftAlone) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p = pdq_packet(1, 10e3, 1e9);
  p->pdq.paused = true;
  p->pdq.pauser = 99;
  p->pdq.rate = 0.0;
  c.process(*p);
  EXPECT_TRUE(p->pdq.paused);
  EXPECT_EQ(p->pdq.pauser, 99);
}

TEST(PdqController, EarlyStartAdmitsNextInLineOnly) {
  sim::Simulator sim;
  PdqOptions o;
  o.early_start = true;
  o.rtt = 300e-6;
  o.early_start_rtts = 2;
  PdqController c(sim, 10, 1e9, o);
  // Blocker with ~1 RTT of data left at full rate.
  auto p1 = pdq_packet(1, 30e3, 1e9);  // 30 KB at 1G = 240 us < 2 RTT
  c.process(*p1);
  auto p2 = pdq_packet(2, 100e3, 1e9);
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused) << "next in line early-starts";
  auto p3 = pdq_packet(3, 200e3, 1e9);
  c.process(*p3);
  EXPECT_TRUE(p3->pdq.paused) << "third flow must wait";
}

TEST(PdqController, NoEarlyStartWhenBlockerFarFromDone) {
  sim::Simulator sim;
  PdqOptions o;
  o.early_start = true;
  o.rtt = 300e-6;
  o.early_start_rtts = 2;
  PdqController c(sim, 10, 1e9, o);
  auto p1 = pdq_packet(1, 5e6, 1e9);  // 40 ms of data left
  c.process(*p1);
  auto p2 = pdq_packet(2, 6e6, 1e9);  // less critical than the blocker
  c.process(*p2);
  EXPECT_TRUE(p2->pdq.paused);
}

TEST(PdqController, EarlyTerminationForInfeasibleDeadline) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9);
  // 5 MB in 1 ms at 1 Gbps is impossible (needs 40 ms).
  auto p = pdq_packet(1, 5e6, 1e9, /*deadline=*/1e-3);
  c.process(*p);
  EXPECT_TRUE(p->pdq.terminated);
}

TEST(PdqController, FeasibleDeadlineNotTerminated) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9);
  auto p = pdq_packet(1, 50e3, 1e9, /*deadline=*/10e-3);
  c.process(*p);
  EXPECT_FALSE(p->pdq.terminated);
}

TEST(PdqController, FinRemovesFlowState) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9, no_es_opts());
  auto p1 = pdq_packet(1, 10e3, 1e9);
  c.process(*p1);
  EXPECT_EQ(c.active_flows(), 1u);
  auto fin = pdq_packet(1, 1e3, 1e9, 0.0, /*fin=*/true);
  c.process(*fin);
  EXPECT_EQ(c.active_flows(), 0u);
  // Flow 2 immediately gets the link.
  auto p2 = pdq_packet(2, 100e3, 1e9);
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused);
}

TEST(PdqController, StaleEntriesAgeOut) {
  sim::Simulator sim;
  PdqOptions o = no_es_opts();
  o.entry_timeout = 1e-3;
  PdqController c(sim, 10, 1e9, o);
  auto p1 = pdq_packet(1, 10e3, 1e9);
  c.process(*p1);
  // Advance time past the timeout; the next process() prunes.
  sim.schedule(5e-3, [] {});
  sim.run();
  auto p2 = pdq_packet(2, 100e3, 1e9);
  c.process(*p2);
  EXPECT_FALSE(p2->pdq.paused);
  EXPECT_EQ(c.active_flows(), 1u);  // flow 1 pruned
}

TEST(PdqController, IgnoresAcks) {
  sim::Simulator sim;
  PdqController c(sim, 10, 1e9);
  auto ack = net::make_control_packet(net::PacketType::kAck, 1, 0, 1);
  c.process(*ack);
  EXPECT_EQ(c.active_flows(), 0u);
}

// --- PdqSender end-to-end -------------------------------------------------------

struct PdqNet {
  std::unique_ptr<test::MiniNet> n;
  std::vector<std::unique_ptr<PdqController>> controllers;

  explicit PdqNet(int hosts, PdqOptions opts = {}) {
    n = make_mini_net(hosts);
    auto cs = PdqController::attach(n->sim, *n->rack.tor, opts);
    for (auto& c : cs) controllers.push_back(std::move(c));
    for (const auto& h : n->topo().hosts()) {
      auto c = std::make_unique<PdqController>(n->sim, h->id(),
                                               h->nic_rate_bps(), opts);
      PdqController* raw = c.get();
      h->add_send_hook([raw](net::Packet& p) { raw->process(p); });
      controllers.push_back(std::move(c));
    }
  }
};

TEST(PdqSender, CompletesAndPacesAtLineRate) {
  PdqNet net(2);
  auto flow = make_flow(*net.n, 0, 1, 100 * net::kMss);
  PdqSender s(net.n->sim, net.n->host(0), flow);
  auto recv = wire_flow(*net.n, s, flow);
  s.start();
  net.n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  // Service at ~1G plus the 1-RTT SYN setup.
  const double service = 100 * 1500.0 * 8 / 1e9;
  EXPECT_GT(recv->completion_time(), service);
  EXPECT_LT(recv->completion_time(), service + 2e-3);
}

TEST(PdqSender, ShortFlowPreemptsLongFlow) {
  PdqNet net(3);
  auto big = make_flow(*net.n, 0, 2, 2000 * net::kMss);
  big.id = 1;
  auto small = make_flow(*net.n, 1, 2, 50 * net::kMss);
  small.id = 2;
  PdqSender s1(net.n->sim, net.n->host(0), big);
  PdqSender s2(net.n->sim, net.n->host(1), small);
  auto r1 = wire_flow(*net.n, s1, big);
  auto r2 = wire_flow(*net.n, s2, small);
  s1.start();
  net.n->sim.schedule_at(3e-3, [&] { s2.start(); });
  net.n->sim.run(1.0);
  ASSERT_TRUE(r1->complete());
  ASSERT_TRUE(r2->complete());
  // The small flow runs at ~line rate despite starting mid-way through big.
  const double small_fct = r2->completion_time() - 3e-3;
  EXPECT_LT(small_fct, 50 * 1500.0 * 8 / 1e9 + 3e-3);
  // And the big flow was paused meanwhile: it ends after the small one.
  EXPECT_GT(r1->completion_time(), r2->completion_time());
}

TEST(PdqSender, PausedFlowKeepsProbing) {
  PdqNet net(3);
  auto big = make_flow(*net.n, 0, 2, 3000 * net::kMss);
  big.id = 1;
  auto small = make_flow(*net.n, 1, 2, 600 * net::kMss);
  small.id = 2;
  PdqSender s1(net.n->sim, net.n->host(0), big);
  PdqSender s2(net.n->sim, net.n->host(1), small);
  auto r1 = wire_flow(*net.n, s1, big);
  auto r2 = wire_flow(*net.n, s2, small);
  s1.start();
  net.n->sim.schedule_at(1e-3, [&] { s2.start(); });
  // While the small flow runs, the big one must be paused.
  net.n->sim.run(4e-3);
  EXPECT_TRUE(s1.paused());
  net.n->sim.run(1.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
}

TEST(PdqSender, TerminatesInfeasibleDeadlineFlow) {
  PdqNet net(2);
  auto flow = make_flow(*net.n, 0, 1, 5'000'000, /*deadline=*/1e-3);
  PdqSender s(net.n->sim, net.n->host(0), flow);
  auto recv = wire_flow(*net.n, s, flow);
  bool completed_cb = false;
  s.on_complete = [&](Sender&) { completed_cb = true; };
  s.start();
  net.n->sim.run(1.0);
  EXPECT_TRUE(s.terminated());
  EXPECT_TRUE(completed_cb);
  EXPECT_FALSE(recv->complete());
}

TEST(PdqSender, RecoversFromLossViaTimeout) {
  // Drop one mid-flow data packet once.
  int dropped = 0;
  auto factory = test::FaultQueue::wrap_factory(
      [](double) { return std::make_unique<net::DropTailQueue>(100); },
      [&dropped](const net::Packet& p) {
        if (p.type == net::PacketType::kData && p.seq == 20 && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 60 * net::kMss);
  PdqSender s(n->sim, n->host(0), flow);  // no controllers: rate unset...
  // Without controllers the rate field stays infinite; the host send hook is
  // absent, so grant the flow a rate by processing through one controller.
  PdqController c(n->sim, n->host(0).id(), 1e9);
  n->host(0).add_send_hook([&c](net::Packet& p) { c.process(p); });
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_EQ(dropped, 1);
  EXPECT_GE(s.retransmissions(), 1u);
}

}  // namespace
}  // namespace pase::transport
