// Frozen copy of src/workload/scenario.cc as it stood before the
// profile-registry refactor (PR 2). Do not "improve" this file: its entire
// value is that it is the pre-refactor behaviour, bit for bit.
#include "legacy_scenario.h"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "core/arbitration_plane.h"
#include "core/pase_sender.h"
#include "net/droptail_queue.h"
#include "net/pfabric_queue.h"
#include "net/priority_queue_bank.h"
#include "net/red_ecn_queue.h"
#include "proto/defaults.h"
#include "transport/d2tcp.h"
#include "transport/dctcp.h"
#include "transport/l2dct.h"
#include "transport/pdq.h"
#include "transport/pfabric.h"

namespace pase::legacy {

using proto::Table3;
using proto::mark_threshold_for;
using workload::Protocol;
using workload::ScenarioConfig;
using workload::ScenarioResult;

namespace {

struct Run {
  sim::Simulator sim;
  std::unique_ptr<topo::Topology> topo_holder;  // keeps ownership
  topo::Topology* topo = nullptr;
  std::unique_ptr<core::ArbitrationPlane> plane;
  std::vector<std::unique_ptr<transport::PdqController>> pdq_controllers;
  std::vector<std::unique_ptr<transport::Sender>> senders;
  std::vector<std::unique_ptr<transport::Receiver>> receivers;
  std::vector<stats::FlowRecord> records;
  std::unordered_map<net::FlowId, std::size_t> record_of;
  std::size_t outstanding = 0;  // short flows not yet finished
};

topo::QueueFactory make_queue_factory(const ScenarioConfig& cfg) {
  const std::size_t cap_override = cfg.queue_capacity_pkts;
  const std::size_t mark_override = cfg.mark_threshold_pkts;
  const int num_queues = cfg.pase.num_queues;
  switch (cfg.protocol) {
    case Protocol::kDctcp:
    case Protocol::kD2tcp:
    case Protocol::kL2dct:
      return [=](double rate) -> std::unique_ptr<net::Queue> {
        const std::size_t cap =
            cap_override ? cap_override : Table3::kDctcpQueuePkts;
        const std::size_t k =
            mark_override ? mark_override : mark_threshold_for(rate);
        return std::make_unique<net::RedEcnQueue>(cap, k);
      };
    case Protocol::kPdq:
      return [=](double) -> std::unique_ptr<net::Queue> {
        const std::size_t cap =
            cap_override ? cap_override : Table3::kPdqQueuePkts;
        return std::make_unique<net::DropTailQueue>(cap);
      };
    case Protocol::kPfabric:
      return [=](double) -> std::unique_ptr<net::Queue> {
        const std::size_t cap =
            cap_override ? cap_override : Table3::kPfabricQueuePkts;
        return std::make_unique<net::PfabricQueue>(cap);
      };
    case Protocol::kPase:
      return [=](double rate) -> std::unique_ptr<net::Queue> {
        const std::size_t cap =
            cap_override ? cap_override : Table3::kPaseQueuePkts;
        const std::size_t k =
            mark_override ? mark_override : mark_threshold_for(rate);
        return std::make_unique<net::PriorityQueueBank>(num_queues, cap, k);
      };
  }
  throw std::logic_error("unknown protocol");
}

// Measured base RTT between the two most distant hosts: propagation plus a
// nominal per-hop serialization allowance for a data packet.
sim::Time estimate_rtt(topo::Topology& topo, double host_rate) {
  const net::NodeId a = topo.host(0)->id();
  const net::NodeId b = topo.host(topo.num_hosts() - 1)->id();
  const sim::Time prop = topo.propagation_rtt(a, b);
  const sim::Time serial =
      4.0 * (net::kMss + net::kDataHeaderBytes) * 8.0 / host_rate;
  return prop + serial;
}

std::unique_ptr<transport::Sender> make_sender(Run& run,
                                               const ScenarioConfig& cfg,
                                               const transport::Flow& flow,
                                               net::Host& src,
                                               sim::Time base_rtt) {
  transport::WindowSenderOptions w;
  w.initial_rtt = base_rtt;
  switch (cfg.protocol) {
    case Protocol::kDctcp:
      return std::make_unique<transport::DctcpSender>(run.sim, src, flow, w);
    case Protocol::kD2tcp:
      return std::make_unique<transport::D2tcpSender>(run.sim, src, flow, w);
    case Protocol::kL2dct:
      return std::make_unique<transport::L2dctSender>(run.sim, src, flow, w);
    case Protocol::kPfabric: {
      w = transport::PfabricSender::default_window_options();
      w.initial_rtt = base_rtt;
      return std::make_unique<transport::PfabricSender>(run.sim, src, flow, w);
    }
    case Protocol::kPdq: {
      transport::PdqSenderOptions o;
      o.initial_rtt = base_rtt;
      o.probe_interval = cfg.pdq_probe_rtts * base_rtt;
      return std::make_unique<transport::PdqSender>(run.sim, src, flow, o);
    }
    case Protocol::kPase:
      return std::make_unique<core::PaseSender>(run.sim, src, flow,
                                                *run.plane);
  }
  throw std::logic_error("unknown protocol");
}

void launch_flow(Run& run, const ScenarioConfig& cfg, transport::Flow flow,
                 sim::Time base_rtt) {
  net::Host* src = static_cast<net::Host*>(run.topo->node(flow.src));
  net::Host* dst = static_cast<net::Host*>(run.topo->node(flow.dst));
  assert(src && dst);

  auto receiver = std::make_unique<transport::Receiver>(run.sim, *dst, flow);
  auto sender = make_sender(run, cfg, flow, *src, base_rtt);

  const std::size_t rec_idx = run.record_of.at(flow.id);
  receiver->on_complete = [&run, rec_idx](transport::Receiver& r) {
    auto& rec = run.records[rec_idx];
    if (rec.finish < 0.0 && !rec.terminated) {
      rec.finish = r.completion_time();
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
  };
  sender->on_complete = [&run, rec_idx](transport::Sender& s) {
    auto& rec = run.records[rec_idx];
    if (s.terminated() && rec.finish < 0.0 && !rec.terminated) {
      rec.terminated = true;
      if (!rec.background && run.outstanding > 0) --run.outstanding;
    }
  };

  if (cfg.protocol == Protocol::kPase && run.plane) {
    run.plane->attach_receiver(*receiver);
  }
  src->register_flow(flow.id, sender.get());
  dst->register_flow(flow.id, receiver.get());
  sender->start();

  run.senders.push_back(std::move(sender));
  run.receivers.push_back(std::move(receiver));
}

}  // namespace

ScenarioResult run_scenario(ScenarioConfig cfg) {
  // Fill topology-derived workload fields, then generate.
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    cfg.traffic.num_hosts = cfg.rack.num_hosts;
    cfg.traffic.host_rate_bps = cfg.rack.host_rate_bps;
    cfg.traffic.bottleneck_rate_bps = cfg.rack.host_rate_bps;
  } else {
    const int hosts = cfg.tree.num_tors * cfg.tree.hosts_per_tor;
    cfg.traffic.num_hosts = hosts;
    cfg.traffic.left_hosts = hosts / 2;
    cfg.traffic.host_rate_bps = cfg.tree.host_rate_bps;
    cfg.traffic.bottleneck_rate_bps = cfg.tree.fabric_rate_bps;
  }
  // Qualified: ADL on the workload argument types would also find the
  // refactored pase::workload overload.
  return legacy::run_scenario_with_flows(cfg,
                                         workload::generate_flows(cfg.traffic));
}

ScenarioResult run_scenario_with_flows(ScenarioConfig cfg,
                                       std::vector<transport::Flow> flows) {
  Run run;
  const auto factory = make_queue_factory(cfg);

  double host_rate = 0.0;
  if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
    topo::SingleRack rack = topo::build_single_rack(run.sim, cfg.rack, factory);
    run.topo = rack.topo.get();
    run.topo_holder = std::move(rack.topo);
    host_rate = cfg.rack.host_rate_bps;
  } else {
    topo::ThreeTier tree = topo::build_three_tier(run.sim, cfg.tree, factory);
    run.topo = tree.topo.get();
    run.topo_holder = std::move(tree.topo);
    host_rate = cfg.tree.host_rate_bps;
  }

  const sim::Time base_rtt = estimate_rtt(*run.topo, host_rate);

  // Deadline workloads arbitrate/schedule EDF; others SJF.
  bool any_deadline = false;
  for (const auto& f : flows) any_deadline |= f.has_deadline();

  if (cfg.protocol == Protocol::kPase) {
    cfg.pase.rtt = base_rtt;
    cfg.pase.arbitration_period = cfg.arbitration_period_rtts * base_rtt;
    if (any_deadline &&
        cfg.pase.criterion == core::Criterion::kShortestFlowFirst) {
      cfg.pase.criterion = core::Criterion::kEarliestDeadlineFirst;
    }
    core::PlaneTopology pt;
    if (cfg.topology == ScenarioConfig::TopologyKind::kSingleRack) {
      pt.topo = run.topo;
      pt.host_rate_bps = cfg.rack.host_rate_bps;
      pt.fabric_rate_bps = cfg.rack.host_rate_bps;
      net::Switch* tor = run.topo->switches().front().get();
      for (const auto& h : run.topo->hosts()) {
        pt.hosts[h->id()] = core::PlaneTopology::HostInfo{h.get(), tor,
                                                          nullptr};
      }
    } else {
      pt.topo = run.topo;
      pt.host_rate_bps = cfg.tree.host_rate_bps;
      pt.fabric_rate_bps = cfg.tree.fabric_rate_bps;
      // Hosts were created rack by rack; recover ToR/Agg from structure.
      const int hosts_per_tor = cfg.tree.hosts_per_tor;
      const int tors_per_agg = cfg.tree.tors_per_agg;
      const auto& hosts = run.topo->hosts();
      // Switch creation order in build_three_tier: core, aggs..., tors
      // (each followed by its hosts).
      const auto& switches = run.topo->switches();
      const int num_aggs = cfg.tree.num_tors / tors_per_agg;
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        const int tor_idx = static_cast<int>(i) / hosts_per_tor;
        net::Switch* tor =
            switches[static_cast<std::size_t>(1 + num_aggs + tor_idx)].get();
        net::Switch* agg =
            switches[static_cast<std::size_t>(1 + tor_idx / tors_per_agg)]
                .get();
        pt.hosts[hosts[i]->id()] =
            core::PlaneTopology::HostInfo{hosts[i].get(), tor, agg};
      }
    }
    run.plane =
        std::make_unique<core::ArbitrationPlane>(run.sim, std::move(pt),
                                                 cfg.pase);
  }

  if (cfg.protocol == Protocol::kPdq) {
    transport::PdqOptions po = cfg.pdq;
    po.rtt = base_rtt;
    if (!any_deadline) po.early_termination = false;
    // Controllers on every switch output port...
    for (const auto& sw : run.topo->switches()) {
      auto cs = transport::PdqController::attach(run.sim, *sw, po);
      for (auto& c : cs) run.pdq_controllers.push_back(std::move(c));
    }
    // ...and on every host uplink.
    for (const auto& h : run.topo->hosts()) {
      auto c = std::make_unique<transport::PdqController>(
          run.sim, h->id(), h->nic_rate_bps(), po);
      transport::PdqController* raw = c.get();
      h->add_send_hook([raw](net::Packet& p) { raw->process(p); });
      run.pdq_controllers.push_back(std::move(c));
    }
  }

  // Map generator host indices onto node ids and set up records.
  run.records.reserve(flows.size());
  for (auto& f : flows) {
    f.src = run.topo->host(static_cast<std::size_t>(f.src))->id();
    f.dst = run.topo->host(static_cast<std::size_t>(f.dst))->id();
    stats::FlowRecord rec;
    rec.id = f.id;
    rec.size_bytes = f.size_bytes;
    rec.start = f.start_time;
    rec.deadline = f.deadline;
    rec.background = f.background;
    run.record_of[f.id] = run.records.size();
    run.records.push_back(rec);
    if (!f.background) ++run.outstanding;
  }

  // Schedule flow launches.
  for (const auto& f : flows) {
    run.sim.schedule_at(f.start_time, [&run, &cfg, f, base_rtt] {
      launch_flow(run, cfg, f, base_rtt);
    });
  }

  // Run until every short flow completes (or the hard cap).
  const sim::Time step = 10e-3;
  while (run.outstanding > 0 && run.sim.now() < cfg.max_duration) {
    const sim::Time before = run.sim.now();
    run.sim.run(std::min(cfg.max_duration, run.sim.now() + step));
    if (run.sim.now() == before && run.sim.pending_events() == 0) break;
  }

  ScenarioResult result;
  result.records = std::move(run.records);
  result.end_time = run.sim.now();
  result.fabric_drops = run.topo->total_drops();
  for (const auto& s : run.senders) {
    result.data_packets_sent += s->data_packets_sent();
    result.probes_sent += s->probes_sent();
  }
  if (run.plane) result.control = run.plane->stats();
  return result;
}

}  // namespace pase::legacy
