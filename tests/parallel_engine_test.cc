// Conservative parallel execution must be bit-identical to sequential.
//
// The same 18-case battery the hot-path golden test pins is re-run here at
// workers = 2, 4 and 8 and every trace fingerprint must equal the
// sequential run's — not "statistically close": identical. Any divergence
// means an event ordering decision leaked a dependence on thread scheduling
// or the lineage merge order diverged from the sequential FIFO.
//
// PASE is not parallel-safe (its arbitration plane is process-global), so
// its cases double as fallback coverage: the harness must silently run them
// sequentially and report workers_used == 1.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/droptail_queue.h"
#include "sim/simulator.h"
#include "topo/builder.h"
#include "topo/partition.h"
#include "trace_fingerprint.h"

namespace pase {
namespace {

// Sequential fingerprints computed once and shared by all worker counts.
const std::vector<std::uint64_t>& sequential_fingerprints() {
  static const std::vector<std::uint64_t> fps = [] {
    std::vector<std::uint64_t> v;
    for (const auto& c : fingerprint_battery()) {
      v.push_back(trace_fingerprint(workload::run_scenario(c.config)));
    }
    return v;
  }();
  return fps;
}

void expect_bit_identical(int workers) {
  const auto cases = fingerprint_battery();
  const auto& seq = sequential_fingerprints();
  ASSERT_EQ(cases.size(), seq.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    workload::ScenarioConfig cfg = cases[i].config;
    cfg.workers = workers;
    const workload::ScenarioResult r = workload::run_scenario(cfg);
    EXPECT_EQ(trace_fingerprint(r), seq[i])
        << cases[i].label << " diverged from the sequential trace at workers="
        << workers;
    if (cfg.protocol == workload::Protocol::kPase) {
      EXPECT_EQ(r.workers_used, 1)
          << "PASE is not parallel-safe and must fall back";
    } else {
      EXPECT_GT(r.workers_used, 1)
          << cases[i].label << " unexpectedly fell back to sequential";
    }
  }
}

TEST(ParallelGolden, BitIdenticalAtTwoWorkers) { expect_bit_identical(2); }
TEST(ParallelGolden, BitIdenticalAtFourWorkers) { expect_bit_identical(4); }
TEST(ParallelGolden, BitIdenticalAtEightWorkers) { expect_bit_identical(8); }

// A zero-delay cut link gives zero lookahead: the conservative window is
// empty and the harness must fall back to sequential execution (and still
// produce the sequential trace).
TEST(ParallelEngine, ZeroLookaheadFallsBackToSequential) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 8;
  cfg.rack.per_link_delay = 0.0;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 7;

  const workload::ScenarioResult seq = workload::run_scenario(cfg);
  cfg.workers = 4;
  const workload::ScenarioResult par = workload::run_scenario(cfg);
  EXPECT_EQ(par.workers_used, 1);
  EXPECT_EQ(trace_fingerprint(par), trace_fingerprint(seq));
}

// --- Partitioner ------------------------------------------------------------

TEST(TopologyPartition, RacksStayIntactAndCutsCarryLookahead) {
  sim::Simulator sim;
  topo::ThreeTierConfig cfg;
  cfg.num_tors = 4;
  cfg.hosts_per_tor = 4;
  topo::ThreeTierBuilder builder(cfg);
  auto built = builder.build(sim, [](double) {
    return std::make_unique<net::DropTailQueue>(100);
  });
  ASSERT_NE(built, nullptr);
  topo::Topology& topo = built->topo();

  const topo::Partition part = topo::partition_topology(topo, 4);
  EXPECT_EQ(part.domains, 4);
  EXPECT_TRUE(part.usable());
  // Hosts split into contiguous quarters, so each rack (4 hosts) lands whole
  // in one domain, and its ToR follows its first host.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(part.domain_of_node(topo.host(static_cast<std::size_t>(i))->id()),
              i / 4)
        << "host " << i;
  }
  // Cut links exist (racks talk through agg/core) and the lookahead is the
  // uniform per-link propagation delay.
  EXPECT_FALSE(part.cut_links.empty());
  EXPECT_DOUBLE_EQ(part.lookahead, cfg.per_link_delay);
  for (const auto& c : part.cut_links) {
    EXPECT_NE(c.src_domain, c.dst_domain);
    EXPECT_DOUBLE_EQ(c.link->prop_delay(), cfg.per_link_delay);
  }
}

TEST(TopologyPartition, ClampsDomainsToHostCount) {
  sim::Simulator sim;
  topo::SingleRackConfig cfg;
  cfg.num_hosts = 3;
  topo::SingleRackBuilder builder(cfg);
  auto built = builder.build(
      sim, [](double) { return std::make_unique<net::DropTailQueue>(100); });
  const topo::Partition part =
      topo::partition_topology(built->topo(), 16);
  EXPECT_EQ(part.domains, 3);
  for (int d : part.domain_of) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 3);
  }
}

TEST(TopologyPartition, SingleDomainIsUnusable) {
  sim::Simulator sim;
  topo::SingleRackConfig cfg;
  cfg.num_hosts = 4;
  topo::SingleRackBuilder builder(cfg);
  auto built = builder.build(
      sim, [](double) { return std::make_unique<net::DropTailQueue>(100); });
  const topo::Partition part = topo::partition_topology(built->topo(), 1);
  EXPECT_EQ(part.domains, 1);
  EXPECT_FALSE(part.usable());
  EXPECT_TRUE(part.cut_links.empty());
}

}  // namespace
}  // namespace pase
