// Conservative parallel execution must be bit-identical to sequential.
//
// The same 18-case battery the hot-path golden test pins is re-run here at
// workers = 2, 4 and 8 and every trace fingerprint must equal the
// sequential run's — not "statistically close": identical. Any divergence
// means an event ordering decision leaked a dependence on thread scheduling
// or the lineage merge order diverged from the sequential FIFO.
//
// All six built-in profiles are parallel-safe — PASE's arbitration plane is
// sharded by arbitrating node (see arbitration_plane.h) — so every case must
// actually run partitioned: workers_used > 1 and an empty fallback reason.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "net/droptail_queue.h"
#include "sim/simulator.h"
#include "topo/builder.h"
#include "topo/partition.h"
#include "trace_fingerprint.h"

namespace pase {
namespace {

// Sequential fingerprints computed once and shared by all worker counts.
const std::vector<std::uint64_t>& sequential_fingerprints() {
  static const std::vector<std::uint64_t> fps = [] {
    std::vector<std::uint64_t> v;
    for (const auto& c : fingerprint_battery()) {
      v.push_back(trace_fingerprint(workload::run_scenario(c.config)));
    }
    return v;
  }();
  return fps;
}

void expect_bit_identical(int workers) {
  const auto cases = fingerprint_battery();
  const auto& seq = sequential_fingerprints();
  ASSERT_EQ(cases.size(), seq.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    workload::ScenarioConfig cfg = cases[i].config;
    cfg.workers = workers;
    const workload::ScenarioResult r = workload::run_scenario(cfg);
    EXPECT_EQ(trace_fingerprint(r), seq[i])
        << cases[i].label << " diverged from the sequential trace at workers="
        << workers;
    EXPECT_GT(r.workers_used, 1)
        << cases[i].label << " unexpectedly fell back to sequential";
    EXPECT_TRUE(r.parallel_fallback_reason.empty())
        << cases[i].label << ": " << r.parallel_fallback_reason;
  }
}

TEST(ParallelGolden, BitIdenticalAtTwoWorkers) { expect_bit_identical(2); }
TEST(ParallelGolden, BitIdenticalAtFourWorkers) { expect_bit_identical(4); }
TEST(ParallelGolden, BitIdenticalAtEightWorkers) { expect_bit_identical(8); }

// PASE on a multipath Clos fabric is the hardest case for the sharded
// arbitration plane: delegation timers on every pod switch, fabric
// arbitration across pods, and ECMP route state — all of it partitioned.
// The fingerprint must not move across any worker count.
TEST(ParallelGolden, PaseFatTreeBitIdenticalAcrossWorkerCounts) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 4;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.size_dist = workload::SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.4;
  cfg.traffic.num_flows = 120;
  cfg.traffic.seed = 9;

  const std::uint64_t seq = trace_fingerprint(workload::run_scenario(cfg));
  for (int workers : {2, 4, 8}) {
    cfg.workers = workers;
    const workload::ScenarioResult r = workload::run_scenario(cfg);
    EXPECT_EQ(trace_fingerprint(r), seq)
        << "PASE/fat-tree diverged at workers=" << workers;
    EXPECT_GT(r.workers_used, 1);
    EXPECT_TRUE(r.parallel_fallback_reason.empty())
        << r.parallel_fallback_reason;
  }
}

// A zero-delay cut link gives zero lookahead: the conservative window is
// empty and the harness must fall back to sequential execution (and still
// produce the sequential trace).
TEST(ParallelEngine, ZeroLookaheadFallsBackToSequential) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 8;
  cfg.rack.per_link_delay = 0.0;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 7;

  const workload::ScenarioResult seq = workload::run_scenario(cfg);
  cfg.workers = 4;
  const workload::ScenarioResult par = workload::run_scenario(cfg);
  EXPECT_EQ(par.workers_used, 1);
  EXPECT_FALSE(par.parallel_fallback_reason.empty());
  EXPECT_EQ(trace_fingerprint(par), trace_fingerprint(seq));
}

// Cross-domain arbitration traffic must be *counted* identically too: the
// sharded plane keeps per-arbitrator counters that fold into the same totals
// the sequential plane accumulates in one struct. A mismatch means a shard
// double-counted (or a cut-crossing control packet was attributed twice).
TEST(ParallelEngine, ArbitrationMessagesCountedIdenticallySeqVsParallel) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kThreeTier;
  cfg.tree.num_tors = 4;
  cfg.tree.hosts_per_tor = 4;
  cfg.traffic.pattern = workload::Pattern::kLeftRight;
  cfg.traffic.size_dist = workload::SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 100;
  cfg.traffic.seed = 23;

  const workload::ScenarioResult seq = workload::run_scenario(cfg);
  cfg.workers = 4;
  const workload::ScenarioResult par = workload::run_scenario(cfg);
  ASSERT_GT(par.workers_used, 1) << par.parallel_fallback_reason;
  EXPECT_GT(seq.control.messages_sent, 0u);
  EXPECT_EQ(par.control.messages_sent, seq.control.messages_sent);
  EXPECT_EQ(par.control.requests, seq.control.requests);
  EXPECT_EQ(par.control.responses, seq.control.responses);
  EXPECT_EQ(par.control.fins, seq.control.fins);
  EXPECT_EQ(par.control.delegation_msgs, seq.control.delegation_msgs);
  EXPECT_EQ(par.control.arbitrations, seq.control.arbitrations);
  EXPECT_EQ(par.control.pruned_requests, seq.control.pruned_requests);
}

// The conditional horizon may only merge windows, never split them: for the
// same scenario it must decide at most as many rounds as the static min-cut
// baseline — while producing the exact same trace (the probe moves *when*
// events run, never their order).
TEST(ParallelEngine, ConditionalHorizonNeverExceedsStaticRounds) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = 4;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.size_dist = workload::SizeDistribution::kWebSearch;
  cfg.traffic.load = 0.3;
  cfg.traffic.num_flows = 150;
  cfg.traffic.seed = 13;
  cfg.workers = 4;

  const auto rounds_of = [](const workload::ScenarioResult& r) {
    for (const auto& m : r.metrics) {
      if (m.name == "parallel.rounds") return m.value;
    }
    return -1.0;
  };

  cfg.horizon_mode = workload::ScenarioConfig::HorizonMode::kConditional;
  const workload::ScenarioResult cond = workload::run_scenario(cfg);
  cfg.horizon_mode = workload::ScenarioConfig::HorizonMode::kStaticMinCut;
  const workload::ScenarioResult stat = workload::run_scenario(cfg);

  ASSERT_GT(cond.workers_used, 1) << cond.parallel_fallback_reason;
  ASSERT_GT(stat.workers_used, 1) << stat.parallel_fallback_reason;
  EXPECT_EQ(trace_fingerprint(cond), trace_fingerprint(stat));
  EXPECT_GT(rounds_of(stat), 0.0);
  EXPECT_LE(rounds_of(cond), rounds_of(stat));
}

// Every built-in profile must actually partition under workers > 1, and the
// sweep JSON must surface both the domain count and the (empty) fallback
// reason so a silent sequential fallback can't hide in a benchmark table.
TEST(ParallelEngine, SweepSurfacesEmptyFallbackReasonForAllSixProfiles) {
  const workload::Protocol protocols[] = {
      workload::Protocol::kDctcp, workload::Protocol::kD2tcp,
      workload::Protocol::kL2dct, workload::Protocol::kPdq,
      workload::Protocol::kPfabric, workload::Protocol::kPase};
  std::vector<exp::SweepCase> cases;
  std::vector<workload::ScenarioConfig> configs;
  for (const auto p : protocols) {
    exp::SweepCase c;
    c.label = workload::protocol_name(p);
    c.config.protocol = p;
    c.config.topology = workload::ScenarioConfig::TopologyKind::kThreeTier;
    c.config.tree.num_tors = 4;
    c.config.tree.hosts_per_tor = 4;
    c.config.traffic.pattern = workload::Pattern::kLeftRight;
    c.config.traffic.load = 0.5;
    c.config.traffic.num_flows = 60;
    c.config.traffic.seed = 3;
    c.config.workers = 4;
    configs.push_back(c.config);
    cases.push_back(std::move(c));
  }
  const std::vector<workload::ScenarioResult> results =
      exp::SweepRunner(2).run(configs);
  ASSERT_EQ(results.size(), std::size(protocols));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GT(results[i].workers_used, 1) << cases[i].label;
    EXPECT_TRUE(results[i].parallel_fallback_reason.empty())
        << cases[i].label << ": " << results[i].parallel_fallback_reason;
  }
  const std::string json = exp::sweep_to_json("fallback", cases, results);
  EXPECT_NE(json.find("\"workers_used\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"parallel_fallback_reason\": \"\""), std::string::npos);
}

// --- Partitioner ------------------------------------------------------------

TEST(TopologyPartition, RacksStayIntactAndCutsCarryLookahead) {
  sim::Simulator sim;
  topo::ThreeTierConfig cfg;
  cfg.num_tors = 4;
  cfg.hosts_per_tor = 4;
  topo::ThreeTierBuilder builder(cfg);
  auto built = builder.build(sim, [](double) {
    return std::make_unique<net::DropTailQueue>(100);
  });
  ASSERT_NE(built, nullptr);
  topo::Topology& topo = built->topo();

  const topo::Partition part = topo::partition_topology(topo, 4);
  EXPECT_EQ(part.domains, 4);
  EXPECT_TRUE(part.usable());
  // Hosts split into contiguous quarters, so each rack (4 hosts) lands whole
  // in one domain, and its ToR follows its first host.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(part.domain_of_node(topo.host(static_cast<std::size_t>(i))->id()),
              i / 4)
        << "host " << i;
  }
  // Cut links exist (racks talk through agg/core) and the lookahead is the
  // uniform per-link propagation delay.
  EXPECT_FALSE(part.cut_links.empty());
  EXPECT_DOUBLE_EQ(part.lookahead, cfg.per_link_delay);
  for (const auto& c : part.cut_links) {
    EXPECT_NE(c.src_domain, c.dst_domain);
    EXPECT_DOUBLE_EQ(c.link->prop_delay(), cfg.per_link_delay);
  }
}

TEST(TopologyPartition, ClampsDomainsToHostCount) {
  sim::Simulator sim;
  topo::SingleRackConfig cfg;
  cfg.num_hosts = 3;
  topo::SingleRackBuilder builder(cfg);
  auto built = builder.build(
      sim, [](double) { return std::make_unique<net::DropTailQueue>(100); });
  const topo::Partition part =
      topo::partition_topology(built->topo(), 16);
  EXPECT_EQ(part.domains, 3);
  for (int d : part.domain_of) {
    EXPECT_GE(d, 0);
    EXPECT_LT(d, 3);
  }
}

TEST(TopologyPartition, SingleDomainIsUnusable) {
  sim::Simulator sim;
  topo::SingleRackConfig cfg;
  cfg.num_hosts = 4;
  topo::SingleRackBuilder builder(cfg);
  auto built = builder.build(
      sim, [](double) { return std::make_unique<net::DropTailQueue>(100); });
  const topo::Partition part = topo::partition_topology(built->topo(), 1);
  EXPECT_EQ(part.domains, 1);
  EXPECT_FALSE(part.usable());
  EXPECT_TRUE(part.cut_links.empty());
}

}  // namespace
}  // namespace pase
