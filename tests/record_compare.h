// Shared bit-exact comparison of two ScenarioResults, used by both the
// determinism tests (same path twice) and the golden-equivalence tests
// (legacy monolith vs profile registry). Every field is compared with
// EXPECT_EQ — bit-equal, not just close — since the simulator is supposed
// to be a deterministic function of (config, seed).
#pragma once

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace pase {

inline void expect_identical(const workload::ScenarioResult& a,
                             const workload::ScenarioResult& b) {
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.end_time, b.end_time);  // bit-equal, not just close
  EXPECT_EQ(a.control.messages_sent, b.control.messages_sent);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const auto& ra = a.records[i];
    const auto& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.size_bytes, rb.size_bytes);
    EXPECT_EQ(ra.start, rb.start);
    EXPECT_EQ(ra.finish, rb.finish);
    EXPECT_EQ(ra.deadline, rb.deadline);
    EXPECT_EQ(ra.background, rb.background);
    EXPECT_EQ(ra.terminated, rb.terminated);
  }
}

}  // namespace pase
