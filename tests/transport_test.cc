// Transport base mechanics: reliable delivery, retransmission, RTT/RTO,
// fast retransmit, receiver behaviour, plus the DCTCP-family control laws.
#include <gtest/gtest.h>

#include "test_util.h"
#include "transport/d2tcp.h"
#include "transport/dctcp.h"
#include "transport/l2dct.h"
#include "transport/window_sender.h"

namespace pase::transport {
namespace {

using test::FaultQueue;
using test::make_flow;
using test::make_mini_net;
using test::wire_flow;

WindowSenderOptions fast_opts() {
  WindowSenderOptions o;
  o.min_rto = 2e-3;
  o.initial_rtt = 150e-6;
  return o;
}

TEST(WindowSender, CompletesSinglePacketFlow) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 1000);
  WindowSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  bool done = false;
  s.on_complete = [&](Sender&) { done = true; };
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(done);
  EXPECT_TRUE(recv->complete());
  EXPECT_EQ(s.total_packets(), 1u);
  EXPECT_EQ(s.retransmissions(), 0u);
}

TEST(WindowSender, CompletesMultiPacketFlowInOrder) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 100 * net::kMss);
  WindowSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_EQ(recv->duplicate_packets(), 0u);
  EXPECT_EQ(s.packets_sent(), 100u);
}

TEST(WindowSender, FctMatchesServiceTimePlusRtt) {
  auto n = make_mini_net(2, [](double) {
    return std::make_unique<net::DropTailQueue>(1000);  // absorb the blast
  });
  const std::uint64_t bytes = 200 * net::kMss;
  auto flow = make_flow(*n, 0, 1, bytes);
  WindowSenderOptions o = fast_opts();
  o.init_cwnd = 1000;  // no window limit: pure serialization
  WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  const double service = 200 * 1500.0 * 8 / 1e9;
  EXPECT_NEAR(recv->completion_time(), service + 2 * 25e-6 + 1500.0 * 8 / 1e9,
              0.2e-3);
}

TEST(WindowSender, RecoversFromSingleLossViaFastRetransmit) {
  int dropped = 0;
  auto factory = FaultQueue::wrap_factory(
      [](double) { return std::make_unique<net::DropTailQueue>(100); },
      [&dropped](const net::Packet& p) {
        if (p.type == net::PacketType::kData && p.seq == 5 && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 50 * net::kMss);
  WindowSenderOptions o = fast_opts();
  o.init_cwnd = 10;  // enough in flight for three dupacks behind the hole
  WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_EQ(dropped, 1);
  EXPECT_GE(s.retransmissions(), 1u);
  // Fast retransmit should beat the 2 ms RTO.
  EXPECT_EQ(s.timeouts(), 0u);
}

TEST(WindowSender, RecoversFromTailLossViaTimeout) {
  int dropped = 0;
  auto factory = FaultQueue::wrap_factory(
      [](double) { return std::make_unique<net::DropTailQueue>(100); },
      [&dropped](const net::Packet& p) {
        // Drop the very last packet once: no dupacks can follow it.
        if (p.type == net::PacketType::kData && p.seq == 9 && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 10 * net::kMss);
  WindowSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_GE(s.timeouts(), 1u);
}

TEST(WindowSender, RecoversFromBurstLoss) {
  int dropped = 0;
  auto factory = FaultQueue::wrap_factory(
      [](double) { return std::make_unique<net::DropTailQueue>(100); },
      [&dropped](const net::Packet& p) {
        if (p.type == net::PacketType::kData && p.seq >= 10 && p.seq < 20 &&
            dropped < 10) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 60 * net::kMss);
  WindowSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(2.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_GE(s.retransmissions(), 10u);
}

TEST(WindowSender, SurvivesTotalBlackoutWithBackoff) {
  // Drop everything for the first 20 ms, then heal.
  auto factory = FaultQueue::wrap_factory(
      [](double) { return std::make_unique<net::DropTailQueue>(100); },
      [](const net::Packet& p) {
        (void)p;
        return false;  // replaced below via sim-time check inside predicate
      });
  auto n = make_mini_net(2, factory);
  // Rebuild with a predicate that can see the simulator clock.
  // (simpler: drop first 4 transmissions of packet 0)
  auto n2 = make_mini_net(
      2, FaultQueue::wrap_factory(
             [](double) { return std::make_unique<net::DropTailQueue>(100); },
             [count = 0](const net::Packet& p) mutable {
               if (p.type == net::PacketType::kData && p.seq == 0 &&
                   count < 4) {
                 ++count;
                 return true;
               }
               return false;
             }));
  auto flow = make_flow(*n2, 0, 1, 3 * net::kMss);
  WindowSender s(n2->sim, n2->host(0), flow, fast_opts());
  auto recv = wire_flow(*n2, s, flow);
  s.start();
  n2->sim.run(5.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_GE(s.timeouts(), 3u);
  // Exponential backoff: completion needed > 2+4+8 ms of RTO waits.
  EXPECT_GT(recv->completion_time(), 14e-3);
}

TEST(WindowSender, SrttConvergesToPathRtt) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 200 * net::kMss);
  WindowSenderOptions o = fast_opts();
  o.init_cwnd = 2;  // low load: rtt ~ propagation + serialization
  WindowSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  // 4 x 25us prop + data serialization 12us x2 hops + ack return.
  EXPECT_GT(s.srtt(), 100e-6);
  EXPECT_LT(s.srtt(), 250e-6);
}

TEST(WindowSender, CwndNeverBelowOne) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 10 * net::kMss);
  WindowSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_GE(s.cwnd(), 1.0);
}

// --- Receiver -----------------------------------------------------------------

TEST(Receiver, CumulativeAckAdvancesThroughReordering) {
  sim::Simulator sim;
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 3 * net::kMss);
  // Deliver packets out of order directly.
  Receiver r(n->sim, n->host(1), flow);
  auto mk = [&](std::uint32_t seq) {
    auto p = net::make_data_packet(flow.id, flow.src, flow.dst, seq);
    return p;
  };
  r.deliver(mk(2));
  EXPECT_EQ(r.next_expected(), 0u);
  r.deliver(mk(0));
  EXPECT_EQ(r.next_expected(), 1u);
  r.deliver(mk(1));
  EXPECT_EQ(r.next_expected(), 3u);
  EXPECT_TRUE(r.complete());
}

TEST(Receiver, CountsDuplicates) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, 2 * net::kMss);
  Receiver r(n->sim, n->host(1), flow);
  auto mk = [&](std::uint32_t seq) {
    return net::make_data_packet(flow.id, flow.src, flow.dst, seq);
  };
  r.deliver(mk(0));
  r.deliver(mk(0));
  r.deliver(mk(0));
  EXPECT_EQ(r.duplicate_packets(), 2u);
  EXPECT_FALSE(r.complete());
}

TEST(Receiver, CompletionCallbackFiresExactlyOnce) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 0, 1, net::kMss);
  Receiver r(n->sim, n->host(1), flow);
  int fired = 0;
  r.on_complete = [&](Receiver&) { ++fired; };
  r.deliver(net::make_data_packet(flow.id, flow.src, flow.dst, 0));
  r.deliver(net::make_data_packet(flow.id, flow.src, flow.dst, 0));
  EXPECT_EQ(fired, 1);
}

TEST(Receiver, EchoesEcnAndTimestamp) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 1, 0, net::kMss);  // acks arrive back at host 1
  struct AckSink : net::PacketSink {
    net::PacketPtr last;
    void deliver(net::PacketPtr p) override { last = std::move(p); }
  } acks;
  n->host(1).register_flow(flow.id, &acks);
  Receiver r(n->sim, n->host(0), flow);
  auto p = net::make_data_packet(flow.id, flow.src, flow.dst, 0);
  p->ecn_ce = true;
  p->ts = 0.125;
  r.deliver(std::move(p));
  n->sim.run();
  ASSERT_TRUE(acks.last);
  EXPECT_TRUE(acks.last->ecn_echo);
  EXPECT_DOUBLE_EQ(acks.last->echo_ts, 0.125);
  EXPECT_EQ(acks.last->ack_seq, 1u);
  EXPECT_FALSE(acks.last->ecn_capable);  // ACKs are not marked
}

TEST(Receiver, AnswersProbesWithProbeAcks) {
  auto n = make_mini_net();
  auto flow = make_flow(*n, 1, 0, 2 * net::kMss);
  struct AckSink : net::PacketSink {
    std::vector<net::PacketPtr> got;
    void deliver(net::PacketPtr p) override { got.push_back(std::move(p)); }
  } acks;
  n->host(1).register_flow(flow.id, &acks);
  Receiver r(n->sim, n->host(0), flow);
  r.deliver(net::make_data_packet(flow.id, flow.src, flow.dst, 0));
  r.deliver(net::make_control_packet(net::PacketType::kProbe, flow.id,
                                     flow.src, flow.dst));
  n->sim.run();
  ASSERT_EQ(acks.got.size(), 2u);
  EXPECT_EQ(acks.got[1]->type, net::PacketType::kProbeAck);
  EXPECT_EQ(acks.got[1]->ack_seq, 1u);
}

// --- DCTCP family --------------------------------------------------------------

topo::QueueFactory red_factory(std::size_t k) {
  return [k](double) { return std::make_unique<net::RedEcnQueue>(100, k); };
}

TEST(Dctcp, SlowStartGrowsWindowWithoutMarks) {
  auto n = make_mini_net(2, red_factory(1000));  // never marks
  auto flow = make_flow(*n, 0, 1, 300 * net::kMss);
  DctcpSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(0.002);
  EXPECT_GT(s.cwnd(), fast_opts().init_cwnd * 2);
}

TEST(Dctcp, AlphaDecaysWhenUncongested) {
  auto n = make_mini_net(2, red_factory(1000));
  auto flow = make_flow(*n, 0, 1, 400 * net::kMss);
  DctcpSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  // alpha decays geometrically (gain 1/16) from 1.0 across clean windows.
  EXPECT_LT(s.alpha(), 0.7);
}

TEST(Dctcp, MarksShrinkWindow) {
  // Aggressive marking: every packet marked once queue has any backlog.
  auto n = make_mini_net(2, red_factory(1));
  auto flow = make_flow(*n, 0, 1, 400 * net::kMss);
  WindowSenderOptions o = fast_opts();
  o.init_cwnd = 50;
  DctcpSender s(n->sim, n->host(0), flow, o);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(0.01);
  // Persistent marks keep the window far below the initial blast, and alpha
  // stays away from zero.
  EXPECT_LT(s.cwnd(), 25.0);
  EXPECT_GT(s.alpha(), 0.05);
}

TEST(Dctcp, TwoFlowsShareBottleneckRoughlyFairly) {
  auto n = make_mini_net(3, red_factory(20));
  auto f1 = make_flow(*n, 0, 2, 800 * net::kMss);
  f1.id = 1;
  auto f2 = make_flow(*n, 1, 2, 800 * net::kMss);
  f2.id = 2;
  DctcpSender s1(n->sim, n->host(0), f1, fast_opts());
  DctcpSender s2(n->sim, n->host(1), f2, fast_opts());
  auto r1 = wire_flow(*n, s1, f1);
  auto r2 = wire_flow(*n, s2, f2);
  s1.start();
  s2.start();
  n->sim.run(60e-3);
  ASSERT_TRUE(r1->complete());
  ASSERT_TRUE(r2->complete());
  const double t1 = r1->completion_time();
  const double t2 = r2->completion_time();
  // Both share the 1G downlink; equal sizes should finish within ~35% of
  // each other.
  EXPECT_LT(std::abs(t1 - t2) / std::max(t1, t2), 0.35);
}

TEST(D2tcp, UrgencyIsOneWithoutDeadline) {
  auto n = make_mini_net(2, red_factory(20));
  auto flow = make_flow(*n, 0, 1, 10 * net::kMss);
  D2tcpSender s(n->sim, n->host(0), flow, fast_opts());
  EXPECT_DOUBLE_EQ(s.urgency(), 1.0);
}

TEST(D2tcp, NearDeadlineFlowIsMoreUrgent) {
  auto n = make_mini_net(2, red_factory(20));
  auto tight = make_flow(*n, 0, 1, 400 * net::kMss, /*deadline=*/1e-3);
  auto loose = make_flow(*n, 0, 1, 400 * net::kMss, /*deadline=*/10.0);
  D2tcpSender st(n->sim, n->host(0), tight, fast_opts());
  D2tcpSender sl(n->sim, n->host(0), loose, fast_opts());
  EXPECT_GT(st.urgency(), sl.urgency());
  EXPECT_LE(st.urgency(), 2.0);
  EXPECT_GE(sl.urgency(), 0.5);
}

TEST(D2tcp, UrgentFlowBacksOffLessAndWins) {
  auto n = make_mini_net(3, red_factory(10));
  auto f1 = make_flow(*n, 0, 2, 400 * net::kMss, 4e-3);  // tight deadline
  f1.id = 1;
  auto f2 = make_flow(*n, 1, 2, 400 * net::kMss, 10.0);  // loose deadline
  f2.id = 2;
  D2tcpSender s1(n->sim, n->host(0), f1, fast_opts());
  D2tcpSender s2(n->sim, n->host(1), f2, fast_opts());
  auto r1 = wire_flow(*n, s1, f1);
  auto r2 = wire_flow(*n, s2, f2);
  s1.start();
  s2.start();
  n->sim.run(60e-3);
  ASSERT_TRUE(r1->complete());
  ASSERT_TRUE(r2->complete());
  EXPECT_LT(r1->completion_time(), r2->completion_time());
}

TEST(L2dct, WeightFractionGrowsWithBytesSent) {
  auto n = make_mini_net(2, red_factory(1000));
  auto flow = make_flow(*n, 0, 1, 600 * net::kMss);
  L2dctSender s(n->sim, n->host(0), flow, fast_opts());
  auto recv = wire_flow(*n, s, flow);
  EXPECT_DOUBLE_EQ(s.weight_fraction(), 0.0);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  EXPECT_DOUBLE_EQ(s.weight_fraction(), 1.0);  // sent more than size_ref
}

TEST(L2dct, ShortFlowBeatsLongFlowUnderContention) {
  auto n = make_mini_net(3, red_factory(10));
  auto big = make_flow(*n, 0, 2, 1200 * net::kMss);
  big.id = 1;
  auto small = make_flow(*n, 1, 2, 60 * net::kMss);
  small.id = 2;
  small.start_time = 5e-3;
  L2dctSender s1(n->sim, n->host(0), big, fast_opts());
  L2dctSender s2(n->sim, n->host(1), small, fast_opts());
  auto r1 = wire_flow(*n, s1, big);
  auto r2 = wire_flow(*n, s2, small);
  s1.start();
  n->sim.schedule_at(5e-3, [&] { s2.start(); });
  n->sim.run(0.2);
  ASSERT_TRUE(r1->complete());
  ASSERT_TRUE(r2->complete());
  // The late-starting short flow should still finish well before the big one.
  EXPECT_LT(r2->completion_time(), r1->completion_time());
}

}  // namespace
}  // namespace pase::transport
