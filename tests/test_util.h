// Shared fixtures for transport/core tests: a tiny two-host network, a
// fault-injection queue, and helpers to run a single flow to completion.
#pragma once

#include <functional>
#include <memory>

#include "net/droptail_queue.h"
#include "net/red_ecn_queue.h"
#include "topo/single_rack.h"
#include "transport/agent.h"
#include "transport/receiver.h"

namespace pase::test {

// Queue wrapper that drops packets matching a predicate (fault injection).
class FaultQueue : public net::Queue {
 public:
  using DropFn = std::function<bool(const net::Packet&)>;

  FaultQueue(std::unique_ptr<net::Queue> inner, DropFn should_drop)
      : inner_(std::move(inner)), should_drop_(std::move(should_drop)) {}

  std::size_t len_packets() const override { return inner_->len_packets(); }
  std::size_t len_bytes() const override { return inner_->len_bytes(); }

  // Give the shared drop hook to every FaultQueue made by a factory.
  static topo::QueueFactory wrap_factory(topo::QueueFactory base,
                                         DropFn should_drop) {
    return [base = std::move(base),
            should_drop](double rate) -> std::unique_ptr<net::Queue> {
      return std::make_unique<FaultQueue>(base(rate), should_drop);
    };
  }

 protected:
  bool do_enqueue(net::PacketPtr p) override {
    if (should_drop_ && should_drop_(*p)) {
      count_drop(*p);
      return false;
    }
    // Delegate through the public entry so inner stats stay consistent, but
    // without the inner queue kicking a link it does not own.
    return inner_enqueue(std::move(p));
  }
  net::PacketPtr do_dequeue() override { return inner_dequeue(); }

 private:
  // Expose inner protected calls via a shim.
  struct Shim : net::Queue {
    using net::Queue::do_dequeue;
    using net::Queue::do_enqueue;
  };
  bool inner_enqueue(net::PacketPtr p) {
    return (inner_.get()->*(&Shim::do_enqueue))(std::move(p));
  }
  net::PacketPtr inner_dequeue() {
    return (inner_.get()->*(&Shim::do_dequeue))();
  }

  std::unique_ptr<net::Queue> inner_;
  DropFn should_drop_;
};

struct MiniNet {
  sim::Simulator sim;
  topo::SingleRack rack;

  net::Host& host(int i) { return *rack.topo->host(static_cast<std::size_t>(i)); }
  topo::Topology& topo() { return *rack.topo; }
};

// num_hosts hosts, 1 Gbps links, DropTail(100) unless a factory is given.
inline std::unique_ptr<MiniNet> make_mini_net(
    int num_hosts = 2, topo::QueueFactory factory = nullptr) {
  auto net = std::make_unique<MiniNet>();
  topo::SingleRackConfig cfg;
  cfg.num_hosts = num_hosts;
  if (!factory) {
    factory = [](double) { return std::make_unique<net::DropTailQueue>(100); };
  }
  net->rack = topo::build_single_rack(net->sim, cfg, factory);
  return net;
}

inline transport::Flow make_flow(MiniNet& n, int src, int dst,
                                 std::uint64_t bytes, double deadline = 0.0) {
  transport::Flow f;
  f.id = 1;
  f.src = n.host(src).id();
  f.dst = n.host(dst).id();
  f.size_bytes = bytes;
  f.start_time = 0.0;
  f.deadline = deadline;
  return f;
}

// Wires a sender/receiver pair into the host demux.
inline std::unique_ptr<transport::Receiver> wire_flow(
    MiniNet& n, transport::Sender& sender, const transport::Flow& flow) {
  auto* src = static_cast<net::Host*>(n.topo().node(flow.src));
  auto* dst = static_cast<net::Host*>(n.topo().node(flow.dst));
  auto receiver = std::make_unique<transport::Receiver>(n.sim, *dst, flow);
  src->register_flow(flow.id, &sender);
  dst->register_flow(flow.id, receiver.get());
  return receiver;
}

}  // namespace pase::test
