// Tracing subsystem tests.
//
// Three layers of guarantees:
//   1. TraceBuffer mechanics: ring wrap with oldest-overwrite accounting,
//      category filtering, category-name round trips.
//   2. Sinks: JSONL is schema-versioned with one event per line; the Chrome
//      sink produces a trace_event document.
//   3. Non-perturbation and determinism: enabling tracing must not change
//      any of the 18 golden fingerprints, and the merged trace of a
//      parallel run must be byte-identical to the sequential one for
//      workers in {1, 2, 4} (engine category excluded — its content is
//      worker-count dependent by definition).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_sink.h"
#include "trace_fingerprint.h"
#include "workload/scenario.h"

namespace pase::obs {
namespace {

TEST(TraceBuffer, CapacityRoundsUpToPowerOfTwo) {
  TraceBuffer b(100, kAllCategories);
  EXPECT_EQ(b.capacity(), 128u);
  TraceBuffer c(256, kAllCategories);
  EXPECT_EQ(c.capacity(), 256u);
}

TEST(TraceBuffer, WrapOverwritesOldestAndCountsDropped) {
  TraceBuffer b(4, kAllCategories);
  b.begin_event(0.0, kNoOrder);
  for (std::uint64_t i = 0; i < 10; ++i) {
    b.emit(kFlowCat, EventType::kFlowStart, /*flow=*/i);
  }
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b.dropped(), 6u);
  // Retained records are the newest four, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(b.at(i).flow, 6u + i);
  }
}

TEST(TraceBuffer, CategoryFilterRejectsAtEmit) {
  TraceBuffer b(16, kFlowCat | kArbCat);
  b.begin_event(1.0, kNoOrder);
  b.emit(kFlowCat, EventType::kFlowStart, 1);
  b.emit(kPacketCat, EventType::kPktDrop, 2);     // filtered
  b.emit(kEndpointCat, EventType::kCwndSample, 3);  // filtered
  b.emit(kArbCat, EventType::kArbDecision, 4);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.at(0).flow, 1u);
  EXPECT_EQ(b.at(1).flow, 4u);
  EXPECT_EQ(b.dropped(), 0u);
}

TEST(TraceCategories, ParseAndFormatRoundTrip) {
  EXPECT_EQ(parse_categories(""), kAllCategories);
  EXPECT_EQ(parse_categories("all"), kAllCategories);
  EXPECT_EQ(parse_categories("flow"), kFlowCat);
  EXPECT_EQ(parse_categories("flow,packet"), kFlowCat | kPacketCat);
  EXPECT_EQ(parse_categories("queue,engine"), kQueueCat | kEngineCat);
  EXPECT_EQ(parse_categories("nonsense"), 0u);
  const std::uint32_t mask = kFlowCat | kArbCat | kEngineCat;
  EXPECT_EQ(parse_categories(categories_string(mask)), mask);
  EXPECT_EQ(categories_string(kAllCategories),
            "flow,packet,arb,endpoint,queue,engine");
}

TEST(TraceCategories, EveryTypeMapsIntoTheMask) {
  for (int t = 0; t <= static_cast<int>(EventType::kParallelRound); ++t) {
    const auto type = static_cast<EventType>(t);
    EXPECT_NE(category_of(type) & kAllCategories, 0u)
        << "type " << t << " has no category";
    EXPECT_NE(std::string(type_name(type)), "");
  }
}

TEST(MetricsRegistry, StableReferencesAndSortedSnapshot) {
  MetricsRegistry reg;
  std::uint64_t& c = reg.counter("b.count");
  c = 7;
  reg.gauge("a.gauge") = 2.5;
  auto& s = reg.series("c.series");
  s.push_back(1.0);
  s.push_back(3.0);
  reg.counter("b.count") += 1;  // idempotent lookup, same slot
  EXPECT_EQ(reg.counter_value("b.count"), 8u);

  const MetricsSnapshot snap = reg.snapshot();
  // gauge + counter + series {count,max,mean,min,p99}
  ASSERT_EQ(snap.size(), 7u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[1].name, "b.count");
  EXPECT_EQ(snap[2].name, "c.series.count");
  EXPECT_EQ(snap[3].name, "c.series.max");
  EXPECT_EQ(snap[4].name, "c.series.mean");
  EXPECT_EQ(snap[5].name, "c.series.min");
  EXPECT_EQ(snap[6].name, "c.series.p99");
  EXPECT_DOUBLE_EQ(snap[3].value, 3.0);
  EXPECT_DOUBLE_EQ(snap[4].value, 2.0);
  EXPECT_DOUBLE_EQ(snap[5].value, 1.0);
  EXPECT_DOUBLE_EQ(snap[6].value, 3.0);
}

// A small traced scenario shared by the sink-shape tests.
workload::ScenarioResult traced_scenario(workload::Protocol p, int workers) {
  workload::ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 8;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 9;
  cfg.workers = workers;
  cfg.trace.enabled = true;
  return workload::run_scenario(cfg);
}

TEST(TraceSinks, JsonlIsSchemaVersionedOneEventPerLine) {
  const auto r = traced_scenario(workload::Protocol::kPase, 1);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->events.size(), 0u);
  EXPECT_EQ(r.trace->dropped, 0u);

  const std::string doc = r.trace->to_jsonl();
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < doc.size()) {
    const std::size_t nl = doc.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "unterminated final line";
    lines.push_back(doc.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GT(lines.size(), 1u);
  // Header: schema name, version, event count.
  EXPECT_NE(lines[0].find("\"schema\":\"pase-trace\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"version\":1"), std::string::npos);
  EXPECT_NE(
      lines[0].find("\"events\":" + std::to_string(r.trace->events.size())),
      std::string::npos);
  EXPECT_EQ(lines.size(), r.trace->events.size() + 1);
  // Every event line is an object with a time and a type.
  bool saw_start = false, saw_complete = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
    EXPECT_NE(lines[i].find("\"t\":"), std::string::npos);
    EXPECT_NE(lines[i].find("\"type\":"), std::string::npos);
    saw_start = saw_start ||
                lines[i].find("\"type\":\"flow.start\"") != std::string::npos;
    saw_complete =
        saw_complete ||
        lines[i].find("\"type\":\"flow.complete\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_complete);
  // PASE runs arbitrate, so decisions must be present.
  EXPECT_NE(doc.find("\"type\":\"arb.decision\""), std::string::npos);
  // Times never decrease down the file (deterministic merge order).
  const auto& ev = r.trace->events;
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_LE(ev[i - 1].t, ev[i].t);
  }
}

TEST(TraceSinks, ChromeSinkEmitsTraceEventDocument) {
  const auto r = traced_scenario(workload::Protocol::kDctcp, 1);
  ASSERT_NE(r.trace, nullptr);
  const std::string doc = r.trace->to_chrome_json();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
  // Flow lifetimes serialize as async begin/end pairs.
  EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"e\""), std::string::npos);
  // Cwnd samples become counter events.
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceSinks, CategoryMaskLimitsScenarioTrace) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 8;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 9;
  cfg.trace.enabled = true;
  cfg.trace.categories = kFlowCat;
  const auto r = workload::run_scenario(cfg);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_GT(r.trace->events.size(), 0u);
  for (const auto& e : r.trace->events) {
    EXPECT_EQ(category_of(e.type), kFlowCat);
  }
}

// Tracing must be an observer, not a participant: every golden fingerprint
// is identical with and without a buffer installed.
TEST(TraceNonPerturbation, TracedRunsKeepAllGoldenFingerprints) {
  for (const auto& c : fingerprint_battery()) {
    const std::uint64_t plain = trace_fingerprint(workload::run_scenario(c.config));
    workload::ScenarioConfig traced = c.config;
    traced.trace.enabled = true;
    const workload::ScenarioResult r = workload::run_scenario(traced);
    EXPECT_EQ(trace_fingerprint(r), plain) << c.label;
    ASSERT_NE(r.trace, nullptr) << c.label;
    EXPECT_GT(r.trace->events.size(), 0u) << c.label;
  }
}

// The deterministic merge: serialized traces are byte-identical for any
// worker count. The engine category is masked out — rounds/windows and
// per-domain event counts legitimately depend on the partition.
TEST(TraceDeterminism, MergedTraceByteIdenticalAcrossWorkerCounts) {
  const workload::Protocol protocols[] = {workload::Protocol::kPase,
                                          workload::Protocol::kPfabric,
                                          workload::Protocol::kDctcp};
  for (const auto p : protocols) {
    workload::ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kThreeTier;
    cfg.tree.num_tors = 4;
    cfg.tree.hosts_per_tor = 4;
    cfg.traffic.pattern = workload::Pattern::kLeftRight;
    cfg.traffic.size_dist = workload::SizeDistribution::kWebSearch;
    cfg.traffic.load = 0.6;
    cfg.traffic.num_flows = 100;
    cfg.traffic.seed = 5;
    cfg.trace.enabled = true;
    cfg.trace.categories = kAllCategories & ~kEngineCat;

    cfg.workers = 1;
    const auto r1 = workload::run_scenario(cfg);
    ASSERT_NE(r1.trace, nullptr);
    ASSERT_EQ(r1.trace->dropped, 0u);
    const std::string ref = r1.trace->to_jsonl();
    ASSERT_GT(r1.trace->events.size(), 0u);

    for (const int w : {2, 4}) {
      cfg.workers = w;
      const auto rw = workload::run_scenario(cfg);
      ASSERT_NE(rw.trace, nullptr);
      ASSERT_EQ(rw.trace->dropped, 0u);
      EXPECT_EQ(rw.trace->to_jsonl(), ref)
          << workload::protocol_name(p) << " workers=" << w
          << " (workers_used=" << rw.workers_used << ")";
    }
  }
}

TEST(Metrics, ScenarioResultCarriesAggregates) {
  const auto r = traced_scenario(workload::Protocol::kPase, 1);
  ASSERT_FALSE(r.metrics.empty());
  const auto value_of = [&](const std::string& name) -> double {
    for (const auto& m : r.metrics) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric " << name << " missing";
    return -1.0;
  };
  EXPECT_EQ(value_of("flows.total"), static_cast<double>(r.records.size()));
  EXPECT_GT(value_of("engine.executed_events"), 0.0);
  EXPECT_EQ(value_of("engine.heap_closure_events"), 0.0);
  EXPECT_EQ(value_of("engine.workers"), 1.0);
  EXPECT_GT(value_of("fabric.enqueues"), 0.0);
  EXPECT_GT(value_of("control.messages_sent"), 0.0);  // PASE arbitrates
  EXPECT_EQ(value_of("trace.dropped"), 0.0);
}

TEST(Metrics, ParallelRunReportsRoundStatistics) {
  const char* names[] = {"parallel.rounds", "parallel.windows",
                         "parallel.cross_posts", "engine.workers"};
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kDctcp;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kThreeTier;
  cfg.tree.num_tors = 4;
  cfg.tree.hosts_per_tor = 4;
  cfg.traffic.pattern = workload::Pattern::kLeftRight;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 60;
  cfg.traffic.seed = 3;
  cfg.workers = 2;
  const auto r = workload::run_scenario(cfg);
  ASSERT_EQ(r.workers_used, 2);
  for (const char* name : names) {
    bool found = false;
    for (const auto& m : r.metrics) found = found || m.name == name;
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace
}  // namespace pase::obs
