// Fat-tree topology family: structure counts, all-shortest-paths ECMP route
// installation, per-flow hash determinism (same seed => same paths, any
// worker count => same fingerprints), WCMP weighted splits, pod-aware
// partitioning, and the end-to-end sweep across all six protocols.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "net/droptail_queue.h"
#include "net/switch.h"
#include "topo/builder.h"
#include "topo/partition.h"
#include "trace_fingerprint.h"
#include "workload/scenario.h"

namespace pase {
namespace {

topo::QueueFactory droptail_factory() {
  return [](double) { return std::make_unique<net::DropTailQueue>(100); };
}

workload::ScenarioConfig fattree_scenario(workload::Protocol p,
                                          int k = 4, int flows = 100) {
  workload::ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kFatTree;
  cfg.fattree.k = k;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.4;
  cfg.traffic.num_flows = flows;
  cfg.traffic.seed = 11;
  return cfg;
}

// --- Structure ---------------------------------------------------------------

TEST(FatTreeStructure, K4HasExpectedCounts) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  // k=4: 4 cores, 4 pods x (2 agg + 2 edge), 16 hosts.
  EXPECT_EQ(t.cores.size(), 4u);
  EXPECT_EQ(t.aggs.size(), 8u);
  EXPECT_EQ(t.edges.size(), 8u);
  EXPECT_EQ(t.topo->switches().size(), 20u);  // 5k^2/4
  EXPECT_EQ(t.topo->num_hosts(), 16u);        // k^3/4
  // Port counts: edge = k/2 agg uplinks + k/2 hosts; agg = k/2 cores + k/2
  // edges; core = one port per pod.
  EXPECT_EQ(t.edges[0]->num_ports(), 4);
  EXPECT_EQ(t.aggs[0]->num_ports(), 4);
  EXPECT_EQ(t.cores[0]->num_ports(), 4);
  // Core links: (k/2)^2 cores x k pods, both directions.
  EXPECT_EQ(t.core_links().size(), 32u);
}

TEST(FatTreeStructure, K8HasExpectedCounts) {
  sim::Simulator sim;
  topo::FatTreeConfig cfg;
  cfg.k = 8;
  const topo::FatTree t = topo::build_fat_tree(sim, cfg, droptail_factory());
  EXPECT_EQ(t.cores.size(), 16u);
  EXPECT_EQ(t.topo->switches().size(), 80u);  // 5k^2/4
  EXPECT_EQ(t.topo->num_hosts(), 128u);       // k^3/4
  EXPECT_EQ(t.edges[0]->num_ports(), 8);
  EXPECT_EQ(t.cores[0]->num_ports(), 8);
}

TEST(FatTreeStructure, OversubscriptionScalesHostsPerEdge) {
  sim::Simulator sim;
  topo::FatTreeConfig cfg;
  cfg.oversubscription = 2.0;  // k=4: 4 hosts per edge instead of 2
  const topo::FatTree t = topo::build_fat_tree(sim, cfg, droptail_factory());
  EXPECT_EQ(t.topo->num_hosts(), 32u);
  EXPECT_EQ(t.edges[0]->num_ports(), 6);  // 2 agg uplinks + 4 hosts
}

TEST(FatTreeStructure, MalformedConfigThrowsEvenInRelease) {
  // Validation must be always-on (std::invalid_argument, not assert):
  // direct callers bypass ScenarioConfig validation and NDEBUG builds
  // compile asserts out.
  sim::Simulator sim;
  topo::FatTreeConfig odd;
  odd.k = 5;
  EXPECT_THROW(topo::build_fat_tree(sim, odd, droptail_factory()),
               std::invalid_argument);
  topo::FatTreeConfig tiny;
  tiny.k = 0;
  EXPECT_THROW(topo::build_fat_tree(sim, tiny, droptail_factory()),
               std::invalid_argument);
  topo::FatTreeConfig pods;
  pods.num_pods = 9;  // > k
  EXPECT_THROW(topo::build_fat_tree(sim, pods, droptail_factory()),
               std::invalid_argument);
}

TEST(FatTreeStructure, PartialPodCount) {
  sim::Simulator sim;
  topo::FatTreeConfig cfg;
  cfg.num_pods = 2;
  const topo::FatTree t = topo::build_fat_tree(sim, cfg, droptail_factory());
  EXPECT_EQ(t.topo->num_hosts(), 8u);
  EXPECT_EQ(t.aggs.size(), 4u);
}

// --- Multipath route installation -------------------------------------------

TEST(FatTreeRouting, EqualCostGroupWidthsMatchTheory) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  topo::Topology& topo = *t.topo;

  net::Host* local = topo.host(0);        // pod 0, edge 0
  net::Host* same_edge = topo.host(1);    // pod 0, edge 0
  net::Host* same_pod = topo.host(2);     // pod 0, edge 1
  net::Host* remote = topo.host(15);      // pod 3

  net::Switch* edge0 = t.edges[0];
  // Down to an attached host: the single downlink.
  EXPECT_EQ(edge0->route_width(same_edge->id()), 1);
  // Intra-pod inter-edge and inter-pod: all k/2 agg uplinks are equal cost.
  EXPECT_EQ(edge0->route_width(same_pod->id()), 2);
  EXPECT_EQ(edge0->route_width(remote->id()), 2);

  net::Switch* agg0 = t.aggs[0];
  // Inter-pod from an agg: its k/2 core uplinks.
  EXPECT_EQ(agg0->route_width(remote->id()), 2);
  // Intra-pod from an agg: the one edge downlink.
  EXPECT_EQ(agg0->route_width(local->id()), 1);

  // Below the core the path is unique.
  EXPECT_EQ(t.cores[0]->route_width(remote->id()), 1);

  // route_ports of a group are distinct, valid ports; route_for is the first.
  const std::vector<int> ports = edge0->route_ports(remote->id());
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_NE(ports[0], ports[1]);
  EXPECT_EQ(edge0->route_for(remote->id()), ports[0]);
}

TEST(FatTreeRouting, PropagationDelayUsesMinHopPath) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  const double d = t.config.per_link_delay;
  // Same edge: host-edge-host = 2 links; same pod: 4; inter-pod: 6.
  EXPECT_DOUBLE_EQ(
      t.topo->propagation_delay(t.topo->host(0)->id(), t.topo->host(1)->id()),
      2 * d);
  EXPECT_DOUBLE_EQ(
      t.topo->propagation_delay(t.topo->host(0)->id(), t.topo->host(2)->id()),
      4 * d);
  EXPECT_DOUBLE_EQ(
      t.topo->propagation_delay(t.topo->host(0)->id(), t.topo->host(15)->id()),
      6 * d);
}

// --- Deterministic per-flow hashing ------------------------------------------

TEST(FatTreeEcmp, SameSeedGivesIdenticalPathAssignment) {
  sim::Simulator sim_a, sim_b;
  topo::FatTreeConfig cfg;
  cfg.ecmp_seed = 42;
  const topo::FatTree a = topo::build_fat_tree(sim_a, cfg, droptail_factory());
  const topo::FatTree b = topo::build_fat_tree(sim_b, cfg, droptail_factory());

  const net::NodeId src = a.topo->host(0)->id();
  const net::NodeId dst = a.topo->host(15)->id();
  for (net::FlowId f = 1; f <= 500; ++f) {
    net::PacketPtr p = net::make_data_packet(f, src, dst, 0);
    for (std::size_t s = 0; s < a.topo->switches().size(); ++s) {
      EXPECT_EQ(a.topo->switches()[s]->port_for(*p),
                b.topo->switches()[s]->port_for(*p));
    }
  }
}

TEST(FatTreeEcmp, DifferentSeedMovesSomeFlows) {
  sim::Simulator sim_a, sim_b;
  topo::FatTreeConfig cfg;
  cfg.ecmp_seed = 1;
  const topo::FatTree a = topo::build_fat_tree(sim_a, cfg, droptail_factory());
  cfg.ecmp_seed = 2;
  const topo::FatTree b = topo::build_fat_tree(sim_b, cfg, droptail_factory());

  const net::NodeId src = a.topo->host(0)->id();
  const net::NodeId dst = a.topo->host(15)->id();
  net::Switch* ea = a.edges[0];
  net::Switch* eb = b.edges[0];
  int moved = 0;
  for (net::FlowId f = 1; f <= 500; ++f) {
    net::PacketPtr p = net::make_data_packet(f, src, dst, 0);
    if (ea->port_for(*p) != eb->port_for(*p)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(FatTreeEcmp, FlowsSpreadAcrossEqualCostPorts) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  net::Switch* edge0 = t.edges[0];
  const net::NodeId src = t.topo->host(0)->id();
  const net::NodeId dst = t.topo->host(15)->id();

  std::map<int, int> counts;
  const int n = 2000;
  for (net::FlowId f = 1; f <= n; ++f) {
    net::PacketPtr p = net::make_data_packet(f, src, dst, 0);
    ++counts[edge0->port_for(*p)];
  }
  ASSERT_EQ(counts.size(), 2u);  // both agg uplinks used
  for (const auto& [port, c] : counts) {
    // Even split to within 10% of fair share on 2000 deterministic draws.
    EXPECT_NEAR(static_cast<double>(c), n / 2.0, n * 0.10)
        << "port " << port;
  }
  // Every packet of one flow takes the same port (per-flow, not per-packet).
  net::PacketPtr p1 = net::make_data_packet(7, src, dst, 0);
  net::PacketPtr p2 = net::make_data_packet(7, src, dst, 123);
  EXPECT_EQ(edge0->port_for(*p1), edge0->port_for(*p2));
}

// --- WCMP --------------------------------------------------------------------

class TwoPortSwitch : public ::testing::Test {
 protected:
  sim::Simulator sim;
  net::Switch sw{0, "wcmp-sw"};
  net::Host a{1, "a"}, b{2, "b"};

  void SetUp() override {
    sw.add_port(std::make_unique<net::DropTailQueue>(16),
                std::make_unique<net::Link>(sim, 1e9, 1e-6, "sw->a"), &a);
    sw.add_port(std::make_unique<net::DropTailQueue>(16),
                std::make_unique<net::Link>(sim, 1e9, 1e-6, "sw->b"), &b);
  }
};

TEST_F(TwoPortSwitch, WeightsTwoToOneSplitFlowsTwoToOne) {
  sw.set_route_group(99, {0, 1}, {2, 1});
  const int n = 30000;
  int port0 = 0;
  for (net::FlowId f = 1; f <= n; ++f) {
    net::PacketPtr p = net::make_data_packet(f, 1, 99, 0);
    const int port = sw.port_for(*p);
    ASSERT_TRUE(port == 0 || port == 1);
    if (port == 0) ++port0;
  }
  // Expect 2/3 of flows on port 0, within 3% of the population.
  EXPECT_NEAR(static_cast<double>(port0), n * 2.0 / 3.0, n * 0.03);
}

TEST_F(TwoPortSwitch, EmptyWeightsMeanEqualCost) {
  sw.set_route_group(99, {0, 1});
  EXPECT_EQ(sw.route_width(99), 2);
  int port0 = 0;
  const int n = 10000;
  for (net::FlowId f = 1; f <= n; ++f) {
    net::PacketPtr p = net::make_data_packet(f, 1, 99, 0);
    if (sw.port_for(*p) == 0) ++port0;
  }
  EXPECT_NEAR(static_cast<double>(port0), n / 2.0, n * 0.05);
}

TEST_F(TwoPortSwitch, SinglePortGroupDegeneratesToPlainRoute) {
  sw.set_route_group(55, {1});
  EXPECT_EQ(sw.route_width(55), 1);
  EXPECT_EQ(sw.route_for(55), 1);
}

TEST_F(TwoPortSwitch, ReinstallingAGroupReusesItsSlot) {
  sw.set_route_group(99, {0, 1});
  sw.set_route_group(77, {1, 0});
  ASSERT_EQ(sw.num_route_groups(), 2u);
  // Reinstalling (same or different shape) must overwrite in place, not
  // accumulate stale groups.
  sw.set_route_group(99, {0, 1});
  sw.set_route_group(99, {1, 0}, {3, 1});
  EXPECT_EQ(sw.num_route_groups(), 2u);
  EXPECT_EQ(sw.route_width(99), 2);
  EXPECT_EQ(sw.route_for(99), 1);  // latest install wins
  EXPECT_EQ(sw.route_width(77), 2);
}

TEST(FatTreeRouting, RebuildingRoutesDoesNotLeakGroups) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  std::vector<std::size_t> before;
  for (const auto& s : t.topo->switches()) {
    before.push_back(s->num_route_groups());
  }
  // Changing the ECMP seed after the fact (the documented use of re-running
  // build_routes) must not grow any switch's group table.
  t.topo->set_ecmp_seed(7);
  t.topo->build_routes();
  t.topo->build_routes();
  for (std::size_t i = 0; i < t.topo->switches().size(); ++i) {
    EXPECT_EQ(t.topo->switches()[i]->num_route_groups(), before[i])
        << t.topo->switches()[i]->name();
  }
}

// --- No-route diagnostics ----------------------------------------------------

TEST(SwitchDiagnostics, NoRouteReportsNamesAndPortCount) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  net::Switch* edge0 = t.edges[0];
  try {
    edge0->receive(net::make_data_packet(1, 0, 9999, 0));
    FAIL() << "expected no-route to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("p0.edge0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4 ports"), std::string::npos) << msg;
    EXPECT_NE(msg.find("9999"), std::string::npos) << msg;
  }
  // A routable-but-unknown-name destination resolves through the topology's
  // name directory.
  net::Switch bare(500, "bare-sw");
  try {
    bare.receive(net::make_data_packet(1, 0, 7, 0));
    FAIL() << "expected no-route to throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bare-sw"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0 ports"), std::string::npos) << msg;
  }
}

TEST(SwitchDiagnostics, NoRouteResolvesDestinationName) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  // Drop a packet whose destination id is a real node the switch simply has
  // no route for by using an id past the route table (host ids are valid, so
  // use a fresh switch wired with the topology's resolver instead).
  net::Switch* edge0 = t.edges[0];
  const net::NodeId known = t.topo->host(15)->id();
  const std::string known_name = t.topo->host(15)->name();
  // edge0 does have a route to host 15; verify the resolver by asking the
  // topology directly (the same resolver throw_no_route uses).
  EXPECT_EQ(t.topo->node(known)->name(), known_name);
  EXPECT_GE(edge0->route_width(known), 1);
}

// --- Pod-aware partitioning --------------------------------------------------

TEST(FatTreePartition, OneDomainPerPod) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  const topo::Partition part = topo::partition_topology(*t.topo, 4);
  ASSERT_EQ(part.domains, 4);
  EXPECT_TRUE(part.usable());
  EXPECT_DOUBLE_EQ(part.lookahead, t.config.per_link_delay);

  // Every node of pod p (switches and hosts) shares one domain.
  for (int p = 0; p < 4; ++p) {
    const int d = part.domain_of_node(t.aggs[static_cast<std::size_t>(p * 2)]->id());
    EXPECT_EQ(part.domain_of_node(t.aggs[static_cast<std::size_t>(p * 2 + 1)]->id()), d);
    EXPECT_EQ(part.domain_of_node(t.edges[static_cast<std::size_t>(p * 2)]->id()), d);
    EXPECT_EQ(part.domain_of_node(t.edges[static_cast<std::size_t>(p * 2 + 1)]->id()), d);
    for (int h = 0; h < 4; ++h) {
      EXPECT_EQ(part.domain_of_node(t.topo->host(
                    static_cast<std::size_t>(p * 4 + h))->id()), d);
    }
  }
  // Pods land on distinct domains.
  std::set<int> pod_domains;
  for (int p = 0; p < 4; ++p) {
    pod_domains.insert(part.domain_of_node(t.edges[static_cast<std::size_t>(p * 2)]->id()));
  }
  EXPECT_EQ(pod_domains.size(), 4u);

  // Every cut link touches a core switch — pod boundaries are the cuts.
  const net::NodeId core_bound = static_cast<net::NodeId>(t.cores.size());
  for (const auto& c : part.cut_links) {
    const bool src_is_core = [&] {
      for (net::Switch* core : t.cores) {
        for (int p = 0; p < core->num_ports(); ++p) {
          if (&core->port_link(p) == c.link) return true;
        }
      }
      return false;
    }();
    const bool dst_is_core = c.link->destination()->id() < core_bound;
    EXPECT_TRUE(src_is_core || dst_is_core);
  }
}

TEST(FatTreePartition, TwoDomainsKeepPodsIntact) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  const topo::Partition part = topo::partition_topology(*t.topo, 2);
  ASSERT_EQ(part.domains, 2);
  // Pods 0,1 -> domain 0; pods 2,3 -> domain 1.
  EXPECT_EQ(part.domain_of_node(t.edges[0]->id()), 0);
  EXPECT_EQ(part.domain_of_node(t.edges[2]->id()), 0);
  EXPECT_EQ(part.domain_of_node(t.edges[4]->id()), 1);
  EXPECT_EQ(part.domain_of_node(t.edges[6]->id()), 1);
}

TEST(FatTreePartition, DomainCountClampsToPods) {
  sim::Simulator sim;
  const topo::FatTree t =
      topo::build_fat_tree(sim, topo::FatTreeConfig{}, droptail_factory());
  // 16 hosts but only 4 pods: asking for 8 domains must not split a pod.
  const topo::Partition part = topo::partition_topology(*t.topo, 8);
  EXPECT_EQ(part.domains, 4);
}

// --- Engine determinism on the fat-tree --------------------------------------

std::uint64_t fattree_fingerprint(workload::Protocol p, int workers) {
  workload::ScenarioConfig cfg = fattree_scenario(p);
  cfg.workers = workers;
  return trace_fingerprint(workload::run_scenario(cfg));
}

TEST(FatTreeParallel, BitIdenticalAcrossWorkerCounts) {
  const workload::Protocol safe[] = {
      workload::Protocol::kDctcp, workload::Protocol::kD2tcp,
      workload::Protocol::kL2dct, workload::Protocol::kPdq,
      workload::Protocol::kPfabric};
  for (workload::Protocol p : safe) {
    const std::uint64_t seq = fattree_fingerprint(p, 1);
    for (int workers : {2, 4, 8}) {
      EXPECT_EQ(fattree_fingerprint(p, workers), seq)
          << workload::protocol_name(p) << " diverged at workers=" << workers;
    }
  }
}

TEST(FatTreeParallel, ParallelRunActuallyUsesMultipleDomains) {
  workload::ScenarioConfig cfg = fattree_scenario(workload::Protocol::kDctcp);
  cfg.workers = 4;
  const workload::ScenarioResult r = workload::run_scenario(cfg);
  EXPECT_EQ(r.workers_used, 4);
}

TEST(FatTreeParallel, EcmpSeedChangesFingerprint) {
  // Make the fabric the bottleneck (same rate as host links) and drive it
  // hard: fabric queues then congest, so which equal-cost port a flow hashes
  // to shifts queue dynamics — which the fingerprint observes. With the
  // default 10x-faster fabric the core never queues and FCTs are
  // path-invariant, making the fingerprint insensitive to the seed.
  workload::ScenarioConfig cfg =
      fattree_scenario(workload::Protocol::kDctcp, /*k=*/4, /*flows=*/150);
  cfg.fattree.fabric_rate_bps = cfg.fattree.host_rate_bps;
  cfg.traffic.load = 0.8;
  const std::uint64_t base = trace_fingerprint(workload::run_scenario(cfg));
  cfg.fattree.ecmp_seed = 99;
  const std::uint64_t reseeded = trace_fingerprint(workload::run_scenario(cfg));
  EXPECT_NE(base, reseeded);
}

// --- End-to-end: all six protocols through the sweep runner ------------------

TEST(FatTreeSweep, AllProtocolsRunOnK8) {
  const workload::Protocol all[] = {
      workload::Protocol::kDctcp,   workload::Protocol::kD2tcp,
      workload::Protocol::kL2dct,   workload::Protocol::kPdq,
      workload::Protocol::kPfabric, workload::Protocol::kPase};
  std::vector<exp::SweepCase> cases;
  for (workload::Protocol p : all) {
    workload::ScenarioConfig cfg = fattree_scenario(p, /*k=*/8, /*flows=*/60);
    cases.push_back({std::string(workload::protocol_name(p)) + "/ft8", cfg});
  }
  std::vector<workload::ScenarioConfig> configs;
  for (const auto& c : cases) configs.push_back(c.config);

  const exp::SweepRunner runner(2);
  const std::vector<workload::ScenarioResult> results = runner.run(configs);
  ASSERT_EQ(results.size(), cases.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_GT(results[i].data_packets_sent, 0u) << cases[i].label;
    EXPECT_GT(results[i].total_flows(), 0u) << cases[i].label;
  }
  // The sweep JSON names the topology and carries the balance metric.
  const std::string json = exp::sweep_to_json("fattree-smoke", cases, results);
  EXPECT_NE(json.find("\"topology\": \"fat_tree\""), std::string::npos);
  EXPECT_NE(json.find("fabric.core_link_imbalance"), std::string::npos);
}

}  // namespace
}  // namespace pase
