// Link serialization/propagation timing, switch routing/hooks, host demux.
#include <gtest/gtest.h>

#include "net/droptail_queue.h"
#include "net/host.h"
#include "net/link.h"
#include "net/switch.h"
#include "sim/simulator.h"

namespace pase::net {
namespace {

class SinkNode : public Node {
 public:
  SinkNode(NodeId id) : Node(id, "sink") {}
  void receive(PacketPtr p) override {
    packets.push_back(std::move(p));
    arrival_times.push_back(last_now ? *last_now : -1.0);
  }
  std::vector<PacketPtr> packets;
  std::vector<double> arrival_times;
  const double* last_now = nullptr;  // bound to a simulator clock mirror
};

struct LinkFixture : ::testing::Test {
  sim::Simulator sim;
  SinkNode sink{99};
  DropTailQueue queue{100};
  // 1 Gbps, 10 us propagation.
  Link link{sim, 1e9, 10e-6, "test"};

  void SetUp() override { link.connect(&queue, &sink); }
};

TEST_F(LinkFixture, DeliversAfterSerializationPlusPropagation) {
  auto p = make_data_packet(1, 0, 99, 0);  // 1500 B wire
  const double expect = 1500.0 * 8 / 1e9 + 10e-6;
  double arrival = -1;
  queue.enqueue(std::move(p));
  sim.schedule_at(expect - 1e-12, [&] { EXPECT_TRUE(sink.packets.empty()); });
  sim.run();
  (void)arrival;
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_NEAR(sim.now(), expect, 1e-12);
}

TEST_F(LinkFixture, BackToBackPacketsSpacedBySerialization) {
  for (std::uint32_t i = 0; i < 3; ++i) {
    queue.enqueue(make_data_packet(1, 0, 99, i));
  }
  sim.run();
  // Last packet leaves at 3 * tx and lands tx*3 + prop later.
  const double tx = 1500.0 * 8 / 1e9;
  EXPECT_NEAR(sim.now(), 3 * tx + 10e-6, 1e-12);
  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(sink.packets[0]->seq, 0u);
  EXPECT_EQ(sink.packets[2]->seq, 2u);
}

TEST_F(LinkFixture, ThroughputMatchesCapacity) {
  const int n = 90;  // stay within the queue's 100-packet capacity
  for (int i = 0; i < n; ++i) {
    queue.enqueue(make_data_packet(1, 0, 99, static_cast<std::uint32_t>(i)));
  }
  sim.run();
  const double duration = sim.now() - 10e-6;  // subtract last propagation
  const double bits = static_cast<double>(n) * 1500 * 8;
  EXPECT_NEAR(bits / duration, 1e9, 1e9 * 0.001);
  EXPECT_EQ(link.packets_sent(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(link.bytes_sent(), static_cast<std::uint64_t>(n) * 1500);
}

TEST_F(LinkFixture, SmallPacketsSerializeFaster) {
  auto ack = make_control_packet(PacketType::kAck, 1, 0, 99);
  queue.enqueue(std::move(ack));
  sim.run();
  EXPECT_NEAR(sim.now(), 40.0 * 8 / 1e9 + 10e-6, 1e-12);
}

TEST_F(LinkFixture, BusyTimeAccumulates) {
  queue.enqueue(make_data_packet(1, 0, 99, 0));
  queue.enqueue(make_data_packet(1, 0, 99, 1));
  sim.run();
  EXPECT_NEAR(link.busy_time(), 2 * 1500.0 * 8 / 1e9, 1e-12);
}

// --- Switch -------------------------------------------------------------------

struct SwitchFixture : ::testing::Test {
  sim::Simulator sim;
  Switch sw{10, "sw"};
  SinkNode a{0}, b{1};

  void SetUp() override {
    sw.add_port(std::make_unique<DropTailQueue>(10),
                std::make_unique<Link>(sim, 1e9, 1e-6), &a);
    sw.add_port(std::make_unique<DropTailQueue>(10),
                std::make_unique<Link>(sim, 1e9, 1e-6), &b);
    sw.set_route(0, 0);
    sw.set_route(1, 1);
  }
};

TEST_F(SwitchFixture, RoutesByDestination) {
  sw.receive(make_data_packet(1, 5, 0, 0));
  sw.receive(make_data_packet(2, 5, 1, 0));
  sim.run();
  ASSERT_EQ(a.packets.size(), 1u);
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_EQ(a.packets[0]->flow, 1u);
  EXPECT_EQ(b.packets[0]->flow, 2u);
}

TEST_F(SwitchFixture, ThrowsOnMissingRoute) {
  EXPECT_THROW(sw.receive(make_data_packet(1, 5, 42, 0)), std::runtime_error);
}

TEST_F(SwitchFixture, ForwardHooksSeePacketsAndPorts) {
  std::vector<int> ports;
  sw.add_forward_hook([&](Packet& p, int port) {
    ports.push_back(port);
    p.priority = 7;  // hooks may rewrite headers
  });
  sw.receive(make_data_packet(1, 5, 1, 0));
  sim.run();
  ASSERT_EQ(ports.size(), 1u);
  EXPECT_EQ(ports[0], 1);
  EXPECT_EQ(b.packets[0]->priority, 7);
}

TEST_F(SwitchFixture, ControlHandlerGetsOwnTraffic) {
  int control_seen = 0;
  sw.set_control_handler([&](PacketPtr) { ++control_seen; });
  sw.receive(make_control_packet(PacketType::kArbRequest, 1, 5, 10));
  EXPECT_EQ(control_seen, 1);
  EXPECT_TRUE(a.packets.empty());
}

// --- Host demux ----------------------------------------------------------------

struct RecordingSink : PacketSink {
  std::vector<PacketPtr> got;
  void deliver(PacketPtr p) override { got.push_back(std::move(p)); }
};

TEST(Host, DemuxesByFlowId) {
  sim::Simulator sim;
  Host h(0, "h");
  SinkNode tor(1);
  h.attach_uplink(std::make_unique<DropTailQueue>(10),
                  std::make_unique<Link>(sim, 1e9, 1e-6), &tor);
  RecordingSink s1, s2;
  h.register_flow(1, &s1);
  h.register_flow(2, &s2);
  h.receive(make_data_packet(1, 5, 0, 0));
  h.receive(make_data_packet(2, 5, 0, 0));
  h.receive(make_data_packet(3, 5, 0, 0));  // unknown: dropped silently
  EXPECT_EQ(s1.got.size(), 1u);
  EXPECT_EQ(s2.got.size(), 1u);
  h.unregister_flow(1);
  h.receive(make_data_packet(1, 5, 0, 0));
  EXPECT_EQ(s1.got.size(), 1u);
}

TEST(Host, ControlTrafficGoesToControlHandler) {
  sim::Simulator sim;
  Host h(0, "h");
  SinkNode tor(1);
  h.attach_uplink(std::make_unique<DropTailQueue>(10),
                  std::make_unique<Link>(sim, 1e9, 1e-6), &tor);
  int control = 0;
  h.set_control_handler([&](PacketPtr) { ++control; });
  h.receive(make_control_packet(PacketType::kArbResponse, 1, 5, 0));
  h.receive(make_control_packet(PacketType::kArbDelegate, 0, 5, 0));
  EXPECT_EQ(control, 2);
}

TEST(Host, SendHooksRunOnEgress) {
  sim::Simulator sim;
  Host h(0, "h");
  SinkNode tor(1);
  h.attach_uplink(std::make_unique<DropTailQueue>(10),
                  std::make_unique<Link>(sim, 1e9, 1e-6), &tor);
  h.add_send_hook([](Packet& p) { p.pdq.rate = 123.0; });
  h.send(make_data_packet(1, 0, 1, 0));
  sim.run();
  ASSERT_EQ(tor.packets.size(), 1u);
  EXPECT_EQ(tor.packets[0]->pdq.rate, 123.0);
}

}  // namespace
}  // namespace pase::net
