// Topology construction and routing tests.
#include <gtest/gtest.h>

#include "net/droptail_queue.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"

namespace pase::topo {
namespace {

QueueFactory droptail() {
  return [](double) { return std::make_unique<net::DropTailQueue>(100); };
}

TEST(SingleRack, BuildsRequestedHosts) {
  sim::Simulator sim;
  SingleRackConfig cfg;
  cfg.num_hosts = 7;
  auto rack = build_single_rack(sim, cfg, droptail());
  EXPECT_EQ(rack.topo->num_hosts(), 7u);
  EXPECT_EQ(rack.topo->switches().size(), 1u);
  EXPECT_EQ(rack.tor->num_ports(), 7);  // one downlink per host
}

TEST(SingleRack, PacketsFlowBetweenAnyHostPair) {
  sim::Simulator sim;
  SingleRackConfig cfg;
  cfg.num_hosts = 4;
  auto rack = build_single_rack(sim, cfg, droptail());
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      auto* src = rack.topo->host(static_cast<std::size_t>(s));
      auto* dst = rack.topo->host(static_cast<std::size_t>(d));
      struct S : net::PacketSink {
        int n = 0;
        void deliver(net::PacketPtr) override { ++n; }
      } sink;
      dst->register_flow(99, &sink);
      src->send(net::make_data_packet(99, src->id(), dst->id(), 0));
      sim.run();
      EXPECT_EQ(sink.n, 1) << s << "->" << d;
      dst->unregister_flow(99);
    }
  }
}

TEST(SingleRack, IntraRackPropagationRtt) {
  sim::Simulator sim;
  SingleRackConfig cfg;
  cfg.num_hosts = 3;
  cfg.per_link_delay = 25e-6;
  auto rack = build_single_rack(sim, cfg, droptail());
  // host -> tor -> host each way: 4 x 25 us.
  EXPECT_NEAR(rack.topo->propagation_rtt(rack.topo->host(0)->id(),
                                         rack.topo->host(1)->id()),
              100e-6, 1e-12);
}

TEST(ThreeTier, StructureMatchesPaperBaseline) {
  sim::Simulator sim;
  ThreeTierConfig cfg;  // defaults: 4 ToR x 40 hosts, 2 agg, 1 core
  auto tt = build_three_tier(sim, cfg, droptail());
  EXPECT_EQ(tt.topo->num_hosts(), 160u);
  EXPECT_EQ(tt.tors.size(), 4u);
  EXPECT_EQ(tt.aggs.size(), 2u);
  ASSERT_NE(tt.core, nullptr);
  // Core has one port per agg.
  EXPECT_EQ(tt.core->num_ports(), 2);
  // Each ToR: 40 host downlinks + 1 agg uplink.
  for (auto* tor : tt.tors) EXPECT_EQ(tor->num_ports(), 41);
  // Each agg: 2 ToR links + 1 core link.
  for (auto* agg : tt.aggs) EXPECT_EQ(agg->num_ports(), 3);
}

TEST(ThreeTier, CoreRttIs300us) {
  sim::Simulator sim;
  ThreeTierConfig cfg;
  auto tt = build_three_tier(sim, cfg, droptail());
  // Host under ToR0 to host under ToR3 crosses the core: 6 hops each way.
  const auto a = tt.topo->host(0)->id();
  const auto b = tt.topo->host(159)->id();
  EXPECT_NEAR(tt.topo->propagation_rtt(a, b), 300e-6, 1e-12);
}

TEST(ThreeTier, IntraRackPathAvoidsCore) {
  sim::Simulator sim;
  ThreeTierConfig cfg;
  auto tt = build_three_tier(sim, cfg, droptail());
  // Same-rack pair: 2 hops each way only.
  const auto a = tt.topo->host(0)->id();
  const auto b = tt.topo->host(1)->id();
  EXPECT_NEAR(tt.topo->propagation_rtt(a, b), 100e-6, 1e-12);
}

TEST(ThreeTier, SubtreeHelpers) {
  sim::Simulator sim;
  ThreeTierConfig cfg;
  auto tt = build_three_tier(sim, cfg, droptail());
  EXPECT_TRUE(tt.in_left_subtree(0));
  EXPECT_TRUE(tt.in_left_subtree(79));
  EXPECT_FALSE(tt.in_left_subtree(80));
  EXPECT_FALSE(tt.in_left_subtree(159));
  EXPECT_EQ(tt.tor_of_host(0), 0);
  EXPECT_EQ(tt.tor_of_host(40), 1);
  EXPECT_EQ(tt.agg_of_tor(0), tt.aggs[0]);
  EXPECT_EQ(tt.agg_of_tor(3), tt.aggs[1]);
}

TEST(ThreeTier, CrossSubtreePacketDelivery) {
  sim::Simulator sim;
  ThreeTierConfig cfg;
  cfg.hosts_per_tor = 2;  // keep it small
  auto tt = build_three_tier(sim, cfg, droptail());
  auto* src = tt.topo->host(0);
  auto* dst = tt.topo->host(7);  // other agg subtree
  struct S : net::PacketSink {
    int n = 0;
    void deliver(net::PacketPtr) override { ++n; }
  } sink;
  dst->register_flow(5, &sink);
  src->send(net::make_data_packet(5, src->id(), dst->id(), 0));
  sim.run();
  EXPECT_EQ(sink.n, 1);
  // The packet crossed the core: its agg->core link transmitted something.
  EXPECT_GT(tt.core->port_link(0).packets_sent() +
                tt.core->port_link(1).packets_sent(),
            0u);
}

TEST(Topology, QueueAggregationCountsAllPorts) {
  sim::Simulator sim;
  SingleRackConfig cfg;
  cfg.num_hosts = 3;
  auto rack = build_single_rack(sim, cfg, droptail());
  int queues = 0;
  rack.topo->for_each_queue([&](net::Queue&) { ++queues; });
  // 3 host uplinks + 3 ToR downlinks.
  EXPECT_EQ(queues, 6);
  EXPECT_EQ(rack.topo->total_drops(), 0u);
}

TEST(Topology, OversubscriptionRatioIsFourToOne) {
  ThreeTierConfig cfg;
  const double host_up = cfg.hosts_per_tor * cfg.host_rate_bps;
  EXPECT_DOUBLE_EQ(host_up / cfg.fabric_rate_bps, 4.0);
}

}  // namespace
}  // namespace pase::topo
