// The pre-refactor scenario path (the per-protocol switch monolith), frozen
// verbatim as the golden reference for the profile-registry refactor.
// golden_equivalence_test reruns every protocol's seed scenario through both
// this path and the registry path and asserts bit-identical results. Test
// fixture only — nothing in src/ may include it.
#pragma once

#include <vector>

#include "workload/scenario.h"

namespace pase::legacy {

// Generates the workload from cfg.traffic and runs it (old run_scenario).
workload::ScenarioResult run_scenario(workload::ScenarioConfig cfg);

// Runs an explicit flow list (old run_scenario_with_flows).
workload::ScenarioResult run_scenario_with_flows(
    workload::ScenarioConfig cfg, std::vector<transport::Flow> flows);

}  // namespace pase::legacy
