// The transport-profile registry: built-in coverage, name lookup rules,
// config validation, and — the acceptance test for the whole refactor —
// registering a seventh profile at runtime and running it through the
// unmodified scenario harness.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <stdexcept>
#include <string>

#include "net/droptail_queue.h"
#include "proto/registry.h"
#include "proto/transport_profile.h"
#include "transport/window_sender.h"
#include "workload/scenario.h"

namespace pase {
namespace {

using proto::ProfileRegistry;
using proto::Protocol;
using proto::TransportProfile;
using workload::ScenarioConfig;

constexpr Protocol kAll[] = {Protocol::kDctcp,   Protocol::kD2tcp,
                             Protocol::kL2dct,   Protocol::kPdq,
                             Protocol::kPfabric, Protocol::kPase};

TEST(ProfileRegistry, EveryProtocolHasABuiltinProfile) {
  for (Protocol p : kAll) {
    const TransportProfile& prof = proto::profile_for(p);
    ASSERT_TRUE(prof.protocol().has_value());
    EXPECT_EQ(*prof.protocol(), p);
    EXPECT_EQ(prof.name(), proto::protocol_key(p));
    EXPECT_EQ(prof.display_name(), proto::protocol_name(p));
  }
}

TEST(ProfileRegistry, LookupByNameIsCaseInsensitive) {
  for (Protocol p : kAll) {
    const std::string key(proto::protocol_key(p));
    const TransportProfile* lower = proto::profile_for(key);
    ASSERT_NE(lower, nullptr) << key;
    std::string upper = key;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    EXPECT_EQ(proto::profile_for(upper), lower);
  }
  // Display names with different casing resolve too.
  EXPECT_NE(proto::profile_for("pFabric"), nullptr);
  EXPECT_NE(proto::profile_for("DCTCP"), nullptr);
}

TEST(ProfileRegistry, UnknownNameIsRejected) {
  EXPECT_EQ(proto::profile_for(""), nullptr);
  EXPECT_EQ(proto::profile_for("tcp-vegas"), nullptr);
  EXPECT_EQ(proto::profile_for("pase "), nullptr);
}

TEST(ProfileRegistry, DuplicateRegistrationThrows) {
  class Dup final : public TransportProfile {
   public:
    std::string_view name() const override { return "PASE"; }  // case clash
    topo::QueueFactory make_queue_factory(
        const proto::ProfileParams&) const override {
      return nullptr;
    }
    std::unique_ptr<transport::Sender> make_sender(
        proto::RunContext&, const transport::Flow&,
        net::Host&) const override {
      return nullptr;
    }
  };
  EXPECT_THROW(ProfileRegistry::instance().add(std::make_unique<Dup>()),
               std::invalid_argument);
}

TEST(ParseProtocol, RoundTripsAllSpellings) {
  for (Protocol p : kAll) {
    EXPECT_EQ(proto::parse_protocol(proto::protocol_key(p)), p);
    EXPECT_EQ(proto::parse_protocol(proto::protocol_name(p)), p);
  }
  EXPECT_EQ(proto::parse_protocol("PFABRIC"), Protocol::kPfabric);
  EXPECT_FALSE(proto::parse_protocol("").has_value());
  EXPECT_FALSE(proto::parse_protocol("tcp-reno").has_value());
}

TEST(ValidateConfig, RejectsMarkThresholdAboveCapacity) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kDctcp;
  cfg.queue_capacity_pkts = 50;
  cfg.mark_threshold_pkts = 80;
  EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  EXPECT_THROW(workload::run_scenario(cfg), std::invalid_argument);
}

TEST(ValidateConfig, RejectsSingleQueuePase) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.pase.num_queues = 1;
  EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
}

TEST(ValidateConfig, RejectsNonsenseScenario) {
  {
    ScenarioConfig cfg;
    cfg.max_duration = 0.0;
    EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg;
    cfg.traffic.load = -0.1;
    EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg;
    cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
    cfg.tree.num_tors = 3;
    cfg.tree.tors_per_agg = 2;  // 3 % 2 != 0
    EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg;
    cfg.traffic.pattern = workload::Pattern::kLeftRight;  // needs three-tier
    EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  }
  {
    ScenarioConfig cfg;
    cfg.profile_name = "no-such-transport";
    EXPECT_THROW(workload::validate_config(cfg), std::invalid_argument);
  }
}

TEST(ValidateConfig, AcceptsDefaults) {
  for (Protocol p : kAll) {
    ScenarioConfig cfg;
    cfg.protocol = p;
    EXPECT_NO_THROW(workload::validate_config(cfg)) << proto::protocol_key(p);
  }
}

// The refactor's acceptance criterion: a seventh transport — plain TCP over
// DropTail queues — registered here, with zero edits to scenario.cc,
// switch.cc or any bench, runs end to end via ScenarioConfig::profile_name.
class TcpDroptailProfile final : public TransportProfile {
 public:
  std::string_view name() const override { return "tcp-droptail"; }
  std::string_view display_name() const override { return "TCP/DropTail"; }

  topo::QueueFactory make_queue_factory(
      const proto::ProfileParams& params) const override {
    const std::size_t cap_override = params.queue_capacity_pkts;
    return [=](double) -> std::unique_ptr<net::Queue> {
      return std::make_unique<net::DropTailQueue>(cap_override ? cap_override
                                                               : 250);
    };
  }

  std::unique_ptr<transport::Sender> make_sender(
      proto::RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    transport::WindowSenderOptions w;
    w.initial_rtt = ctx.base_rtt;
    return std::make_unique<transport::WindowSender>(ctx.sim, src, flow, w);
  }
};

TEST(SeventhProfile, RunsThroughUnmodifiedHarness) {
  if (proto::profile_for("tcp-droptail") == nullptr) {
    ProfileRegistry::instance().add(std::make_unique<TcpDroptailProfile>());
  }

  ScenarioConfig cfg;
  cfg.profile_name = "tcp-droptail";  // enum field is ignored when set
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 40;
  cfg.traffic.seed = 5;

  EXPECT_NO_THROW(workload::validate_config(cfg));
  const workload::ScenarioResult res = workload::run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
  EXPECT_GT(res.data_packets_sent, 0u);
  EXPECT_GT(res.afct(), 0.0);
  // No control plane: the counters stay zero.
  EXPECT_EQ(res.control.messages_sent, 0u);

  // Determinism holds for registered extras too.
  const workload::ScenarioResult again = workload::run_scenario(cfg);
  EXPECT_EQ(res.end_time, again.end_time);
  EXPECT_EQ(res.data_packets_sent, again.data_packets_sent);
}

TEST(SeventhProfile, ListedInRegistryEnumeration) {
  if (proto::profile_for("tcp-droptail") == nullptr) {
    ProfileRegistry::instance().add(std::make_unique<TcpDroptailProfile>());
  }
  bool found = false;
  for (const TransportProfile* p : ProfileRegistry::instance().profiles()) {
    if (p->name() == "tcp-droptail") {
      found = true;
      // Extras have no enum identity.
      EXPECT_FALSE(p->protocol().has_value());
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pase
