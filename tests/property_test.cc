// Parameterized property sweeps: invariants that must hold across protocols,
// loads, queue counts, flow sizes and seeds.
#include <gtest/gtest.h>

#include "net/pfabric_queue.h"
#include "net/priority_queue_bank.h"
#include "workload/scenario.h"

namespace pase::workload {
namespace {

// ---------------------------------------------------------------------------
// Scenario-level properties over (protocol x load).

struct SweepParam {
  Protocol protocol;
  double load;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(protocol_name(info.param.protocol)) + "_load" +
         std::to_string(static_cast<int>(info.param.load * 100));
}

class ScenarioSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  ScenarioResult run() {
    ScenarioConfig cfg;
    cfg.protocol = GetParam().protocol;
    cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 12;
    cfg.traffic.pattern = Pattern::kIntraRackRandom;
    cfg.traffic.load = GetParam().load;
    cfg.traffic.num_flows = 150;
    cfg.traffic.seed = 1234;
    return run_scenario(cfg);
  }
};

TEST_P(ScenarioSweep, AllShortFlowsComplete) {
  EXPECT_EQ(run().unfinished(), 0u);
}

TEST_P(ScenarioSweep, CompletionTimesArePositiveAndOrdered) {
  auto res = run();
  for (const auto& r : res.records) {
    if (r.background || !r.completed()) continue;
    EXPECT_GT(r.fct(), 0.0);
    EXPECT_GE(r.finish, r.start);
  }
}

TEST_P(ScenarioSweep, FctFloorRespected) {
  auto res = run();
  for (const auto& r : res.records) {
    if (r.background || !r.completed()) continue;
    EXPECT_GE(r.fct(), static_cast<double>(r.size_bytes) * 8 / 1e9);
  }
}

TEST_P(ScenarioSweep, TailAtLeastAverage) {
  auto res = run();
  EXPECT_GE(res.fct_p99(), res.afct() * 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolLoadGrid, ScenarioSweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> ps;
      for (auto proto : {Protocol::kDctcp, Protocol::kL2dct, Protocol::kPdq,
                         Protocol::kPfabric, Protocol::kPase}) {
        for (double load : {0.3, 0.6, 0.9}) ps.push_back({proto, load});
      }
      return ps;
    }()),
    sweep_name);

// ---------------------------------------------------------------------------
// PASE invariants across queue counts.

class QueueCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(QueueCountSweep, PaseWorksWithAnyQueueCount) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 10;
  cfg.pase.num_queues = GetParam();
  cfg.traffic.load = 0.7;
  cfg.traffic.num_flows = 120;
  cfg.traffic.seed = 5;
  auto res = run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Queues, QueueCountSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 10));

// ---------------------------------------------------------------------------
// Seed robustness: behaviour holds across random workloads.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PaseAtMostMarginallyWorseThanDctcpNeverCatastrophic) {
  ScenarioConfig cfg;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.load = 0.8;
  cfg.traffic.num_flows = 150;
  cfg.traffic.seed = GetParam();
  cfg.protocol = Protocol::kPase;
  auto pase = run_scenario(cfg);
  cfg.protocol = Protocol::kDctcp;
  auto dctcp = run_scenario(cfg);
  EXPECT_EQ(pase.unfinished(), 0u);
  // PASE should essentially never lose to DCTCP at high load; allow a thin
  // margin for workload noise at this small scale.
  EXPECT_LT(pase.afct(), dctcp.afct() * 1.1) << "seed " << GetParam();
}

TEST_P(SeedSweep, PaseFabricStaysLossFree) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.load = 0.9;
  cfg.traffic.num_flows = 150;
  cfg.traffic.seed = GetParam();
  auto res = run_scenario(cfg);
  EXPECT_LE(res.loss_rate(), 0.001);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 7u, 42u, 1337u, 9001u));

// ---------------------------------------------------------------------------
// Queue-discipline properties under randomized packet streams.

class PfabricQueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PfabricQueueProperty, NeverExceedsCapacityAndConservesPackets) {
  struct Shim : net::Queue {
    using net::Queue::do_dequeue;
    using net::Queue::do_enqueue;
  };
  net::PfabricQueue q(24);
  sim::Rng rng(GetParam());
  std::uint64_t enq = 0, drop0 = q.drops(), deq = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng() < 0.6) {
      auto p = net::make_data_packet(
          static_cast<net::FlowId>(rng.uniform_int(1, 9)), 0, 1,
          static_cast<std::uint32_t>(i));
      p->remaining_size = rng.uniform(1e3, 1e6);
      ++enq;
      (q.*(&Shim::do_enqueue))(std::move(p));
    } else if (!q.empty()) {
      auto p = (q.*(&Shim::do_dequeue))();
      ASSERT_TRUE(p);
      ++deq;
    }
    ASSERT_LE(q.len_packets(), 24u);
  }
  EXPECT_EQ(enq, deq + q.len_packets() + (q.drops() - drop0));
}

TEST_P(PfabricQueueProperty, DequeueOrderRespectsPriorityAcrossFlows) {
  struct Shim : net::Queue {
    using net::Queue::do_dequeue;
    using net::Queue::do_enqueue;
  };
  net::PfabricQueue q(64);
  sim::Rng rng(GetParam());
  // One packet per flow: dequeue order must be ascending remaining size.
  for (int i = 0; i < 40; ++i) {
    auto p = net::make_data_packet(static_cast<net::FlowId>(i), 0, 1, 0);
    p->remaining_size = rng.uniform(1e3, 1e6);
    (q.*(&Shim::do_enqueue))(std::move(p));
  }
  double prev = -1;
  while (!q.empty()) {
    auto p = (q.*(&Shim::do_dequeue))();
    EXPECT_GE(p->remaining_size, prev);
    prev = p->remaining_size;
  }
}

INSTANTIATE_TEST_SUITE_P(Rand, PfabricQueueProperty,
                         ::testing::Values(11u, 22u, 33u));

class BankProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BankProperty, StrictPriorityHoldsUnderRandomTraffic) {
  struct Shim : net::Queue {
    using net::Queue::do_dequeue;
    using net::Queue::do_enqueue;
  };
  net::PriorityQueueBank q(8, 200, 1000);
  sim::Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 30; ++i) {
      auto p = net::make_data_packet(1, 0, 1, 0);
      p->priority = static_cast<int>(rng.uniform_int(0, 7));
      (q.*(&Shim::do_enqueue))(std::move(p));
    }
    int prev_class = -1;
    for (int i = 0; i < 30; ++i) {
      auto p = (q.*(&Shim::do_dequeue))();
      ASSERT_TRUE(p);
      // Classes may only increase within a drain (no arrivals in between).
      EXPECT_GE(p->priority, prev_class);
      prev_class = p->priority;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rand, BankProperty, ::testing::Values(3u, 5u, 8u));

}  // namespace
}  // namespace pase::workload
