// Tests for the discrete-event engine: ordering, cancellation, timers, RNG.
#include <gtest/gtest.h>

#include <cstdint>\n#include <memory>\n#include <utility>\n#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace pase::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(3e-3, [&] { order.push_back(3); });
  s.schedule(1e-3, [&] { order.push_back(1); });
  s.schedule(2e-3, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3e-3);
}

TEST(Simulator, SameTimeEventsFireInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(1e-3, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator s;
  double seen = -1.0;
  s.schedule(5e-3, [&] { seen = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(seen, 5e-3);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) s.schedule(1e-3, chain);
  };
  s.schedule(1e-3, chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5e-3);
}

TEST(Simulator, RunUntilStopsAtBound) {
  Simulator s;
  int fired = 0;
  s.schedule(1e-3, [&] { ++fired; });
  s.schedule(10e-3, [&] { ++fired; });
  s.run(5e-3);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5e-3);  // clock parked at the bound
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  int fired = 0;
  EventId id = s.schedule(1e-3, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelInvalidIdIsNoop) {
  Simulator s;
  EXPECT_FALSE(s.cancel(EventId{}));
}

TEST(Simulator, DoubleCancelReturnsFalse) {
  Simulator s;
  EventId id = s.schedule(1e-3, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

// Regression: cancelling an id whose event already fired must be a true
// no-op. The old lazy-cancellation scheme decremented pending_events() for
// any id it had not seen before, so a fired id made the size_t counter
// underflow to ~2^64.
TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator s;
  int fired = 0;
  EventId id = s.schedule(1e-3, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // and again
  EXPECT_EQ(s.pending_events(), 0u);  // no underflow
  // The engine must still work normally afterwards.
  s.schedule(1e-3, [&] { ++fired; });
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.pending_events(), 0u);
}

// A stale handle must stay dead even after its slot is recycled for a new
// event: cancelling via the old handle must not kill the new event.
TEST(Simulator, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator s;
  EventId old_id = s.schedule(1e-3, [] {});
  EXPECT_TRUE(s.cancel(old_id));
  int fired = 0;
  // Recycle: keep scheduling until some slot (typically the freed one) is
  // reused; the generation stamp must protect every one of them.
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(s.schedule(1e-3, [&] { ++fired; }));
  EXPECT_FALSE(s.cancel(old_id));
  EXPECT_EQ(s.pending_events(), 8u);
  s.run();
  EXPECT_EQ(fired, 8);
  for (const EventId& id : ids) EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending_events(), 0u);
}

// Cancellation must work both while an event is still in the staging list
// (scheduled, nothing executed yet) and after it has been flushed into the
// calendar buckets by an intervening run.
TEST(Simulator, CancelWorksBeforeAndAfterFlush) {
  Simulator s;
  int fired = 0;
  // Staged: cancel immediately after scheduling.
  EventId staged = s.schedule(1e-3, [&] { ++fired; });
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_TRUE(s.cancel(staged));
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.cancel(staged));

  // Flushed: run an earlier event first so the target is moved out of the
  // staging list, then cancel it.
  EventId later = s.schedule(5e-3, [&] { ++fired; });
  s.schedule(1e-3, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.pending_events(), 1u);
  EXPECT_TRUE(s.cancel(later));
  EXPECT_EQ(s.pending_events(), 0u);
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int fired = 0;
  s.schedule(1e-3, [&] {
    ++fired;
    s.stop();
  });
  s.schedule(2e-3, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator s;
  int fired = 0;
  s.schedule(1e-3, [&] { ++fired; });
  s.schedule(2e-3, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutedEventCounterCounts) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(1e-3 * i, [] {});
  s.run();
  EXPECT_EQ(s.executed_events(), 7u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(2e-3);
  EXPECT_TRUE(t.pending());
  EXPECT_DOUBLE_EQ(t.expiry(), 2e-3);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RestartReplacesPendingTimer) {
  Simulator s;
  std::vector<double> fire_times;
  Timer t(s, [&] { fire_times.push_back(s.now()); });
  t.restart(1e-3);
  t.restart(5e-3);  // replaces the 1 ms timer
  s.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 5e-3);
}

TEST(Timer, CancelStopsFiring) {
  Simulator s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.restart(1e-3);
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRestartFromWithinCallback) {
  Simulator s;
  int fired = 0;
  Timer* tp = nullptr;
  Timer t(s, [&] {
    if (++fired < 3) tp->restart(1e-3);
  });
  tp = &t;
  t.restart(1e-3);
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(s.now(), 3e-3);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 0);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}


// --- Typed-event engine: raw events, inline/heap closure split, reserve ---

namespace rawev {
struct Ctx {
  std::vector<std::pair<void*, double>>* fired;
  Simulator* sim;
};
void record(void* ctx, void* arg) {
  auto* c = static_cast<Ctx*>(ctx);
  c->fired->push_back({arg, c->sim->now()});
}
}  // namespace rawev

TEST(SimulatorTypedEvents, ScheduleRawPassesContextAndArg) {
  Simulator s;
  std::vector<std::pair<void*, double>> fired;
  rawev::Ctx ctx{&fired, &s};
  int token_a = 0, token_b = 0;
  s.schedule_raw(2e-3, &rawev::record, &ctx, &token_b);
  s.schedule_raw(1e-3, &rawev::record, &ctx, &token_a);
  s.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].first, &token_a);
  EXPECT_EQ(fired[0].second, 1e-3);
  EXPECT_EQ(fired[1].first, &token_b);
  EXPECT_EQ(fired[1].second, 2e-3);
  EXPECT_EQ(s.heap_closure_events(), 0u);
}

TEST(SimulatorTypedEvents, RawEventsCancelLikeClosures) {
  Simulator s;
  std::vector<std::pair<void*, double>> fired;
  rawev::Ctx ctx{&fired, &s};
  const EventId id = s.schedule_raw(1e-3, &rawev::record, &ctx);
  s.schedule_raw(2e-3, &rawev::record, &ctx);
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  s.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].second, 2e-3);
}

TEST(SimulatorTypedEvents, SmallTrivialClosuresStayInline) {
  Simulator s;
  // 24 bytes of trivially copyable capture: exactly at the inline limit.
  std::uint64_t a = 1, b = 2;
  std::uint64_t* sum = new std::uint64_t(0);
  s.schedule(1e-3, [a, b, sum] { *sum = a + b; });
  EXPECT_EQ(s.heap_closure_events(), 0u);
  s.run();
  EXPECT_EQ(*sum, 3u);
  delete sum;
}

TEST(SimulatorTypedEvents, OversizedClosuresFallBackToHeap) {
  Simulator s;
  // 32 bytes of capture: one word past the 24-byte inline payload.
  std::uint64_t a = 1, b = 2, c = 3;
  std::uint64_t out = 0;
  auto* po = &out;
  s.schedule(1e-3, [a, b, c, po] { *po = a + b + c; });
  EXPECT_EQ(s.heap_closure_events(), 1u);
  s.run();
  EXPECT_EQ(out, 6u);
}

TEST(SimulatorTypedEvents, NonTrivialClosuresFallBackToHeapAndAreFreedOnCancel) {
  Simulator s;
  auto tracer = std::make_shared<int>(7);
  const EventId id = s.schedule(1e-3, [tracer] { (void)*tracer; });
  EXPECT_EQ(s.heap_closure_events(), 1u);  // shared_ptr is not trivially copyable
  EXPECT_EQ(tracer.use_count(), 2);
  EXPECT_TRUE(s.cancel(id));
  EXPECT_EQ(tracer.use_count(), 1) << "cancel must destroy the heap closure";
  s.run();
  EXPECT_EQ(tracer.use_count(), 1);
}

TEST(SimulatorTypedEvents, PendingHeapClosuresFreedByDestructor) {
  auto tracer = std::make_shared<int>(7);
  {
    Simulator s;
    s.schedule(1.0, [tracer] { (void)*tracer; });
    EXPECT_EQ(tracer.use_count(), 2);
  }
  EXPECT_EQ(tracer.use_count(), 1);
}

TEST(SimulatorTypedEvents, ReservePreallocatesSlotChunks) {
  Simulator s;
  s.reserve(10000);
  const std::size_t chunks = s.slot_chunks_allocated();
  EXPECT_GE(chunks, 3u);  // 4096-slot chunks
  int fired = 0;
  for (int i = 0; i < 10000; ++i) {
    s.schedule(1e-6 * (i + 1), [&fired] { ++fired; });
  }
  EXPECT_EQ(s.slot_chunks_allocated(), chunks)
      << "reserve() should cover the whole burst";
  s.run();
  EXPECT_EQ(fired, 10000);
}

}  // namespace
}  // namespace pase::sim

