// Arbitration control plane tests: bottom-up arbitration over the tree,
// intra-rack locality, early pruning, delegation, FINs, local-only mode —
// plus PASE sender behaviour (Algorithm 2, probing recovery, barriers).
#include <gtest/gtest.h>

#include "core/pase_sender.h"
#include "net/priority_queue_bank.h"
#include "test_util.h"
#include "topo/three_tier.h"
#include "workload/scenario.h"

namespace pase::core {
namespace {

topo::QueueFactory bank_factory(int queues = 8) {
  return [queues](double) {
    return std::make_unique<net::PriorityQueueBank>(queues, 500, 65);
  };
}

// A small 3-tier world: 2 hosts per rack, 4 racks, 2 aggs, 1 core.
struct PlaneWorld {
  sim::Simulator sim;
  topo::ThreeTier tt;
  std::unique_ptr<ArbitrationPlane> plane;

  explicit PlaneWorld(PaseConfig cfg = {}) {
    topo::ThreeTierConfig tc;
    tc.hosts_per_tor = 2;
    tt = topo::build_three_tier(sim, tc, bank_factory(cfg.num_queues));
    cfg.rtt = 300e-6;
    cfg.arbitration_period = 300e-6;
    plane = std::make_unique<ArbitrationPlane>(sim, PlaneTopology::from(tt),
                                               cfg);
  }

  net::Host& host(int i) { return *tt.topo->host(static_cast<std::size_t>(i)); }

  transport::Flow flow(net::FlowId id, int src, int dst,
                       std::uint64_t bytes = 100'000) {
    transport::Flow f;
    f.id = id;
    f.src = host(src).id();
    f.dst = host(dst).id();
    f.size_bytes = bytes;
    return f;
  }
};

struct FakeClient : ArbitrationClient {
  int prio = -1;
  double rate = -1;
  int rx_updates = 0;
  int tx_updates = 0;
  void arbitration_update(int p, double r, bool rx_half) override {
    prio = p;
    rate = r;
    (rx_half ? rx_updates : tx_updates)++;
  }
};

TEST(ArbitrationPlane, SoloFlowGetsTopQueueLocally) {
  PlaneWorld w;
  FakeClient c;
  auto f = w.flow(1, 0, 1);  // intra-rack
  auto r = w.plane->register_sender(c, f, 100e3, 1e9);
  EXPECT_EQ(r.prio_queue, 0);
  EXPECT_DOUBLE_EQ(r.ref_rate, 1e9);
}

TEST(ArbitrationPlane, IntraRackFlowSendsNoSenderHalfMessages) {
  PlaneWorld w;
  FakeClient c;
  auto f = w.flow(1, 0, 1);
  w.plane->register_sender(c, f, 100e3, 1e9);
  w.sim.run(2e-3);
  EXPECT_EQ(w.plane->stats().requests, 0u);
}

TEST(ArbitrationPlane, InterRackFlowTriggersFabricArbitration) {
  PlaneWorld w;
  FakeClient c;
  auto f = w.flow(1, 0, 7);  // cross-core
  w.plane->register_sender(c, f, 100e3, 1e9);
  w.sim.run(5e-3);
  EXPECT_GE(w.plane->stats().requests, 1u);
  EXPECT_GE(c.tx_updates, 1);  // fabric response reached the client
}

TEST(ArbitrationPlane, ReceiverHalfRespondsToDataArrival) {
  PlaneWorld w;
  FakeClient c;
  auto f = w.flow(1, 0, 1);
  w.plane->register_sender(c, f, 100e3, 1e9);
  // Simulate a data packet arriving at the destination.
  transport::Receiver recv(w.sim, w.host(1), f);
  w.plane->attach_receiver(recv);
  auto p = net::make_data_packet(f.id, f.src, f.dst, 0);
  p->remaining_size = 100e3;
  recv.deliver(std::move(p));
  w.sim.run(2e-3);
  EXPECT_GE(c.rx_updates, 1);
}

TEST(ArbitrationPlane, UplinkContentionDemotesLessCriticalFlow) {
  PlaneWorld w;
  FakeClient c1, c2;
  auto f1 = w.flow(1, 0, 1, 50'000);
  auto f2 = w.flow(2, 0, 1, 200'000);  // same source: shares the uplink
  auto r1 = w.plane->register_sender(c1, f1, 50e3, 1e9);
  auto r2 = w.plane->register_sender(c2, f2, 200e3, 1e9);
  EXPECT_EQ(r1.prio_queue, 0);
  EXPECT_EQ(r2.prio_queue, 1);
  EXPECT_DOUBLE_EQ(r2.ref_rate, w.plane->config().base_rate_bps());
}

TEST(ArbitrationPlane, SenderFinishedFreesUplink) {
  PlaneWorld w;
  FakeClient c1, c2;
  auto f1 = w.flow(1, 0, 1, 50'000);
  auto f2 = w.flow(2, 0, 1, 200'000);
  w.plane->register_sender(c1, f1, 50e3, 1e9);
  w.plane->register_sender(c2, f2, 200e3, 1e9);
  w.plane->sender_finished(f1);
  auto r2 = w.plane->source_arbitrate(f2, 200e3, 1e9);
  EXPECT_EQ(r2.prio_queue, 0);
}

TEST(ArbitrationPlane, EarlyPruningStopsLowPriorityAscent) {
  PaseConfig cfg;
  cfg.early_pruning = true;
  cfg.pruning_queues = 2;
  cfg.delegation = false;
  PlaneWorld w(cfg);
  // Saturate host 0's uplink with two critical flows, then register an
  // inter-rack flow that lands in queue 2: it must not ascend.
  FakeClient c1, c2, c3;
  w.plane->register_sender(c1, w.flow(1, 0, 7, 10'000), 10e3, 1e9);
  w.plane->register_sender(c2, w.flow(2, 0, 7, 20'000), 20e3, 1e9);
  const auto requests_before = w.plane->stats().requests;
  auto r3 = w.plane->register_sender(c3, w.flow(3, 0, 7, 900'000), 900e3, 1e9);
  EXPECT_GE(r3.prio_queue, 2);
  EXPECT_EQ(w.plane->stats().requests, requests_before);  // pruned at host
  EXPECT_GE(w.plane->stats().pruned_requests, 1u);
}

TEST(ArbitrationPlane, NoPruningWhenDisabled) {
  PaseConfig cfg;
  cfg.early_pruning = false;
  cfg.delegation = false;
  PlaneWorld w(cfg);
  FakeClient c1, c2, c3;
  w.plane->register_sender(c1, w.flow(1, 0, 7, 10'000), 10e3, 1e9);
  w.plane->register_sender(c2, w.flow(2, 0, 7, 20'000), 20e3, 1e9);
  const auto before = w.plane->stats().requests;
  w.plane->register_sender(c3, w.flow(3, 0, 7, 900'000), 900e3, 1e9);
  EXPECT_GT(w.plane->stats().requests, before);
}

TEST(ArbitrationPlane, LocalOnlyNeverSendsMessages) {
  PaseConfig cfg;
  cfg.local_only = true;
  PlaneWorld w(cfg);
  FakeClient c;
  auto f = w.flow(1, 0, 7);
  w.plane->register_sender(c, f, 100e3, 1e9);
  transport::Receiver recv(w.sim, *w.tt.topo->host(7), f);
  w.plane->attach_receiver(recv);
  recv.deliver(net::make_data_packet(f.id, f.src, f.dst, 0));
  w.sim.run(5e-3);
  EXPECT_EQ(w.plane->stats().messages_sent, 0u);
}

TEST(ArbitrationPlane, DelegationExchangesReportsAndGrants) {
  PaseConfig cfg;
  cfg.delegation = true;
  PlaneWorld w(cfg);
  w.sim.run(5e-3);  // several delegation periods
  EXPECT_GT(w.plane->stats().delegation_msgs, 0u);
}

TEST(ArbitrationPlane, DelegationShiftsVirtualCapacityTowardDemand) {
  PaseConfig cfg;
  cfg.delegation = true;
  cfg.delegation_update_period = 500e-6;
  PlaneWorld w(cfg);
  // Rack 0 has heavy inter-agg demand; rack 1 (same agg) has none.
  std::vector<std::unique_ptr<FakeClient>> clients;
  for (int i = 0; i < 6; ++i) {
    clients.push_back(std::make_unique<FakeClient>());
    auto f = w.flow(static_cast<net::FlowId>(i + 1), i % 2, 7,
                    100'000 + 1000 * static_cast<std::uint64_t>(i));
    // refresh periodically so table entries stay alive
    w.plane->register_sender(*clients.back(), f, 100e3, 1e9);
    for (int k = 1; k <= 10; ++k) {
      w.sim.schedule(k * 300e-6, [&w, f] {
        w.plane->source_arbitrate(f, 100e3, 1e9);
      });
    }
  }
  w.sim.run(4e-3);
  // ToR0's virtual uplink capacity should exceed ToR1's after reports.
  auto* t0 = w.plane->tor_up_arbitrator(w.tt.tors[0]->id());
  ASSERT_NE(t0, nullptr);
  // (The virtual arbitrators are internal; observe indirectly: flows from
  // rack 0 should still be mapped to the top queues.)
  auto r = w.plane->source_arbitrate(w.flow(1, 0, 7, 100'000), 5e3, 1e9);
  EXPECT_LE(r.prio_queue, 1);
}

TEST(ArbitrationPlane, ControlMessagesAreRealPackets) {
  PlaneWorld w;
  FakeClient c;
  auto f = w.flow(1, 0, 7);
  const auto enqueues_before = w.tt.topo->total_enqueues();
  w.plane->register_sender(c, f, 100e3, 1e9);
  w.sim.run(2e-3);
  EXPECT_GT(w.tt.topo->total_enqueues(), enqueues_before);
}

// --- PaseSender end-to-end -------------------------------------------------------

struct PaseNet {
  sim::Simulator* sim;
  std::unique_ptr<test::MiniNet> n;
  std::unique_ptr<ArbitrationPlane> plane;

  explicit PaseNet(int hosts, PaseConfig cfg = {}) {
    n = test::make_mini_net(hosts, bank_factory(cfg.num_queues));
    sim = &n->sim;
    cfg.rtt = 150e-6;
    cfg.arbitration_period = 150e-6;
    plane = std::make_unique<ArbitrationPlane>(
        n->sim, PlaneTopology::from(n->rack), cfg);
  }
  ~PaseNet() {
    plane.reset();  // plane holds pointers into n; drop it first
  }
};

std::unique_ptr<transport::Receiver> wire_pase(PaseNet& pn, PaseSender& s,
                                               const transport::Flow& f) {
  auto recv = test::wire_flow(*pn.n, s, f);
  pn.plane->attach_receiver(*recv);
  return recv;
}

TEST(PaseSender, CompletesWithGuidedStart) {
  PaseNet pn(2);
  auto f = test::make_flow(*pn.n, 0, 1, 100 * net::kMss);
  PaseSender s(*pn.sim, pn.n->host(0), f, *pn.plane);
  auto recv = wire_pase(pn, s, f);
  s.start();
  EXPECT_EQ(s.priority_queue(), 0);
  // Guided start: window is Rref x RTT, not slow-start's 3.
  EXPECT_GT(s.cwnd(), 5.0);
  pn.sim->run(1.0);
  EXPECT_TRUE(recv->complete());
  const double service = 100 * 1500.0 * 8 / 1e9;
  EXPECT_LT(recv->completion_time(), service + 2e-3);
}

TEST(PaseSender, SecondFlowFromSameHostWaitsInLowerQueue) {
  PaseNet pn(3);
  auto f1 = test::make_flow(*pn.n, 0, 1, 600 * net::kMss);
  f1.id = 1;
  auto f2 = test::make_flow(*pn.n, 0, 2, 60 * net::kMss);
  f2.id = 2;
  PaseSender s1(*pn.sim, pn.n->host(0), f1, *pn.plane);
  PaseSender s2(*pn.sim, pn.n->host(0), f2, *pn.plane);
  auto r1 = wire_pase(pn, s1, f1);
  auto r2 = wire_pase(pn, s2, f2);
  s1.start();
  pn.sim->schedule_at(1e-3, [&] { s2.start(); });
  // Sample while both flows are active: the smaller flow outranks the big
  // one on the shared uplink.
  int q1_seen = -1, q2_seen = -1;
  pn.sim->schedule_at(1.5e-3, [&] {
    q1_seen = s1.priority_queue();
    q2_seen = s2.priority_queue();
  });
  pn.sim->run(2e-3);
  EXPECT_EQ(q2_seen, 0);
  EXPECT_GE(q1_seen, 1);
  pn.sim->run(1.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  EXPECT_LT(r2->completion_time(), r1->completion_time());
}

TEST(PaseSender, ReceiverSideContentionDemotesCompetingSender) {
  PaseNet pn(3);
  // Two sources, one destination: contention only at the receiver downlink.
  auto f1 = test::make_flow(*pn.n, 0, 2, 600 * net::kMss);
  f1.id = 1;
  auto f2 = test::make_flow(*pn.n, 1, 2, 60 * net::kMss);
  f2.id = 2;
  PaseSender s1(*pn.sim, pn.n->host(0), f1, *pn.plane);
  PaseSender s2(*pn.sim, pn.n->host(1), f2, *pn.plane);
  auto r1 = wire_pase(pn, s1, f1);
  auto r2 = wire_pase(pn, s2, f2);
  s1.start();
  pn.sim->schedule_at(1e-3, [&] { s2.start(); });
  // Sample while both are active: receiver-half arbitration pushes the long
  // flow out of the top queue.
  int q1_seen = -1, q2_seen = -1;
  pn.sim->schedule_at(1.6e-3, [&] {
    q1_seen = s1.priority_queue();
    q2_seen = s2.priority_queue();
  });
  pn.sim->run(3e-3);
  EXPECT_GE(q1_seen, 1);
  EXPECT_EQ(q2_seen, 0);
  pn.sim->run(1.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  EXPECT_LT(r2->completion_time(), r1->completion_time());
}

TEST(PaseSender, BackgroundFlowPinnedToLowestQueue) {
  PaseNet pn(2);
  auto f = test::make_flow(*pn.n, 0, 1, 100 * net::kMss);
  f.background = true;
  PaseSender s(*pn.sim, pn.n->host(0), f, *pn.plane);
  auto recv = wire_pase(pn, s, f);
  s.start();
  EXPECT_EQ(s.priority_queue(), pn.plane->config().background_queue());
  EXPECT_EQ(s.wire_priority(), 7);
  pn.sim->run(1.0);
  EXPECT_TRUE(recv->complete());
  // Background flows never arbitrate.
  EXPECT_EQ(pn.plane->stats().arbitrations, 0u);
}

TEST(PaseSender, ProbeRecoversFromQueueingWithoutRetransmit) {
  // A background-priority long flow is starved by a top-queue flow; its RTO
  // fires but probing discovers the packets are queued, not lost.
  PaseNet pn(3);
  auto big = test::make_flow(*pn.n, 0, 2, 400 * net::kMss);
  big.id = 1;
  auto small = test::make_flow(*pn.n, 1, 2, 300 * net::kMss);
  small.id = 2;
  PaseSender s1(*pn.sim, pn.n->host(0), big, *pn.plane);
  PaseSender s2(*pn.sim, pn.n->host(1), small, *pn.plane);
  auto r1 = wire_pase(pn, s1, big);
  auto r2 = wire_pase(pn, s2, small);
  s1.start();
  s2.start();
  pn.sim->run(1.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  // No data was lost in this run: spurious-timeout protection means zero
  // unnecessary retransmissions even though the loser waited.
  EXPECT_EQ(pn.n->topo().total_drops(), 0u);
  EXPECT_EQ(s1.retransmissions() + s2.retransmissions(), 0u);
}

TEST(PaseSender, ProbeDetectsRealLossAndRetransmits) {
  // Drop one data packet of a demoted flow; the probe must trigger an actual
  // retransmission.
  int dropped = 0;
  auto base = bank_factory();
  // Drop a small burst of demoted-flow packets so fewer than three dupacks
  // follow the hole: recovery must come from the probe/RTO path.
  auto factory = test::FaultQueue::wrap_factory(
      base, [&dropped](const net::Packet& p) {
        if (p.type == net::PacketType::kData && p.priority >= 1 &&
            dropped < 4) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = test::make_mini_net(3, factory);
  PaseConfig cfg;
  cfg.rtt = 150e-6;
  cfg.arbitration_period = 150e-6;
  cfg.min_rto_low = 5e-3;  // keep the test fast
  ArbitrationPlane plane(n->sim, PlaneTopology::from(n->rack), cfg);

  // The competing flow must outlive the demoted flow's RTO so the timeout
  // takes the lower-queue probe path rather than the top-queue one.
  auto big = test::make_flow(*n, 0, 2, 1000 * net::kMss);
  big.id = 1;
  auto small = test::make_flow(*n, 1, 2, 800 * net::kMss);
  small.id = 2;
  PaseSender s1(n->sim, n->host(0), big, plane);
  PaseSender s2(n->sim, n->host(1), small, plane);
  auto r1 = test::wire_flow(*n, s1, big);
  plane.attach_receiver(*r1);
  auto r2 = test::wire_flow(*n, s2, small);
  plane.attach_receiver(*r2);
  s1.start();
  s2.start();
  n->sim.run(2.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  EXPECT_GE(dropped, 1);
  EXPECT_GE(s1.probes_sent() + s2.probes_sent(), 1u);
  EXPECT_GE(s1.retransmissions() + s2.retransmissions(), 1u);
}

TEST(PaseSender, QueueAwareMinRto) {
  PaseNet pn(2);
  auto f = test::make_flow(*pn.n, 0, 1, 10 * net::kMss);
  PaseSender s(*pn.sim, pn.n->host(0), f, *pn.plane);
  auto recv = wire_pase(pn, s, f);
  s.start();
  pn.sim->run(1.0);
  EXPECT_TRUE(recv->complete());
  // Top-queue flows finished without ever waiting for the 200 ms low-queue
  // RTO; total runtime confirms the fast path.
  EXPECT_LT(recv->completion_time(), 10e-3);
}

TEST(PaseSenderAblation, NoReferenceRateFallsBackToSlowStart) {
  PaseConfig cfg;
  cfg.use_reference_rate = false;
  PaseNet pn(2, cfg);
  auto f = test::make_flow(*pn.n, 0, 1, 100 * net::kMss);
  PaseSender s(*pn.sim, pn.n->host(0), f, *pn.plane);
  auto recv = wire_pase(pn, s, f);
  s.start();
  EXPECT_LE(s.cwnd(), 3.0);  // stock initial window
  pn.sim->run(1.0);
  EXPECT_TRUE(recv->complete());
}

}  // namespace
}  // namespace pase::core
