// End-to-end scenario tests: every protocol completes its workload, the
// paper's qualitative orderings hold at small scale, and basic conservation
// invariants are maintained.
#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace pase::workload {
namespace {

ScenarioConfig small_rack(Protocol p, double load, int hosts = 10,
                          int flows = 120, std::uint64_t seed = 7) {
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = hosts;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = load;
  cfg.traffic.num_flows = flows;
  cfg.traffic.seed = seed;
  cfg.traffic.num_background_flows = 1;
  return cfg;
}

class AllProtocols : public ::testing::TestWithParam<Protocol> {};

TEST_P(AllProtocols, EveryFlowCompletesAtModerateLoad) {
  auto res = run_scenario(small_rack(GetParam(), 0.5));
  EXPECT_EQ(res.unfinished(), 0u) << protocol_name(GetParam());
  EXPECT_GT(res.afct(), 0.0);
  EXPECT_GT(res.data_packets_sent, 0u);
}

TEST_P(AllProtocols, EveryFlowCompletesAtHighLoad) {
  auto res = run_scenario(small_rack(GetParam(), 0.9));
  EXPECT_EQ(res.unfinished(), 0u) << protocol_name(GetParam());
}

TEST_P(AllProtocols, FctNeverBeatsTheSpeedOfLight) {
  auto res = run_scenario(small_rack(GetParam(), 0.3));
  for (const auto& r : res.records) {
    if (r.background || !r.completed()) continue;
    // A flow cannot finish faster than its size at line rate plus one-way
    // propagation.
    const double floor_fct =
        static_cast<double>(r.size_bytes) * 8 / 1e9 + 50e-6;
    EXPECT_GE(r.fct(), floor_fct * 0.95) << protocol_name(GetParam());
  }
}

TEST_P(AllProtocols, HigherLoadDoesNotImproveAfct) {
  auto lo = run_scenario(small_rack(GetParam(), 0.2));
  auto hi = run_scenario(small_rack(GetParam(), 0.9));
  EXPECT_GT(hi.afct(), lo.afct() * 0.8) << protocol_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Protocols, AllProtocols,
                         ::testing::Values(Protocol::kDctcp, Protocol::kD2tcp,
                                           Protocol::kL2dct, Protocol::kPdq,
                                           Protocol::kPfabric,
                                           Protocol::kPase),
                         [](const auto& info) {
                           return protocol_name(info.param);
                         });

TEST(Integration, PaseBeatsDctcpAtHighLoad) {
  auto pase = run_scenario(small_rack(Protocol::kPase, 0.8, 16, 300));
  auto dctcp = run_scenario(small_rack(Protocol::kDctcp, 0.8, 16, 300));
  EXPECT_LT(pase.afct(), dctcp.afct());
}

TEST(Integration, PaseNeverDropsWhileArbitrated) {
  auto res = run_scenario(small_rack(Protocol::kPase, 0.8, 16, 300));
  EXPECT_EQ(res.fabric_drops, 0u);
}

TEST(Integration, PfabricDropsGrowWithLoad) {
  auto lo = run_scenario(small_rack(Protocol::kPfabric, 0.2, 16, 300));
  auto hi = run_scenario(small_rack(Protocol::kPfabric, 0.9, 16, 300));
  EXPECT_GT(hi.loss_rate(), lo.loss_rate());
}

TEST(Integration, DeadlineWorkloadAppThroughputDegradesWithLoad) {
  auto cfg = small_rack(Protocol::kD2tcp, 0.3, 16, 200);
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  cfg.traffic.deadline_min = 5e-3;
  cfg.traffic.deadline_max = 25e-3;
  auto lo = run_scenario(cfg);
  cfg.traffic.load = 0.9;
  auto hi = run_scenario(cfg);
  EXPECT_GE(lo.app_throughput(), hi.app_throughput());
  EXPECT_GT(lo.app_throughput(), 0.7);
}

TEST(Integration, PaseMeetsMoreDeadlinesThanDctcp) {
  auto cfg = small_rack(Protocol::kPase, 0.7, 16, 200);
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  cfg.traffic.deadline_min = 5e-3;
  cfg.traffic.deadline_max = 25e-3;
  auto pase = run_scenario(cfg);
  cfg.protocol = Protocol::kDctcp;
  auto dctcp = run_scenario(cfg);
  EXPECT_GE(pase.app_throughput(), dctcp.app_throughput());
}

TEST(Integration, PaseControlPlaneIsActive) {
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
  cfg.tree.hosts_per_tor = 4;  // 16 hosts
  cfg.traffic.pattern = Pattern::kLeftRight;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 100;
  cfg.traffic.seed = 3;
  auto res = run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
  EXPECT_GT(res.control.messages_sent, 0u);
  EXPECT_GT(res.control.arbitrations, 0u);
  EXPECT_GT(res.control.responses, 0u);
  EXPECT_GT(res.control.fins, 0u);
}

TEST(Integration, ThreeTierLeftRightAllProtocolsComplete) {
  for (auto p : {Protocol::kDctcp, Protocol::kPfabric, Protocol::kPase}) {
    ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
    cfg.tree.hosts_per_tor = 4;
    cfg.traffic.pattern = Pattern::kLeftRight;
    cfg.traffic.load = 0.6;
    cfg.traffic.num_flows = 150;
    cfg.traffic.seed = 5;
    auto res = run_scenario(cfg);
    EXPECT_EQ(res.unfinished(), 0u) << protocol_name(p);
  }
}

TEST(Integration, TerminatedPdqFlowsAreAccounted) {
  // Deadlines so tight some flows are infeasible: PDQ early-terminates them.
  auto cfg = small_rack(Protocol::kPdq, 0.7, 10, 150);
  cfg.traffic.size_min_bytes = 200e3;
  cfg.traffic.size_max_bytes = 500e3;
  cfg.traffic.deadline_min = 1e-3;  // 200-500 KB needs 1.6-4 ms: some infeasible
  cfg.traffic.deadline_max = 12e-3;
  auto res = run_scenario(cfg);
  std::size_t terminated = 0;
  for (const auto& r : res.records) terminated += r.terminated ? 1 : 0;
  EXPECT_GT(terminated, 0u);
  EXPECT_LT(res.app_throughput(), 1.0);
  EXPECT_EQ(res.unfinished(), 0u);  // terminated flows count as finished
}

TEST(Integration, SameSeedGivesIdenticalResults) {
  auto a = run_scenario(small_rack(Protocol::kPase, 0.6));
  auto b = run_scenario(small_rack(Protocol::kPase, 0.6));
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].finish, b.records[i].finish);
  }
  EXPECT_EQ(a.control.messages_sent, b.control.messages_sent);
}

TEST(Integration, TestbedLikeConfigurationRuns) {
  // Fig. 13b parameters: 10 nodes, 1 Gbps, ~250 us RTT, 100-pkt queues, K=20.
  ScenarioConfig cfg;
  cfg.protocol = Protocol::kPase;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 10;
  cfg.rack.per_link_delay = 62.5e-6;  // 4 hops -> 250 us
  cfg.queue_capacity_pkts = 100;
  cfg.mark_threshold_pkts = 20;
  cfg.traffic.pattern = Pattern::kWorkerAggregator;
  cfg.traffic.load = 0.5;
  cfg.traffic.num_flows = 150;
  cfg.traffic.size_min_bytes = 100e3;
  cfg.traffic.size_max_bytes = 500e3;
  cfg.traffic.seed = 21;
  auto res = run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
}

}  // namespace
}  // namespace pase::workload
