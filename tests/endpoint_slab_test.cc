// Slab-backed endpoint storage: arena mechanics and recycling equivalence.
//
// The EndpointArena hands out fixed-size slots from chunks that never move,
// so endpoint pointers stay stable while memory tracks peak concurrency. The
// scenario-level contract — recycling retired endpoints must be invisible to
// the event path — is pinned two ways: a recycle-on run reproduces a
// recycle-off run record for record, and growing the workload at fixed
// concurrency does not grow the slabs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "proto/endpoint_arena.h"
#include "workload/scenario.h"

namespace pase {
namespace {

// --- EndpointArena unit tests ------------------------------------------------

TEST(EndpointArena, AcquireHandsOutDistinctAlignedSlots) {
  proto::EndpointArena arena;
  arena.init(/*slot_size=*/48, /*slot_align=*/16, /*slots_per_chunk=*/4);
  std::set<void*> seen;
  for (int i = 0; i < 16; ++i) {
    void* p = arena.acquire();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    EXPECT_TRUE(seen.insert(p).second) << "slot handed out twice";
  }
  EXPECT_EQ(arena.live(), 16u);
  EXPECT_EQ(arena.grow_events(), 4u);  // 16 slots at 4 per chunk
}

TEST(EndpointArena, ReleaseRecyclesBeforeGrowing) {
  proto::EndpointArena arena;
  arena.init(64, 8, /*slots_per_chunk=*/8);
  std::vector<void*> slots;
  for (int i = 0; i < 8; ++i) slots.push_back(arena.acquire());
  ASSERT_EQ(arena.grow_events(), 1u);
  // A full release/acquire cycle at the same concurrency reuses the chunk.
  for (void* p : slots) arena.release(p);
  EXPECT_EQ(arena.live(), 0u);
  for (int round = 0; round < 50; ++round) {
    std::vector<void*> again;
    for (int i = 0; i < 8; ++i) again.push_back(arena.acquire());
    for (void* p : again) {
      EXPECT_EQ(std::count(slots.begin(), slots.end(), p), 1)
          << "recycled acquire returned a pointer outside the first chunk";
      arena.release(p);
    }
  }
  EXPECT_EQ(arena.grow_events(), 1u) << "steady-state churn grew the arena";
}

TEST(EndpointArena, ReservePreallocatesCapacity) {
  proto::EndpointArena arena;
  arena.init(32, 8, /*slots_per_chunk=*/16);
  arena.reserve(100);
  const std::uint64_t setup_grows = arena.grow_events();
  EXPECT_GE(arena.capacity(), 100u);
  std::vector<void*> slots;
  for (int i = 0; i < 100; ++i) slots.push_back(arena.acquire());
  EXPECT_EQ(arena.grow_events(), setup_grows)
      << "acquires within reserved capacity allocated";
  for (void* p : slots) arena.release(p);
}

// --- recycling is event-path invisible ---------------------------------------

workload::ScenarioConfig churn_config(workload::Protocol p, int num_flows) {
  using workload::Pattern;
  using workload::ScenarioConfig;
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 16;
  cfg.traffic.pattern = Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = num_flows;
  cfg.traffic.seed = 29;
  return cfg;
}

void expect_identical_records(const workload::ScenarioResult& a,
                              const workload::ScenarioResult& b) {
  EXPECT_EQ(a.data_packets_sent, b.data_packets_sent);
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.fabric_drops, b.fabric_drops);
  EXPECT_DOUBLE_EQ(a.end_time, b.end_time);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const stats::FlowRecord& ra = a.records[i];
    const stats::FlowRecord& rb = b.records[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_DOUBLE_EQ(ra.start, rb.start);
    EXPECT_DOUBLE_EQ(ra.finish, rb.finish);
    EXPECT_EQ(ra.terminated, rb.terminated);
  }
}

TEST(EndpointRecycling, RecycleOnReproducesRecycleOffBitForBit) {
  for (const workload::Protocol p :
       {workload::Protocol::kDctcp, workload::Protocol::kPdq,
        workload::Protocol::kPfabric}) {
    workload::ScenarioConfig on = churn_config(p, 150);
    on.recycle_endpoints = true;
    workload::ScenarioConfig off = churn_config(p, 150);
    off.recycle_endpoints = false;
    const workload::ScenarioResult ron = workload::run_scenario(on);
    const workload::ScenarioResult roff = workload::run_scenario(off);
    expect_identical_records(ron, roff);
  }
}

TEST(EndpointRecycling, LiveEndpointsTrackConcurrencyNotFlowCount) {
  workload::ScenarioConfig cfg = churn_config(workload::Protocol::kDctcp, 600);
  cfg.recycle_endpoints = true;
  const workload::ScenarioResult r = workload::run_scenario(cfg);
  EXPECT_GT(r.peak_live_flows, 0u);
  EXPECT_LT(r.peak_live_flows, 600u)
      << "recycling never reclaimed a slot: peak live == total flows";
}

TEST(EndpointRecycling, SlabGrowthIsConstantInFlowCount) {
  // Same arrival process (load, pattern, sizes, seed) at 1x and 4x the flow
  // count, both long enough to pass the warmup transient (live population =
  // active flows + one retire quarantine's worth of arrivals): concurrency
  // is stationary, so the slab high-water mark — and with it the
  // chunk-allocation count — must not scale with total flows.
  workload::ScenarioConfig small =
      churn_config(workload::Protocol::kDctcp, 2000);
  workload::ScenarioConfig big =
      churn_config(workload::Protocol::kDctcp, 8000);
  const workload::ScenarioResult rs = workload::run_scenario(small);
  const workload::ScenarioResult rb = workload::run_scenario(big);
  EXPECT_EQ(rs.slab_grow_events, rb.slab_grow_events)
      << "4x the flows grew the endpoint slabs: recycling is leaking slots "
         "(peak live "
      << rs.peak_live_flows << " vs " << rb.peak_live_flows << ")";
}

TEST(EndpointRecycling, ComposesWithStreamingStats) {
  workload::ScenarioConfig cfg = churn_config(workload::Protocol::kD2tcp, 300);
  cfg.recycle_endpoints = true;
  cfg.stats_mode = workload::ScenarioConfig::StatsMode::kStreaming;
  workload::ScenarioConfig exact_cfg =
      churn_config(workload::Protocol::kD2tcp, 300);
  exact_cfg.recycle_endpoints = false;
  exact_cfg.stats_mode = workload::ScenarioConfig::StatsMode::kExact;
  const workload::ScenarioResult stream = workload::run_scenario(cfg);
  const workload::ScenarioResult exact = workload::run_scenario(exact_cfg);
  // Fully decoupled storage/aggregation choices, same simulation underneath.
  EXPECT_EQ(stream.data_packets_sent, exact.data_packets_sent);
  EXPECT_EQ(stream.total_flows(), exact.total_flows());
  EXPECT_EQ(stream.unfinished(), exact.unfinished());
  EXPECT_NEAR(stream.afct() / exact.afct(), 1.0, 1e-3);
}

TEST(EndpointRecycling, ParallelRunRecyclesWithIdenticalRecords) {
  // The parallel engine retires slots at chunk barriers; records must still
  // match the sequential run exactly (the full 18-case battery lives in
  // parallel_engine_test.cc — this is the recycling-focused smoke).
  workload::ScenarioConfig seq = churn_config(workload::Protocol::kDctcp, 600);
  seq.recycle_endpoints = true;
  seq.workers = 1;
  workload::ScenarioConfig par = churn_config(workload::Protocol::kDctcp, 600);
  par.recycle_endpoints = true;
  par.workers = 4;
  const workload::ScenarioResult rs = workload::run_scenario(seq);
  const workload::ScenarioResult rp = workload::run_scenario(par);
  EXPECT_GT(rp.workers_used, 1);
  expect_identical_records(rs, rp);
  // Fewer live endpoints than total flows (records include background flows,
  // which never retire): some slot was reclaimed mid-run.
  EXPECT_LT(rp.peak_live_flows, rs.records.size());
}

}  // namespace
}  // namespace pase
