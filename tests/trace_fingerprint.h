// Trace fingerprinting for the hot-path golden tests.
//
// A fingerprint is an FNV-1a hash over every bit of observable scenario
// output: all flow records (times bit-cast, not rounded) plus the aggregate
// counters. Two runs that differ anywhere — one flipped event ordering, one
// extra retransmission — produce different hashes, so a table of recorded
// hashes pins the engine's end-to-end behavior across refactors.
//
// The battery below is shared by the golden test (compares against the
// recorded table in hotpath_golden_test.cc) and tools/record_hotpath_goldens
// (regenerates the table; run it BEFORE a change to capture the baseline).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace pase {

inline void fnv_mix(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

template <typename T>
void fnv_mix_value(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  fnv_mix(h, &v, sizeof(v));
}

inline std::uint64_t trace_fingerprint(const workload::ScenarioResult& r) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  fnv_mix_value(h, r.fabric_drops);
  fnv_mix_value(h, r.data_packets_sent);
  fnv_mix_value(h, r.probes_sent);
  fnv_mix_value(h, r.end_time);
  fnv_mix_value(h, r.control.messages_sent);
  for (const auto& rec : r.records) {
    fnv_mix_value(h, rec.id);
    fnv_mix_value(h, rec.size_bytes);
    fnv_mix_value(h, rec.start);
    fnv_mix_value(h, rec.finish);
    fnv_mix_value(h, rec.deadline);
    fnv_mix_value(h, rec.background);
    fnv_mix_value(h, rec.terminated);
  }
  return h;
}

struct FingerprintCase {
  std::string label;
  workload::ScenarioConfig config;
};

// Every protocol through three structurally different scenarios: intra-rack
// random (uniform sizes), incast with deadlines (web-search sizes), and the
// three-tier left-right inter-rack scenario (web-search sizes). Sized so the
// whole battery runs in a few seconds.
inline std::vector<FingerprintCase> fingerprint_battery() {
  using workload::Pattern;
  using workload::Protocol;
  using workload::ScenarioConfig;
  using workload::SizeDistribution;

  std::vector<FingerprintCase> cases;
  const Protocol protocols[] = {Protocol::kDctcp, Protocol::kD2tcp,
                                Protocol::kL2dct, Protocol::kPdq,
                                Protocol::kPfabric, Protocol::kPase};
  for (Protocol p : protocols) {
    {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
      cfg.rack.num_hosts = 20;
      cfg.traffic.pattern = Pattern::kIntraRackRandom;
      cfg.traffic.load = 0.7;
      cfg.traffic.num_flows = 120;
      cfg.traffic.seed = 21;
      cases.push_back({std::string(workload::protocol_name(p)) + "/rack-random",
                       cfg});
    }
    {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
      cfg.rack.num_hosts = 16;
      cfg.traffic.pattern = Pattern::kIncast;
      cfg.traffic.incast_fanout = 8;
      cfg.traffic.size_dist = SizeDistribution::kWebSearch;
      cfg.traffic.load = 0.5;
      cfg.traffic.num_flows = 96;
      cfg.traffic.deadline_min = 5e-3;
      cfg.traffic.deadline_max = 25e-3;
      cfg.traffic.seed = 33;
      cases.push_back(
          {std::string(workload::protocol_name(p)) + "/incast-deadline", cfg});
    }
    {
      ScenarioConfig cfg;
      cfg.protocol = p;
      cfg.topology = ScenarioConfig::TopologyKind::kThreeTier;
      cfg.tree.num_tors = 4;
      cfg.tree.hosts_per_tor = 4;
      cfg.traffic.pattern = Pattern::kLeftRight;
      cfg.traffic.size_dist = SizeDistribution::kWebSearch;
      cfg.traffic.load = 0.6;
      cfg.traffic.num_flows = 150;
      cfg.traffic.seed = 5;
      cases.push_back(
          {std::string(workload::protocol_name(p)) + "/tree-leftright", cfg});
    }
  }
  return cases;
}

}  // namespace pase
