// PacketPool recycling: field reset on reuse, bounded free list, miss
// accounting, and prewarm semantics. The pool is thread-local and shared
// across tests, so every test starts from an explicit drain().
#include <gtest/gtest.h>

#include "net/packet.h"

namespace pase::net {
namespace {

TEST(PacketPool, AcquireReusesAndResetsRecycledStorage) {
  PacketPool& pool = PacketPool::local();
  pool.drain();

  Packet* raw = nullptr;
  {
    PacketPtr p = pool.acquire();
    raw = p.get();
    // Dirty every field a protocol touches.
    p->type = PacketType::kArbRequest;
    p->flow = 42;
    p->src = 7;
    p->dst = 9;
    p->size_bytes = 1;
    p->seq = 123;
    p->ack_seq = 456;
    p->fin = true;
    p->ecn_capable = false;
    p->ecn_ce = true;
    p->ecn_echo = true;
    p->ts = 1.5;
    p->echo_ts = 2.5;
    p->priority = 3;
    p->remaining_size = 9999.0;
    p->deadline = 1.0;
    p->pdq.paused = true;
    p->arb.flow_size = 5.0;
  }  // released back into the pool
  ASSERT_EQ(pool.available(), 1u);

  PacketPtr p = pool.acquire();
  EXPECT_EQ(p.get(), raw) << "pool should hand back the recycled packet";
  const Packet fresh{};
  EXPECT_EQ(p->type, fresh.type);
  EXPECT_EQ(p->flow, fresh.flow);
  EXPECT_EQ(p->src, fresh.src);
  EXPECT_EQ(p->dst, fresh.dst);
  EXPECT_EQ(p->size_bytes, fresh.size_bytes);
  EXPECT_EQ(p->seq, fresh.seq);
  EXPECT_EQ(p->ack_seq, fresh.ack_seq);
  EXPECT_EQ(p->fin, fresh.fin);
  EXPECT_EQ(p->ecn_capable, fresh.ecn_capable);
  EXPECT_EQ(p->ecn_ce, fresh.ecn_ce);
  EXPECT_EQ(p->ecn_echo, fresh.ecn_echo);
  EXPECT_EQ(p->ts, fresh.ts);
  EXPECT_EQ(p->echo_ts, fresh.echo_ts);
  EXPECT_EQ(p->priority, fresh.priority);
  EXPECT_EQ(p->remaining_size, fresh.remaining_size);
  EXPECT_EQ(p->deadline, fresh.deadline);
  EXPECT_EQ(p->pdq.paused, fresh.pdq.paused);
  EXPECT_EQ(p->arb.flow_size, fresh.arb.flow_size);
}

TEST(PacketPool, ReleaseBeyondMaxFreeEvictsInsteadOfGrowing) {
  PacketPool& pool = PacketPool::local();
  pool.drain();
  pool.prewarm(PacketPool::kMaxFree);
  ASSERT_EQ(pool.available(), PacketPool::kMaxFree);

  // One more release must free the packet, not grow past the bound.
  { PacketPtr extra(new Packet{}); }
  EXPECT_EQ(pool.available(), PacketPool::kMaxFree);

  pool.drain();  // don't pin ~64k packets for the rest of the suite
}

TEST(PacketPool, MissesCountOnlyColdAcquires) {
  PacketPool& pool = PacketPool::local();
  pool.drain();
  const std::uint64_t base = pool.misses();

  PacketPtr a = pool.acquire();  // cold: allocates
  EXPECT_EQ(pool.misses(), base + 1);
  a.reset();  // back into the pool
  PacketPtr b = pool.acquire();  // warm: recycles
  EXPECT_EQ(pool.misses(), base + 1);

  pool.prewarm(8);
  for (int i = 0; i < 8; ++i) {
    PacketPtr p = pool.acquire();
    EXPECT_EQ(pool.misses(), base + 1) << "prewarmed acquire missed";
  }
}

TEST(PacketPool, PrewarmFillsUpToTargetAndClamps) {
  PacketPool& pool = PacketPool::local();
  pool.drain();
  pool.prewarm(100);
  EXPECT_EQ(pool.available(), 100u);
  pool.prewarm(50);  // never shrinks
  EXPECT_EQ(pool.available(), 100u);
  pool.prewarm(PacketPool::kMaxFree + 1000);  // clamped to the bound
  EXPECT_EQ(pool.available(), PacketPool::kMaxFree);
  pool.drain();
  EXPECT_EQ(pool.available(), 0u);
}

}  // namespace
}  // namespace pase::net
