// Zero-allocation steady state.
//
// The tentpole claim of the typed-event engine is that a warmed simulation
// schedules, fires, and forwards packets without touching the allocator.
// This test drives the real per-hop machinery — Host -> Queue -> Link raw
// events -> Host demux -> sink, with an ACK-clocked echo keeping packets in
// flight — and asserts that after a warmup segment every allocation
// telemetry counter stays frozen:
//   - Simulator::heap_closure_events(): no closure ever spills to the heap,
//   - Simulator::slot_chunks_allocated(): the slot arena never grows,
//   - Simulator::calendar_rebuilds(): the calendar never restructures,
//   - PacketPool::misses(): no packet acquire falls through to `new`.
#include <gtest/gtest.h>

#include <memory>

#include "net/droptail_queue.h"
#include "net/host.h"
#include "net/link.h"
#include "obs/trace_sink.h"
#include "sim/simulator.h"
#include "workload/scenario.h"

namespace pase::net {
namespace {

// Echoes every delivered packet back to the peer host until `remaining`
// exchanges are used up — a two-node stand-in for ACK clocking.
struct EchoSink : PacketSink {
  Host* replier = nullptr;
  NodeId peer = kInvalidNode;
  FlowId flow = 0;
  int remaining = 0;
  std::uint64_t delivered = 0;

  void deliver(PacketPtr p) override {
    ++delivered;
    (void)p;  // recycled into the pool here
    if (remaining > 0) {
      --remaining;
      replier->send(make_data_packet(flow, replier->id(), peer, 0));
    }
  }
};

TEST(AllocFreeSteadyState, WarmedPingPongAllocatesNothing) {
  sim::Simulator sim;
  PacketPool& pool = PacketPool::local();
  pool.drain();

  Host a(0, "a");
  Host b(1, "b");
  // 10 Gbps links, 5 us propagation, directly wired host-to-host.
  a.attach_uplink(std::make_unique<DropTailQueue>(64),
                  std::make_unique<Link>(sim, 10e9, 5e-6, "a->b"), &b);
  b.attach_uplink(std::make_unique<DropTailQueue>(64),
                  std::make_unique<Link>(sim, 10e9, 5e-6, "b->a"), &a);

  constexpr int kExchanges = 20000;
  EchoSink on_b;  // receives on b, replies toward a
  on_b.replier = &b;
  on_b.peer = 0;
  on_b.flow = 1;
  on_b.remaining = kExchanges;
  EchoSink on_a;  // receives on a, replies toward b
  on_a.replier = &a;
  on_a.peer = 1;
  on_a.flow = 1;
  on_a.remaining = kExchanges;
  b.register_flow(1, &on_b);
  a.register_flow(1, &on_a);

  // Pre-size exactly as scenario setup does, then kick off the exchange.
  sim.reserve(256);
  pool.prewarm(64);
  const std::uint64_t cold_misses = pool.misses();
  a.send(make_data_packet(1, 0, 1, 0));

  // Warmup: let width adaptation, pool filling, and slot-arena growth
  // happen; the steady state begins after a few thousand events.
  for (int i = 0; i < 4000 && sim.step(); ++i) {
  }
  ASSERT_GT(sim.executed_events(), 0u);

  const std::uint64_t heap_closures = sim.heap_closure_events();
  const std::uint64_t rebuilds = sim.calendar_rebuilds();
  const std::size_t chunks = sim.slot_chunks_allocated();
  const std::uint64_t misses = pool.misses();

  sim.run();  // drain the remaining tens of thousands of exchanges

  EXPECT_GT(on_a.delivered + on_b.delivered, 30000u);
  EXPECT_EQ(sim.heap_closure_events(), heap_closures)
      << "a hot-path event spilled a closure to the heap";
  EXPECT_EQ(sim.calendar_rebuilds(), rebuilds)
      << "the calendar restructured mid-steady-state";
  EXPECT_EQ(sim.slot_chunks_allocated(), chunks)
      << "the slot arena grew mid-steady-state";
  EXPECT_EQ(pool.misses(), misses)
      << "a packet acquire fell through to the allocator";
  // The raw-event hot path never allocates closures at all in this harness.
  EXPECT_EQ(sim.heap_closure_events(), 0u);
  // Sanity: the pool did have to allocate during the cold start.
  EXPECT_GE(misses, cold_misses);
}

// The ping-pong harness above pins the engine; this pins the protocols. A
// full scenario run — setup, flow launches, sender/receiver timers, control
// plane, teardown — must never spill a closure to the heap, for every one of
// the six profiles. ScenarioResult::heap_closure_events surfaces the engine
// counter so the assertion needs no access to simulator internals.
TEST(AllocFreeSteadyState, EveryProtocolProfileRunsWithoutHeapClosures) {
  const proto::Protocol protocols[] = {
      proto::Protocol::kDctcp,   proto::Protocol::kD2tcp,
      proto::Protocol::kL2dct,   proto::Protocol::kPdq,
      proto::Protocol::kPfabric, proto::Protocol::kPase};
  for (const proto::Protocol p : protocols) {
    workload::ScenarioConfig cfg;
    cfg.protocol = p;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 12;
    cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
    cfg.traffic.load = 0.6;
    cfg.traffic.num_flows = 60;
    cfg.traffic.seed = 7;
    const workload::ScenarioResult r = workload::run_scenario(cfg);
    EXPECT_EQ(r.heap_closure_events, 0u)
        << "profile " << static_cast<int>(p)
        << " scheduled a heap-allocated closure";
    EXPECT_GT(r.records.size(), 0u);
  }
}

// Lazy activation's allocation story: endpoints materialize at flow start
// from slab slots and retire back into them, so once the slabs reach the
// workload's stationary concurrency they stop growing — running 4x as many
// flows through the same arrival process allocates not one more chunk. The
// closure side must stay at zero too: launch events and recycle bookkeeping
// ride the inline path.
TEST(AllocFreeSteadyState, LazyActivationChurnKeepsSlabsAndClosuresFrozen) {
  auto config = [](int num_flows) {
    workload::ScenarioConfig cfg;
    cfg.protocol = proto::Protocol::kDctcp;
    cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
    cfg.rack.num_hosts = 16;
    cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
    cfg.traffic.load = 0.6;
    cfg.traffic.num_flows = num_flows;
    cfg.traffic.seed = 13;
    cfg.recycle_endpoints = true;
    cfg.stats_mode = workload::ScenarioConfig::StatsMode::kStreaming;
    return cfg;
  };
  const workload::ScenarioResult warm = workload::run_scenario(config(2000));
  const workload::ScenarioResult churn = workload::run_scenario(config(8000));
  ASSERT_GT(warm.slab_grow_events, 0u);  // the slabs are actually in play
  EXPECT_EQ(churn.slab_grow_events, warm.slab_grow_events)
      << "slabs grew with total flow count: an arrival allocated instead of "
         "reusing a retired slot";
  EXPECT_EQ(churn.heap_closure_events, 0u)
      << "a launch or recycle event spilled a closure to the heap";
  EXPECT_LT(churn.peak_live_flows, 8000u);
}

// Tracing must preserve the allocation story: the ring is preallocated at
// install time and every emit writes in place, so a traced run's steady
// state stays as heap-closure-free as an untraced one.
TEST(AllocFreeSteadyState, TracingEnabledKeepsHeapClosuresAtZero) {
  workload::ScenarioConfig cfg;
  cfg.protocol = proto::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.pattern = workload::Pattern::kIntraRackRandom;
  cfg.traffic.load = 0.6;
  cfg.traffic.num_flows = 60;
  cfg.traffic.seed = 7;
  cfg.trace.enabled = true;
  const workload::ScenarioResult r = workload::run_scenario(cfg);
  EXPECT_EQ(r.heap_closure_events, 0u)
      << "a trace emit site scheduled a heap-allocated closure";
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->events.size(), 0u);
}

}  // namespace
}  // namespace pase::net
