// Edge cases and cross-module details not covered elsewhere: flow byte
// accounting, control-packet capacity costs, EDF arbitration, scenario
// overrides, FIN propagation without delegation, and protocol law details.
#include <gtest/gtest.h>

#include "core/pase_sender.h"
#include "net/priority_queue_bank.h"
#include "test_util.h"
#include "transport/d2tcp.h"
#include "transport/l2dct.h"
#include "workload/scenario.h"

namespace pase {
namespace {

// --- Flow byte accounting -------------------------------------------------------

TEST(Flow, PacketizationRoundsUp) {
  transport::Flow f;
  f.size_bytes = 1;
  EXPECT_EQ(f.num_packets(), 1u);
  f.size_bytes = net::kMss;
  EXPECT_EQ(f.num_packets(), 1u);
  f.size_bytes = net::kMss + 1;
  EXPECT_EQ(f.num_packets(), 2u);
  f.size_bytes = 10 * net::kMss;
  EXPECT_EQ(f.num_packets(), 10u);
}

TEST(Flow, LastPacketCarriesTheRemainder) {
  transport::Flow f;
  f.size_bytes = 2 * net::kMss + 100;
  EXPECT_EQ(f.num_packets(), 3u);
  EXPECT_EQ(f.payload_of(0), net::kMss);
  EXPECT_EQ(f.payload_of(1), net::kMss);
  EXPECT_EQ(f.payload_of(2), 100u);
}

TEST(Flow, ReceiverHonorsShortLastPacket) {
  auto n = test::make_mini_net();
  auto flow = test::make_flow(*n, 0, 1, net::kMss + 7);
  transport::WindowSender s(n->sim, n->host(0), flow, {});
  auto recv = test::wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  // Wire bytes: one full packet + one 7-byte payload packet + headers.
  EXPECT_EQ(n->host(0).uplink().bytes_sent(),
            (net::kMss + net::kDataHeaderBytes) + (7 + net::kDataHeaderBytes));
}

// --- Control packets consume real capacity --------------------------------------

TEST(ControlPlane, ArbitrationTrafficOccupiesLinks) {
  auto n = test::make_mini_net(2, [](double) -> std::unique_ptr<net::Queue> {
    return std::make_unique<net::PriorityQueueBank>(8, 500, 65);
  });
  core::PaseConfig cfg;
  core::ArbitrationPlane plane(n->sim, core::PlaneTopology::from(n->rack),
                               cfg);
  auto flow = test::make_flow(*n, 0, 1, 10 * net::kMss);
  core::PaseSender s(n->sim, n->host(0), flow, plane);
  auto recv = test::wire_flow(*n, s, flow);
  plane.attach_receiver(*recv);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  // The receiver-half response is a real packet on host 1's uplink.
  EXPECT_GT(n->host(1).uplink().packets_sent(), 10u);  // ACKs + arb responses
}

// --- EDF arbitration -------------------------------------------------------------

TEST(EdfArbitration, EarlierDeadlineWinsRegardlessOfSize) {
  core::PaseConfig cfg;
  cfg.criterion = core::Criterion::kEarliestDeadlineFirst;
  core::FlowTable t(1e9, cfg.num_data_queues(), cfg.base_rate_bps(),
                    cfg.entry_timeout);
  // Big flow, near deadline vs small flow, far deadline.
  t.update_and_arbitrate(1, /*key=deadline*/ 1e-3, 1e9, 0.0);
  t.update_and_arbitrate(2, /*key=deadline*/ 9e-3, 1e9, 0.0);
  EXPECT_EQ(t.arbitrate(1).prio_queue, 0);
  EXPECT_EQ(t.arbitrate(2).prio_queue, 1);
}

TEST(EdfArbitration, ScenarioPicksEdfForDeadlineWorkloads) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPase;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 8;
  cfg.traffic.num_flows = 60;
  cfg.traffic.load = 0.5;
  cfg.traffic.deadline_min = 5e-3;
  cfg.traffic.deadline_max = 25e-3;
  cfg.traffic.seed = 2;
  auto res = workload::run_scenario(cfg);
  EXPECT_EQ(res.unfinished(), 0u);
  EXPECT_GT(res.app_throughput(), 0.5);
}

// --- Scenario fabric overrides ----------------------------------------------------

TEST(ScenarioOverrides, QueueCapacityOverrideChangesDropBehaviour) {
  workload::ScenarioConfig cfg;
  cfg.protocol = workload::Protocol::kPfabric;
  cfg.topology = workload::ScenarioConfig::TopologyKind::kSingleRack;
  cfg.rack.num_hosts = 12;
  cfg.traffic.load = 0.8;
  cfg.traffic.num_flows = 200;
  cfg.traffic.seed = 3;
  auto big_buf = cfg;
  big_buf.queue_capacity_pkts = 10000;  // effectively infinite
  auto res_small = workload::run_scenario(cfg);
  auto res_big = workload::run_scenario(big_buf);
  EXPECT_GT(res_small.fabric_drops, res_big.fabric_drops);
  EXPECT_EQ(res_big.fabric_drops, 0u);
}

// --- D2TCP / L2DCT law details ----------------------------------------------------

TEST(D2tcpLaws, PenaltyBoundedByAlpha) {
  // p = alpha^d with d in [0.5, 2]: penalty can never exceed sqrt(alpha)/2.
  auto n = test::make_mini_net();
  auto tight = test::make_flow(*n, 0, 1, 400 * net::kMss, 0.5e-3);
  transport::D2tcpSender s(n->sim, n->host(0), tight, {});
  EXPECT_LE(s.urgency(), 2.0);
  EXPECT_GE(s.urgency(), 0.5);
}

TEST(D2tcpLaws, PastDeadlineFallsBackToDctcp) {
  auto n = test::make_mini_net();
  auto f = test::make_flow(*n, 0, 1, 10 * net::kMss, 1e-3);
  transport::D2tcpSender s(n->sim, n->host(0), f, {});
  n->sim.schedule(2e-3, [] {});
  n->sim.run();
  EXPECT_DOUBLE_EQ(s.urgency(), 1.0);  // deadline passed: behave like DCTCP
}

TEST(L2dctLaws, GainShrinksAndBackoffGrowsWithProgress) {
  struct Probe : transport::L2dctSender {
    using L2dctSender::ecn_decrease_factor;
    using L2dctSender::increase_gain;
    using L2dctSender::L2dctSender;
  };
  auto n = test::make_mini_net();
  auto f = test::make_flow(*n, 0, 1, 800 * net::kMss);
  Probe s(n->sim, n->host(0), f, {});
  auto recv = test::wire_flow(*n, s, f);
  const double gain_young = s.increase_gain();
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  const double gain_old = s.increase_gain();
  EXPECT_GT(gain_young, gain_old);
  EXPECT_GT(s.weight_fraction(), 0.99);
}

// --- Priority bank drains through a real link -------------------------------------

TEST(PriorityBank, WorkConservationAcrossClasses) {
  // A high-class and a low-class flow share a link: when the high class goes
  // idle the low class uses the full capacity (work conservation).
  auto n = test::make_mini_net(3, [](double) -> std::unique_ptr<net::Queue> {
    return std::make_unique<net::PriorityQueueBank>(4, 500, 1000);
  });
  // Low-priority traffic only: must still flow at line rate.
  auto f = test::make_flow(*n, 0, 1, 200 * net::kMss);
  transport::WindowSenderOptions o;
  o.init_cwnd = 40;
  struct LowPrio : transport::WindowSender {
    using WindowSender::WindowSender;
    void fill_data(net::Packet& p) override { p.priority = 3; }
  } s(n->sim, n->host(0), f, o);
  auto recv = test::wire_flow(*n, s, f);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  const double service = 200 * 1500.0 * 8 / 1e9;
  EXPECT_LT(recv->completion_time(), service * 1.2);
}

// --- FIN propagation without delegation -------------------------------------------

TEST(ControlPlane, FinReachesAggWithoutDelegation) {
  sim::Simulator sim;
  topo::ThreeTierConfig tc;
  tc.hosts_per_tor = 2;
  auto tt = topo::build_three_tier(
      sim, tc, [](double) -> std::unique_ptr<net::Queue> {
        return std::make_unique<net::PriorityQueueBank>(8, 500, 65);
      });
  core::PaseConfig cfg;
  cfg.delegation = false;
  cfg.early_pruning = false;
  core::ArbitrationPlane plane(sim, core::PlaneTopology::from(tt), cfg);
  struct C : core::ArbitrationClient {
    void arbitration_update(int, double, bool) override {}
  } c;
  transport::Flow f;
  f.id = 1;
  f.src = tt.topo->host(0)->id();
  f.dst = tt.topo->host(7)->id();  // cross-core
  f.size_bytes = 100'000;
  plane.register_sender(c, f, 100e3, 1e9);
  sim.run(2e-3);
  auto* agg_arb = plane.agg_up_arbitrator(tt.aggs[0]->id());
  ASSERT_NE(agg_arb, nullptr);
  EXPECT_TRUE(agg_arb->table().contains(1));
  plane.sender_finished(f);
  sim.run(4e-3);  // FIN travels host -> ToR -> Agg
  EXPECT_FALSE(agg_arb->table().contains(1));
}

// --- Simulator robustness ----------------------------------------------------------

TEST(SimulatorEdge, ZeroDelayEventsRunInOrder) {
  sim::Simulator s;
  std::vector<int> order;
  s.schedule(0.0, [&] {
    order.push_back(1);
    s.schedule(0.0, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorEdge, ManyCancellationsStayConsistent) {
  sim::Simulator s;
  int fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(s.schedule(1e-3 + i * 1e-6, [&] { ++fired; }));
  }
  for (int i = 0; i < 1000; i += 2) s.cancel(ids[static_cast<size_t>(i)]);
  s.run();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace pase
