// Streaming statistics: P² estimators, the log-bucketed histogram, and the
// exact-vs-streaming tolerance contract.
//
// StatsMode::kStreaming replaces the per-flow record vector with O(1)-memory
// estimators (stats/streaming.h). The contract these tests pin:
//   - AFCT is a running mean over the same completions, so it matches the
//     exact pipeline to within summation-order rounding (<< 0.1%),
//   - histogram percentiles land within one bucket of the exact order
//     statistic (the geometry guarantees this by construction),
//   - the counting metrics (unfinished, total flows, application
//     throughput) are exactly equal — they are integer counters either way,
// for every one of the six protocol profiles on the same-seed scenario.
//
// Also here: FlowRecord deadline/FCT accounting regressions — met_deadline()
// on never-finished and PDQ-terminated flows, the cases that used to fall
// through completed() silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/flow_stats.h"
#include "stats/streaming.h"
#include "stats/summary.h"
#include "workload/scenario.h"

namespace pase::stats {
namespace {

// Deterministic xorshift so distribution tests need no <random> seeding
// subtleties.
struct Rng {
  std::uint64_t s;
  double next01() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return static_cast<double>(s >> 11) * 0x1.0p-53;
  }
};

// --- P² quantile estimator ---------------------------------------------------

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile q(0.5);
  const double xs[] = {9.0, 1.0, 7.0, 3.0, 5.0};
  for (double x : xs) q.add(x);
  // With exactly five samples the markers are the sorted sample; the median
  // marker is the true median.
  EXPECT_DOUBLE_EQ(q.value(), 5.0);
  EXPECT_EQ(q.count(), 5u);
}

TEST(P2Quantile, TracksUniformMedian) {
  P2Quantile q(0.5);
  Rng rng{42};
  for (int i = 0; i < 20000; ++i) q.add(rng.next01());
  // True median of U(0,1) is 0.5; P² is heuristic but converges well on
  // smooth distributions.
  EXPECT_NEAR(q.value(), 0.5, 0.01);
}

TEST(P2Quantile, TracksExponentialTail) {
  P2Quantile q(0.99);
  Rng rng{7};
  for (int i = 0; i < 50000; ++i) {
    q.add(-std::log(1.0 - rng.next01()));
  }
  // p99 of Exp(1) is -ln(0.01) ~= 4.605.
  EXPECT_NEAR(q.value(), 4.605, 0.25);
}

// --- log-bucketed histogram --------------------------------------------------

TEST(LogHistogram, PercentileWithinOneBucketOfExactOrderStatistic) {
  LogHistogram h;
  std::vector<double> xs;
  Rng rng{99};
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over [1e-4, 1e1): five decades, every bucket regime.
    const double x = std::pow(10.0, -4.0 + 5.0 * rng.next01());
    xs.push_back(x);
    h.add(x);
  }
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    std::vector<double> copy = xs;
    const double exact = percentile(copy, p);
    const double reported = h.percentile(p);
    // "Within one bucket": the reported midpoint's bucket and the exact
    // value's bucket are the same or adjacent.
    EXPECT_LE(std::abs(h.bucket_of(reported) - h.bucket_of(exact)), 1)
        << "p" << p << ": exact " << exact << " reported " << reported;
  }
}

TEST(LogHistogram, GeometryIsOrderIndependent) {
  std::vector<double> xs;
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) xs.push_back(1e-6 + rng.next01());
  LogHistogram fwd;
  for (double x : xs) fwd.add(x);
  std::reverse(xs.begin(), xs.end());
  LogHistogram rev;
  for (double x : xs) rev.add(x);
  ASSERT_EQ(fwd.num_buckets(), rev.num_buckets());
  for (std::size_t b = 0; b < fwd.num_buckets(); ++b) {
    ASSERT_EQ(fwd.bucket_count(static_cast<int>(b)),
              rev.bucket_count(static_cast<int>(b)));
  }
  EXPECT_DOUBLE_EQ(fwd.percentile(99.0), rev.percentile(99.0));
}

TEST(LogHistogram, ClampsOutOfRangeValues) {
  LogHistogram h(1e-3, 1e3, 10);
  h.add(1e-9);  // below min: bucket 0
  h.add(1e9);   // above max: last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(static_cast<int>(h.num_buckets()) - 1), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LogHistogram, CdfIsMonotoneAndCoversRange) {
  LogHistogram h;
  Rng rng{11};
  for (int i = 0; i < 2000; ++i) h.add(1e-4 + rng.next01());
  const std::vector<CdfPoint> cdf = h.cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_NEAR(cdf.back().fraction, 1.0, 1e-9);
}

// --- FlowRecord deadline / FCT accounting -----------------------------------

TEST(FlowRecordAccounting, UnfinishedDeadlineFlowCountsAsMissed) {
  FlowRecord rec;
  rec.deadline = 0.010;  // had a deadline...
  rec.finish = -1.0;     // ...and never finished
  EXPECT_FALSE(rec.completed());
  EXPECT_FALSE(rec.met_deadline());
  EXPECT_TRUE(rec.missed_deadline());
}

TEST(FlowRecordAccounting, TerminatedDeadlineFlowCountsAsMissed) {
  // PDQ early termination kills a flow that cannot make its deadline: it is
  // not "unfinished" (the kill was deliberate) but it did miss.
  FlowRecord rec;
  rec.deadline = 0.010;
  rec.terminated = true;
  rec.finish = -1.0;
  EXPECT_FALSE(rec.met_deadline());
  EXPECT_TRUE(rec.missed_deadline());
}

TEST(FlowRecordAccounting, DeadlineFreeFlowNeverMisses) {
  FlowRecord rec;  // deadline == 0: nothing to miss, finished or not
  EXPECT_TRUE(rec.met_deadline());
  EXPECT_FALSE(rec.missed_deadline());
  rec.finish = 1.0;
  EXPECT_TRUE(rec.met_deadline());
}

TEST(FlowRecordAccounting, CompletionAgainstDeadlineBoundary) {
  FlowRecord rec;
  rec.start = 0.001;
  rec.deadline = 0.010;
  rec.finish = 0.010;  // exactly on time counts as met
  EXPECT_TRUE(rec.met_deadline());
  EXPECT_DOUBLE_EQ(rec.fct(), 0.009);
  rec.finish = 0.0100001;
  EXPECT_FALSE(rec.met_deadline());
}

TEST(FlowRecordAccounting, StreamingFoldsDeadlineSemantics) {
  StreamingFlowStats s;
  FlowRecord met;
  met.deadline = 0.010;
  met.start = 0.0;
  met.finish = 0.005;
  FlowRecord missed_unfinished;
  missed_unfinished.deadline = 0.010;
  FlowRecord missed_terminated;
  missed_terminated.deadline = 0.010;
  missed_terminated.terminated = true;
  FlowRecord background;
  background.background = true;
  s.add(met);
  s.add(missed_unfinished);
  s.add(missed_terminated);
  s.add(background);
  EXPECT_EQ(s.total_flows(), 4u);
  EXPECT_EQ(s.deadline_flows(), 3u);
  EXPECT_EQ(s.deadline_met(), 1u);
  EXPECT_DOUBLE_EQ(s.application_throughput(), 1.0 / 3.0);
  // Terminated is not unfinished; background never counts.
  EXPECT_EQ(s.unfinished(), 1u);
  EXPECT_EQ(s.terminated_flows(), 1u);
  EXPECT_EQ(s.background_flows(), 1u);
  EXPECT_DOUBLE_EQ(s.afct(), 0.005);
}

// --- exact vs streaming on real scenarios ------------------------------------

workload::ScenarioConfig tolerance_config(workload::Protocol p,
                                          bool deadlines) {
  using workload::Pattern;
  using workload::ScenarioConfig;
  using workload::SizeDistribution;
  ScenarioConfig cfg;
  cfg.protocol = p;
  cfg.topology = ScenarioConfig::TopologyKind::kSingleRack;
  if (deadlines) {
    cfg.rack.num_hosts = 16;
    cfg.traffic.pattern = Pattern::kIncast;
    cfg.traffic.incast_fanout = 8;
    cfg.traffic.size_dist = SizeDistribution::kWebSearch;
    cfg.traffic.load = 0.5;
    cfg.traffic.num_flows = 96;
    cfg.traffic.deadline_min = 5e-3;
    cfg.traffic.deadline_max = 25e-3;
    cfg.traffic.seed = 33;
  } else {
    cfg.rack.num_hosts = 20;
    cfg.traffic.pattern = Pattern::kIntraRackRandom;
    cfg.traffic.load = 0.7;
    cfg.traffic.num_flows = 200;
    cfg.traffic.seed = 21;
  }
  return cfg;
}

void check_tolerance(const workload::ScenarioConfig& base) {
  using workload::ScenarioConfig;
  ScenarioConfig exact_cfg = base;
  exact_cfg.stats_mode = ScenarioConfig::StatsMode::kExact;
  ScenarioConfig stream_cfg = base;
  stream_cfg.stats_mode = ScenarioConfig::StatsMode::kStreaming;

  const workload::ScenarioResult exact = workload::run_scenario(exact_cfg);
  const workload::ScenarioResult stream = workload::run_scenario(stream_cfg);

  // The simulation itself must be identical — only aggregation differs.
  EXPECT_EQ(exact.data_packets_sent, stream.data_packets_sent);
  EXPECT_EQ(exact.fabric_drops, stream.fabric_drops);
  EXPECT_DOUBLE_EQ(exact.end_time, stream.end_time);

  ASSERT_FALSE(exact.records.empty());
  EXPECT_TRUE(exact.streaming == nullptr);
  ASSERT_NE(stream.streaming, nullptr);
  EXPECT_TRUE(stream.records.empty());

  // Integer-counter metrics: exactly equal.
  EXPECT_EQ(exact.total_flows(), stream.total_flows());
  EXPECT_EQ(exact.unfinished(), stream.unfinished());
  EXPECT_DOUBLE_EQ(exact.app_throughput(), stream.app_throughput());

  // AFCT: same completions, running mean vs vector mean — within 0.1%.
  ASSERT_GT(exact.afct(), 0.0);
  EXPECT_NEAR(stream.afct() / exact.afct(), 1.0, 1e-3);

  // Percentiles: the histogram reports the geometric midpoint of the bucket
  // holding the nearest-rank order statistic, so it must land within one
  // bucket of that statistic computed from the full record vector. (The
  // interpolated stats::fct_percentile is NOT the reference here: in a
  // sparse heavy tail it sits between two samples that can be many buckets
  // apart — the histogram's bound is rank-wise by construction.)
  std::vector<double> fct_values = fcts(exact.records);
  std::sort(fct_values.begin(), fct_values.end());
  ASSERT_FALSE(fct_values.empty());
  const LogHistogram& hist = stream.streaming->histogram();
  EXPECT_EQ(hist.count(), fct_values.size());
  for (double p : {50.0, 95.0, 99.0}) {
    const auto rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(p / 100.0 * static_cast<double>(fct_values.size()))));
    const double e = fct_values[rank - 1];
    const double s = stream.fct_percentile(p);
    EXPECT_LE(std::abs(hist.bucket_of(s) - hist.bucket_of(e)), 1)
        << "p" << p << ": exact rank statistic " << e << " streaming " << s;
  }
}

class StreamingTolerance
    : public ::testing::TestWithParam<workload::Protocol> {};

TEST_P(StreamingTolerance, MatchesExactOnRackRandom) {
  check_tolerance(tolerance_config(GetParam(), /*deadlines=*/false));
}

TEST_P(StreamingTolerance, MatchesExactOnIncastDeadline) {
  check_tolerance(tolerance_config(GetParam(), /*deadlines=*/true));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, StreamingTolerance,
    ::testing::Values(workload::Protocol::kDctcp, workload::Protocol::kD2tcp,
                      workload::Protocol::kL2dct, workload::Protocol::kPdq,
                      workload::Protocol::kPfabric, workload::Protocol::kPase),
    [](const ::testing::TestParamInfo<workload::Protocol>& info) {
      return std::string(workload::protocol_name(info.param));
    });

}  // namespace
}  // namespace pase::stats
