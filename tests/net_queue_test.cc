// Queue discipline tests: DropTail, RED/ECN, strict-priority bank, pFabric.
#include <gtest/gtest.h>

#include "net/droptail_queue.h"
#include "net/pfabric_queue.h"
#include "net/priority_queue_bank.h"
#include "net/red_ecn_queue.h"

namespace pase::net {
namespace {

PacketPtr data(FlowId flow, std::uint32_t seq = 0, double remaining = 0.0,
               int priority = 0) {
  auto p = make_data_packet(flow, 0, 1, seq);
  p->remaining_size = remaining;
  p->priority = priority;
  return p;
}

// Pops every packet using the protected interface via a helper.
template <typename Q>
PacketPtr pop(Q& q) {
  struct Shim : Queue {
    using Queue::do_dequeue;
  };
  return (q.*(&Shim::do_dequeue))();
}
template <typename Q>
bool push(Q& q, PacketPtr p) {
  struct Shim : Queue {
    using Queue::do_enqueue;
  };
  return (q.*(&Shim::do_enqueue))(std::move(p));
}

// --- DropTail ---------------------------------------------------------------

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (std::uint32_t i = 0; i < 5; ++i) push(q, data(1, i));
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto p = pop(q);
    ASSERT_TRUE(p);
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(3);
  EXPECT_TRUE(push(q, data(1, 0)));
  EXPECT_TRUE(push(q, data(1, 1)));
  EXPECT_TRUE(push(q, data(1, 2)));
  EXPECT_FALSE(push(q, data(1, 3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.len_packets(), 3u);
}

TEST(DropTailQueue, TracksBytes) {
  DropTailQueue q(10);
  push(q, data(1, 0));
  push(q, data(1, 1));
  EXPECT_EQ(q.len_bytes(), 2u * (kMss + kDataHeaderBytes));
  pop(q);
  EXPECT_EQ(q.len_bytes(), static_cast<std::size_t>(kMss + kDataHeaderBytes));
}

// --- RED / ECN ---------------------------------------------------------------

TEST(RedEcnQueue, NoMarkBelowThreshold) {
  RedEcnQueue q(100, 5);
  for (std::uint32_t i = 0; i < 5; ++i) push(q, data(1, i));
  EXPECT_EQ(q.marks(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(pop(q)->ecn_ce);
}

TEST(RedEcnQueue, MarksAtOrAboveThreshold) {
  RedEcnQueue q(100, 3);
  for (std::uint32_t i = 0; i < 6; ++i) push(q, data(1, i));
  // Packets 0..2 arrive under the threshold; 3..5 see qlen >= 3 and are
  // marked.
  int marked = 0;
  for (int i = 0; i < 6; ++i) marked += pop(q)->ecn_ce ? 1 : 0;
  EXPECT_EQ(marked, 3);
  EXPECT_EQ(q.marks(), 3u);
}

TEST(RedEcnQueue, DoesNotMarkNonEcnCapablePackets) {
  RedEcnQueue q(100, 0);  // mark everything eligible
  auto p = data(1, 0);
  p->ecn_capable = false;
  push(q, std::move(p));
  EXPECT_FALSE(pop(q)->ecn_ce);
  EXPECT_EQ(q.marks(), 0u);
}

TEST(RedEcnQueue, TailDropsAtCapacity) {
  RedEcnQueue q(2, 1);
  push(q, data(1, 0));
  push(q, data(1, 1));
  EXPECT_FALSE(push(q, data(1, 2)));
  EXPECT_EQ(q.drops(), 1u);
}

// --- Priority bank -----------------------------------------------------------

TEST(PriorityQueueBank, StrictPriorityAcrossClasses) {
  PriorityQueueBank q(4, 100, 50);
  push(q, data(1, 0, 0, 3));
  push(q, data(2, 0, 0, 1));
  push(q, data(3, 0, 0, 0));
  push(q, data(4, 0, 0, 2));
  EXPECT_EQ(pop(q)->flow, 3u);  // class 0 first
  EXPECT_EQ(pop(q)->flow, 2u);
  EXPECT_EQ(pop(q)->flow, 4u);
  EXPECT_EQ(pop(q)->flow, 1u);
}

TEST(PriorityQueueBank, FifoWithinClass) {
  PriorityQueueBank q(2, 100, 50);
  for (std::uint32_t i = 0; i < 4; ++i) push(q, data(1, i, 0, 1));
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(pop(q)->seq, i);
}

TEST(PriorityQueueBank, ClampsOutOfRangePriorities) {
  PriorityQueueBank q(4, 100, 50);
  push(q, data(1, 0, 0, 99));   // clamp to class 3
  push(q, data(2, 0, 0, -5));   // clamp to class 0
  EXPECT_EQ(q.class_len(3), 1u);
  EXPECT_EQ(q.class_len(0), 1u);
  EXPECT_EQ(pop(q)->flow, 2u);
}

TEST(PriorityQueueBank, SharedBufferDropsAnyClassWhenFull) {
  PriorityQueueBank q(4, 3, 50);
  push(q, data(1, 0, 0, 3));
  push(q, data(1, 1, 0, 3));
  push(q, data(1, 2, 0, 3));
  // Even a class-0 packet is tail-dropped once the shared pool is full.
  EXPECT_FALSE(push(q, data(2, 0, 0, 0)));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(PriorityQueueBank, PerClassEcnMarking) {
  PriorityQueueBank q(2, 100, 2);
  // Fill class 1 to the threshold; class 0 stays empty.
  push(q, data(1, 0, 0, 1));
  push(q, data(1, 1, 0, 1));
  auto marked = data(1, 2, 0, 1);
  push(q, std::move(marked));  // class-1 length is 2 -> marked
  auto unmarked = data(2, 0, 0, 0);
  push(q, std::move(unmarked));  // class 0 empty -> not marked
  EXPECT_EQ(q.marks(), 1u);
  EXPECT_FALSE(pop(q)->ecn_ce);  // class-0 packet
}

TEST(PriorityQueueBank, CountsDequeuesPerClass) {
  PriorityQueueBank q(3, 100, 50);
  push(q, data(1, 0, 0, 0));
  push(q, data(1, 1, 0, 2));
  pop(q);
  pop(q);
  EXPECT_EQ(q.class_dequeues(0), 1u);
  EXPECT_EQ(q.class_dequeues(2), 1u);
  EXPECT_EQ(q.class_dequeues(1), 0u);
}

// --- pFabric ------------------------------------------------------------------

TEST(PfabricQueue, DequeuesSmallestRemainingFirst) {
  PfabricQueue q(10);
  push(q, data(1, 0, 100e3));
  push(q, data(2, 0, 5e3));
  push(q, data(3, 0, 50e3));
  EXPECT_EQ(pop(q)->flow, 2u);
  EXPECT_EQ(pop(q)->flow, 3u);
  EXPECT_EQ(pop(q)->flow, 1u);
}

TEST(PfabricQueue, DropsWorstBufferedPacketWhenFull) {
  PfabricQueue q(2);
  push(q, data(1, 0, 100e3));
  push(q, data(2, 0, 50e3));
  // Higher priority (smaller remaining) arrival pushes out flow 1.
  EXPECT_TRUE(push(q, data(3, 0, 1e3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(pop(q)->flow, 3u);
  EXPECT_EQ(pop(q)->flow, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(PfabricQueue, DropsArrivingPacketIfItIsWorst) {
  PfabricQueue q(2);
  push(q, data(1, 0, 10e3));
  push(q, data(2, 0, 20e3));
  EXPECT_FALSE(push(q, data(3, 0, 90e3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.len_packets(), 2u);
}

TEST(PfabricQueue, SendsEarliestPacketOfWinningFlow) {
  // Starvation/reordering guard: the highest-priority packet picks the flow,
  // but that flow's earliest buffered packet goes out first.
  PfabricQueue q(10);
  push(q, data(1, 7, 50e3));
  push(q, data(1, 8, 10e3));  // newer packet, higher priority
  auto p = pop(q);
  EXPECT_EQ(p->flow, 1u);
  EXPECT_EQ(p->seq, 7u);  // earliest of flow 1, despite lower priority
}

TEST(PfabricQueue, ControlPacketsWinWithZeroRemaining) {
  PfabricQueue q(10);
  push(q, data(1, 0, 5e3));
  auto ack = make_control_packet(PacketType::kAck, 2, 0, 1);
  ack->remaining_size = 0.0;
  push(q, std::move(ack));
  EXPECT_EQ(pop(q)->flow, 2u);
}

TEST(PfabricQueue, TieBreaksByArrivalOrder) {
  PfabricQueue q(2);
  push(q, data(1, 0, 10e3));
  push(q, data(2, 0, 10e3));
  // Same priority: the later arrival is "worse" and gets dropped.
  EXPECT_FALSE(push(q, data(3, 0, 10e3)));
  EXPECT_EQ(pop(q)->flow, 1u);
}

}  // namespace
}  // namespace pase::net
