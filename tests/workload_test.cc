// Workload generator and statistics tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/summary.h"
#include "workload/flow_generator.h"

namespace pase::workload {
namespace {

WorkloadConfig base_cfg() {
  WorkloadConfig c;
  c.num_hosts = 20;
  c.num_flows = 2000;
  c.load = 0.5;
  c.host_rate_bps = 1e9;
  c.bottleneck_rate_bps = 10e9;
  c.seed = 42;
  return c;
}

TEST(FlowGenerator, ProducesRequestedCounts) {
  auto cfg = base_cfg();
  cfg.num_background_flows = 3;
  auto flows = generate_flows(cfg);
  EXPECT_EQ(flows.size(), 2003u);
  int bg = 0;
  for (const auto& f : flows) bg += f.background ? 1 : 0;
  EXPECT_EQ(bg, 3);
}

TEST(FlowGenerator, FlowIdsAreUnique) {
  auto flows = generate_flows(base_cfg());
  std::set<net::FlowId> ids;
  for (const auto& f : flows) ids.insert(f.id);
  EXPECT_EQ(ids.size(), flows.size());
}

TEST(FlowGenerator, SizesWithinConfiguredBounds) {
  auto cfg = base_cfg();
  cfg.size_min_bytes = 2e3;
  cfg.size_max_bytes = 198e3;
  for (const auto& f : generate_flows(cfg)) {
    if (f.background) continue;
    EXPECT_GE(f.size_bytes, 2000u);
    EXPECT_LT(f.size_bytes, 198000u);
  }
}

TEST(FlowGenerator, MeanSizeNearMidpoint) {
  auto cfg = base_cfg();
  double sum = 0;
  int n = 0;
  for (const auto& f : generate_flows(cfg)) {
    if (f.background) continue;
    sum += static_cast<double>(f.size_bytes);
    ++n;
  }
  EXPECT_NEAR(sum / n, (cfg.size_min_bytes + cfg.size_max_bytes) / 2,
              0.05 * (cfg.size_min_bytes + cfg.size_max_bytes) / 2);
}

TEST(FlowGenerator, PoissonInterArrivalsMatchLoad) {
  auto cfg = base_cfg();
  cfg.pattern = Pattern::kIntraRackRandom;
  auto flows = generate_flows(cfg);
  // Rate = load * N * C / (8 * mean size).
  const double expect_rate = arrival_rate_per_sec(cfg);
  double first = 1e9, last = 0;
  int n = 0;
  for (const auto& f : flows) {
    if (f.background) continue;
    first = std::min(first, f.start_time);
    last = std::max(last, f.start_time);
    ++n;
  }
  const double measured = n / (last - first);
  EXPECT_NEAR(measured, expect_rate, 0.1 * expect_rate);
}

TEST(FlowGenerator, ArrivalsAreSorted) {
  auto flows = generate_flows(base_cfg());
  double prev = -1;
  for (const auto& f : flows) {
    if (f.background) continue;
    EXPECT_GE(f.start_time, prev);
    prev = f.start_time;
  }
}

TEST(FlowGenerator, DeterministicForSameSeed) {
  auto a = generate_flows(base_cfg());
  auto b = generate_flows(base_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_DOUBLE_EQ(a[i].start_time, b[i].start_time);
  }
}

TEST(FlowGenerator, DifferentSeedsDiffer) {
  auto a = generate_flows(base_cfg());
  auto cfg = base_cfg();
  cfg.seed = 43;
  auto b = generate_flows(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].size_bytes != b[i].size_bytes;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FlowGenerator, LeftRightRespectsPartition) {
  auto cfg = base_cfg();
  cfg.pattern = Pattern::kLeftRight;
  cfg.num_hosts = 160;
  cfg.left_hosts = 80;
  for (const auto& f : generate_flows(cfg)) {
    EXPECT_LT(f.src, 80);
    EXPECT_GE(f.dst, 80);
    EXPECT_LT(f.dst, 160);
  }
}

TEST(FlowGenerator, IntraRackNeverSelfLoops) {
  auto cfg = base_cfg();
  cfg.pattern = Pattern::kIntraRackRandom;
  for (const auto& f : generate_flows(cfg)) EXPECT_NE(f.src, f.dst);
}

TEST(FlowGenerator, WorkerAggregatorRotatesDestinations) {
  auto cfg = base_cfg();
  cfg.pattern = Pattern::kWorkerAggregator;
  cfg.num_background_flows = 0;
  auto flows = generate_flows(cfg);
  EXPECT_EQ(flows[0].dst, 0);
  EXPECT_EQ(flows[1].dst, 1);
  EXPECT_EQ(flows[19].dst, 19);
  EXPECT_EQ(flows[20].dst, 0);
  for (const auto& f : flows) EXPECT_NE(f.src, f.dst);
}

TEST(FlowGenerator, IncastQueriesShareStartAndAggregator) {
  auto cfg = base_cfg();
  cfg.pattern = Pattern::kIncast;
  cfg.incast_fanout = 5;
  cfg.num_background_flows = 0;
  cfg.num_flows = 50;
  auto flows = generate_flows(cfg);
  ASSERT_EQ(flows.size(), 50u);
  for (int q = 0; q < 10; ++q) {
    std::set<net::NodeId> workers;
    for (int i = 0; i < 5; ++i) {
      const auto& f = flows[static_cast<std::size_t>(q * 5 + i)];
      EXPECT_EQ(f.dst, q % 20);
      EXPECT_DOUBLE_EQ(f.start_time,
                       flows[static_cast<std::size_t>(q * 5)].start_time);
      EXPECT_NE(f.src, f.dst);
      workers.insert(f.src);
    }
    EXPECT_EQ(workers.size(), 5u);  // distinct workers per query
  }
}

TEST(FlowGenerator, DeadlinesWithinConfiguredRange) {
  auto cfg = base_cfg();
  cfg.deadline_min = 5e-3;
  cfg.deadline_max = 25e-3;
  for (const auto& f : generate_flows(cfg)) {
    if (f.background) continue;
    EXPECT_GE(f.deadline - f.start_time, 5e-3);
    EXPECT_LT(f.deadline - f.start_time, 25e-3);
  }
}

TEST(FlowGenerator, BackgroundFlowsStartAtZeroAndAreHuge) {
  auto flows = generate_flows(base_cfg());
  for (const auto& f : flows) {
    if (!f.background) continue;
    EXPECT_DOUBLE_EQ(f.start_time, 0.0);
    EXPECT_GT(f.size_bytes, 1'000'000'000u);
    EXPECT_FALSE(f.has_deadline());
  }
}

// --- stats ---------------------------------------------------------------------

TEST(Stats, MeanAndPercentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile({}, 50), 0.0);
}

TEST(Stats, AfctSkipsBackgroundAndUnfinished) {
  std::vector<stats::FlowRecord> recs(3);
  recs[0].start = 0;
  recs[0].finish = 1e-3;
  recs[1].start = 0;
  recs[1].finish = 3e-3;
  recs[1].background = true;  // excluded
  recs[2].start = 0;
  recs[2].finish = -1;  // unfinished, excluded
  EXPECT_DOUBLE_EQ(stats::afct(recs), 1e-3);
  EXPECT_EQ(stats::unfinished(recs), 1u);
}

TEST(Stats, ApplicationThroughputCountsDeadlines) {
  std::vector<stats::FlowRecord> recs(4);
  recs[0].deadline = 1e-3;
  recs[0].finish = 0.5e-3;  // met
  recs[1].deadline = 1e-3;
  recs[1].finish = 2e-3;  // missed
  recs[2].deadline = 1e-3;
  recs[2].finish = -1;  // never finished: missed
  recs[3].deadline = 0;  // no deadline: ignored
  recs[3].finish = 9e-3;
  EXPECT_DOUBLE_EQ(stats::application_throughput(recs), 1.0 / 3.0);
}

TEST(Stats, CdfIsMonotonic) {
  std::vector<stats::FlowRecord> recs(100);
  sim::Rng rng(7);
  for (auto& r : recs) {
    r.start = 0;
    r.finish = rng.uniform(1e-3, 20e-3);
  }
  auto cdf = stats::fct_cdf(recs, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Stats, TailPercentileOrdering) {
  std::vector<stats::FlowRecord> recs(1000);
  sim::Rng rng(9);
  for (auto& r : recs) {
    r.start = 0;
    r.finish = rng.uniform(1e-3, 2e-3);
  }
  const double p50 = stats::fct_percentile(recs, 50);
  const double p99 = stats::fct_percentile(recs, 99);
  EXPECT_LT(p50, p99);
  EXPECT_GT(stats::afct(recs), 0.0);
}

}  // namespace
}  // namespace pase::workload
