// pFabric endpoint + fabric behaviour: SRPT service, priority dropping,
// fixed-window rate control, probe mode.
#include <gtest/gtest.h>

#include "net/pfabric_queue.h"
#include "test_util.h"
#include "transport/pfabric.h"

namespace pase::transport {
namespace {

using test::make_flow;
using test::make_mini_net;
using test::wire_flow;

topo::QueueFactory pfabric_factory(std::size_t cap = 76) {
  return [cap](double) { return std::make_unique<net::PfabricQueue>(cap); };
}

TEST(Pfabric, SingleFlowCompletesAtLineRate) {
  auto n = make_mini_net(2, pfabric_factory());
  auto flow = make_flow(*n, 0, 1, 100 * net::kMss);
  PfabricSender s(n->sim, n->host(0), flow);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  ASSERT_TRUE(recv->complete());
  const double service = 100 * 1500.0 * 8 / 1e9;
  EXPECT_LT(recv->completion_time(), service + 1e-3);
  EXPECT_EQ(s.timeouts(), 0u);
}

TEST(Pfabric, DataPacketsCarryRemainingSizePriority) {
  auto n = make_mini_net(2, pfabric_factory());
  // Larger than the 38-packet window so later packets see a smaller
  // remaining size.
  auto flow = make_flow(*n, 0, 1, 150 * net::kMss);
  PfabricSender s(n->sim, n->host(0), flow);
  // Intercept at the destination.
  struct Probe : net::PacketSink {
    std::vector<double> remaining;
    net::Host* dst;
    transport::Flow f;
    std::unique_ptr<Receiver> inner;
    void deliver(net::PacketPtr p) override {
      if (p->type == net::PacketType::kData) remaining.push_back(p->remaining_size);
      inner->deliver(std::move(p));
    }
  } probe;
  auto* dst = static_cast<net::Host*>(n->topo().node(flow.dst));
  probe.inner = std::make_unique<Receiver>(n->sim, *dst, flow);
  static_cast<net::Host*>(n->topo().node(flow.src))
      ->register_flow(flow.id, &s);
  dst->register_flow(flow.id, &probe);
  s.start();
  n->sim.run(1.0);
  ASSERT_FALSE(probe.remaining.empty());
  // Remaining size decreases as the flow is acknowledged.
  EXPECT_GT(probe.remaining.front(), probe.remaining.back());
  EXPECT_LE(probe.remaining.back(), 150.0 * net::kMss);
}

TEST(Pfabric, ShortFlowFinishesNearSoloTimeDespiteLongFlow) {
  auto n = make_mini_net(3, pfabric_factory());
  auto big = make_flow(*n, 0, 2, 3000 * net::kMss);
  big.id = 1;
  auto small = make_flow(*n, 1, 2, 50 * net::kMss);
  small.id = 2;
  PfabricSender s1(n->sim, n->host(0), big);
  PfabricSender s2(n->sim, n->host(1), small);
  auto r1 = wire_flow(*n, s1, big);
  auto r2 = wire_flow(*n, s2, small);
  s1.start();
  n->sim.schedule_at(5e-3, [&] { s2.start(); });
  n->sim.run(1.0);
  ASSERT_TRUE(r2->complete());
  const double solo = 50 * 1500.0 * 8 / 1e9;  // 0.6 ms
  EXPECT_LT(r2->completion_time() - 5e-3, solo * 3 + 2e-3);
  n->sim.run(5.0);
  EXPECT_TRUE(r1->complete());
}

TEST(Pfabric, LongFlowPacketsAreDroppedUnderContention) {
  auto n = make_mini_net(3, pfabric_factory(20));
  auto big = make_flow(*n, 0, 2, 2000 * net::kMss);
  big.id = 1;
  auto small = make_flow(*n, 1, 2, 500 * net::kMss);
  small.id = 2;
  PfabricSender s1(n->sim, n->host(0), big);
  PfabricSender s2(n->sim, n->host(1), small);
  auto r1 = wire_flow(*n, s1, big);
  auto r2 = wire_flow(*n, s2, small);
  s1.start();
  s2.start();
  n->sim.run(3e-3);
  // Both blast at line rate into the shared downlink: the fabric sheds the
  // lower-priority (larger-remaining) flow's packets.
  EXPECT_GT(n->topo().total_drops(), 0u);
  n->sim.run(10.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
  EXPECT_LT(r2->completion_time(), r1->completion_time());
}

TEST(Pfabric, EntersProbeModeAfterConsecutiveTimeouts) {
  // Black-hole every data packet of the flow: the sender should collapse to
  // a one-packet probe window after 5 consecutive RTOs.
  auto factory = test::FaultQueue::wrap_factory(
      pfabric_factory(),
      [](const net::Packet& p) { return p.type == net::PacketType::kData; });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 50 * net::kMss);
  PfabricSender s(n->sim, n->host(0), flow);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(20e-3);
  EXPECT_TRUE(s.in_probe_mode());
  EXPECT_DOUBLE_EQ(s.cwnd(), 1.0);
  EXPECT_GE(s.timeouts(), 5u);
}

TEST(Pfabric, ExitsProbeModeOnAck) {
  int blackout = 1;
  auto factory = test::FaultQueue::wrap_factory(
      pfabric_factory(), [&blackout](const net::Packet& p) {
        return blackout && p.type == net::PacketType::kData;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 50 * net::kMss);
  PfabricSender s(n->sim, n->host(0), flow);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(20e-3);
  ASSERT_TRUE(s.in_probe_mode());
  blackout = 0;  // heal the path
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_FALSE(s.in_probe_mode());
}

TEST(Pfabric, FixedWindowNeverCollapsesOnDupacks) {
  int dropped = 0;
  auto factory = test::FaultQueue::wrap_factory(
      pfabric_factory(), [&dropped](const net::Packet& p) {
        if (p.type == net::PacketType::kData && p.seq == 10 && dropped == 0) {
          ++dropped;
          return true;
        }
        return false;
      });
  auto n = make_mini_net(2, factory);
  auto flow = make_flow(*n, 0, 1, 100 * net::kMss);
  PfabricSender s(n->sim, n->host(0), flow);
  auto recv = wire_flow(*n, s, flow);
  s.start();
  n->sim.run(1.0);
  EXPECT_TRUE(recv->complete());
  EXPECT_DOUBLE_EQ(s.cwnd(), 38.0);  // loss_decrease_factor() == 0
}

TEST(Pfabric, AcksSurviveCongestionViaZeroRemaining) {
  // Heavy forward congestion shouldn't starve reverse ACKs: they carry
  // remaining_size 0 and win every pFabric dequeue/drop decision.
  auto n = make_mini_net(3, pfabric_factory(10));
  auto f1 = make_flow(*n, 0, 2, 500 * net::kMss);
  f1.id = 1;
  auto f2 = make_flow(*n, 1, 2, 400 * net::kMss);
  f2.id = 2;
  PfabricSender s1(n->sim, n->host(0), f1);
  PfabricSender s2(n->sim, n->host(1), f2);
  auto r1 = wire_flow(*n, s1, f1);
  auto r2 = wire_flow(*n, s2, f2);
  s1.start();
  s2.start();
  n->sim.run(10.0);
  EXPECT_TRUE(r1->complete());
  EXPECT_TRUE(r2->complete());
}

}  // namespace
}  // namespace pase::transport
