#include "core/arbitration_plane.h"

#include <algorithm>
#include <cmath>

#include "topo/builder.h"

namespace pase::core {

// ---------------------------------------------------------------------------
// PlaneTopology adapters

PlaneTopology PlaneTopology::from(topo::ThreeTier& tt) {
  PlaneTopology pt;
  pt.topo = tt.topo.get();
  pt.host_rate_bps = tt.config.host_rate_bps;
  pt.fabric_rate_bps = tt.config.fabric_rate_bps;
  const auto& hosts = tt.topo->hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const int tor_idx = tt.tor_of_host(static_cast<int>(i));
    pt.hosts[hosts[i]->id()] =
        HostInfo{hosts[i].get(), tt.tors[static_cast<std::size_t>(tor_idx)],
                 tt.agg_of_tor(tor_idx)};
  }
  return pt;
}

PlaneTopology PlaneTopology::from(topo::BuiltTopology& built) {
  PlaneTopology pt;
  pt.topo = &built.topo();
  pt.host_rate_bps = built.host_rate_bps();
  pt.fabric_rate_bps = built.fabric_rate_bps();
  const auto& hosts = built.topo().hosts();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const topo::HostAttachment at = built.attachment(i);
    pt.hosts[hosts[i]->id()] = HostInfo{hosts[i].get(), at.tor, at.agg};
  }
  return pt;
}

PlaneTopology PlaneTopology::from(topo::SingleRack& rack) {
  PlaneTopology pt;
  pt.topo = rack.topo.get();
  pt.host_rate_bps = rack.config.host_rate_bps;
  pt.fabric_rate_bps = rack.config.host_rate_bps;
  for (const auto& h : rack.topo->hosts()) {
    pt.hosts[h->id()] = HostInfo{h.get(), rack.tor, nullptr};
  }
  return pt;
}

// ---------------------------------------------------------------------------
// Construction

ArbitrationPlane::ArbitrationPlane(sim::Simulator& sim, PlaneTopology pt,
                                   PaseConfig cfg)
    : ArbitrationPlane(
          [&sim](net::NodeId) -> sim::Simulator& { return sim; },
          std::move(pt), cfg) {}

ArbitrationPlane::ArbitrationPlane(const SimResolver& sim_of, PlaneTopology pt,
                                   PaseConfig cfg)
    : pt_(std::move(pt)), cfg_(cfg) {
  // Endpoint arbitrators: one pair per host, living on the host.
  for (auto& [id, info] : pt_.hosts) {
    HostState hs;
    hs.info = info;
    hs.sim = &sim_of(id);
    hs.up = std::make_unique<LinkArbitrator>(info.host->name() + ".up", id,
                                             pt_.host_rate_bps, cfg_);
    hs.down = std::make_unique<LinkArbitrator>(info.host->name() + ".down", id,
                                               pt_.host_rate_bps, cfg_);
    info.host->set_control_handler(
        [this, id](net::PacketPtr p) { on_host_control(id, std::move(p)); });
    host_states_.emplace(id, std::move(hs));

    // ToR arbitrators, created lazily the first time a host names its ToR.
    net::Switch* tor = info.tor;
    if (tor != nullptr && !tor_states_.contains(tor->id())) {
      TorState ts;
      ts.tor = tor;
      ts.agg = info.agg;
      ts.sim = &sim_of(tor->id());
      if (info.agg != nullptr) {
        ts.up = std::make_unique<LinkArbitrator>(tor->name() + ".up",
                                                 tor->id(),
                                                 pt_.fabric_rate_bps, cfg_);
        ts.down = std::make_unique<LinkArbitrator>(tor->name() + ".down",
                                                   tor->id(),
                                                   pt_.fabric_rate_bps, cfg_);
      }
      net::Switch* sw = tor;
      tor->set_control_handler([this, sw](net::PacketPtr p) {
        on_switch_control(sw, std::move(p));
      });
      tor_states_.emplace(tor->id(), std::move(ts));
    }
    // Agg arbitrators.
    net::Switch* agg = info.agg;
    if (agg != nullptr && !agg_states_.contains(agg->id())) {
      AggState as;
      as.agg = agg;
      as.sim = &sim_of(agg->id());
      as.up = std::make_unique<LinkArbitrator>(agg->name() + ".up", agg->id(),
                                               pt_.fabric_rate_bps, cfg_);
      as.down = std::make_unique<LinkArbitrator>(agg->name() + ".down",
                                                 agg->id(),
                                                 pt_.fabric_rate_bps, cfg_);
      net::Switch* sw = agg;
      agg->set_control_handler([this, sw](net::PacketPtr p) {
        on_switch_control(sw, std::move(p));
      });
      agg_states_.emplace(agg->id(), std::move(as));
    }
  }

  // Delegation: carve the Agg<->Core links into per-ToR virtual links.
  // (Meaningless in local-only mode, where no fabric arbitration happens.)
  if (cfg_.local_only) cfg_.delegation = false;
  if (cfg_.delegation) {
    // Count children per agg for the initial equal split.
    std::unordered_map<net::NodeId, int> children;
    for (auto& [tid, ts] : tor_states_) {
      if (ts.agg != nullptr) {
        ++children[ts.agg->id()];
        delegation_tors_.push_back(tid);
      }
    }
    // Timers go on each ToR's own domain clock, in globally sorted ToR-id
    // order: under deterministic lineage the j-th timer claims setup root
    // index j on its domain, and sorting makes that index partition-invariant
    // (the sequential FIFO order and the parallel merge order agree).
    std::sort(delegation_tors_.begin(), delegation_tors_.end());
    std::uint32_t j = 0;
    for (const net::NodeId tid : delegation_tors_) {
      TorState& ts = tor_states_.at(tid);
      const double share = pt_.fabric_rate_bps / children[ts.agg->id()];
      ts.virt_up = std::make_unique<LinkArbitrator>(
          ts.tor->name() + ".virt_up", ts.tor->id(), share, cfg_);
      ts.virt_down = std::make_unique<LinkArbitrator>(
          ts.tor->name() + ".virt_down", ts.tor->id(), share, cfg_);
      auto& as = agg_states_.at(ts.agg->id());
      as.demand_up[tid] = 0.0;
      as.demand_down[tid] = 0.0;
      ts.sim->set_setup_index(j++);
      schedule_delegation_reports(ts);
    }
  }
}

void ArbitrationPlane::schedule_delegation_reports(TorState& ts) {
  TorState* tsp = &ts;
  ts.sim->schedule(cfg_.delegation_update_period, [this, tsp] {
    send_delegation_report(*tsp);
    schedule_delegation_reports(*tsp);
  });
}

// ---------------------------------------------------------------------------
// Helpers

double ArbitrationPlane::key_of(const transport::Flow& flow,
                                double remaining_bytes) const {
  switch (cfg_.criterion) {
    case Criterion::kEarliestDeadlineFirst:
      if (flow.has_deadline()) return flow.deadline;
      break;
    case Criterion::kTaskAware:
      if (flow.task_id != 0) return static_cast<double>(flow.task_id);
      break;
    case Criterion::kShortestFlowFirst:
      break;
  }
  return remaining_bytes;
}

double ArbitrationPlane::key_from_header(const net::ArbHeader& h) const {
  // Mirrors key_of exactly: the header fields are copies of the flow fields
  // key_of consults (Flow::has_deadline() is `deadline > 0`).
  switch (cfg_.criterion) {
    case Criterion::kEarliestDeadlineFirst:
      if (h.deadline > 0.0) return h.deadline;
      break;
    case Criterion::kTaskAware:
      if (h.task_id != 0) return static_cast<double>(h.task_id);
      break;
    case Criterion::kShortestFlowFirst:
      break;
  }
  return h.flow_size;
}

bool ArbitrationPlane::same_rack(const transport::Flow& f) const {
  return pt_.hosts.at(f.src).tor == pt_.hosts.at(f.dst).tor;
}

bool ArbitrationPlane::same_agg_hdr(const net::ArbHeader& h) const {
  // pt_.hosts is immutable after construction, so this read is safe from any
  // domain's thread.
  return pt_.hosts.at(h.src_host).agg == pt_.hosts.at(h.dst_host).agg;
}

net::PacketPtr ArbitrationPlane::make_arb_packet(net::PacketType type,
                                                 const transport::Flow& flow,
                                                 net::NodeId from,
                                                 net::NodeId to) {
  auto p = net::make_control_packet(type, flow.id, from, to);
  p->ecn_capable = false;
  p->priority = 0;
  p->remaining_size = 0.0;
  // The full arbitration identity rides in the header so fabric arbitrators
  // decide from the packet alone (see header sharding notes).
  p->arb.deadline = flow.deadline;
  p->arb.src_host = flow.src;
  p->arb.dst_host = flow.dst;
  p->arb.task_id = flow.task_id;
  return p;
}

void ArbitrationPlane::send_from_host(HostState& hs, net::PacketPtr p) {
  ++hs.stats.messages_sent;
  hs.info.host->send(std::move(p));
}

void ArbitrationPlane::send_from_switch(ControlPlaneStats& st, net::Switch& sw,
                                        net::PacketPtr p) {
  ++st.messages_sent;
  // receive() routes packets not addressed to the switch itself.
  sw.receive(std::move(p));
}

void ArbitrationPlane::respond(ControlPlaneStats& st, net::Switch& sw,
                               net::PacketPtr request) {
  net::PacketPtr p = std::move(request);
  p->type = net::PacketType::kArbResponse;
  p->src = sw.id();
  p->dst = p->arb.src_host;
  ++st.responses;
  send_from_switch(st, sw, std::move(p));
}

// ---------------------------------------------------------------------------
// Sender half

FlowTable::Result ArbitrationPlane::register_sender(
    ArbitrationClient& client, const transport::Flow& flow,
    double remaining_bytes, double demand_bps) {
  host_states_.at(flow.src).tx[flow.id] = &client;
  return source_arbitrate(flow, remaining_bytes, demand_bps);
}

FlowTable::Result ArbitrationPlane::source_arbitrate(
    const transport::Flow& flow, double remaining_bytes, double demand_bps) {
  auto& hs = host_states_.at(flow.src);
  ++hs.stats.arbitrations;
  FlowTable::Result local = hs.up->process(
      flow.id, key_of(flow, remaining_bytes), demand_bps, hs.sim->now());

  const bool needs_fabric = !cfg_.local_only && !same_rack(flow);
  const bool pruned =
      cfg_.early_pruning && local.prio_queue >= cfg_.pruning_queues;
  if (needs_fabric && !pruned) {
    auto p = make_arb_packet(net::PacketType::kArbRequest, flow, flow.src,
                             hs.info.tor->id());
    p->arb.flow_size = remaining_bytes;
    p->arb.demand = demand_bps;
    p->arb.receiver_half = false;
    p->arb.prio_queue = local.prio_queue;
    p->arb.ref_rate = local.ref_rate;
    p->arb.hops = 1;
    ++hs.stats.requests;
    send_from_host(hs, std::move(p));
  } else if (needs_fabric && pruned) {
    ++hs.stats.pruned_requests;
  }
  return local;
}

void ArbitrationPlane::sender_finished(const transport::Flow& flow) {
  auto& hs = host_states_.at(flow.src);
  hs.up->remove(flow.id);
  hs.tx.erase(flow.id);
  if (!cfg_.local_only && !same_rack(flow)) {
    auto p = make_arb_packet(net::PacketType::kArbFin, flow, flow.src,
                             hs.info.tor->id());
    p->arb.receiver_half = false;
    ++hs.stats.fins;
    send_from_host(hs, std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Receiver half

void ArbitrationPlane::attach_receiver(transport::Receiver& receiver) {
  const transport::Flow flow = receiver.flow();
  receiver.on_data = [this, flow](const net::Packet& p) {
    receiver_data_arrived(flow, p.remaining_size);
  };
  auto prev = std::move(receiver.on_complete);
  receiver.on_complete = [this, flow,
                          prev = std::move(prev)](transport::Receiver& r) {
    receiver_finished(flow);
    if (prev) prev(r);
  };
}

void ArbitrationPlane::receiver_data_arrived(const transport::Flow& flow,
                                             double remaining_bytes) {
  // Local-only mode (Fig. 12a): no arbitration traffic crosses the network,
  // so there is no receiver half at all — the source's own uplink arbitrator
  // is the only one consulted.
  if (cfg_.local_only) return;
  // Background flows never arbitrate: the sender pins them to the lowest
  // queue without registering, and the receiver half mirrors that.
  if (flow.background) return;
  auto& hs = host_states_.at(flow.dst);
  const sim::Time now = hs.sim->now();
  auto [last, first] = hs.rx_last.try_emplace(flow.id, now);
  if (!first) {
    if (now - last->second < cfg_.arbitration_period) return;
    last->second = now;
  }

  const double demand =
      std::min(pt_.host_rate_bps, remaining_bytes * 8.0 / cfg_.rtt);
  ++hs.stats.arbitrations;
  FlowTable::Result local = hs.down->process(
      flow.id, key_of(flow, remaining_bytes), demand, now);

  auto p = make_arb_packet(net::PacketType::kArbRequest, flow, flow.dst,
                           net::kInvalidNode);
  p->arb.flow_size = remaining_bytes;
  p->arb.demand = demand;
  p->arb.receiver_half = true;
  p->arb.prio_queue = local.prio_queue;
  p->arb.ref_rate = local.ref_rate;
  p->arb.hops = 1;

  const bool needs_fabric = !same_rack(flow);
  const bool pruned =
      cfg_.early_pruning && local.prio_queue >= cfg_.pruning_queues;
  if (needs_fabric && !pruned) {
    p->dst = hs.info.tor->id();
    ++hs.stats.requests;
    send_from_host(hs, std::move(p));
  } else {
    // The receiver-half result is complete; ship it to the source.
    if (pruned && needs_fabric) ++hs.stats.pruned_requests;
    p->type = net::PacketType::kArbResponse;
    p->dst = flow.src;
    ++hs.stats.responses;
    send_from_host(hs, std::move(p));
  }
}

void ArbitrationPlane::receiver_finished(const transport::Flow& flow) {
  if (cfg_.local_only) return;  // no receiver half in local-only mode
  auto& hs = host_states_.at(flow.dst);
  hs.down->remove(flow.id);
  hs.rx_last.erase(flow.id);
  if (!same_rack(flow)) {
    auto p = make_arb_packet(net::PacketType::kArbFin, flow, flow.dst,
                             hs.info.tor->id());
    p->arb.receiver_half = true;
    ++hs.stats.fins;
    send_from_host(hs, std::move(p));
  }
}

// ---------------------------------------------------------------------------
// Control packet dispatch

void ArbitrationPlane::on_host_control(net::NodeId host, net::PacketPtr p) {
  if (p->type != net::PacketType::kArbResponse) return;
  auto& hs = host_states_.at(host);
  auto it = hs.tx.find(p->flow);
  if (it == hs.tx.end()) return;  // flow already finished at the source
  it->second->arbitration_update(p->arb.prio_queue, p->arb.ref_rate,
                                 p->arb.receiver_half);
}

void ArbitrationPlane::on_switch_control(net::Switch* sw, net::PacketPtr p) {
  auto tor_it = tor_states_.find(sw->id());
  if (tor_it != tor_states_.end()) {
    TorState& ts = tor_it->second;
    switch (p->type) {
      case net::PacketType::kArbRequest:
        handle_request_at_tor(ts, std::move(p));
        return;
      case net::PacketType::kArbFin:
        handle_fin_at_tor(ts, std::move(p));
        return;
      case net::PacketType::kArbDelegate:
        handle_grant_at_tor(ts, *p);
        return;
      default:
        return;
    }
  }
  auto agg_it = agg_states_.find(sw->id());
  if (agg_it != agg_states_.end()) {
    AggState& as = agg_it->second;
    switch (p->type) {
      case net::PacketType::kArbRequest:
        handle_request_at_agg(as, std::move(p));
        return;
      case net::PacketType::kArbFin:
        handle_fin_at_agg(as, std::move(p));
        return;
      case net::PacketType::kArbReport:
        handle_report_at_agg(as, *p);
        return;
      default:
        return;
    }
  }
}

namespace {
void fold(net::ArbHeader& h, const FlowTable::Result& r) {
  h.prio_queue = std::max(h.prio_queue, r.prio_queue);
  h.ref_rate = std::min(h.ref_rate, r.ref_rate);
}
}  // namespace

void ArbitrationPlane::handle_request_at_tor(TorState& ts, net::PacketPtr p) {
  const double key = key_from_header(p->arb);
  LinkArbitrator* arb = p->arb.receiver_half ? ts.down.get() : ts.up.get();
  if (arb == nullptr) {  // single-rack: nothing above the ToR
    respond(ts.stats, *ts.tor, std::move(p));
    return;
  }
  ++ts.stats.arbitrations;
  ++p->arb.hops;
  fold(p->arb, arb->process(p->flow, key, p->arb.demand, ts.sim->now()));

  if (cfg_.early_pruning && p->arb.prio_queue >= cfg_.pruning_queues) {
    ++ts.stats.pruned_requests;
    respond(ts.stats, *ts.tor, std::move(p));
    return;
  }
  if (same_agg_hdr(p->arb)) {  // the Agg<->Core links are not on this path
    respond(ts.stats, *ts.tor, std::move(p));
    return;
  }
  if (cfg_.delegation) {
    LinkArbitrator* virt =
        p->arb.receiver_half ? ts.virt_down.get() : ts.virt_up.get();
    ++ts.stats.arbitrations;
    fold(p->arb, virt->process(p->flow, key, p->arb.demand, ts.sim->now()));
    respond(ts.stats, *ts.tor, std::move(p));
    return;
  }
  // Ascend to the aggregation arbitrator.
  p->dst = ts.agg->id();
  ++ts.stats.requests;
  send_from_switch(ts.stats, *ts.tor, std::move(p));
}

void ArbitrationPlane::handle_request_at_agg(AggState& as, net::PacketPtr p) {
  const double key = key_from_header(p->arb);
  LinkArbitrator* arb = p->arb.receiver_half ? as.down.get() : as.up.get();
  ++as.stats.arbitrations;
  ++p->arb.hops;
  fold(p->arb, arb->process(p->flow, key, p->arb.demand, as.sim->now()));
  respond(as.stats, *as.agg, std::move(p));
}

void ArbitrationPlane::handle_fin_at_tor(TorState& ts, net::PacketPtr p) {
  if (p->arb.receiver_half) {
    if (ts.down) ts.down->remove(p->flow);
    if (ts.virt_down) ts.virt_down->remove(p->flow);
  } else {
    if (ts.up) ts.up->remove(p->flow);
    if (ts.virt_up) ts.virt_up->remove(p->flow);
  }
  // Forward to the agg unless delegation means it never saw the flow. The
  // flow may not exist up there (pruning) — removal is idempotent either way.
  if (ts.agg != nullptr && !cfg_.delegation) {
    p->dst = ts.agg->id();
    ++ts.stats.fins;
    send_from_switch(ts.stats, *ts.tor, std::move(p));
  }
}

void ArbitrationPlane::handle_fin_at_agg(AggState& as, net::PacketPtr p) {
  if (p->arb.receiver_half) {
    as.down->remove(p->flow);
  } else {
    as.up->remove(p->flow);
  }
}

// ---------------------------------------------------------------------------
// Delegation

void ArbitrationPlane::send_delegation_report(TorState& ts) {
  if (ts.agg == nullptr || !cfg_.delegation) return;
  for (const bool down : {false, true}) {
    const double demand = down ? ts.virt_down->table().total_demand()
                               : ts.virt_up->table().total_demand();
    // Suppress no-change reports: an idle rack costs the control plane
    // nothing, so overhead scales with activity rather than wall time.
    double& reported = down ? ts.reported_down : ts.reported_up;
    if (reported >= 0.0 &&
        std::abs(demand - reported) < 0.01 * pt_.fabric_rate_bps) {
      continue;
    }
    reported = demand;
    auto p = net::make_control_packet(net::PacketType::kArbReport, 0,
                                      ts.tor->id(), ts.agg->id());
    p->ecn_capable = false;
    p->priority = 0;
    p->arb.receiver_half = down;
    p->arb.report_demand = demand;
    ++ts.stats.delegation_msgs;
    send_from_switch(ts.stats, *ts.tor, std::move(p));
  }
}

double ArbitrationPlane::recompute_share(AggState& as, net::NodeId child,
                                         bool down) const {
  const auto& demands = down ? as.demand_down : as.demand_up;
  const double floor_w = cfg_.delegation_min_share * pt_.fabric_rate_bps;
  double total = 0.0;
  for (const auto& [id, d] : demands) total += std::max(d, floor_w);
  if (total <= 0.0) return pt_.fabric_rate_bps / demands.size();
  return pt_.fabric_rate_bps * std::max(demands.at(child), floor_w) / total;
}

void ArbitrationPlane::handle_report_at_agg(AggState& as,
                                            const net::Packet& p) {
  const bool down = p.arb.receiver_half;
  auto& demands = down ? as.demand_down : as.demand_up;
  demands[p.src] = p.arb.report_demand;
  auto grant = net::make_control_packet(net::PacketType::kArbDelegate, 0,
                                        as.agg->id(), p.src);
  grant->ecn_capable = false;
  grant->priority = 0;
  grant->arb.receiver_half = down;
  grant->arb.granted_capacity =
      recompute_share(as, p.src, down) * cfg_.delegation_overcommit;
  ++as.stats.delegation_msgs;
  send_from_switch(as.stats, *as.agg, std::move(grant));
}

void ArbitrationPlane::handle_grant_at_tor(TorState& ts,
                                           const net::Packet& p) {
  LinkArbitrator* virt =
      p.arb.receiver_half ? ts.virt_down.get() : ts.virt_up.get();
  if (virt != nullptr) virt->table().set_capacity(p.arb.granted_capacity);
}

// ---------------------------------------------------------------------------
// Stats

const ControlPlaneStats& ArbitrationPlane::stats() const {
  folded_ = ControlPlaneStats{};
  for (const auto& [id, hs] : host_states_) folded_ += hs.stats;
  for (const auto& [id, ts] : tor_states_) folded_ += ts.stats;
  for (const auto& [id, as] : agg_states_) folded_ += as.stats;
  return folded_;
}

// ---------------------------------------------------------------------------
// Introspection

LinkArbitrator* ArbitrationPlane::uplink_arbitrator(net::NodeId host) {
  auto it = host_states_.find(host);
  return it == host_states_.end() ? nullptr : it->second.up.get();
}
LinkArbitrator* ArbitrationPlane::downlink_arbitrator(net::NodeId host) {
  auto it = host_states_.find(host);
  return it == host_states_.end() ? nullptr : it->second.down.get();
}
LinkArbitrator* ArbitrationPlane::tor_up_arbitrator(net::NodeId tor) {
  auto it = tor_states_.find(tor);
  return it == tor_states_.end() ? nullptr : it->second.up.get();
}
LinkArbitrator* ArbitrationPlane::agg_up_arbitrator(net::NodeId agg) {
  auto it = agg_states_.find(agg);
  return it == agg_states_.end() ? nullptr : it->second.up.get();
}

}  // namespace pase::core
