// PASE end-host transport (paper §3.2, Algorithm 2).
//
// Built on the DCTCP machinery but explicitly aware of the (PrioQue, Rref)
// pair the arbitration plane assigns:
//   - top queue:     cwnd pinned to Rref x RTT (guided start, no slow start);
//   - intermediate:  cwnd starts at 1 and follows DCTCP increase (1/cwnd);
//   - bottom queue:  cwnd pinned to 1;
//   - any queue:     marked windows shrink by the DCTCP alpha/2 law.
// Loss recovery is queue-aware: top-queue flows use a 10 ms minRTO; lower
// queues use 200 ms and, instead of blindly retransmitting, send a header-only
// probe — a probe-ACK that acknowledges nothing proves the packet was lost
// (retransmit), while a probe-ACK that advances proves it was merely queued.
// When arbitration moves a flow into a *better* queue, the new priority is
// applied only after every packet sent at the old priority is acknowledged,
// avoiding intra-flow reordering across queues (§3.2).
//
// Background flows (Flow::background) skip arbitration entirely and ride the
// reserved lowest-priority class with stock DCTCP behaviour (§3.3).
#pragma once

#include "core/arbitration_plane.h"
#include "transport/dctcp.h"

namespace pase::core {

class PaseSender : public transport::DctcpSender, public ArbitrationClient {
 public:
  PaseSender(sim::Simulator& sim, net::Host& host, transport::Flow flow,
             ArbitrationPlane& plane);

  void deliver(net::PacketPtr p) override;
  void arbitration_update(int prio_queue, double ref_rate,
                          bool receiver_half) override;

  // Effective values after combining both path halves.
  int priority_queue() const;
  double reference_rate() const;
  int wire_priority() const { return applied_prio_; }
  std::uint64_t probes_sent() const override { return probes_sent_; }

  static transport::WindowSenderOptions window_options(const PaseConfig& cfg) {
    transport::WindowSenderOptions o;
    o.init_cwnd = 1.0;  // replaced by Rref x RTT on start
    o.min_rto = cfg.min_rto_top;
    o.initial_rtt = cfg.rtt;
    return o;
  }

 protected:
  void on_start() override;
  void increase_window() override;
  void fill_data(net::Packet& p) override;
  void handle_timeout() override;
  sim::Time base_rto() const override;
  void try_send() override;

 private:
  bool is_top() const { return priority_queue() == 0; }
  bool is_bottom() const {
    return priority_queue() >= cfg().lowest_data_queue();
  }
  const PaseConfig& cfg() const { return plane_->config(); }
  double rref_window() const;
  double current_demand() const;
  void apply_queue_transition(int old_prio);
  // Releases the reordering barrier once all old-priority packets are acked.
  void maybe_release_barrier();
  void refresh_arbitration();
  void send_probe();
  void after_delivery();

  ArbitrationPlane* plane_;
  int sender_prio_ = 0;
  double sender_rate_ = 0.0;
  int rx_prio_ = 0;
  double rx_rate_ = 0.0;
  bool have_rx_info_ = false;
  // Reordering guard: priority actually stamped on outgoing packets.
  int applied_prio_ = 0;
  bool barrier_active_ = false;
  std::uint32_t barrier_seq_ = 0;
  bool was_intermediate_ = false;
  std::uint64_t probes_sent_ = 0;
  sim::Timer arb_timer_;
};

}  // namespace pase::core
