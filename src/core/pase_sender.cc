#include "core/pase_sender.h"

#include <algorithm>

#include "obs/trace.h"

namespace pase::core {

PaseSender::PaseSender(sim::Simulator& sim, net::Host& host,
                       transport::Flow flow, ArbitrationPlane& plane)
    : DctcpSender(sim, host, flow, window_options(plane.config())),
      plane_(&plane),
      arb_timer_(sim, [this] { refresh_arbitration(); }) {}

int PaseSender::priority_queue() const {
  if (flow().background) return cfg().background_queue();
  int q = sender_prio_;
  if (have_rx_info_) q = std::max(q, rx_prio_);
  return q;
}

double PaseSender::reference_rate() const {
  double r = sender_rate_;
  if (have_rx_info_) r = std::min(r, rx_rate_);
  return r;
}

double PaseSender::rref_window() const {
  // Rref x RTT uses the fabric's base RTT, not the measured srtt — a window
  // sized from a queue-inflated srtt would feed the very queue that inflated
  // it.
  const double pkts =
      reference_rate() * cfg().rtt / (8.0 * (net::kMss + net::kDataHeaderBytes));
  return std::max(1.0, pkts);
}

double PaseSender::current_demand() const {
  return std::min(host().nic_rate_bps(),
                  remaining_bytes() * 8.0 / cfg().rtt);
}

void PaseSender::on_start() {
  if (flow().background) {
    applied_prio_ = cfg().background_queue();
    set_cwnd(options().init_cwnd);
    return;
  }
  const FlowTable::Result local =
      plane_->register_sender(*this, flow(), remaining_bytes(),
                              current_demand());
  sender_prio_ = local.prio_queue;
  sender_rate_ = local.ref_rate;
  applied_prio_ = priority_queue();
  if (cfg().use_reference_rate) {
    // Guided start: the reference rate replaces slow start (§3.2).
    if (is_top()) {
      set_cwnd(rref_window());
    } else {
      set_cwnd(1.0);
      was_intermediate_ = !is_bottom();
    }
  } else {
    set_cwnd(options().init_cwnd);  // PASE-DCTCP ablation: stock slow start
  }
  arb_timer_.restart(cfg().arbitration_period);
}

void PaseSender::refresh_arbitration() {
  if (finished()) return;
  const int old_prio = priority_queue();
  const FlowTable::Result local =
      plane_->source_arbitrate(flow(), remaining_bytes(), current_demand());
  sender_prio_ = local.prio_queue;
  sender_rate_ = local.ref_rate;
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kArbCat, obs::EventType::kArbDecision, flow().id,
             local.ref_rate, 0.0, static_cast<std::uint32_t>(local.prio_queue),
             /*b=*/0);
  }
  apply_queue_transition(old_prio);
  arb_timer_.restart(cfg().arbitration_period);
  try_send();
}

void PaseSender::arbitration_update(int prio_queue, double ref_rate,
                                    bool receiver_half) {
  if (finished()) return;
  const int old_prio = priority_queue();
  if (receiver_half) {
    rx_prio_ = prio_queue;
    rx_rate_ = ref_rate;
    have_rx_info_ = true;
  } else {
    sender_prio_ = prio_queue;
    sender_rate_ = ref_rate;
  }
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kArbCat, obs::EventType::kArbDecision, flow().id, ref_rate,
             0.0, static_cast<std::uint32_t>(prio_queue),
             receiver_half ? 1u : 0u);
  }
  apply_queue_transition(old_prio);
  try_send();
}

void PaseSender::apply_queue_transition(int old_prio) {
  const int new_prio = priority_queue();
  if (new_prio > applied_prio_) {
    // Demotion: lower-priority packets cannot overtake, apply at once.
    applied_prio_ = new_prio;
    barrier_active_ = false;
  } else if (new_prio < applied_prio_) {
    // Promotion: hold the new class until everything sent at the old one is
    // acknowledged (§3.2 reordering guard).
    if (in_flight() == 0) {
      applied_prio_ = new_prio;
      barrier_active_ = false;
    } else {
      barrier_active_ = true;
      barrier_seq_ = snd_next();
    }
  }
  if (!cfg().use_reference_rate || new_prio == old_prio) return;
  // Algorithm 2 transitions.
  if (new_prio == 0) {
    set_cwnd(rref_window());
    was_intermediate_ = false;
  } else if (new_prio >= cfg().lowest_data_queue()) {
    set_cwnd(1.0);
    was_intermediate_ = false;
  } else if (!was_intermediate_) {
    set_cwnd(1.0);
    was_intermediate_ = true;
  }
}

void PaseSender::maybe_release_barrier() {
  if (barrier_active_ && snd_una() >= barrier_seq_) {
    barrier_active_ = false;
    applied_prio_ = priority_queue();
  }
}

void PaseSender::try_send() {
  maybe_release_barrier();
  // §3.2 reordering guard: after a promotion, hold new transmissions until
  // everything sent at the old (lower) priority has been acknowledged —
  // otherwise fresh high-class packets would overtake queued low-class ones.
  if (barrier_active_) return;
  WindowSender::try_send();
}

void PaseSender::increase_window() {
  if (flow().background || !cfg().use_reference_rate) {
    DctcpSender::increase_window();
    return;
  }
  if (is_top()) {
    set_cwnd(rref_window());
  } else if (is_bottom()) {
    set_cwnd(1.0);
  } else {
    set_cwnd(cwnd() + 1.0 / cwnd());  // DCTCP increase law, no slow start
  }
}

void PaseSender::fill_data(net::Packet& p) { p.priority = applied_prio_; }

sim::Time PaseSender::base_rto() const {
  const sim::Time floor = (flow().background || priority_queue() > 0)
                              ? cfg().min_rto_low
                              : cfg().min_rto_top;
  return std::max(floor, 2.0 * srtt());
}

void PaseSender::handle_timeout() {
  if (flow().background || !cfg().probing || is_top()) {
    timeout_retransmit();
    return;
  }
  // A lower-queue flow that timed out is more often *queued* than *lost*;
  // a tiny probe disambiguates without adding a full packet to the backlog.
  send_probe();
  record_timeout();
  backoff_rto();
  restart_rto();
}

void PaseSender::send_probe() {
  auto p = net::make_control_packet(net::PacketType::kProbe, flow().id,
                                    flow().src, flow().dst);
  p->priority = applied_prio_;
  p->seq = total_packets();  // outside data space: never yields RTT samples
  p->ts = sim_->now();
  p->remaining_size = remaining_bytes();
  ++probes_sent_;
  host().send(std::move(p));
}

void PaseSender::deliver(net::PacketPtr p) {
  if (finished()) return;
  if (p->type == net::PacketType::kProbeAck) {
    if (p->ack_seq > snd_una()) {
      // The data got through; convert into a plain ACK and let the normal
      // path advance the window.
      p->type = net::PacketType::kAck;
      p->seq = total_packets();
      p->ecn_echo = false;
      WindowSender::deliver(std::move(p));
    } else {
      // Receiver answered the probe but still misses snd_una: genuine loss.
      timeout_retransmit();
    }
    after_delivery();
    return;
  }
  WindowSender::deliver(std::move(p));
  after_delivery();
}

void PaseSender::after_delivery() {
  if (!finished()) return;
  arb_timer_.cancel();
  if (!flow().background) plane_->sender_finished(flow());
}

}  // namespace pase::core
