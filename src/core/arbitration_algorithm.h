// Algorithm 1 from the paper: per-link flow table + (PrioQue, Rref)
// computation.
//
// The arbitrator keeps the link's flows sorted by scheduling criterion
// (remaining size for SJF, absolute deadline for EDF). For a flow f:
//   ADH = sum of demands of flows more critical than f
//   ADH < C  -> top queue, Rref = min(demand, C - ADH)
//   ADH >= C -> queue floor(ADH / C) (clamped to the lowest data queue),
//               Rref = base rate (one packet per RTT)
// so each intermediate queue absorbs an aggregate demand of C and the lowest
// queue absorbs everything else, exactly as §3.1.1 prescribes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pase_config.h"
#include "net/packet.h"

namespace pase::core {

class FlowTable {
 public:
  struct Result {
    int prio_queue = 0;
    double ref_rate = 0.0;  // bps
  };

  FlowTable(double capacity_bps, int num_data_queues, double base_rate_bps,
            sim::Time entry_timeout);

  // Inserts or refreshes the flow (key = remaining size or deadline,
  // depending on the criterion the caller uses) and runs Algorithm 1 for it.
  Result update_and_arbitrate(net::FlowId id, double key, double demand,
                              sim::Time now);

  // Arbitrates without mutating state (used for introspection/tests).
  Result arbitrate(net::FlowId id) const;

  void remove(net::FlowId id);
  bool contains(net::FlowId id) const;
  std::size_t size() const { return flows_.size(); }

  void set_capacity(double capacity_bps) { capacity_ = capacity_bps; }
  double capacity() const { return capacity_; }

  // Aggregate demand of flows currently mapped to the top queue.
  double top_queue_demand() const;

  // Total demand across all flows, uncapped — what this link *wants*.
  // Delegation reports use this so a starved child can still claim a bigger
  // share of the parent link.
  double total_demand() const;

 private:
  struct Entry {
    net::FlowId id;
    double key;
    double demand;
    sim::Time last_update;
  };

  static bool more_critical(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  void prune(sim::Time now);
  Result arbitrate_entry(const Entry& e) const;

  double capacity_;
  int num_data_queues_;
  double base_rate_;
  sim::Time entry_timeout_;
  std::vector<Entry> flows_;  // sorted, most critical first
};

}  // namespace pase::core
