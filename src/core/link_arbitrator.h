// A link arbitrator: one per (directed) link in the data center, owning that
// link's Algorithm-1 flow table. It lives at a node ("owner") — the source
// host for access uplinks, the destination host for access downlinks, the
// ToR/Agg switch for fabric links — which determines how many network hops an
// arbitration message pays to reach it.
#pragma once

#include <string>

#include "core/arbitration_algorithm.h"

namespace pase::core {

class LinkArbitrator {
 public:
  LinkArbitrator(std::string name, net::NodeId owner, double capacity_bps,
                 const PaseConfig& cfg)
      : name_(std::move(name)),
        owner_(owner),
        table_(capacity_bps, cfg.num_data_queues(), cfg.base_rate_bps(),
               cfg.entry_timeout) {}

  // Processes one arbitration request for this link.
  FlowTable::Result process(net::FlowId id, double key, double demand,
                            sim::Time now) {
    ++processed_;
    return table_.update_and_arbitrate(id, key, demand, now);
  }

  void remove(net::FlowId id) { table_.remove(id); }

  const std::string& name() const { return name_; }
  net::NodeId owner() const { return owner_; }
  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }
  std::uint64_t processed() const { return processed_; }

 private:
  std::string name_;
  net::NodeId owner_;
  FlowTable table_;
  std::uint64_t processed_ = 0;
};

}  // namespace pase::core
