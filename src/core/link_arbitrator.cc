#include "core/link_arbitrator.h"

// Header-only for now; this TU anchors the library target.
