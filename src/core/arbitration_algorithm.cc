#include "core/arbitration_algorithm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pase::core {

FlowTable::FlowTable(double capacity_bps, int num_data_queues,
                     double base_rate_bps, sim::Time entry_timeout)
    : capacity_(capacity_bps),
      num_data_queues_(num_data_queues),
      base_rate_(base_rate_bps),
      entry_timeout_(entry_timeout) {
  assert(capacity_bps > 0 && num_data_queues >= 1);
}

void FlowTable::prune(sim::Time now) {
  const sim::Time cutoff = now - entry_timeout_;
  std::erase_if(flows_,
                [cutoff](const Entry& e) { return e.last_update < cutoff; });
}

FlowTable::Result FlowTable::update_and_arbitrate(net::FlowId id, double key,
                                                  double demand,
                                                  sim::Time now) {
  prune(now);
  // Remove any stale position, then insert at the sorted slot.
  std::erase_if(flows_, [id](const Entry& e) { return e.id == id; });
  Entry e{id, key, demand, now};
  auto it = std::lower_bound(flows_.begin(), flows_.end(), e, more_critical);
  flows_.insert(it, e);
  return arbitrate(id);
}

FlowTable::Result FlowTable::arbitrate(net::FlowId id) const {
  for (const auto& e : flows_) {
    if (e.id == id) return arbitrate_entry(e);
  }
  // Unknown flow: treat as least critical (belongs in the lowest queue).
  return Result{num_data_queues_ - 1, base_rate_};
}

FlowTable::Result FlowTable::arbitrate_entry(const Entry& f) const {
  double adh = 0.0;  // aggregate demand of more-critical flows
  for (const auto& e : flows_) {
    if (e.id == f.id) break;  // sorted: everything before f is more critical
    adh += e.demand;
  }
  Result r;
  if (adh < capacity_) {
    r.prio_queue = 0;
    r.ref_rate = std::min(f.demand, capacity_ - adh);
  } else {
    r.prio_queue = std::min(static_cast<int>(adh / capacity_),
                            num_data_queues_ - 1);
    r.ref_rate = base_rate_;
  }
  return r;
}

void FlowTable::remove(net::FlowId id) {
  std::erase_if(flows_, [id](const Entry& e) { return e.id == id; });
}

bool FlowTable::contains(net::FlowId id) const {
  return std::any_of(flows_.begin(), flows_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

double FlowTable::total_demand() const {
  double sum = 0.0;
  for (const auto& e : flows_) sum += e.demand;
  return sum;
}

double FlowTable::top_queue_demand() const {
  double adh = 0.0;
  for (const auto& e : flows_) {
    if (adh >= capacity_) break;  // flows from here on are not in the top queue
    adh += e.demand;
  }
  return std::min(adh, capacity_);
}

}  // namespace pase::core
