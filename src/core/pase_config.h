// All PASE knobs in one place. Defaults follow the paper's Table 3 and §3.3.
#pragma once

#include "net/packet.h"
#include "sim/simulator.h"

namespace pase::core {

enum class Criterion {
  kShortestFlowFirst,      // schedule by remaining flow size (FCT experiments)
  kEarliestDeadlineFirst,  // schedule by absolute deadline (deadline experiments)
  // Task-aware (FIFO-LM style, paper §3.1.1 / Baraat [17]): all flows of a
  // task share the task's arrival rank, so tasks finish one at a time.
  kTaskAware,
};

struct PaseConfig {
  // --- in-network prioritization --------------------------------------------
  int num_queues = 8;  // priority classes per port (Table 2 hardware range)
  // §3.3: one strictly-lower-priority class is reserved for background flows,
  // leaving num_queues - 1 classes for arbitrated traffic.
  bool reserve_background_queue = true;

  // --- arbitration -----------------------------------------------------------
  Criterion criterion = Criterion::kShortestFlowFirst;
  sim::Time arbitration_period = 300e-6;  // sources refresh once per RTT
  // Flow-table entries not refreshed within this window are presumed dead
  // (backstop for lost FIN messages).
  sim::Time entry_timeout = 3e-3;
  bool early_pruning = true;
  // Requests keep ascending only while the flow sits in the top-k queues;
  // k = 2 is the paper's sweet spot (§4.3.1).
  int pruning_queues = 2;
  bool delegation = true;
  sim::Time delegation_update_period = 1e-3;
  // Minimum share of a delegated link any child retains, so a rack with a
  // sudden burst of critical flows is never starved of virtual capacity.
  double delegation_min_share = 0.05;
  // Virtual links are deliberately over-granted: delegated shares are
  // approximate, and a strict partition would demote flows even while the
  // parent link has headroom. ECN absorbs the (bounded) overshoot.
  double delegation_overcommit = 1.5;
  // Fig. 12a ablation: the source arbitrates only its own uplink; no
  // arbitration messages cross the network at all.
  bool local_only = false;

  // --- end-host transport (Algorithm 2 / Table 3) ---------------------------
  sim::Time rtt = 300e-6;          // fabric RTT estimate (reference window)
  sim::Time min_rto_top = 10e-3;   // flows in the top queue
  sim::Time min_rto_low = 200e-3;  // flows in lower queues
  bool probing = true;             // probe-based loss recovery (§3.2)
  // Fig. 13a ablation: ignore the reference rate and run plain DCTCP rate
  // control inside the arbitrated priority queues.
  bool use_reference_rate = true;

  int num_data_queues() const {
    return reserve_background_queue ? num_queues - 1 : num_queues;
  }
  int background_queue() const { return num_queues - 1; }
  int lowest_data_queue() const { return num_data_queues() - 1; }
  // Base rate for flows that lost arbitration: one packet per RTT.
  double base_rate_bps() const {
    return (net::kMss + net::kDataHeaderBytes) * 8.0 / rtt;
  }
};

}  // namespace pase::core
