// Control-plane counters, split from arbitration_plane.h so result structs
// (ScenarioResult) can carry them without depending on the whole plane.
#pragma once

#include <cstdint>

namespace pase::core {

struct ControlPlaneStats {
  std::uint64_t messages_sent = 0;  // control packets injected into the fabric
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t fins = 0;
  std::uint64_t delegation_msgs = 0;   // reports + grants
  std::uint64_t arbitrations = 0;      // Algorithm-1 executions
  std::uint64_t pruned_requests = 0;   // ascents cut short by early pruning
};

}  // namespace pase::core
