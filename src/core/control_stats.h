// Control-plane counters, split from arbitration_plane.h so result structs
// (ScenarioResult) can carry them without depending on the whole plane.
#pragma once

#include <cstdint>

namespace pase::core {

struct ControlPlaneStats {
  std::uint64_t messages_sent = 0;  // control packets injected into the fabric
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t fins = 0;
  std::uint64_t delegation_msgs = 0;   // reports + grants
  std::uint64_t arbitrations = 0;      // Algorithm-1 executions
  std::uint64_t pruned_requests = 0;   // ascents cut short by early pruning

  // All fields are commutative sums, so per-shard counters (one per
  // arbitrating node in a domain-partitioned run) fold into the same totals
  // the sequential plane would have produced.
  ControlPlaneStats& operator+=(const ControlPlaneStats& o) {
    messages_sent += o.messages_sent;
    requests += o.requests;
    responses += o.responses;
    fins += o.fins;
    delegation_msgs += o.delegation_msgs;
    arbitrations += o.arbitrations;
    pruned_requests += o.pruned_requests;
    return *this;
  }
};

}  // namespace pase::core
