// PASE's arbitration control plane (paper §3.1).
//
// One arbitrator per directed link, arranged bottom-up over the tree:
//   - access links (host<->ToR) are arbitrated at the endpoints themselves,
//     so intra-rack flows never leave the hosts for arbitration;
//   - ToR<->Agg links are arbitrated at the ToR switch;
//   - Agg<->Core links are arbitrated at the Agg switch, unless delegation
//     hands shares ("virtual links") of them down to the ToR arbitrators.
//
// A flow's source arbitrates the sender half of the path (its uplink upward);
// the receiver half is driven by arriving data at the destination, whose
// responses travel straight back to the source (Fig. 5). The source combines
// both halves: priority queue = worst of the two, reference rate = min.
//
// Early pruning (§3.1.2) stops a request from ascending as soon as the flow
// drops out of the top-k queues on some link. Delegation (§3.1.2) lets ToR
// arbitrators decide the Agg<->Core share locally, refreshed by periodic
// report/grant exchanges with the Agg arbitrator.
//
// Every arbitration message is a real 40-byte control packet traversing the
// simulated fabric at top priority, so control-plane latency, load and
// message counts (Fig. 11) are emergent rather than modeled.
//
// Sharding: the plane is one object, but all of its mutable state is owned
// by the node it lives at — per-host flow/client tables and access-link
// arbitrators, per-ToR and per-Agg fabric arbitrators and delegation state.
// A handler running at a node reads and writes only that node's state plus
// the packet it was handed; every arbitration message carries the flow's
// full identity (ArbHeader src_host/dst_host/task_id/deadline/flow_size) so
// no handler ever consults another node's tables. Under the partitioned
// parallel engine each node's state therefore belongs to exactly one domain
// (the resolver passed at construction names it), cross-domain arbitration
// rides the existing cut-link mailboxes as ordinary control packets, and
// delegation's periodic report/grant summaries are the only ToR<->Agg
// coupling — there is no shared-memory state between domains. Handlers make
// identical decisions whatever the partitioning, which is what keeps
// parallel runs bit-identical to sequential ones. A consequence of deciding
// from the packet alone is that fabric arbitrators respond to stale
// requests from already-finished flows instead of dropping them; the
// resulting table entries age out via PaseConfig::entry_timeout (the
// paper's soft state) exactly as lost-FIN entries always have.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/control_stats.h"
#include "core/link_arbitrator.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"
#include "transport/receiver.h"

namespace pase::topo {
class BuiltTopology;
}

namespace pase::core {

// Implemented by PaseSender: receives (PrioQue, Rref) updates.
class ArbitrationClient {
 public:
  virtual ~ArbitrationClient() = default;
  virtual void arbitration_update(int prio_queue, double ref_rate,
                                  bool receiver_half) = 0;
};

// What the plane needs to know about the tree.
struct PlaneTopology {
  topo::Topology* topo = nullptr;
  struct HostInfo {
    net::Host* host = nullptr;
    net::Switch* tor = nullptr;
    net::Switch* agg = nullptr;  // nullptr in single-rack topologies
  };
  std::unordered_map<net::NodeId, HostInfo> hosts;  // by host node id
  double host_rate_bps = 1e9;
  double fabric_rate_bps = 10e9;

  static PlaneTopology from(topo::ThreeTier& tt);
  static PlaneTopology from(topo::SingleRack& rack);
  // Generic form: any BuiltTopology that reports per-host ToR/Agg attachment.
  static PlaneTopology from(topo::BuiltTopology& built);
};

class ArbitrationPlane {
 public:
  // Maps a node id to the simulator its domain runs on. Sequential runs map
  // every node to the one simulator; partitioned runs map each node to its
  // domain's clock so host timers and delegation timers fire locally.
  using SimResolver = std::function<sim::Simulator&(net::NodeId)>;

  ArbitrationPlane(const SimResolver& sim_of, PlaneTopology pt,
                   PaseConfig cfg);
  // Single-clock convenience form (sequential runs, unit tests).
  ArbitrationPlane(sim::Simulator& sim, PlaneTopology pt, PaseConfig cfg);

  const PaseConfig& config() const { return cfg_; }
  // Folds the per-node shard counters into one total (all fields are
  // commutative sums). Only call while every domain is quiescent — between
  // engine windows or after the run.
  const ControlPlaneStats& stats() const;

  // Setup-time events the plane scheduled during construction (one per
  // delegation timer), in globally sorted ToR-id order. The harness offsets
  // its own setup lineage indices (flow launches) past this count so the
  // combined setup-root order replays the sequential scheduling order.
  std::uint32_t setup_events() const {
    return static_cast<std::uint32_t>(delegation_tors_.size());
  }
  // Nodes at which the plane spontaneously schedules calendar events (the
  // delegation-timer ToRs); input to the engine's conditional-horizon probe.
  void append_timer_nodes(std::vector<net::NodeId>& out) const {
    out.insert(out.end(), delegation_tors_.begin(), delegation_tors_.end());
  }

  // --- sender side -----------------------------------------------------------
  // Registers the flow and performs the first (host-local) arbitration pass.
  // Returns the sender-half result known so far; a fabric response may refine
  // it asynchronously via ArbitrationClient::arbitration_update.
  FlowTable::Result register_sender(ArbitrationClient& client,
                                    const transport::Flow& flow,
                                    double remaining_bytes, double demand_bps);

  // Periodic refresh from the source (same semantics as register_sender).
  FlowTable::Result source_arbitrate(const transport::Flow& flow,
                                     double remaining_bytes,
                                     double demand_bps);

  // The source finished (or aborted): tear down sender-half state.
  void sender_finished(const transport::Flow& flow);

  // --- receiver side ---------------------------------------------------------
  // Hooks the receiver so arriving data drives receiver-half arbitration and
  // completion tears it down. Call once per PASE flow.
  void attach_receiver(transport::Receiver& receiver);

  // --- introspection ---------------------------------------------------------
  LinkArbitrator* uplink_arbitrator(net::NodeId host);
  LinkArbitrator* downlink_arbitrator(net::NodeId host);
  LinkArbitrator* tor_up_arbitrator(net::NodeId tor);
  LinkArbitrator* agg_up_arbitrator(net::NodeId agg);

 private:
  struct TorState {
    net::Switch* tor = nullptr;
    net::Switch* agg = nullptr;  // parent (nullptr in single-rack)
    sim::Simulator* sim = nullptr;  // the ToR's domain clock
    ControlPlaneStats stats;        // this shard's share of the counters
    std::unique_ptr<LinkArbitrator> up;    // ToR -> Agg
    std::unique_ptr<LinkArbitrator> down;  // Agg -> ToR
    // Delegated shares of the Agg<->Core links (§3.1.2 delegation).
    std::unique_ptr<LinkArbitrator> virt_up;
    std::unique_ptr<LinkArbitrator> virt_down;
    // Last demands reported upward; unchanged demand sends no report.
    double reported_up = -1.0;
    double reported_down = -1.0;
  };
  struct AggState {
    net::Switch* agg = nullptr;
    sim::Simulator* sim = nullptr;
    ControlPlaneStats stats;
    std::unique_ptr<LinkArbitrator> up;    // Agg -> Core
    std::unique_ptr<LinkArbitrator> down;  // Core -> Agg
    // Last reported top-queue demand per child ToR, per direction.
    std::unordered_map<net::NodeId, double> demand_up;
    std::unordered_map<net::NodeId, double> demand_down;
  };
  struct HostState {
    PlaneTopology::HostInfo info;
    sim::Simulator* sim = nullptr;
    ControlPlaneStats stats;
    std::unique_ptr<LinkArbitrator> up;    // host -> ToR
    std::unique_ptr<LinkArbitrator> down;  // ToR -> host
    // Sender-half state for flows sourced here: the client to deliver
    // fabric responses to. Receiver-half throttle state for flows sinking
    // here: the last receiver-side arbitration instant.
    std::unordered_map<net::FlowId, ArbitrationClient*> tx;
    std::unordered_map<net::FlowId, sim::Time> rx_last;
  };

  // Scheduling key per the configured criterion, from the flow...
  double key_of(const transport::Flow& flow, double remaining_bytes) const;
  // ...or from a request header (identical result: the header carries the
  // deadline/task fields key_of consults). Fabric arbitrators use this form
  // so they never touch endpoint-owned flow state.
  double key_from_header(const net::ArbHeader& h) const;
  bool same_rack(const transport::Flow& f) const;
  bool same_agg_hdr(const net::ArbHeader& h) const;

  void send_from_host(HostState& hs, net::PacketPtr p);
  void send_from_switch(ControlPlaneStats& st, net::Switch& sw,
                        net::PacketPtr p);
  net::PacketPtr make_arb_packet(net::PacketType type,
                                 const transport::Flow& flow,
                                 net::NodeId from, net::NodeId to);

  void on_host_control(net::NodeId host, net::PacketPtr p);
  void on_switch_control(net::Switch* sw, net::PacketPtr p);

  void handle_request_at_tor(TorState& ts, net::PacketPtr p);
  void handle_request_at_agg(AggState& as, net::PacketPtr p);
  void handle_fin_at_tor(TorState& ts, net::PacketPtr p);
  void handle_fin_at_agg(AggState& as, net::PacketPtr p);
  // Turns the request around toward arb.src_host, sending from `sw`.
  void respond(ControlPlaneStats& st, net::Switch& sw, net::PacketPtr request);

  void receiver_data_arrived(const transport::Flow& flow,
                             double remaining_bytes);
  void receiver_finished(const transport::Flow& flow);

  // Delegation.
  void schedule_delegation_reports(TorState& ts);
  void send_delegation_report(TorState& ts);
  void handle_report_at_agg(AggState& as, const net::Packet& p);
  void handle_grant_at_tor(TorState& ts, const net::Packet& p);
  double recompute_share(AggState& as, net::NodeId child, bool down) const;

  PlaneTopology pt_;
  PaseConfig cfg_;
  std::unordered_map<net::NodeId, HostState> host_states_;
  std::unordered_map<net::NodeId, TorState> tor_states_;
  std::unordered_map<net::NodeId, AggState> agg_states_;
  // ToRs with delegation timers, sorted by node id (the scheduling order).
  std::vector<net::NodeId> delegation_tors_;
  mutable ControlPlaneStats folded_;  // stats() scratch
};

}  // namespace pase::core
