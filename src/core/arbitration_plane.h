// PASE's arbitration control plane (paper §3.1).
//
// One arbitrator per directed link, arranged bottom-up over the tree:
//   - access links (host<->ToR) are arbitrated at the endpoints themselves,
//     so intra-rack flows never leave the hosts for arbitration;
//   - ToR<->Agg links are arbitrated at the ToR switch;
//   - Agg<->Core links are arbitrated at the Agg switch, unless delegation
//     hands shares ("virtual links") of them down to the ToR arbitrators.
//
// A flow's source arbitrates the sender half of the path (its uplink upward);
// the receiver half is driven by arriving data at the destination, whose
// responses travel straight back to the source (Fig. 5). The source combines
// both halves: priority queue = worst of the two, reference rate = min.
//
// Early pruning (§3.1.2) stops a request from ascending as soon as the flow
// drops out of the top-k queues on some link. Delegation (§3.1.2) lets ToR
// arbitrators decide the Agg<->Core share locally, refreshed by periodic
// report/grant exchanges with the Agg arbitrator.
//
// Every arbitration message is a real 40-byte control packet traversing the
// simulated fabric at top priority, so control-plane latency, load and
// message counts (Fig. 11) are emergent rather than modeled.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/control_stats.h"
#include "core/link_arbitrator.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"
#include "transport/receiver.h"

namespace pase::topo {
class BuiltTopology;
}

namespace pase::core {

// Implemented by PaseSender: receives (PrioQue, Rref) updates.
class ArbitrationClient {
 public:
  virtual ~ArbitrationClient() = default;
  virtual void arbitration_update(int prio_queue, double ref_rate,
                                  bool receiver_half) = 0;
};

// What the plane needs to know about the tree.
struct PlaneTopology {
  topo::Topology* topo = nullptr;
  struct HostInfo {
    net::Host* host = nullptr;
    net::Switch* tor = nullptr;
    net::Switch* agg = nullptr;  // nullptr in single-rack topologies
  };
  std::unordered_map<net::NodeId, HostInfo> hosts;  // by host node id
  double host_rate_bps = 1e9;
  double fabric_rate_bps = 10e9;

  static PlaneTopology from(topo::ThreeTier& tt);
  static PlaneTopology from(topo::SingleRack& rack);
  // Generic form: any BuiltTopology that reports per-host ToR/Agg attachment.
  static PlaneTopology from(topo::BuiltTopology& built);
};

class ArbitrationPlane {
 public:
  ArbitrationPlane(sim::Simulator& sim, PlaneTopology pt, PaseConfig cfg);

  const PaseConfig& config() const { return cfg_; }
  const ControlPlaneStats& stats() const { return stats_; }

  // --- sender side -----------------------------------------------------------
  // Registers the flow and performs the first (host-local) arbitration pass.
  // Returns the sender-half result known so far; a fabric response may refine
  // it asynchronously via ArbitrationClient::arbitration_update.
  FlowTable::Result register_sender(ArbitrationClient& client,
                                    const transport::Flow& flow,
                                    double remaining_bytes, double demand_bps);

  // Periodic refresh from the source (same semantics as register_sender).
  FlowTable::Result source_arbitrate(const transport::Flow& flow,
                                     double remaining_bytes,
                                     double demand_bps);

  // The source finished (or aborted): tear down sender-half state.
  void sender_finished(const transport::Flow& flow);

  // --- receiver side ---------------------------------------------------------
  // Hooks the receiver so arriving data drives receiver-half arbitration and
  // completion tears it down. Call once per PASE flow.
  void attach_receiver(transport::Receiver& receiver);

  // --- introspection ---------------------------------------------------------
  LinkArbitrator* uplink_arbitrator(net::NodeId host);
  LinkArbitrator* downlink_arbitrator(net::NodeId host);
  LinkArbitrator* tor_up_arbitrator(net::NodeId tor);
  LinkArbitrator* agg_up_arbitrator(net::NodeId agg);

 private:
  struct TorState {
    net::Switch* tor = nullptr;
    net::Switch* agg = nullptr;  // parent (nullptr in single-rack)
    std::unique_ptr<LinkArbitrator> up;    // ToR -> Agg
    std::unique_ptr<LinkArbitrator> down;  // Agg -> ToR
    // Delegated shares of the Agg<->Core links (§3.1.2 delegation).
    std::unique_ptr<LinkArbitrator> virt_up;
    std::unique_ptr<LinkArbitrator> virt_down;
    // Last demands reported upward; unchanged demand sends no report.
    double reported_up = -1.0;
    double reported_down = -1.0;
  };
  struct AggState {
    net::Switch* agg = nullptr;
    std::unique_ptr<LinkArbitrator> up;    // Agg -> Core
    std::unique_ptr<LinkArbitrator> down;  // Core -> Agg
    // Last reported top-queue demand per child ToR, per direction.
    std::unordered_map<net::NodeId, double> demand_up;
    std::unordered_map<net::NodeId, double> demand_down;
  };
  struct HostState {
    PlaneTopology::HostInfo info;
    std::unique_ptr<LinkArbitrator> up;    // host -> ToR
    std::unique_ptr<LinkArbitrator> down;  // ToR -> host
  };
  struct FlowCtx {
    transport::Flow flow;
    ArbitrationClient* client = nullptr;
    sim::Time last_rx_arbitration = -1.0;
  };

  // Scheduling key per the configured criterion.
  double key_of(const transport::Flow& flow, double remaining_bytes) const;
  bool same_rack(const transport::Flow& f) const;
  bool same_agg(const transport::Flow& f) const;

  void send_from_host(net::NodeId host, net::PacketPtr p);
  void send_from_switch(net::Switch& sw, net::PacketPtr p);
  net::PacketPtr make_arb_packet(net::PacketType type,
                                 const transport::Flow& flow,
                                 net::NodeId from, net::NodeId to);

  void on_host_control(net::NodeId host, net::PacketPtr p);
  void on_switch_control(net::Switch* sw, net::PacketPtr p);

  void handle_request_at_tor(TorState& ts, net::PacketPtr p);
  void handle_request_at_agg(AggState& as, net::PacketPtr p);
  void handle_fin_at_tor(TorState& ts, net::PacketPtr p);
  void handle_fin_at_agg(AggState& as, net::PacketPtr p);
  void respond(net::NodeId from_node, net::PacketPtr request);

  void receiver_data_arrived(const transport::Flow& flow,
                             double remaining_bytes);
  void receiver_finished(const transport::Flow& flow);

  // Delegation.
  void schedule_delegation_reports(TorState& ts);
  void send_delegation_report(TorState& ts);
  void handle_report_at_agg(AggState& as, const net::Packet& p);
  void handle_grant_at_tor(TorState& ts, const net::Packet& p);
  double recompute_share(AggState& as, net::NodeId child, bool down) const;

  sim::Simulator* sim_;
  PlaneTopology pt_;
  PaseConfig cfg_;
  ControlPlaneStats stats_;
  std::unordered_map<net::NodeId, HostState> host_states_;
  std::unordered_map<net::NodeId, TorState> tor_states_;
  std::unordered_map<net::NodeId, AggState> agg_states_;
  std::unordered_map<net::FlowId, FlowCtx> flows_;
};

}  // namespace pase::core
