#include "net/link.h"

#include <utility>

#include "sim/dcheck.h"
#include "sim/parallel.h"

namespace pase::net {

void Link::transmit(PacketPtr p) {
  PASE_DCHECK(!busy_ && "transmit on busy link");
  PASE_DCHECK(dst_ != nullptr && "link not connected");
  busy_ = true;
  const sim::Time tx = serialization_delay(p->size_bytes);
  bytes_sent_ += p->size_bytes;
  ++packets_sent_;
  busy_time_ += tx;
  // The hop stays two-stage — tx-done schedules the delivery — because
  // same-instant event ties are pervasive under ACK clocking (every event
  // time is a sum of identical serialization quanta from a common
  // busy-period base), and assigning the delivery's FIFO sequence number at
  // transmit time instead of tx-done time flips those ties, changing traces.
  // The in-flight packet rides in the event's arg word (released here,
  // re-wrapped in on_deliver), so ownership is never shared between events.
  sim_->schedule_raw(tx, &Link::on_tx_done, this, p.release());
}

void Link::on_tx_done(void* self, void* packet) {
  auto* link = static_cast<Link*>(self);
  // Delivery first: it must outrank (in FIFO order) anything scheduled by
  // the idle kick below for the same instant. On a cut link the delivery
  // crosses domains through the mailbox; posting here (before the idle
  // kick) consumes the same child-index slot the delivery would have taken
  // locally, which keeps its lineage ordering exact (see
  // Simulator::make_post_node).
  if (link->cross_ == nullptr) [[likely]] {
    if (link->activity_armed_) [[unlikely]] ++link->inflight_;
    link->sim_->schedule_raw(link->delay_, &Link::on_deliver, link, packet);
  } else {
    // Increment before the post: the engine's quiet-round check sees the
    // post, so a probe can only consult cross_inflight_ after this write is
    // visible (or after a drain round republished it).
    link->cross_inflight_.fetch_add(1, std::memory_order_relaxed);
    link->cross_->post(link->cross_src_, link->cross_dst_,
                       link->sim_->now() + link->delay_, &Link::on_deliver,
                       link, packet);
  }
  link->busy_ = false;
  if (link->source_ != nullptr) link->source_->on_link_idle();
}

void Link::txdone_hint(void* self, void* arg) {
  auto* link = static_cast<Link*>(self);
  if (link->source_ != nullptr) __builtin_prefetch(link->source_);
  (void)arg;
}

void Link::deliver_hint(void* self, void* arg) {
  auto* link = static_cast<Link*>(self);
  if (link->dst_ != nullptr) __builtin_prefetch(link->dst_);
  (void)arg;
}

void Link::on_deliver(void* self, void* packet) {
  auto* link = static_cast<Link*>(self);
  if (link->cross_ != nullptr) {
    link->cross_inflight_.fetch_sub(1, std::memory_order_relaxed);
  } else if (link->activity_armed_) [[unlikely]] {
    --link->inflight_;
  }
  link->dst_->receive(PacketPtr(static_cast<Packet*>(packet)));
}

}  // namespace pase::net
