#include "net/link.h"

#include <cassert>
#include <utility>

namespace pase::net {

void Queue::enqueue(PacketPtr p) {
  ++enqueues_;
  if (do_enqueue(std::move(p))) try_send();
}

void Queue::on_link_idle() { try_send(); }

void Queue::try_send() {
  if (link_ == nullptr || !link_->idle() || empty()) return;
  PacketPtr next = do_dequeue();
  assert(next && "discipline reported non-empty but returned no packet");
  link_->transmit(std::move(next));
}

void Link::transmit(PacketPtr p) {
  assert(!busy_ && "transmit on busy link");
  assert(dst_ != nullptr && "link not connected");
  busy_ = true;
  const sim::Time tx = serialization_delay(p->size_bytes);
  bytes_sent_ += p->size_bytes;
  ++packets_sent_;
  busy_time_ += tx;
  // Shared ownership of the in-flight packet between the two events below is
  // avoided by handing it to the delivery event up front.
  auto* raw = p.release();
  sim_->schedule(tx, [this, raw] {
    sim_->schedule(delay_, [this, raw] { dst_->receive(PacketPtr(raw)); });
    busy_ = false;
    if (source_ != nullptr) source_->on_link_idle();
  });
}

}  // namespace pase::net
