// Flow -> sink demux for the host receive path.
//
// The workload layer allocates flow IDs sequentially from 1 (see
// workload::FlowGenerator), so in any real scenario every lookup is a bounds
// check plus one indexed load in a dense table — no hashing, no buckets, no
// pointer chase. IDs at or above kDenseLimit fall back to a small
// open-addressing hash table so correctness never depends on that contract
// (tests and external embedders may register arbitrary 64-bit IDs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/dcheck.h"

namespace pase::net {

class PacketSink;

class FlowDemux {
 public:
  // Default ceiling on dense-table ids; at 8 bytes per entry the table tops
  // out at 512 KiB per host. Fine for rack-scale runs, but at fat-tree
  // scale (1k+ hosts) the per-host tables dominate RSS, so the scenario
  // driver lowers the limit via set_dense_limit — high ids then spill to
  // the sparse table, whose size tracks *live* flows, not the id range.
  static constexpr FlowId kDenseLimit = 1ull << 16;
  // Floor for set_dense_limit. Keeps the sentinel keys (0, 1) out of the
  // sparse table and the common tiny-test id range dense.
  static constexpr FlowId kMinDenseLimit = 64;

  PacketSink* find(FlowId id) const {
    // Invariant: dense_.size() <= dense_limit_ (set_dense_limit rounds the
    // limit down to a power of two and the growth sites clamp to it), so an
    // id that lands in dense_ is always an id the dense table owns — sparse
    // ids can never shadow a null dense slot.
    if (id < dense_.size()) [[likely]] {
      return dense_[id];
    }
    if (id < dense_limit_) return nullptr;  // dense range, never registered
    return sparse_find(id);
  }

  void insert(FlowId id, PacketSink* sink) {
    PASE_DCHECK(sink != nullptr && "demux sinks must be non-null");
    if (id < dense_limit_) {
      if (id >= dense_.size()) {
        std::size_t want = dense_.empty() ? 64 : dense_.size();
        while (want <= id) want *= 2;
        if (want > dense_limit_) want = dense_limit_;
        dense_.resize(want, nullptr);
      }
      if (dense_[id] == nullptr) ++count_;
      dense_[id] = sink;
      return;
    }
    sparse_insert(id, sink);
  }

  void erase(FlowId id) {
    if (id < dense_limit_) {
      if (id < dense_.size() && dense_[id] != nullptr) {
        dense_[id] = nullptr;
        --count_;
      }
      return;
    }
    sparse_erase(id);
  }

  // Caps the dense table's id range. The limit is rounded *down* to a power
  // of two and clamped to [kMinDenseLimit, kDenseLimit], so the doubling
  // growth schedule (64, 128, ...) can land exactly on it and dense_.size()
  // never exceeds dense_limit_ — find()'s dense fast path stays correct for
  // ids the sparse table owns, and a caller budgeting N entries gets at most
  // N, never the next power of two above N. Must be called before any id >=
  // the new limit is inserted — entries do not migrate between tables.
  // Lookup results are unaffected; only the dense/sparse split (memory vs
  // probe cost) moves.
  void set_dense_limit(FlowId limit) {
    if (limit < kMinDenseLimit) limit = kMinDenseLimit;
    if (limit > kDenseLimit) limit = kDenseLimit;
    while ((limit & (limit - 1)) != 0) limit &= limit - 1;  // round down
    dense_limit_ = limit;
  }

  // Pre-grows the dense table to cover ids up to `max_id` (clamped to the
  // dense range), so steady-state insert never resizes. Sizing matches
  // insert()'s doubling schedule, so a prewarmed demux is indistinguishable
  // from an organically grown one.
  void reserve_dense(FlowId max_id) {
    if (max_id >= dense_limit_) max_id = dense_limit_ - 1;
    if (max_id < dense_.size()) return;
    std::size_t want = dense_.empty() ? 64 : dense_.size();
    while (want <= max_id) want *= 2;
    if (want > dense_limit_) want = dense_limit_;
    dense_.resize(want, nullptr);
  }

  // Number of registered flows.
  std::size_t size() const { return count_; }

 private:
  // Sentinels occupy keys that can never reach the sparse table (they are
  // below kMinDenseLimit, so always dense).
  static constexpr FlowId kEmptyKey = 0;
  static constexpr FlowId kTombKey = 1;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  struct SparseEntry {
    FlowId key = kEmptyKey;
    PacketSink* sink = nullptr;
  };

  static std::size_t hash(FlowId id) {
    std::uint64_t x = id;  // splitmix64 finalizer
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }

  PacketSink* sparse_find(FlowId id) const {
    if (sparse_.empty()) return nullptr;
    const std::size_t mask = sparse_.size() - 1;
    for (std::size_t i = hash(id) & mask;; i = (i + 1) & mask) {
      const SparseEntry& e = sparse_[i];
      if (e.key == id) return e.sink;
      if (e.key == kEmptyKey) return nullptr;
    }
  }

  void sparse_insert(FlowId id, PacketSink* sink) {
    // Rehash at ~70% occupancy counting tombstones, so probe chains stay
    // short even under churn.
    if (sparse_.empty() || (sparse_used_ + 1) * 10 >= sparse_.size() * 7) {
      sparse_rehash();
    }
    const std::size_t mask = sparse_.size() - 1;
    std::size_t tomb = kNpos;
    for (std::size_t i = hash(id) & mask;; i = (i + 1) & mask) {
      SparseEntry& e = sparse_[i];
      if (e.key == id) {
        e.sink = sink;
        return;
      }
      if (e.key == kTombKey && tomb == kNpos) tomb = i;
      if (e.key == kEmptyKey) {
        if (tomb != kNpos) {
          sparse_[tomb] = SparseEntry{id, sink};
        } else {
          e = SparseEntry{id, sink};
          ++sparse_used_;
        }
        ++sparse_live_;
        ++count_;
        return;
      }
    }
  }

  void sparse_erase(FlowId id) {
    if (sparse_.empty()) return;
    const std::size_t mask = sparse_.size() - 1;
    for (std::size_t i = hash(id) & mask;; i = (i + 1) & mask) {
      SparseEntry& e = sparse_[i];
      if (e.key == id) {
        e.key = kTombKey;
        e.sink = nullptr;
        --sparse_live_;
        --count_;
        return;
      }
      if (e.key == kEmptyKey) return;
    }
  }

  void sparse_rehash() {
    std::size_t want = 16;
    while (want < (sparse_live_ + 1) * 2) want *= 2;
    std::vector<SparseEntry> old;
    old.swap(sparse_);
    sparse_.assign(want, SparseEntry{});
    sparse_used_ = 0;
    const std::size_t mask = sparse_.size() - 1;
    for (const SparseEntry& e : old) {
      if (e.key == kEmptyKey || e.key == kTombKey) continue;
      std::size_t i = hash(e.key) & mask;
      while (sparse_[i].key != kEmptyKey) i = (i + 1) & mask;
      sparse_[i] = e;
      ++sparse_used_;
    }
  }

  FlowId dense_limit_ = kDenseLimit;  // ids below this stay dense
  std::vector<PacketSink*> dense_;    // direct-indexed by FlowId
  std::vector<SparseEntry> sparse_;   // open addressing, power-of-two size
  std::size_t sparse_live_ = 0;       // live sparse entries
  std::size_t sparse_used_ = 0;       // live + tombstones
  std::size_t count_ = 0;             // total registered flows
};

}  // namespace pase::net
