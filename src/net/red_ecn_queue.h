// DCTCP-style ECN marking queue.
//
// Tail-drop FIFO that sets the CE codepoint on arriving packets whenever the
// instantaneous queue length is at or above the marking threshold K — the
// degenerate RED configuration DCTCP prescribes (min_th = max_th = K, mark on
// instantaneous length).
#pragma once


#include "net/packet_ring.h"
#include "net/queue.h"

namespace pase::net {

class RedEcnQueue : public Queue {
 public:
  RedEcnQueue(std::size_t capacity_pkts, std::size_t mark_threshold_pkts)
      : q_(capacity_pkts), capacity_(capacity_pkts),
        threshold_(mark_threshold_pkts) {}

  std::size_t len_packets() const override { return q_.size(); }
  std::size_t len_bytes() const override { return bytes_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t mark_threshold() const { return threshold_; }

 protected:
  bool do_enqueue(PacketPtr p) override;
  PacketPtr do_dequeue() override;

 private:
  PacketRing q_;
  std::size_t capacity_;
  std::size_t threshold_;
  std::size_t bytes_ = 0;
};

}  // namespace pase::net
