// DCTCP-style ECN marking queue.
//
// Tail-drop FIFO that sets the CE codepoint on arriving packets whenever the
// instantaneous queue length is at or above the marking threshold K — the
// degenerate RED configuration DCTCP prescribes (min_th = max_th = K, mark on
// instantaneous length).
#pragma once


#include "net/packet_ring.h"
#include "net/queue.h"

namespace pase::net {

class RedEcnQueue : public Queue {
 public:
  RedEcnQueue(std::size_t capacity_pkts, std::size_t mark_threshold_pkts)
      : capacity_(static_cast<std::uint32_t>(capacity_pkts)),
        threshold_(static_cast<std::uint32_t>(mark_threshold_pkts)),
        q_(capacity_pkts) {}

  std::size_t len_packets() const override { return q_.size(); }
  std::size_t len_bytes() const override { return bytes_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t mark_threshold() const { return threshold_; }

 protected:
  bool do_enqueue(PacketPtr p) override;
  PacketPtr do_dequeue() override;
  PacketPtr do_pass(PacketPtr p) override;

 private:
  // Thresholds (32-bit: queue capacities are small) ahead of the ring so the
  // idle-link pass-through (do_pass) and the idle-kick emptiness probe
  // (do_dequeue) resolve entirely against the queue's first cache line —
  // counters, thresholds and the ring's occupancy count all pack into the
  // base class's tail padding plus the first few derived bytes. The byte
  // gauge trails: it is only touched when the ring actually holds packets.
  std::uint32_t capacity_;
  std::uint32_t threshold_;
  PacketRing q_;
  std::size_t bytes_ = 0;
};

}  // namespace pase::net
