// End host: one uplink port toward its ToR switch plus a demux that hands
// received packets to per-flow transport agents and control traffic to the
// host-local control handler (PASE endpoint arbitrators).
#pragma once

#include <functional>
#include <memory>

#include "net/flow_demux.h"
#include "net/link.h"
#include "net/node.h"
#include "net/queue.h"

namespace pase::net {

// Anything that consumes packets delivered to a host: senders take ACKs,
// receivers take data.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(PacketPtr p) = 0;
};

class Host : public Node {
 public:
  Host(NodeId id, std::string name) : Node(id, std::move(name)) {}

  void attach_uplink(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
                     Node* tor);

  // Injects a locally generated packet into the network.
  void send(PacketPtr p);

  // Demux registration. Data/probe packets go to the flow's receiver sink;
  // ACKs go to the flow's sender sink. A flow's sender and receiver live on
  // different hosts, so one table per host suffices. Lookup is a dense
  // FlowId-indexed load for the sequential IDs the workload layer allocates
  // (see FlowDemux).
  void register_flow(FlowId flow, PacketSink* sink) { flows_.insert(flow, sink); }
  void unregister_flow(FlowId flow) { flows_.erase(flow); }
  // Pre-grows the demux's dense table for ids up to `max_id`, making
  // steady-state registration allocation-free (see FlowDemux::reserve_dense).
  void reserve_flows(FlowId max_id) { flows_.reserve_dense(max_id); }

  // Caps the demux's dense id range; ids past the cap use the sparse table
  // (see FlowDemux::set_dense_limit). Call before registering such ids.
  void set_dense_flow_limit(FlowId limit) { flows_.set_dense_limit(limit); }

  using ControlHandler = std::function<void(PacketPtr)>;
  void set_control_handler(ControlHandler h) { control_ = std::move(h); }

  using ForwardHook = std::function<void(Packet&)>;
  void add_send_hook(ForwardHook hook) { send_hooks_.push_back(std::move(hook)); }

  void receive(PacketPtr p) override;

  Queue& uplink_queue() { return *uplink_queue_; }
  Link& uplink() { return *uplink_; }
  double nic_rate_bps() const { return uplink_ ? uplink_->rate_bps() : 0.0; }

 private:
  // Demux first: its dense-table header lands on the host's first cache
  // line (after Node's slim header), so receive() resolves the sink with
  // one object line plus the dense row itself.
  FlowDemux flows_;
  std::unique_ptr<Queue> uplink_queue_;
  std::unique_ptr<Link> uplink_;
  std::vector<ForwardHook> send_hooks_;
  ControlHandler control_;
};

}  // namespace pase::net
