// Point-to-point unidirectional link: serialization at `rate_bps` followed by
// fixed propagation delay, delivering into the destination node.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/node.h"
#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"

namespace pase::sim {
class ParallelEngine;
}

namespace pase::net {

class Link {
 public:
  Link(sim::Simulator& sim, double rate_bps, sim::Time prop_delay,
       std::string name = {})
      : sim_(&sim), rate_bps_(rate_bps), delay_(prop_delay),
        name_(std::move(name)) {
    register_prefetch_hints();
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void connect(Queue* source, Node* dst) {
    source_ = source;
    dst_ = dst;
    source->set_link(this);
  }

  bool idle() const { return !busy_; }
  double rate_bps() const { return rate_bps_; }
  sim::Time prop_delay() const { return delay_; }
  Node* destination() const { return dst_; }
  const std::string& name() const { return name_; }

  sim::Time serialization_delay(std::uint32_t bytes) const {
    return static_cast<double>(bytes) * 8.0 / rate_bps_;
  }

  // Begins serializing `p`; must only be called when idle. The hop is two
  // raw typed events — tx-done at now + serialization, which schedules the
  // delivery a propagation delay later — so a packet hop costs two
  // one-cache-line event writes and no closure construction.
  void transmit(PacketPtr p);

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  // Utilization helper: busy time accumulated so far.
  sim::Time busy_time() const { return busy_time_; }

  // --- Parallel-partition wiring (setup time only) -----------------------
  // Moves the link's event scheduling onto the domain clock of its
  // transmitting node. Must be called before any packet is in flight.
  void bind_domain(sim::Simulator& s) {
    sim_ = &s;
    register_prefetch_hints();
  }
  // Marks the link as a cut edge: deliveries are posted into the destination
  // domain's mailbox (ordered by a lineage node captured here) instead of being
  // scheduled on the local calendar.
  void set_cross_post(sim::ParallelEngine* engine, int src_domain,
                      int dst_domain) {
    cross_ = engine;
    cross_src_ = src_domain;
    cross_dst_ = dst_domain;
  }

  // --- Conditional-lookahead activity probes (parallel runs only) ---------
  // When armed, the link counts in-flight deliveries so the engine's horizon
  // probe can tell whether any event chain is currently headed down this
  // link. Sequential runs never arm and pay one predicted branch per hop.
  void arm_activity_tracking() { activity_armed_ = true; }
  // Local (intra-domain) link: a packet is serializing or propagating, so an
  // event will fire at the destination node. Read only by the owning
  // domain's thread.
  bool probe_local_active() const { return busy_ || inflight_ > 0; }
  // Cut link, source-side view: a packet is serializing; its delivery will
  // be posted at tx-done + prop_delay. Read only by the source domain.
  bool probe_cut_busy() const { return busy_; }
  // Cut link, destination-side view: a posted delivery has not executed yet
  // (it sits in the destination calendar once mailboxes are drained). The
  // relaxed read may miss an increment racing with the probe, but any such
  // increment came from a post in the same window, which forces the engine
  // to discard the probe and drain first — so staleness is conservative.
  bool probe_cut_inflight() const {
    return cross_inflight_.load(std::memory_order_relaxed) > 0;
  }

 private:
  // Typed-event trampolines (sim::RawFn signature).
  static void on_tx_done(void* self, void* arg);
  static void on_deliver(void* self, void* packet);

  // Engine prefetch helpers (see Simulator::set_prefetch_hint): one event
  // ahead of a delivery, pull the destination node's first line (its route
  // or demux state rides there); one event ahead of a tx-done, pull the
  // feeding queue's first line (the idle kick probes it). Pure prefetch —
  // no state is read beyond this link's own (already warm) fields.
  void register_prefetch_hints() {
    sim_->set_prefetch_hint(&Link::on_tx_done, &Link::txdone_hint);
    sim_->set_prefetch_hint(&Link::on_deliver, &Link::deliver_hint);
    // Profiler labels ride the same per-domain registration: a rebound link
    // re-registers onto its domain clock, so every engine can attribute its
    // dispatches whether the run is sequential or partitioned.
    sim_->set_profile_label(&Link::on_tx_done, "link.tx_done");
    sim_->set_profile_label(&Link::on_deliver, "link.deliver");
  }
  static void txdone_hint(void* self, void* arg);
  static void deliver_hint(void* self, void* arg);

  // Hot fields first (Link has no vtable, so these start at offset 0):
  // on_tx_done and on_deliver — the two per-hop events — read sim_, delay_,
  // both endpoints, cross_, the activity flags and busy_, all packed into
  // the first cache line. The stats accumulators, cut-link plumbing and
  // name trail on later lines; transmit touches them once per serialization.
  sim::Simulator* sim_;
  double rate_bps_;
  sim::Time delay_;
  Queue* source_ = nullptr;
  Node* dst_ = nullptr;
  sim::ParallelEngine* cross_ = nullptr;  // non-null on cut links only
  bool busy_ = false;
  // Activity tracking (see probe accessors above). `inflight_` is
  // single-threaded (local links live entirely inside one domain);
  // `cross_inflight_` is incremented by the source domain at post time and
  // decremented by the destination domain when the delivery executes.
  bool activity_armed_ = false;
  int inflight_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  sim::Time busy_time_ = 0.0;
  int cross_src_ = 0;
  int cross_dst_ = 0;
  std::atomic<int> cross_inflight_{0};
  std::string name_;
};

// Queue's link-facing methods live here so call sites inline them: the
// enqueue -> try_send -> transmit chain runs once per switch hop. do_dequeue
// returns null when the discipline is empty (its contract), so probing
// emptiness and dequeueing is a single virtual call.
inline void Queue::try_send() {
  if (link_ == nullptr || !link_->idle()) return;
  PacketPtr next = do_dequeue();
  if (next == nullptr) return;
  link_->transmit(std::move(next));
}

inline void Queue::enqueue(PacketPtr p) {
  ++enqueues_;
  // Idle link: hand the packet straight to the discipline's pass-through.
  // Every entry point kicks try_send, so an idle link implies a drained
  // queue and do_pass usually skips the ring round-trip entirely; when the
  // queue is somehow non-empty, do_pass returns the head packet — exactly
  // what enqueue-then-try_send would have transmitted.
  if (link_ != nullptr && link_->idle()) [[likely]] {
    if (PacketPtr next = do_pass(std::move(p))) {
      link_->transmit(std::move(next));
    }
    return;
  }
  if (do_enqueue(std::move(p))) try_send();
}

inline void Queue::on_link_idle() { try_send(); }

}  // namespace pase::net
