#include "net/pfabric_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pase::net {

namespace {

// Returns true if a is lower priority (worse) than b.
bool worse(double rem_a, std::uint64_t arr_a, double rem_b,
           std::uint64_t arr_b) {
  if (rem_a != rem_b) return rem_a > rem_b;
  return arr_a > arr_b;  // later arrival loses ties
}

}  // namespace

bool PfabricQueue::do_enqueue(PacketPtr p) {
  const std::uint64_t arrival = next_arrival_++;
  if (buf_.size() >= capacity_) {
    // Find the worst buffered packet.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < buf_.size(); ++i) {
      if (worse(buf_[i].remaining, buf_[i].arrival, buf_[worst].remaining,
                buf_[worst].arrival)) {
        worst = i;
      }
    }
    if (worse(p->remaining_size, arrival, buf_[worst].remaining,
              buf_[worst].arrival)) {
      count_drop(*p);
      return false;  // arriving packet is the worst: drop it
    }
    // Push out the buffered worst to admit the arrival.
    bytes_ -= buf_[worst].pkt->size_bytes;
    count_drop(*buf_[worst].pkt);
    buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(worst));
  }
  bytes_ += p->size_bytes;
  const double remaining = p->remaining_size;
  const FlowId flow = p->flow;
  buf_.push_back(Entry{std::move(p), arrival, remaining, flow});
  return true;
}

PacketPtr PfabricQueue::do_dequeue() {
  if (buf_.empty()) return nullptr;
  // Highest-priority packet decides which flow to serve...
  std::size_t best = 0;
  for (std::size_t i = 1; i < buf_.size(); ++i) {
    if (worse(buf_[best].remaining, buf_[best].arrival, buf_[i].remaining,
              buf_[i].arrival)) {
      best = i;
    }
  }
  // ...but the earliest arrived packet of that flow is the one transmitted
  // (avoids intra-flow reordering).
  const FlowId flow = buf_[best].flow;
  std::size_t send = best;
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    if (buf_[i].flow == flow && buf_[i].arrival < buf_[send].arrival) {
      send = i;
    }
  }
  PacketPtr p = std::move(buf_[send].pkt);
  buf_.erase(buf_.begin() + static_cast<std::ptrdiff_t>(send));
  bytes_ -= p->size_bytes;
  return p;
}

}  // namespace pase::net
