// Packet model.
//
// Like ns-2, a simulated packet carries the union of all protocol headers the
// framework knows about; only `size_bytes` counts on the wire. Packets are
// owned by exactly one component at a time via std::unique_ptr; the pointer's
// deleter recycles the storage through a thread-local free-list pool instead
// of returning it to the allocator, so steady-state simulation makes no
// per-packet malloc/free calls. Each thread has its own pool, which keeps the
// scheme safe under the parallel sweep runner (a scenario never migrates
// between threads mid-run).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/simulator.h"

namespace pase::net {

using FlowId = std::uint64_t;
using NodeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;

// Wire sizes (bytes).
inline constexpr std::uint32_t kMss = 1460;          // data payload per packet
inline constexpr std::uint32_t kDataHeaderBytes = 40;
inline constexpr std::uint32_t kControlPacketBytes = 40;  // ACK / probe / arbitration

enum class PacketType : std::uint8_t {
  kData,
  kAck,
  kProbe,        // PASE header-only loss-recovery probe (also used by PDQ paused flows)
  kProbeAck,
  kArbRequest,   // PASE control plane
  kArbResponse,
  kArbFin,       // flow-termination notice to arbitrators
  kArbDelegate,  // parent->child virtual-link capacity update
  kArbReport,    // child->parent aggregate demand report (delegation)
};

// Fields read/written by PDQ switches along the path, echoed back in ACKs.
struct PdqHeader {
  double rate = std::numeric_limits<double>::infinity();  // bps granted (min along path)
  bool paused = false;            // true if some switch paused the flow
  double deadline = 0.0;          // absolute, 0 = none (SJF mode)
  double expected_remaining = 0;  // bytes the sender still has to send
  double demand = 0.0;            // max rate (bps) the sender can use
  NodeId pauser = kInvalidNode;   // switch that paused the flow (this round,
                                  // or echoed from the previous round by the
                                  // sender so switches can skip foreign-paused
                                  // flows in their allocation)
  bool terminated = false;        // early termination (deadline infeasible)
};

// PASE arbitration payload. A request accumulates the bottleneck decision as
// it ascends the arbitration hierarchy; the response carries it back.
//
// The header carries the flow's full arbitration identity (endpoints, task,
// deadline, remaining size) so any arbitrator can decide from the packet
// alone: a ToR or Agg arbitrator never consults sender-side flow state,
// which may live in a different partition domain of a parallel run.
struct ArbHeader {
  double flow_size = 0.0;    // remaining bytes (scheduling criterion, SJF)
  double deadline = 0.0;     // absolute deadline; used instead of size in EDF mode
  double demand = 0.0;       // max rate (bps) the source can use
  int prio_queue = 0;        // worst (largest index) queue along the path so far
  double ref_rate = 0.0;     // min reference rate along the path so far (bps)
  int hops = 0;              // arbitrators visited (control-overhead accounting)
  bool receiver_half = false;  // which half of the path this message arbitrates
  NodeId src_host = kInvalidNode;  // the flow's source host (response target)
  NodeId dst_host = kInvalidNode;  // the flow's destination host
  std::uint64_t task_id = 0;       // task-aware criterion key; 0 = none
  // Delegation report: aggregate top-queue demand a child observed for the
  // parent's link, and the share granted back.
  double report_demand = 0.0;
  double granted_capacity = 0.0;
};

struct Packet {
  PacketType type = PacketType::kData;
  FlowId flow = 0;
  NodeId src = kInvalidNode;   // originating host/node
  NodeId dst = kInvalidNode;   // destination host/node
  std::uint32_t size_bytes = kMss + kDataHeaderBytes;

  // Transport fields (packet-granularity sequence space).
  std::uint32_t seq = 0;       // index of this data packet within the flow
  std::uint32_t ack_seq = 0;   // cumulative: next expected packet index
  bool fin = false;            // last data packet of the flow
  bool ecn_capable = true;
  bool ecn_ce = false;         // congestion experienced (set by queues)
  bool ecn_echo = false;       // receiver -> sender echo of CE
  double ts = 0.0;             // sender timestamp (RTT measurement)
  double echo_ts = 0.0;        // receiver's echo of `ts`

  // Scheduling metadata.
  int priority = 0;                 // strict-priority class, 0 = highest
  double remaining_size = 0.0;      // bytes; pFabric priority (lower = better)
  double deadline = 0.0;            // absolute deadline or 0

  PdqHeader pdq;
  ArbHeader arb;

  bool is_control() const { return type != PacketType::kData; }
};

// Returns a packet to the owning thread's PacketPool instead of freeing it.
struct PacketDeleter {
  void operator()(Packet* p) const noexcept;
};

using PacketPtr = std::unique_ptr<Packet, PacketDeleter>;

// Thread-local free list of Packet storage. acquire() reuses a retired
// packet (reset to default field values) when one is available and only
// falls back to `new` when the list is dry; the deleter feeds retired
// packets back. Bounded so a pathological burst cannot pin memory forever.
class PacketPool {
 public:
  static constexpr std::size_t kMaxFree = 1 << 16;

  static PacketPool& local() {
    static thread_local PacketPool pool;
    return pool;
  }

  PacketPtr acquire() {
    if (free_.empty()) [[unlikely]] {
      ++misses_;
      return PacketPtr(new Packet{});
    }
    Packet* p = free_.back();
    free_.pop_back();
    *p = Packet{};  // trivially-copyable reset, no allocation
    return PacketPtr(p);
  }

  void release(Packet* p) noexcept {
    if (free_.size() >= kMaxFree) {
      delete p;
      return;
    }
    try {
      free_.push_back(p);
    } catch (...) {
      delete p;  // list growth failed; just free the packet
    }
  }

  std::size_t available() const { return free_.size(); }

  // Cumulative acquire() calls that had to hit the allocator. A warmed
  // steady state holds this constant; the zero-alloc tests assert on it.
  std::uint64_t misses() const { return misses_; }

  // Pre-fills the free list to `n` packets (clamped to kMaxFree) so the
  // scenario's first wave of sends never touches the allocator mid-run.
  void prewarm(std::size_t n) {
    if (n > kMaxFree) n = kMaxFree;
    free_.reserve(n);
    while (free_.size() < n) free_.push_back(new Packet{});
  }

  // Frees every pooled packet (test isolation: start from a cold pool).
  void drain() {
    for (Packet* p : free_) delete p;
    free_.clear();
  }

  ~PacketPool() { drain(); }

 private:
  PacketPool() = default;
  std::vector<Packet*> free_;
  std::uint64_t misses_ = 0;
};

inline void PacketDeleter::operator()(Packet* p) const noexcept {
  PacketPool::local().release(p);
}

inline PacketPtr make_data_packet(FlowId flow, NodeId src, NodeId dst,
                                  std::uint32_t seq,
                                  std::uint32_t payload = kMss) {
  PacketPtr p = PacketPool::local().acquire();
  p->type = PacketType::kData;
  p->flow = flow;
  p->src = src;
  p->dst = dst;
  p->seq = seq;
  p->size_bytes = payload + kDataHeaderBytes;
  return p;
}

inline PacketPtr make_control_packet(PacketType type, FlowId flow, NodeId src,
                                     NodeId dst) {
  PacketPtr p = PacketPool::local().acquire();
  p->type = type;
  p->flow = flow;
  p->src = src;
  p->dst = dst;
  p->size_bytes = kControlPacketBytes;
  return p;
}

}  // namespace pase::net
