#include "net/host.h"

#include <cassert>
#include <utility>

namespace pase::net {

void Host::attach_uplink(std::unique_ptr<Queue> queue,
                         std::unique_ptr<Link> link, Node* tor) {
  assert(queue && link && tor);
  link->connect(queue.get(), tor);
  uplink_queue_ = std::move(queue);
  uplink_ = std::move(link);
}

void Host::send(PacketPtr p) {
  assert(uplink_queue_ && "host has no uplink");
  for (auto& hook : send_hooks_) hook(*p);
  uplink_queue_->enqueue(std::move(p));
}

void Host::receive(PacketPtr p) {
  switch (p->type) {
    case PacketType::kArbRequest:
    case PacketType::kArbResponse:
    case PacketType::kArbFin:
    case PacketType::kArbDelegate:
    case PacketType::kArbReport:
      if (control_) control_(std::move(p));
      return;
    default:
      break;
  }
  auto it = flows_.find(p->flow);
  if (it != flows_.end()) it->second->deliver(std::move(p));
  // Packets for unknown flows (e.g. duplicates arriving after flow teardown)
  // are dropped silently, as a real host would RST/ignore them.
}

}  // namespace pase::net
