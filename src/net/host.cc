#include "net/host.h"

#include <utility>

#include "sim/dcheck.h"

namespace pase::net {

namespace {

// Host::receive demuxes arbitration control traffic with one compare, which
// requires the five kArb* values to be the trailing contiguous run of
// PacketType. Keep this in sync with the enum.
constexpr auto kArbFirst = static_cast<std::uint8_t>(PacketType::kArbRequest);
static_assert(static_cast<std::uint8_t>(PacketType::kArbResponse) ==
                  kArbFirst + 1 &&
              static_cast<std::uint8_t>(PacketType::kArbFin) == kArbFirst + 2 &&
              static_cast<std::uint8_t>(PacketType::kArbDelegate) ==
                  kArbFirst + 3 &&
              static_cast<std::uint8_t>(PacketType::kArbReport) ==
                  kArbFirst + 4,
              "arbitration packet types must stay contiguous");

}  // namespace

void Host::attach_uplink(std::unique_ptr<Queue> queue,
                         std::unique_ptr<Link> link, Node* tor) {
  PASE_DCHECK(queue && link && tor);
  link->connect(queue.get(), tor);
  uplink_queue_ = std::move(queue);
  uplink_ = std::move(link);
}

void Host::send(PacketPtr p) {
  PASE_DCHECK(uplink_queue_ && "host has no uplink");
  if (!send_hooks_.empty()) {
    for (auto& hook : send_hooks_) hook(*p);
  }
  uplink_queue_->enqueue(std::move(p));
}

void Host::receive(PacketPtr p) {
  if (p->type >= PacketType::kArbRequest) [[unlikely]] {
    // Arbitration control traffic (PASE endpoint arbitrators).
    if (control_) control_(std::move(p));
    return;
  }
  PacketSink* sink = flows_.find(p->flow);
  if (sink != nullptr) [[likely]] {
    sink->deliver(std::move(p));
  }
  // Packets for unknown flows (e.g. duplicates arriving after flow teardown)
  // are dropped silently, as a real host would RST/ignore them.
}

}  // namespace pase::net
