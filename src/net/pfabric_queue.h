// pFabric switch port (Alizadeh et al., SIGCOMM'13).
//
// A small shared buffer with priority dropping and priority dequeueing:
// - Priority = Packet::remaining_size (fewer bytes remaining = higher
//   priority; control packets carry 0 and therefore always win).
// - On arrival to a full buffer, the lowest-priority packet (largest
//   remaining size, latest arrival breaking ties) is dropped — either the
//   arriving packet or a buffered one.
// - Dequeue picks the highest-priority packet, then actually sends the
//   *earliest arrived* packet of that packet's flow, pFabric's guard against
//   intra-flow reordering/starvation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"

namespace pase::net {

class PfabricQueue : public Queue {
 public:
  explicit PfabricQueue(std::size_t capacity_pkts) : capacity_(capacity_pkts) {}

  std::size_t len_packets() const override { return buf_.size(); }
  std::size_t len_bytes() const override { return bytes_; }
  std::size_t capacity() const { return capacity_; }

 protected:
  bool do_enqueue(PacketPtr p) override;
  PacketPtr do_dequeue() override;

 private:
  // Scan keys (priority, flow) are copied out of the packet at admission:
  // they are immutable while the packet is buffered, and keeping them in the
  // entry makes the per-dequeue priority scans walk contiguous memory
  // instead of dereferencing every buffered packet.
  struct Entry {
    PacketPtr pkt;
    std::uint64_t arrival;  // monotonic arrival index for tie-breaks
    double remaining;       // pkt->remaining_size at admission
    FlowId flow;            // pkt->flow
  };

  std::vector<Entry> buf_;
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::uint64_t next_arrival_ = 0;
};

}  // namespace pase::net
