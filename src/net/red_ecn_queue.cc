#include "net/red_ecn_queue.h"

#include <utility>

namespace pase::net {

bool RedEcnQueue::do_enqueue(PacketPtr p) {
  if (q_.size() >= capacity_) {
    count_drop(*p);
    return false;
  }
  if (q_.size() >= threshold_ && p->ecn_capable) {
    p->ecn_ce = true;
    count_mark(*p);
  }
  bytes_ += p->size_bytes;
  q_.push_back(std::move(p));
  return true;
}

PacketPtr RedEcnQueue::do_dequeue() {
  if (q_.empty()) return nullptr;
  PacketPtr p = q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

PacketPtr RedEcnQueue::do_pass(PacketPtr p) {
  const std::size_t n = q_.size();
  if (n >= capacity_) {
    count_drop(*p);
    return nullptr;
  }
  if (n >= threshold_ && p->ecn_capable) {
    p->ecn_ce = true;
    count_mark(*p);
  }
  if (n > 0) [[unlikely]] {
    // Non-empty despite an idle link (possible only under exotic wiring):
    // fall back to FIFO order through the ring.
    bytes_ += p->size_bytes;
    q_.push_back(std::move(p));
    p = q_.pop_front();
    bytes_ -= p->size_bytes;
  }
  return p;
}

}  // namespace pase::net
