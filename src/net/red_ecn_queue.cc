#include "net/red_ecn_queue.h"

#include <utility>

namespace pase::net {

bool RedEcnQueue::do_enqueue(PacketPtr p) {
  if (q_.size() >= capacity_) {
    count_drop(*p);
    return false;
  }
  if (q_.size() >= threshold_ && p->ecn_capable) {
    p->ecn_ce = true;
    count_mark(*p);
  }
  bytes_ += p->size_bytes;
  q_.push_back(std::move(p));
  return true;
}

PacketPtr RedEcnQueue::do_dequeue() {
  if (q_.empty()) return nullptr;
  PacketPtr p = q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

}  // namespace pase::net
