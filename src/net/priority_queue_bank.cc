#include "net/priority_queue_bank.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pase::net {

PriorityQueueBank::PriorityQueueBank(int num_classes,
                                     std::size_t capacity_pkts,
                                     std::size_t mark_threshold_pkts)
    : dequeues_(static_cast<std::size_t>(num_classes), 0),
      capacity_(capacity_pkts),
      threshold_(mark_threshold_pkts) {
  assert(num_classes >= 1);
  classes_.reserve(static_cast<std::size_t>(num_classes));
  for (int i = 0; i < num_classes; ++i) classes_.emplace_back(capacity_pkts);
}

bool PriorityQueueBank::do_enqueue(PacketPtr p) {
  if (total_pkts_ >= capacity_) {
    count_drop(*p);
    return false;
  }
  const int cls = std::clamp(p->priority, 0, num_classes() - 1);
  auto& q = classes_[static_cast<std::size_t>(cls)];
  if (q.size() >= threshold_ && p->ecn_capable) {
    p->ecn_ce = true;
    count_mark(*p);
  }
  total_bytes_ += p->size_bytes;
  ++total_pkts_;
  q.push_back(std::move(p));
  return true;
}

PacketPtr PriorityQueueBank::do_dequeue() {
  for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
    auto& q = classes_[cls];
    if (q.empty()) continue;
    PacketPtr p = q.pop_front();
    --total_pkts_;
    total_bytes_ -= p->size_bytes;
    ++dequeues_[cls];
    return p;
  }
  return nullptr;
}

}  // namespace pase::net
