// Base class for anything that can terminate a link: hosts and switches.
#pragma once

#include <string>

#include "net/packet.h"

namespace pase::net {

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Delivers a packet that finished traversing a link into this node.
  virtual void receive(PacketPtr p) = 0;

 private:
  NodeId id_;
  std::string name_;
};

}  // namespace pase::net
