// Base class for anything that can terminate a link: hosts and switches.
#pragma once

#include <memory>
#include <string>

#include "net/packet.h"

namespace pase::net {

class Node {
 public:
  Node(NodeId id, std::string name)
      : id_(id), name_(std::make_unique<std::string>(std::move(name))) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return *name_; }

  // Delivers a packet that finished traversing a link into this node.
  virtual void receive(PacketPtr p) = 0;

 private:
  // The name lives out of line (diagnostics only): an inline std::string is
  // 32 bytes, which would push every subclass's hot fields off the object's
  // first cache line. The slim header — vptr, name pointer, id — leaves 40
  // bytes of line 0 for the subclass's receive-path state.
  NodeId id_;
  std::unique_ptr<const std::string> name_;
};

}  // namespace pase::net
