// Fixed-capacity FIFO ring of packets.
//
// Queue disciplines know their capacity at construction, so their FIFOs can
// be a single preallocated array with head/count indices: one allocation for
// the lifetime of the queue, single-indirection access, and no per-packet
// heap traffic (std::deque churns a storage block roughly every 64 entries
// and double-indirects on every access, which shows up in the per-hop path).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/dcheck.h"

namespace pase::net {

class PacketRing {
 public:
  explicit PacketRing(std::size_t capacity) : buf_(capacity) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == buf_.size(); }

  void push_back(PacketPtr p) {
    PASE_DCHECK(!full() && "push into a full PacketRing");
    std::size_t tail = head_ + count_;
    if (tail >= buf_.size()) tail -= buf_.size();
    buf_[tail] = std::move(p);
    ++count_;
  }

  PacketPtr pop_front() {
    PASE_DCHECK(!empty() && "pop from an empty PacketRing");
    PacketPtr p = std::move(buf_[head_]);
    if (++head_ == buf_.size()) head_ = 0;
    --count_;
    return p;
  }

 private:
  // Indices before storage: a queue embedding the ring right after its own
  // scalar fields keeps size() on the same cache line as those fields, so
  // the empty-queue fast paths never touch the vector header or buffer.
  std::size_t count_ = 0;
  std::size_t head_ = 0;
  std::vector<PacketPtr> buf_;
};

}  // namespace pase::net
