// Output-queued switch with static multipath routing.
//
// Each output port is a (queue, link) pair owned by the switch. Routing maps
// a destination to a PortGroup of 1..N equal-cost ports (optionally
// WCMP-weighted); a packet's port is chosen by a deterministic per-flow hash
// (seeded FNV-1a over {src, dst, flow}, salted per switch) so every packet of
// a flow takes one path and the assignment is bit-reproducible across runs
// and worker counts — no wall-clock or RNG state is consulted. The common
// single-path case stays a single dense table load.
//
// Forwarding hooks let in-fabric protocols (PDQ) inspect and rewrite headers
// as packets are forwarded; packets addressed to the switch itself (PASE
// arbitration control traffic) are handed to the control handler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/queue.h"

namespace pase::net {

// Deterministic per-flow path hash: FNV-1a over {src, dst, flow} folded with
// the caller's salt, then avalanche-finished. A pure function of the flow's
// stable identity, so ECMP decisions depend only on topology construction,
// never on execution order.
//
// The finalizer (splitmix64's) matters: raw FNV-1a mod 2^k is structurally
// weak — the prime is odd, so the low bit of the accumulator is just the XOR
// of all input bytes' low bits. Callers reduce this hash modulo small group
// widths (2 at every fat-tree edge switch), and without the finisher a seed
// change flips *every* flow to its sibling port in lockstep — a fabric
// automorphism that leaves queue dynamics unchanged — instead of re-assigning
// flows independently.
inline std::uint64_t flow_path_hash(std::uint64_t salt, NodeId src, NodeId dst,
                                    FlowId flow) {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  mix(flow);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

class Switch : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {
    set_ecmp_seed(0);
  }

  // Adds an output port; returns its index.
  int add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
               Node* neighbor);

  // Routes traffic destined to node `dst` out of `port` (single-path).
  void set_route(NodeId dst, int port);

  // Routes traffic to `dst` over an equal-cost group. `weights` (optional,
  // parallel to `ports`) turns the group into a WCMP split: a port receives
  // weight_i / sum(weights) of the flow hash space. An empty weight vector
  // means equal-cost (all ones); a single-port group degenerates to the
  // plain dense-table route.
  void set_route_group(NodeId dst, const std::vector<int>& ports,
                       const std::vector<std::uint32_t>& weights = {});

  // Representative (first/only) port toward `dst`; -1 when unrouted. The
  // single-path accessor predating multipath — introspection and tests only;
  // forwarding uses port_for.
  int route_for(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e >= 0 || e == kNoRoute) return static_cast<int>(e);
    return groups_[group_index(e)].ports.front();
  }

  // Number of equal-cost ports toward `dst` (0 when unrouted).
  int route_width(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e >= 0) return 1;
    if (e == kNoRoute) return 0;
    return static_cast<int>(groups_[group_index(e)].ports.size());
  }

  // Number of live group entries. Stays flat across route reinstalls
  // (set_route_group reuses a destination's existing slot) — introspection
  // and leak tests only.
  std::size_t num_route_groups() const { return groups_.size(); }

  // The group's ports toward `dst` (empty when unrouted).
  std::vector<int> route_ports(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e == kNoRoute) return {};
    if (e >= 0) return {static_cast<int>(e)};
    return groups_[group_index(e)].ports;
  }

  // Hot-path selection: the port `p` leaves on. Single-path destinations are
  // one table load; grouped destinations hash the flow identity.
  int port_for(const Packet& p) const {
    const std::int32_t e = route_entry(p.dst);
    if (e >= 0) [[likely]] {
      return static_cast<int>(e);
    }
    if (e == kNoRoute) [[unlikely]] {
      return -1;
    }
    const Group& g = groups_[group_index(e)];
    const std::uint64_t h = flow_path_hash(ecmp_salt_, p.src, p.dst, p.flow);
    return g.members[h % g.members.size()];
  }

  // Seeds the per-flow hash. The switch folds its own node id into the salt
  // so tiers decorrelate (every switch picking the same group index for a
  // flow would concentrate load); same seed + same topology => identical
  // path assignment.
  void set_ecmp_seed(std::uint64_t seed) {
    ecmp_salt_ =
        seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id())) *
                0x9E3779B97F4A7C15ull);
  }

  // Invoked for every packet about to be enqueued on an output port. May
  // rewrite protocol headers (e.g. PDQ rate fields).
  using ForwardHook = std::function<void(Packet&, int out_port)>;
  void add_forward_hook(ForwardHook hook) {
    hooks_.push_back(std::move(hook));
  }

  // Receives packets whose destination is this switch (control plane).
  using ControlHandler = std::function<void(PacketPtr)>;
  void set_control_handler(ControlHandler h) { control_ = std::move(h); }

  // Maps a node id to a human-readable name for routing-hole diagnostics
  // (installed by the owning Topology; the net layer has no node directory).
  using NameResolver = std::function<std::string(NodeId)>;
  void set_name_resolver(NameResolver r) { resolve_name_ = std::move(r); }

  void receive(PacketPtr p) override;

  int num_ports() const { return static_cast<int>(ports_.size()); }
  Queue& port_queue(int port) { return *ports_[static_cast<std::size_t>(port)].queue; }
  Link& port_link(int port) { return *ports_[static_cast<std::size_t>(port)].link; }
  Node* port_neighbor(int port) const {
    return ports_[static_cast<std::size_t>(port)].neighbor;
  }

 private:
  // Route-table encoding: entries >= 0 are a single port; kNoRoute means
  // unrouted; anything <= kGroupBase indexes groups_ via group_index().
  static constexpr std::int32_t kNoRoute = -1;
  static constexpr std::int32_t kGroupBase = -2;
  static std::size_t group_index(std::int32_t entry) {
    return static_cast<std::size_t>(kGroupBase - entry);
  }

  [[noreturn]] void throw_no_route(NodeId dst) const;

  std::int32_t route_entry(NodeId dst) const {
    if (dst < 0 || static_cast<std::size_t>(dst) >= routes_.size()) {
      return kNoRoute;
    }
    return routes_[static_cast<std::size_t>(dst)];
  }
  std::int32_t& route_slot(NodeId dst);

  struct Port {
    std::unique_ptr<Queue> queue;
    std::unique_ptr<Link> link;
    Node* neighbor;
  };

  // An equal-cost group. `members` is the weight-expanded selection table
  // (port i appears weight_i times) the hash indexes in O(1); `ports` and
  // `weights` keep the declared form for introspection.
  struct Group {
    std::vector<std::uint16_t> members;
    std::vector<int> ports;
    std::vector<std::uint32_t> weights;
  };

  std::vector<Port> ports_;
  std::vector<std::int32_t> routes_;  // dst node id -> encoded entry
  std::vector<Group> groups_;
  std::uint64_t ecmp_salt_ = 0;
  std::vector<ForwardHook> hooks_;
  ControlHandler control_;
  NameResolver resolve_name_;
};

}  // namespace pase::net
