// Output-queued switch with static routing.
//
// Each output port is a (queue, link) pair owned by the switch. Forwarding
// hooks let in-fabric protocols (PDQ) inspect and rewrite headers as packets
// are forwarded; packets addressed to the switch itself (PASE arbitration
// control traffic) are handed to the control handler.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/queue.h"

namespace pase::net {

class Switch : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {}

  // Adds an output port; returns its index.
  int add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
               Node* neighbor);

  // Routes traffic destined to node `dst` out of `port`.
  void set_route(NodeId dst, int port);
  int route_for(NodeId dst) const {
    if (dst < 0 || static_cast<std::size_t>(dst) >= routes_.size()) return -1;
    return routes_[static_cast<std::size_t>(dst)];
  }

  // Invoked for every packet about to be enqueued on an output port. May
  // rewrite protocol headers (e.g. PDQ rate fields).
  using ForwardHook = std::function<void(Packet&, int out_port)>;
  void add_forward_hook(ForwardHook hook) {
    hooks_.push_back(std::move(hook));
  }

  // Receives packets whose destination is this switch (control plane).
  using ControlHandler = std::function<void(PacketPtr)>;
  void set_control_handler(ControlHandler h) { control_ = std::move(h); }

  void receive(PacketPtr p) override;

  int num_ports() const { return static_cast<int>(ports_.size()); }
  Queue& port_queue(int port) { return *ports_[static_cast<std::size_t>(port)].queue; }
  Link& port_link(int port) { return *ports_[static_cast<std::size_t>(port)].link; }
  Node* port_neighbor(int port) const {
    return ports_[static_cast<std::size_t>(port)].neighbor;
  }

 private:
  [[noreturn]] void throw_no_route(NodeId dst) const;

  struct Port {
    std::unique_ptr<Queue> queue;
    std::unique_ptr<Link> link;
    Node* neighbor;
  };

  std::vector<Port> ports_;
  std::vector<int> routes_;  // dst node id -> port, -1 = no route
  std::vector<ForwardHook> hooks_;
  ControlHandler control_;
};

}  // namespace pase::net
