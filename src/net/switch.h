// Output-queued switch with static multipath routing.
//
// Each output port is a (queue, link) pair owned by the switch. Routing maps
// a destination to a PortGroup of 1..N equal-cost ports (optionally
// WCMP-weighted); a packet's port is chosen by a deterministic per-flow hash
// (seeded FNV-1a over {src, dst, flow}, salted per switch) so every packet of
// a flow takes one path and the assignment is bit-reproducible across runs
// and worker counts — no wall-clock or RNG state is consulted. The common
// single-path case stays a single dense table load.
//
// The route table is compressed, scale-invariant storage with three layers,
// consulted in order:
//   1. a dense window `routes_` covering [dense_base_, dense_base_ + size) —
//      the switch's "local stripe" (its own pod on a fat-tree, everything on
//      small topologies). In-window entries are authoritative: kNoRoute
//      inside the window means *no route*, with no fall-through.
//   2. a sorted interval list, each interval mapping [lo, hi) either to one
//      constant entry (port or shared group) or to an arithmetic stride
//      (port = port_base + (dst - lo) / div — e.g. "core c exits my port
//      c/half" without per-core entries).
//   3. a default entry — the ubiquitous "everything else goes up" case is
//      ONE shared group instead of thousands of per-destination entries.
// Layers 2 and 3 only apply to ids below route_id_bound_ (set by structural
// installers to the node-id space size), so out-of-range destinations still
// diagnose as unrouted. Legacy per-destination writers (set_route /
// set_route_group) keep working: they land in the window, growing or
// rebasing it as needed, and shadow the interval/default layers.
//
// Grouped selections are additionally memoized per switch: flow_path_hash is
// a pure function of {salt, src, dst, flow}, so a small open-addressed cache
// resolves the port choice once per (switch, flow direction) and every
// subsequent packet is a probe + compare instead of a 24-round FNV + finisher.
// Misses (and collisions) fall back to the hash, so selections — and all
// golden fingerprints — are bit-identical with the cache on, off, or thrashing.
//
// Forwarding hooks let in-fabric protocols (PDQ) inspect and rewrite headers
// as packets are forwarded; packets addressed to the switch itself (PASE
// arbitration control traffic) are handed to the control handler.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/queue.h"

namespace pase::net {

// Deterministic per-flow path hash: FNV-1a over {src, dst, flow} folded with
// the caller's salt, then avalanche-finished. A pure function of the flow's
// stable identity, so ECMP decisions depend only on topology construction,
// never on execution order.
//
// The finalizer (splitmix64's) matters: raw FNV-1a mod 2^k is structurally
// weak — the prime is odd, so the low bit of the accumulator is just the XOR
// of all input bytes' low bits. Callers reduce this hash modulo small group
// widths (2 at every fat-tree edge switch), and without the finisher a seed
// change flips *every* flow to its sibling port in lockstep — a fabric
// automorphism that leaves queue dynamics unchanged — instead of re-assigning
// flows independently.
inline std::uint64_t flow_path_hash(std::uint64_t salt, NodeId src, NodeId dst,
                                    FlowId flow) {
  std::uint64_t h = 1469598103934665603ull ^ salt;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  mix(flow);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

class Switch : public Node {
 public:
  Switch(NodeId id, std::string name) : Node(id, std::move(name)) {
    set_ecmp_seed(0);
  }

  // Adds an output port; returns its index.
  int add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
               Node* neighbor);

  // Routes traffic destined to node `dst` out of `port` (single-path).
  // Releases the destination's previous multipath group, if any.
  void set_route(NodeId dst, int port);

  // Routes traffic to `dst` over an equal-cost group. `weights` (optional,
  // parallel to `ports`) turns the group into a WCMP split: a port receives
  // weight_i / sum(weights) of the flow hash space. An empty weight vector
  // means equal-cost (all ones); a single-port group degenerates to the
  // plain dense-table route.
  void set_route_group(NodeId dst, const std::vector<int>& ports,
                       const std::vector<std::uint32_t>& weights = {});

  // --- Compressed-table construction (structural route installers) ---

  // Drops every route, interval, group and cached path selection; ports are
  // untouched. Structural installers start from a clean slate so reinstalls
  // (e.g. after an ECMP seed change) cannot leak state.
  void clear_routes();

  // Pre-sizes the dense window to cover ids [lo, hi), filled with kNoRoute.
  // Must be called on an empty table (after clear_routes). In-window entries
  // are authoritative — kNoRoute inside the window never falls through to
  // the interval/default layers.
  void set_dense_window(NodeId lo, NodeId hi);

  // Upper bound (exclusive) of the node-id space the interval and default
  // layers apply to; ids at or above it are unrouted unless in the window.
  void set_route_id_bound(NodeId bound);

  // Registers a multipath group not owned by any destination slot and
  // returns its encoded entry for set_route_entry / add_route_interval /
  // set_default_route_entry. Many destinations may reference it; set_route
  // overwrites never release it. A single port returns the plain port entry.
  std::int32_t add_shared_group(const std::vector<int>& ports,
                                const std::vector<std::uint32_t>& weights = {});

  // Points the dense-window slot for `dst` at `entry`: a plain port (>= 0)
  // or an entry returned by add_shared_group.
  void set_route_entry(NodeId dst, std::int32_t entry);

  // Appends [lo, hi) -> `entry` to the interval layer. Intervals must be
  // added in ascending, non-overlapping order.
  void add_route_interval(NodeId lo, NodeId hi, std::int32_t entry);

  // Appends [lo, hi) -> port_base + (dst - lo) / div: a run of single-path
  // routes with arithmetic structure ("core c exits port c/half") stored in
  // O(1) instead of O(hi - lo).
  void add_route_interval_strided(NodeId lo, NodeId hi, int port_base,
                                  int div);

  // Entry consulted when a destination is below the id bound but matches
  // neither the window nor an interval (fat-tree: "go up").
  void set_default_route_entry(std::int32_t entry);

  // --- Introspection ---

  // Representative (first/only) port toward `dst`; -1 when unrouted. The
  // single-path accessor predating multipath — introspection and tests only;
  // forwarding uses port_for.
  int route_for(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e >= 0 || e == kNoRoute) return static_cast<int>(e);
    return groups_[group_index(e)].ports.front();
  }

  // Number of equal-cost ports toward `dst` (0 when unrouted).
  int route_width(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e >= 0) return 1;
    if (e == kNoRoute) return 0;
    return static_cast<int>(groups_[group_index(e)].ports.size());
  }

  // Number of live group entries (shared or destination-owned). Stays flat
  // across route reinstalls (set_route_group reuses a destination's existing
  // slot; set_route releases it) — introspection and leak tests only.
  std::size_t num_route_groups() const {
    return groups_.size() - free_groups_.size();
  }

  // The group's ports toward `dst` (empty when unrouted).
  std::vector<int> route_ports(NodeId dst) const {
    const std::int32_t e = route_entry(dst);
    if (e == kNoRoute) return {};
    if (e >= 0) return {static_cast<int>(e)};
    return groups_[group_index(e)].ports;
  }

  // Bytes held by the route table: dense window + intervals + groups + free
  // list. Excludes the fixed-size path cache (see path_cache_bytes) so the
  // sublinearity gates measure routing state, not memoization.
  std::size_t route_state_bytes() const;
  std::size_t path_cache_bytes() const {
    return path_cache_.capacity() * sizeof(PathCacheEntry);
  }

  // Hot-path selection: the port `p` leaves on. Single-path destinations are
  // one window load (or an interval probe off the local stripe); grouped
  // destinations resolve through the per-flow memo, hashing only on miss.
  int port_for(const Packet& p) const {
    std::int32_t e;
    const auto off = static_cast<std::uint32_t>(p.dst - dense_base_);
    if (off < routes_.size()) [[likely]] {
      e = routes_[off];
    } else {
      e = route_entry_slow(p.dst);
    }
    if (e >= 0) [[likely]] {
      return static_cast<int>(e);
    }
    if (e == kNoRoute) [[unlikely]] {
      return -1;
    }
    return select_group_port(groups_[group_index(e)], p);
  }

  // Sizes the per-flow path memo (rounded up to a power of two; 0 disables
  // it). Selections are identical at any capacity — the memo is a pure cache
  // over flow_path_hash — so this is a perf/memory knob, not a semantic one.
  void set_path_cache_capacity(std::size_t entries);
  std::size_t path_cache_capacity() const { return path_cache_capacity_; }

  // Path-memo effectiveness counters (always on: two increments on a line
  // select_group_port already owns). The profiler aggregates these into the
  // fabric-wide hit rate.
  std::uint64_t path_cache_hits() const { return path_cache_hits_; }
  std::uint64_t path_cache_misses() const { return path_cache_misses_; }

  // Seeds the per-flow hash. The switch folds its own node id into the salt
  // so tiers decorrelate (every switch picking the same group index for a
  // flow would concentrate load); same seed + same topology => identical
  // path assignment.
  void set_ecmp_seed(std::uint64_t seed) {
    ecmp_salt_ =
        seed ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id())) *
                0x9E3779B97F4A7C15ull);
    invalidate_path_cache();
  }

  // Invoked for every packet about to be enqueued on an output port. May
  // rewrite protocol headers (e.g. PDQ rate fields).
  using ForwardHook = std::function<void(Packet&, int out_port)>;
  void add_forward_hook(ForwardHook hook) {
    hooks_.push_back(std::move(hook));
    has_hooks_ = true;
  }

  // Receives packets whose destination is this switch (control plane).
  using ControlHandler = std::function<void(PacketPtr)>;
  void set_control_handler(ControlHandler h) { control_ = std::move(h); }

  // Maps a node id to a human-readable name for routing-hole diagnostics
  // (installed by the owning Topology; the net layer has no node directory).
  using NameResolver = std::function<std::string(NodeId)>;
  void set_name_resolver(NameResolver r) { resolve_name_ = std::move(r); }

  void receive(PacketPtr p) override;

  int num_ports() const { return static_cast<int>(ports_.size()); }
  Queue& port_queue(int port) { return *ports_[static_cast<std::size_t>(port)].queue; }
  Link& port_link(int port) { return *ports_[static_cast<std::size_t>(port)].link; }
  Node* port_neighbor(int port) const {
    return ports_[static_cast<std::size_t>(port)].neighbor;
  }

 private:
  // Route-table encoding: entries >= 0 are a single port; kNoRoute means
  // unrouted; anything <= kGroupBase indexes groups_ via group_index().
  static constexpr std::int32_t kNoRoute = -1;
  static constexpr std::int32_t kGroupBase = -2;
  static std::size_t group_index(std::int32_t entry) {
    return static_cast<std::size_t>(kGroupBase - entry);
  }

  [[noreturn]] void throw_no_route(NodeId dst) const;

  // Interval-layer element: ids in [lo, hi) resolve to the constant `entry`
  // (div == 0) or the strided port port_base + (dst - lo) / div (div > 0).
  struct RouteInterval {
    NodeId lo;
    NodeId hi;
    std::int32_t entry;
    std::int32_t port_base;
    std::int32_t div;
  };

  std::int32_t route_entry(NodeId dst) const {
    const auto off = static_cast<std::uint32_t>(dst - dense_base_);
    if (off < routes_.size()) return routes_[off];
    return route_entry_slow(dst);
  }

  // Off-window lookup: interval binary search, then the default entry, both
  // gated by the id bound. Hot for cross-pod hops at core/agg tiers, but
  // the interval list is O(pods) and mostly resolves to the default.
  std::int32_t route_entry_slow(NodeId dst) const;

  std::int32_t& route_slot(NodeId dst);

  struct Port {
    std::unique_ptr<Queue> queue;
    std::unique_ptr<Link> link;
    Node* neighbor;
  };

  // An equal-cost group. `members` is the weight-expanded selection table
  // (port i appears weight_i times) the hash indexes in O(1); `ports` and
  // `weights` keep the declared form for introspection. Shared groups are
  // referenced by many destinations/intervals and never released by
  // per-destination overwrites.
  struct Group {
    std::vector<std::uint16_t> members;
    std::vector<int> ports;
    std::vector<std::uint32_t> weights;
    bool shared = false;
  };

  // Memo of resolved group selections. One-way associative: a slot holds the
  // most recent flow that hashed to it; collisions simply overwrite. The
  // empty sentinel is src == -1 (no real packet carries an invalid source).
  struct PathCacheEntry {
    FlowId flow;
    NodeId src;
    NodeId dst;
    std::int32_t port;
  };

  // Resolves a grouped destination for packet `p`, via the memo when
  // enabled. Mutates only the cache; safe because a switch's forwarding runs
  // on exactly one domain thread (packets are handed over at barriers).
  int select_group_port(const Group& g, const Packet& p) const {
    if (path_cache_capacity_ != 0) {
      if (path_cache_.empty()) [[unlikely]] {
        path_cache_.assign(path_cache_capacity_,
                           PathCacheEntry{0, -1, -1, 0});
      }
      PathCacheEntry& c = path_cache_[path_cache_slot(p)];
      if (c.flow == p.flow && c.src == p.src && c.dst == p.dst) [[likely]] {
        ++path_cache_hits_;
        return static_cast<int>(c.port);
      }
      ++path_cache_misses_;
      const std::uint64_t h =
          flow_path_hash(ecmp_salt_, p.src, p.dst, p.flow);
      const auto port = static_cast<std::int32_t>(
          g.members[h % g.members.size()]);
      c = PathCacheEntry{p.flow, p.src, p.dst, port};
      return static_cast<int>(port);
    }
    const std::uint64_t h = flow_path_hash(ecmp_salt_, p.src, p.dst, p.flow);
    return g.members[h % g.members.size()];
  }

  // Cheap slot mix — one multiply + shift, not the full path hash (that is
  // exactly the work the cache exists to avoid). path_cache_ size is a power
  // of two.
  std::size_t path_cache_slot(const Packet& p) const {
    std::uint64_t x =
        p.flow ^
        ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.src))
          << 32) |
         static_cast<std::uint32_t>(p.dst));
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & (path_cache_.size() - 1);
  }

  void invalidate_path_cache() { path_cache_.clear(); }

  // Releases `entry`'s group slot if it owns one (shared groups survive).
  void release_owned_group(std::int32_t entry);
  static Group make_group(const std::vector<int>& ports,
                          const std::vector<std::uint32_t>& weights,
                          bool shared);
  std::int32_t alloc_group(Group g);

  // Receive-path fields first: with Node's slim 24-byte header, the window
  // descriptor and the dense table's begin/end pointers share the object's
  // first cache line with the vtable pointer, and the port array header
  // starts the second — port_for plus the egress lookup touch two adjacent
  // lines instead of walking the whole object.
  NodeId dense_base_ = 0;
  NodeId route_id_bound_ = 0;  // interval/default layers apply below this id
  std::int32_t default_entry_ = kNoRoute;
  // Mirrors hooks_.empty() so receive() resolves "no hooks installed" (the
  // common case — only PDQ installs hooks) from this line instead of the
  // vector header several lines down.
  bool has_hooks_ = false;
  std::vector<std::int32_t> routes_;  // dense window, ids offset by dense_base_
  std::vector<Port> ports_;
  std::vector<RouteInterval> intervals_;
  std::vector<Group> groups_;
  std::vector<std::uint32_t> free_groups_;  // released owned-group slots
  std::uint64_t ecmp_salt_ = 0;
  // Lazily allocated at first grouped lookup; cleared on any route mutation.
  mutable std::vector<PathCacheEntry> path_cache_;
  std::size_t path_cache_capacity_ = 1024;
  mutable std::uint64_t path_cache_hits_ = 0;
  mutable std::uint64_t path_cache_misses_ = 0;
  std::vector<ForwardHook> hooks_;
  ControlHandler control_;
  NameResolver resolve_name_;
};

}  // namespace pase::net
