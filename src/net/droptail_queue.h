// FIFO tail-drop queue with a packet-count capacity.
#pragma once


#include "net/packet_ring.h"
#include "net/queue.h"

namespace pase::net {

class DropTailQueue : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_pkts)
      : capacity_(static_cast<std::uint32_t>(capacity_pkts)),
        q_(capacity_pkts) {}

  std::size_t len_packets() const override { return q_.size(); }
  std::size_t len_bytes() const override { return bytes_; }
  std::size_t capacity() const { return capacity_; }

 protected:
  bool do_enqueue(PacketPtr p) override;
  PacketPtr do_dequeue() override;
  PacketPtr do_pass(PacketPtr p) override;

 private:
  // Capacity (32-bit) ahead of the ring: do_pass/do_dequeue then resolve the
  // drop decision and the emptiness probe on the queue's first cache line;
  // the byte gauge trails (touched only when the ring holds packets).
  std::uint32_t capacity_;
  PacketRing q_;
  std::size_t bytes_ = 0;
};

}  // namespace pase::net
