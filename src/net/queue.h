// Queue discipline interface.
//
// A Queue feeds exactly one Link. The link pulls the next packet when it goes
// idle; the queue pushes when a packet arrives while the link is idle.
// Concrete disciplines implement do_enqueue (may drop/mark) and do_dequeue
// (chooses what to send next).
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "obs/trace.h"

namespace pase::net {

class Link;

class Queue {
 public:
  virtual ~Queue() = default;

  // Wired once during topology construction.
  void set_link(Link* link) { link_ = link; }
  Link* link() const { return link_; }

  // Entry point from the upstream node. May drop the packet (discipline
  // decision); kicks the link if it is idle. Defined inline in link.h (it
  // needs the Link definition), which every call site already includes.
  void enqueue(PacketPtr p);

  // Called by the link when it finishes serializing a packet.
  void on_link_idle();

  virtual std::size_t len_packets() const = 0;
  virtual std::size_t len_bytes() const = 0;
  bool empty() const { return len_packets() == 0; }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t marks() const { return marks_; }
  std::uint64_t enqueues() const { return enqueues_; }

  // Stable identity for trace records ("which queue dropped this packet").
  // Assigned during harness/telemetry setup (obs::label_fabric_queues);
  // queues outside a labeled topology keep id 0.
  void set_trace_id(std::uint32_t id) { trace_id_ = id; }
  std::uint32_t trace_id() const { return trace_id_; }

 protected:
  // Returns false if the packet was dropped (implementation disposes of it).
  virtual bool do_enqueue(PacketPtr p) = 0;
  // Must return non-null iff len_packets() > 0.
  virtual PacketPtr do_dequeue() = 0;
  // Arrival while the link is idle: returns the packet the link should
  // serialize next, or null if the discipline dropped it. The default —
  // push then immediately pop — is correct for any discipline; FIFO
  // disciplines override it to skip the ring round-trip when empty (the
  // common case, since an idle link implies a drained queue). Overrides
  // must apply the same drop/mark decisions as do_enqueue and must return
  // the head packet, not the arrival, whenever the queue is non-empty.
  virtual PacketPtr do_pass(PacketPtr p) {
    if (do_enqueue(std::move(p))) return do_dequeue();
    return nullptr;
  }

  // Disciplines report every drop/mark with the victim packet so traced
  // runs capture flow, sequence and queue identity. Without an installed
  // tracer these cost one thread-local load beyond the counter bump.
  void count_drop(const Packet& p) {
    ++drops_;
    if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
      tb->emit(obs::kPacketCat, obs::EventType::kPktDrop, p.flow,
               static_cast<double>(p.size_bytes), 0.0, p.seq, trace_id_);
    }
  }
  void count_mark(const Packet& p) {
    ++marks_;
    if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
      tb->emit(obs::kPacketCat, obs::EventType::kPktEcnMark, p.flow,
               static_cast<double>(p.size_bytes), 0.0, p.seq, trace_id_);
    }
  }

 private:
  void try_send();

  Link* link_ = nullptr;
  std::uint64_t drops_ = 0;
  std::uint64_t marks_ = 0;
  std::uint64_t enqueues_ = 0;
  std::uint32_t trace_id_ = 0;
};

}  // namespace pase::net
