#include "net/switch.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pase::net {

int Switch::add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
                     Node* neighbor) {
  assert(queue && link && neighbor);
  link->connect(queue.get(), neighbor);
  ports_.push_back(Port{std::move(queue), std::move(link), neighbor});
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::set_route(NodeId dst, int port) {
  assert(port >= 0 && port < num_ports());
  if (static_cast<std::size_t>(dst) >= routes_.size()) {
    routes_.resize(static_cast<std::size_t>(dst) + 1, -1);
  }
  routes_[static_cast<std::size_t>(dst)] = port;
}

int Switch::route_for(NodeId dst) const {
  if (dst < 0 || static_cast<std::size_t>(dst) >= routes_.size()) return -1;
  return routes_[static_cast<std::size_t>(dst)];
}

void Switch::receive(PacketPtr p) {
  if (p->dst == id()) {
    if (control_) control_(std::move(p));
    return;  // control traffic for this switch; drop silently if no handler
  }
  const int port = route_for(p->dst);
  if (port < 0) {
    throw std::runtime_error(name() + ": no route to node " +
                             std::to_string(p->dst));
  }
  for (auto& hook : hooks_) hook(*p, port);
  ports_[static_cast<std::size_t>(port)].queue->enqueue(std::move(p));
}

}  // namespace pase::net
