#include "net/switch.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/dcheck.h"

namespace pase::net {

int Switch::add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
                     Node* neighbor) {
  PASE_DCHECK(queue && link && neighbor);
  link->connect(queue.get(), neighbor);
  ports_.push_back(Port{std::move(queue), std::move(link), neighbor});
  return static_cast<int>(ports_.size()) - 1;
}

std::int32_t Switch::route_entry_slow(NodeId dst) const {
  if (dst < 0 || dst >= route_id_bound_) return kNoRoute;
  // Intervals are sorted and disjoint: the candidate is the last one whose
  // lo is <= dst.
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), dst,
      [](NodeId d, const RouteInterval& iv) { return d < iv.lo; });
  if (it != intervals_.begin()) {
    const RouteInterval& iv = *(it - 1);
    if (dst < iv.hi) {
      if (iv.div > 0) {
        return iv.port_base + static_cast<std::int32_t>(dst - iv.lo) / iv.div;
      }
      return iv.entry;
    }
  }
  return default_entry_;
}

std::int32_t& Switch::route_slot(NodeId dst) {
  PASE_DCHECK(dst >= 0);
  if (dst >= dense_base_) {
    const auto off = static_cast<std::size_t>(dst - dense_base_);
    if (off >= routes_.size()) {
      routes_.resize(off + 1, kNoRoute);
    }
    return routes_[off];
  }
  // Legacy writer below the window: rebase it down to include dst. Happens
  // at most once per base change (e.g. a BFS reinstall over a structurally
  // routed switch); normal growth above stays an amortized resize.
  const auto shift = static_cast<std::size_t>(dense_base_ - dst);
  std::vector<std::int32_t> grown(routes_.size() + shift, kNoRoute);
  std::copy(routes_.begin(), routes_.end(), grown.begin() + static_cast<std::ptrdiff_t>(shift));
  routes_ = std::move(grown);
  dense_base_ = dst;
  return routes_[0];
}

void Switch::release_owned_group(std::int32_t entry) {
  if (entry > kGroupBase) return;
  const std::size_t i = group_index(entry);
  if (groups_[i].shared) return;
  groups_[i] = Group{};
  free_groups_.push_back(static_cast<std::uint32_t>(i));
}

Switch::Group Switch::make_group(const std::vector<int>& ports,
                                 const std::vector<std::uint32_t>& weights,
                                 bool shared) {
  Group g;
  g.shared = shared;
  g.ports = ports;
  g.weights = weights.empty()
                  ? std::vector<std::uint32_t>(ports.size(), 1u)
                  : weights;
  std::size_t total = 0;
  for (const std::uint32_t w : g.weights) {
    PASE_DCHECK(w > 0);
    total += w;
  }
  g.members.reserve(total);
  for (std::size_t i = 0; i < g.ports.size(); ++i) {
    for (std::uint32_t r = 0; r < g.weights[i]; ++r) {
      g.members.push_back(static_cast<std::uint16_t>(g.ports[i]));
    }
  }
  return g;
}

std::int32_t Switch::alloc_group(Group g) {
  if (!free_groups_.empty()) {
    const std::size_t i = free_groups_.back();
    free_groups_.pop_back();
    groups_[i] = std::move(g);
    return kGroupBase - static_cast<std::int32_t>(i);
  }
  groups_.push_back(std::move(g));
  return kGroupBase - static_cast<std::int32_t>(groups_.size() - 1);
}

void Switch::set_route(NodeId dst, int port) {
  PASE_DCHECK(port >= 0 && port < num_ports());
  std::int32_t& slot = route_slot(dst);
  release_owned_group(slot);
  slot = port;
  invalidate_path_cache();
}

void Switch::set_route_group(NodeId dst, const std::vector<int>& ports,
                             const std::vector<std::uint32_t>& weights) {
  PASE_DCHECK(!ports.empty());
  PASE_DCHECK(weights.empty() || weights.size() == ports.size());
  for (const int p : ports) {
    PASE_DCHECK(p >= 0 && p < num_ports());
    (void)p;
  }
  if (ports.size() == 1) {  // degenerate group: keep the dense fast path
    set_route(dst, ports.front());
    return;
  }
  Group g = make_group(ports, weights, /*shared=*/false);
  // Reuse the group slot when `dst` already owns one, so re-running
  // Topology::build_routes (e.g. to change the ECMP seed) overwrites groups
  // in place instead of leaking a stale entry per multi-port destination per
  // reinstall. Shared groups are never clobbered — the destination gets a
  // fresh (or recycled) slot instead.
  std::int32_t& slot = route_slot(dst);
  if (slot <= kGroupBase && !groups_[group_index(slot)].shared) {
    groups_[group_index(slot)] = std::move(g);
  } else {
    slot = alloc_group(std::move(g));
  }
  invalidate_path_cache();
}

void Switch::clear_routes() {
  routes_.clear();
  dense_base_ = 0;
  intervals_.clear();
  default_entry_ = kNoRoute;
  route_id_bound_ = 0;
  groups_.clear();
  free_groups_.clear();
  invalidate_path_cache();
}

void Switch::set_dense_window(NodeId lo, NodeId hi) {
  PASE_DCHECK(routes_.empty());
  PASE_DCHECK(lo >= 0 && hi > lo);
  dense_base_ = lo;
  routes_.assign(static_cast<std::size_t>(hi - lo), kNoRoute);
}

void Switch::set_route_id_bound(NodeId bound) {
  PASE_DCHECK(bound >= 0);
  route_id_bound_ = bound;
}

std::int32_t Switch::add_shared_group(
    const std::vector<int>& ports, const std::vector<std::uint32_t>& weights) {
  PASE_DCHECK(!ports.empty());
  PASE_DCHECK(weights.empty() || weights.size() == ports.size());
  for (const int p : ports) {
    PASE_DCHECK(p >= 0 && p < num_ports());
    (void)p;
  }
  if (ports.size() == 1) {  // degenerate: the entry is the port itself
    return ports.front();
  }
  invalidate_path_cache();
  return alloc_group(make_group(ports, weights, /*shared=*/true));
}

void Switch::set_route_entry(NodeId dst, std::int32_t entry) {
  PASE_DCHECK(entry >= 0 ? entry < num_ports()
                         : entry <= kGroupBase &&
                               group_index(entry) < groups_.size());
  std::int32_t& slot = route_slot(dst);
  release_owned_group(slot);
  slot = entry;
  invalidate_path_cache();
}

void Switch::add_route_interval(NodeId lo, NodeId hi, std::int32_t entry) {
  PASE_DCHECK(lo >= 0 && hi > lo);
  PASE_DCHECK(intervals_.empty() || intervals_.back().hi <= lo);
  PASE_DCHECK(entry >= 0 ? entry < num_ports()
                         : entry <= kGroupBase &&
                               group_index(entry) < groups_.size());
  intervals_.push_back(RouteInterval{lo, hi, entry, 0, 0});
  invalidate_path_cache();
}

void Switch::add_route_interval_strided(NodeId lo, NodeId hi, int port_base,
                                        int div) {
  PASE_DCHECK(lo >= 0 && hi > lo);
  PASE_DCHECK(div > 0 && port_base >= 0);
  PASE_DCHECK(port_base + static_cast<std::int32_t>(hi - 1 - lo) / div <
              num_ports());
  PASE_DCHECK(intervals_.empty() || intervals_.back().hi <= lo);
  intervals_.push_back(RouteInterval{lo, hi, kNoRoute,
                                     static_cast<std::int32_t>(port_base),
                                     static_cast<std::int32_t>(div)});
  invalidate_path_cache();
}

void Switch::set_default_route_entry(std::int32_t entry) {
  PASE_DCHECK(entry == kNoRoute ||
              (entry >= 0 ? entry < num_ports()
                          : entry <= kGroupBase &&
                                group_index(entry) < groups_.size()));
  default_entry_ = entry;
  invalidate_path_cache();
}

void Switch::set_path_cache_capacity(std::size_t entries) {
  std::size_t cap = 0;
  if (entries > 0) {
    cap = 1;
    while (cap < entries) cap <<= 1;
  }
  path_cache_capacity_ = cap;
  invalidate_path_cache();
}

std::size_t Switch::route_state_bytes() const {
  std::size_t b = routes_.capacity() * sizeof(std::int32_t) +
                  intervals_.capacity() * sizeof(RouteInterval) +
                  free_groups_.capacity() * sizeof(std::uint32_t);
  for (const Group& g : groups_) {
    b += sizeof(Group) + g.members.capacity() * sizeof(std::uint16_t) +
         g.ports.capacity() * sizeof(int) +
         g.weights.capacity() * sizeof(std::uint32_t);
  }
  return b;
}

// Cold by construction: a missing route is a topology bug, so the message is
// assembled (allocating) only here, never on the forwarding path.
void Switch::throw_no_route(NodeId dst) const {
  std::string msg = name() + " (" + std::to_string(num_ports()) +
                    " ports): no route to node " + std::to_string(dst);
  if (resolve_name_) {
    msg += " (" + resolve_name_(dst) + ")";
  }
  throw std::runtime_error(msg);
}

void Switch::receive(PacketPtr p) {
  if (p->dst == id()) [[unlikely]] {
    if (control_) control_(std::move(p));
    return;  // control traffic for this switch; drop silently if no handler
  }
  const int port = port_for(*p);
  if (port < 0) [[unlikely]] {
    throw_no_route(p->dst);
  }
  if (has_hooks_) [[unlikely]] {
    for (auto& hook : hooks_) hook(*p, port);
  }
  ports_[static_cast<std::size_t>(port)].queue->enqueue(std::move(p));
}

}  // namespace pase::net
