#include "net/switch.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "sim/dcheck.h"

namespace pase::net {

int Switch::add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
                     Node* neighbor) {
  PASE_DCHECK(queue && link && neighbor);
  link->connect(queue.get(), neighbor);
  ports_.push_back(Port{std::move(queue), std::move(link), neighbor});
  return static_cast<int>(ports_.size()) - 1;
}

void Switch::set_route(NodeId dst, int port) {
  PASE_DCHECK(port >= 0 && port < num_ports());
  if (static_cast<std::size_t>(dst) >= routes_.size()) {
    routes_.resize(static_cast<std::size_t>(dst) + 1, -1);
  }
  routes_[static_cast<std::size_t>(dst)] = port;
}

// Cold by construction: a missing route is a topology bug, so the message is
// assembled (allocating) only here, never on the forwarding path.
void Switch::throw_no_route(NodeId dst) const {
  throw std::runtime_error(name() + ": no route to node " +
                           std::to_string(dst));
}

void Switch::receive(PacketPtr p) {
  if (p->dst == id()) [[unlikely]] {
    if (control_) control_(std::move(p));
    return;  // control traffic for this switch; drop silently if no handler
  }
  const int port = route_for(p->dst);
  if (port < 0) [[unlikely]] {
    throw_no_route(p->dst);
  }
  if (!hooks_.empty()) {
    for (auto& hook : hooks_) hook(*p, port);
  }
  ports_[static_cast<std::size_t>(port)].queue->enqueue(std::move(p));
}

}  // namespace pase::net
