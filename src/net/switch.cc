#include "net/switch.h"

#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/dcheck.h"

namespace pase::net {

int Switch::add_port(std::unique_ptr<Queue> queue, std::unique_ptr<Link> link,
                     Node* neighbor) {
  PASE_DCHECK(queue && link && neighbor);
  link->connect(queue.get(), neighbor);
  ports_.push_back(Port{std::move(queue), std::move(link), neighbor});
  return static_cast<int>(ports_.size()) - 1;
}

std::int32_t& Switch::route_slot(NodeId dst) {
  if (static_cast<std::size_t>(dst) >= routes_.size()) {
    routes_.resize(static_cast<std::size_t>(dst) + 1, kNoRoute);
  }
  return routes_[static_cast<std::size_t>(dst)];
}

void Switch::set_route(NodeId dst, int port) {
  PASE_DCHECK(port >= 0 && port < num_ports());
  route_slot(dst) = port;
}

void Switch::set_route_group(NodeId dst, const std::vector<int>& ports,
                             const std::vector<std::uint32_t>& weights) {
  PASE_DCHECK(!ports.empty());
  PASE_DCHECK(weights.empty() || weights.size() == ports.size());
  for (const int p : ports) {
    PASE_DCHECK(p >= 0 && p < num_ports());
    (void)p;
  }
  if (ports.size() == 1) {  // degenerate group: keep the dense fast path
    route_slot(dst) = ports.front();
    return;
  }
  Group g;
  g.ports = ports;
  g.weights = weights.empty()
                  ? std::vector<std::uint32_t>(ports.size(), 1u)
                  : weights;
  std::size_t total = 0;
  for (const std::uint32_t w : g.weights) {
    PASE_DCHECK(w > 0);
    total += w;
  }
  g.members.reserve(total);
  for (std::size_t i = 0; i < g.ports.size(); ++i) {
    for (std::uint32_t r = 0; r < g.weights[i]; ++r) {
      g.members.push_back(static_cast<std::uint16_t>(g.ports[i]));
    }
  }
  // Reuse the group slot when `dst` already routes through one, so
  // re-running Topology::build_routes (e.g. to change the ECMP seed)
  // overwrites groups in place instead of leaking a stale entry per
  // multi-port destination per reinstall.
  std::int32_t& slot = route_slot(dst);
  if (slot <= kGroupBase) {
    groups_[group_index(slot)] = std::move(g);
    return;
  }
  groups_.push_back(std::move(g));
  slot = kGroupBase - static_cast<std::int32_t>(groups_.size() - 1);
}

// Cold by construction: a missing route is a topology bug, so the message is
// assembled (allocating) only here, never on the forwarding path.
void Switch::throw_no_route(NodeId dst) const {
  std::string msg = name() + " (" + std::to_string(num_ports()) +
                    " ports): no route to node " + std::to_string(dst);
  if (resolve_name_) {
    msg += " (" + resolve_name_(dst) + ")";
  }
  throw std::runtime_error(msg);
}

void Switch::receive(PacketPtr p) {
  if (p->dst == id()) [[unlikely]] {
    if (control_) control_(std::move(p));
    return;  // control traffic for this switch; drop silently if no handler
  }
  const int port = port_for(*p);
  if (port < 0) [[unlikely]] {
    throw_no_route(p->dst);
  }
  if (!hooks_.empty()) {
    for (auto& hook : hooks_) hook(*p, port);
  }
  ports_[static_cast<std::size_t>(port)].queue->enqueue(std::move(p));
}

}  // namespace pase::net
