// Strict-priority bank of FIFO class queues with per-class ECN marking —
// the commodity-switch model PASE relies on (PRIO qdisc + RED, paper §3.3).
//
// - `num_classes` FIFO queues; class 0 has strict precedence.
// - A shared buffer pool of `capacity_pkts`: an arriving packet is tail-
//   dropped when the pool is full, regardless of class.
// - Each class marks CE on arrival when that class's instantaneous length is
//   at or above the marking threshold K.
// - Packets are classified by Packet::priority (clamped to the valid range).
#pragma once

#include <vector>

#include "net/packet_ring.h"
#include "net/queue.h"

namespace pase::net {

class PriorityQueueBank : public Queue {
 public:
  PriorityQueueBank(int num_classes, std::size_t capacity_pkts,
                    std::size_t mark_threshold_pkts);

  std::size_t len_packets() const override { return total_pkts_; }
  std::size_t len_bytes() const override { return total_bytes_; }
  int num_classes() const { return static_cast<int>(classes_.size()); }
  std::size_t class_len(int cls) const { return classes_[cls].size(); }
  std::uint64_t class_dequeues(int cls) const { return dequeues_[cls]; }

 protected:
  bool do_enqueue(PacketPtr p) override;
  PacketPtr do_dequeue() override;

 private:
  std::vector<PacketRing> classes_;  // each sized to the shared pool cap
  std::vector<std::uint64_t> dequeues_;
  std::size_t capacity_;
  std::size_t threshold_;
  std::size_t total_pkts_ = 0;
  std::size_t total_bytes_ = 0;
};

}  // namespace pase::net
