#include "net/droptail_queue.h"

#include <utility>

namespace pase::net {

bool DropTailQueue::do_enqueue(PacketPtr p) {
  if (q_.size() >= capacity_) {
    count_drop(*p);
    return false;
  }
  bytes_ += p->size_bytes;
  q_.push_back(std::move(p));
  return true;
}

PacketPtr DropTailQueue::do_dequeue() {
  if (q_.empty()) return nullptr;
  PacketPtr p = q_.pop_front();
  bytes_ -= p->size_bytes;
  return p;
}

PacketPtr DropTailQueue::do_pass(PacketPtr p) {
  const std::size_t n = q_.size();
  if (n >= capacity_) {
    count_drop(*p);
    return nullptr;
  }
  if (n > 0) [[unlikely]] {
    bytes_ += p->size_bytes;
    q_.push_back(std::move(p));
    p = q_.pop_front();
    bytes_ -= p->size_bytes;
  }
  return p;
}

}  // namespace pase::net
