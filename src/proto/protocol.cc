#include "proto/protocol.h"

#include <array>
#include <cctype>
#include <string>

namespace pase::proto {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kDctcp: return "DCTCP";
    case Protocol::kD2tcp: return "D2TCP";
    case Protocol::kL2dct: return "L2DCT";
    case Protocol::kPdq: return "PDQ";
    case Protocol::kPfabric: return "pFabric";
    case Protocol::kPase: return "PASE";
  }
  return "?";
}

const char* protocol_key(Protocol p) {
  switch (p) {
    case Protocol::kDctcp: return "dctcp";
    case Protocol::kD2tcp: return "d2tcp";
    case Protocol::kL2dct: return "l2dct";
    case Protocol::kPdq: return "pdq";
    case Protocol::kPfabric: return "pfabric";
    case Protocol::kPase: return "pase";
  }
  return "?";
}

std::optional<Protocol> parse_protocol(std::string_view name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    key.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  static constexpr std::array<Protocol, 6> kAll = {
      Protocol::kDctcp, Protocol::kD2tcp,   Protocol::kL2dct,
      Protocol::kPdq,   Protocol::kPfabric, Protocol::kPase};
  for (Protocol p : kAll) {
    if (key == protocol_key(p)) return p;
  }
  return std::nullopt;
}

}  // namespace pase::proto
