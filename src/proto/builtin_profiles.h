// Factories for the six built-in profiles, one translation unit each under
// proto/profiles/. A new protocol is one new file exporting a factory plus
// one registration line in registry.cc (kept explicit rather than
// static-initializer magic so static linking never drops a profile).
#pragma once

#include <memory>

#include "proto/transport_profile.h"

namespace pase::proto {

std::unique_ptr<TransportProfile> make_dctcp_profile();
std::unique_ptr<TransportProfile> make_d2tcp_profile();
std::unique_ptr<TransportProfile> make_l2dct_profile();
std::unique_ptr<TransportProfile> make_pdq_profile();
std::unique_ptr<TransportProfile> make_pfabric_profile();
std::unique_ptr<TransportProfile> make_pase_profile();

}  // namespace pase::proto
