// Name-keyed registry of transport profiles.
//
// The six paper protocols self-register at first use (see
// proto/builtin_profiles.h); experiments, tests or downstream users add
// their own with ProfileRegistry::instance().add(...) — no scenario, switch
// or bench code has to change for a new transport to be runnable via
// ScenarioConfig::profile_name or a `--protocol=` CLI flag.
//
// Lookups are case-insensitive on the profile's name(). Registered profiles
// live for the process lifetime; lookups are thread-safe (sweep workers
// resolve profiles concurrently).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "proto/protocol.h"
#include "proto/transport_profile.h"

namespace pase::proto {

class ProfileRegistry {
 public:
  // The process-wide registry, with the built-in profiles already present.
  static ProfileRegistry& instance();

  // Registers a profile under lowercase(p->name()). Throws
  // std::invalid_argument on a duplicate name. Returns the stored profile.
  const TransportProfile* add(std::unique_ptr<TransportProfile> p);

  // nullptr when unknown.
  const TransportProfile* by_name(std::string_view name) const;
  const TransportProfile* by_protocol(Protocol p) const;

  // All profiles, in registration order (built-ins first).
  std::vector<const TransportProfile*> profiles() const;

 private:
  ProfileRegistry();

  struct Impl;
  Impl* impl_;  // leaked intentionally: registry outlives static teardown
};

// Convenience lookups.
// Enum form: every Protocol value has a built-in profile, so this never
// fails (throws std::logic_error if a built-in was somehow not registered).
const TransportProfile& profile_for(Protocol p);
// Name form for CLI flags; nullptr when unknown.
const TransportProfile* profile_for(std::string_view name);

}  // namespace pase::proto
