#include "proto/builtin_profiles.h"
#include "proto/profiles/ecn_window_profile.h"
#include "transport/l2dct.h"

namespace pase::proto {

namespace {

class L2dctProfile final : public EcnWindowProfile {
 public:
  std::optional<Protocol> protocol() const override {
    return Protocol::kL2dct;
  }
  std::string_view name() const override { return "l2dct"; }
  std::string_view display_name() const override { return "L2DCT"; }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    return std::make_unique<transport::L2dctSender>(ctx.sim, src, flow,
                                                    window_options(ctx));
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(transport::L2dctSender),
            .sender_align = alignof(transport::L2dctSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    return new (mem)
        transport::L2dctSender(ctx.sim, src, flow, window_options(ctx));
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_l2dct_profile() {
  return std::make_unique<L2dctProfile>();
}

}  // namespace pase::proto
