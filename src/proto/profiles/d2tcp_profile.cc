#include "proto/builtin_profiles.h"
#include "proto/profiles/ecn_window_profile.h"
#include "transport/d2tcp.h"

namespace pase::proto {

namespace {

class D2tcpProfile final : public EcnWindowProfile {
 public:
  std::optional<Protocol> protocol() const override {
    return Protocol::kD2tcp;
  }
  std::string_view name() const override { return "d2tcp"; }
  std::string_view display_name() const override { return "D2TCP"; }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    return std::make_unique<transport::D2tcpSender>(ctx.sim, src, flow,
                                                    window_options(ctx));
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(transport::D2tcpSender),
            .sender_align = alignof(transport::D2tcpSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    return new (mem)
        transport::D2tcpSender(ctx.sim, src, flow, window_options(ctx));
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_d2tcp_profile() {
  return std::make_unique<D2tcpProfile>();
}

}  // namespace pase::proto
