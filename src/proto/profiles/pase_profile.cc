#include <stdexcept>
#include <string>

#include "core/arbitration_plane.h"
#include "core/pase_sender.h"
#include "net/priority_queue_bank.h"
#include "proto/builtin_profiles.h"
#include "proto/defaults.h"
#include "proto/profiles/ecn_window_profile.h"

namespace pase::proto {

namespace {

class PaseControlPlane final : public ControlPlane {
 public:
  PaseControlPlane(const core::ArbitrationPlane::SimResolver& sim_of,
                   core::PlaneTopology pt, const core::PaseConfig& cfg)
      : plane(sim_of, std::move(pt), cfg) {}

  const core::ControlPlaneStats* stats() const override {
    return &plane.stats();
  }

  std::uint32_t setup_events() const override { return plane.setup_events(); }

  void append_timer_nodes(std::vector<net::NodeId>& out) const override {
    plane.append_timer_nodes(out);
  }

  core::ArbitrationPlane plane;
};

class PaseProfile final : public TransportProfile {
 public:
  std::optional<Protocol> protocol() const override { return Protocol::kPase; }
  std::string_view name() const override { return "pase"; }
  std::string_view display_name() const override { return "PASE"; }

  // The arbitration plane is sharded by arbitrating node: every handler
  // reads/writes only the state owned by the node it runs at, and
  // arbitration messages are real packets riding the fabric (and the cut
  // mailboxes in partitioned runs). See arbitration_plane.h.
  bool parallel_safe() const override { return true; }

  void validate(const ProfileParams& params) const override {
    if (params.pase.num_queues < 2) {
      throw std::invalid_argument(
          "pase: num_queues must be at least 2 (one data class plus the "
          "background class), got " +
          std::to_string(params.pase.num_queues));
    }
    check_mark_fits_capacity(params, Table3::kPaseQueuePkts, name());
  }

  topo::QueueFactory make_queue_factory(
      const ProfileParams& params) const override {
    const std::size_t cap_override = params.queue_capacity_pkts;
    const std::size_t mark_override = params.mark_threshold_pkts;
    const int num_queues = params.pase.num_queues;
    return [=](double rate) -> std::unique_ptr<net::Queue> {
      const std::size_t cap =
          cap_override ? cap_override : Table3::kPaseQueuePkts;
      const std::size_t k =
          mark_override ? mark_override : mark_threshold_for(rate);
      return std::make_unique<net::PriorityQueueBank>(num_queues, cap, k);
    };
  }

  std::unique_ptr<ControlPlane> make_control_plane(
      RunContext& ctx) const override {
    core::PaseConfig& pc = ctx.params.pase;
    pc.rtt = ctx.base_rtt;
    pc.arbitration_period = ctx.params.arbitration_period_rtts * ctx.base_rtt;
    // Deadline workloads arbitrate EDF; size workloads SJF.
    if (ctx.any_deadline &&
        pc.criterion == core::Criterion::kShortestFlowFirst) {
      pc.criterion = core::Criterion::kEarliestDeadlineFirst;
    }
    // Each shard's arbitrators and timers live on the owning node's domain
    // clock; sequential runs resolve every node to the one simulator.
    sim::Simulator& seq = ctx.sim;
    auto sim_of = ctx.sim_resolver
                      ? ctx.sim_resolver
                      : [&seq](net::NodeId) -> sim::Simulator& { return seq; };
    return std::make_unique<PaseControlPlane>(
        sim_of, core::PlaneTopology::from(ctx.built), pc);
  }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    return std::make_unique<core::PaseSender>(ctx.sim, src, flow,
                                              plane_of(ctx));
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(core::PaseSender),
            .sender_align = alignof(core::PaseSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    return new (mem) core::PaseSender(ctx.sim, src, flow, plane_of(ctx));
  }

  void before_flow_start(RunContext& ctx, transport::Sender&,
                         transport::Receiver& receiver) const override {
    plane_of(ctx).attach_receiver(receiver);
  }

 private:
  // ctx.control is always the PaseControlPlane this profile created.
  static core::ArbitrationPlane& plane_of(RunContext& ctx) {
    return static_cast<PaseControlPlane*>(ctx.control)->plane;
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_pase_profile() {
  return std::make_unique<PaseProfile>();
}

}  // namespace pase::proto
