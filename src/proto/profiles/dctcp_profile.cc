#include "proto/builtin_profiles.h"
#include "proto/profiles/ecn_window_profile.h"
#include "transport/dctcp.h"

namespace pase::proto {

namespace {

class DctcpProfile final : public EcnWindowProfile {
 public:
  std::optional<Protocol> protocol() const override {
    return Protocol::kDctcp;
  }
  std::string_view name() const override { return "dctcp"; }
  std::string_view display_name() const override { return "DCTCP"; }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    return std::make_unique<transport::DctcpSender>(ctx.sim, src, flow,
                                                    window_options(ctx));
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(transport::DctcpSender),
            .sender_align = alignof(transport::DctcpSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    return new (mem)
        transport::DctcpSender(ctx.sim, src, flow, window_options(ctx));
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_dctcp_profile() {
  return std::make_unique<DctcpProfile>();
}

}  // namespace pase::proto
