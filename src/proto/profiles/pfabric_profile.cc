#include "net/pfabric_queue.h"
#include "proto/builtin_profiles.h"
#include "proto/defaults.h"
#include "transport/pfabric.h"

namespace pase::proto {

namespace {

class PfabricProfile final : public TransportProfile {
 public:
  std::optional<Protocol> protocol() const override {
    return Protocol::kPfabric;
  }
  std::string_view name() const override { return "pfabric"; }
  std::string_view display_name() const override { return "pFabric"; }

  // Priority queues are per-port, rate control is per-host: parallel-safe.
  bool parallel_safe() const override { return true; }

  topo::QueueFactory make_queue_factory(
      const ProfileParams& params) const override {
    const std::size_t cap_override = params.queue_capacity_pkts;
    return [=](double) -> std::unique_ptr<net::Queue> {
      const std::size_t cap =
          cap_override ? cap_override : Table3::kPfabricQueuePkts;
      return std::make_unique<net::PfabricQueue>(cap);
    };
  }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    transport::WindowSenderOptions w =
        transport::PfabricSender::default_window_options();
    w.initial_rtt = ctx.base_rtt;
    return std::make_unique<transport::PfabricSender>(ctx.sim, src, flow, w);
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(transport::PfabricSender),
            .sender_align = alignof(transport::PfabricSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    transport::WindowSenderOptions w =
        transport::PfabricSender::default_window_options();
    w.initial_rtt = ctx.base_rtt;
    return new (mem) transport::PfabricSender(ctx.sim, src, flow, w);
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_pfabric_profile() {
  return std::make_unique<PfabricProfile>();
}

}  // namespace pase::proto
