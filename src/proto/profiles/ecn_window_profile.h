// Shared base for the DCTCP family (DCTCP, D2TCP, L2DCT): a single RED/ECN
// marking queue per port with Table 3 capacity, and window-based senders
// seeded with the measured base RTT.
#pragma once

#include <stdexcept>
#include <string>

#include "net/red_ecn_queue.h"
#include "proto/defaults.h"
#include "proto/transport_profile.h"
#include "transport/window_sender.h"

namespace pase::proto {

// Shared override sanity check: an explicit ECN mark threshold must fit in
// the effective queue capacity, else every packet is marked-then-dropped.
inline void check_mark_fits_capacity(const ProfileParams& p,
                                     std::size_t default_capacity_pkts,
                                     std::string_view profile) {
  const std::size_t cap =
      p.queue_capacity_pkts ? p.queue_capacity_pkts : default_capacity_pkts;
  if (p.mark_threshold_pkts && p.mark_threshold_pkts > cap) {
    throw std::invalid_argument(
        std::string(profile) + ": mark_threshold_pkts (" +
        std::to_string(p.mark_threshold_pkts) +
        ") exceeds the queue capacity (" + std::to_string(cap) + " pkts)");
  }
}

class EcnWindowProfile : public TransportProfile {
 public:
  void validate(const ProfileParams& params) const override {
    check_mark_fits_capacity(params, Table3::kDctcpQueuePkts, name());
  }

  // Pure endpoint loops over ECN-marking queues: all state is per-host, so
  // domain-partitioned execution is safe.
  bool parallel_safe() const override { return true; }

  topo::QueueFactory make_queue_factory(
      const ProfileParams& params) const override {
    const std::size_t cap_override = params.queue_capacity_pkts;
    const std::size_t mark_override = params.mark_threshold_pkts;
    return [=](double rate) -> std::unique_ptr<net::Queue> {
      const std::size_t cap =
          cap_override ? cap_override : Table3::kDctcpQueuePkts;
      const std::size_t k =
          mark_override ? mark_override : mark_threshold_for(rate);
      return std::make_unique<net::RedEcnQueue>(cap, k);
    };
  }

 protected:
  static transport::WindowSenderOptions window_options(const RunContext& ctx) {
    transport::WindowSenderOptions w;
    w.initial_rtt = ctx.base_rtt;
    return w;
  }
};

}  // namespace pase::proto
