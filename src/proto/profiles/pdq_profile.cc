#include <vector>

#include "net/droptail_queue.h"
#include "proto/builtin_profiles.h"
#include "proto/defaults.h"
#include "transport/pdq.h"

namespace pase::proto {

namespace {

// Owns the per-port and per-uplink PDQ rate controllers for one run.
class PdqControlPlane final : public ControlPlane {
 public:
  std::vector<std::unique_ptr<transport::PdqController>> controllers;
};

class PdqProfile final : public TransportProfile {
 public:
  std::optional<Protocol> protocol() const override { return Protocol::kPdq; }
  std::string_view name() const override { return "pdq"; }
  std::string_view display_name() const override { return "PDQ"; }

  // Arbitration is in the data plane: one controller per port/uplink, each
  // touched only by packets forwarded through its own node, so controllers
  // partition cleanly as long as each reads its node's domain clock.
  bool parallel_safe() const override { return true; }

  topo::QueueFactory make_queue_factory(
      const ProfileParams& params) const override {
    const std::size_t cap_override = params.queue_capacity_pkts;
    return [=](double) -> std::unique_ptr<net::Queue> {
      const std::size_t cap =
          cap_override ? cap_override : Table3::kPdqQueuePkts;
      return std::make_unique<net::DropTailQueue>(cap);
    };
  }

  std::unique_ptr<ControlPlane> make_control_plane(
      RunContext& ctx) const override {
    transport::PdqOptions po = ctx.params.pdq;
    po.rtt = ctx.base_rtt;
    // Early termination only makes sense when flows carry deadlines.
    if (!ctx.any_deadline) po.early_termination = false;
    auto cp = std::make_unique<PdqControlPlane>();
    // Controllers on every switch output port... Each controller reads the
    // clock of its node's domain (ctx.sim_of falls back to ctx.sim in
    // sequential runs).
    for (const auto& sw : ctx.built.topo().switches()) {
      auto cs = transport::PdqController::attach(ctx.sim_of(sw->id()), *sw, po);
      for (auto& c : cs) cp->controllers.push_back(std::move(c));
    }
    // ...and on every host uplink.
    for (const auto& h : ctx.built.topo().hosts()) {
      auto c = std::make_unique<transport::PdqController>(
          ctx.sim_of(h->id()), h->id(), h->nic_rate_bps(), po);
      transport::PdqController* raw = c.get();
      h->add_send_hook([raw](net::Packet& p) { raw->process(p); });
      cp->controllers.push_back(std::move(c));
    }
    return cp;
  }

  std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow,
      net::Host& src) const override {
    transport::PdqSenderOptions o;
    o.initial_rtt = ctx.base_rtt;
    o.probe_interval = ctx.params.pdq_probe_rtts * ctx.base_rtt;
    return std::make_unique<transport::PdqSender>(ctx.sim, src, flow, o);
  }

  EndpointLayout endpoint_layout() const override {
    return {.sender_size = sizeof(transport::PdqSender),
            .sender_align = alignof(transport::PdqSender)};
  }

  transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                      const transport::Flow& flow,
                                      net::Host& src) const override {
    transport::PdqSenderOptions o;
    o.initial_rtt = ctx.base_rtt;
    o.probe_interval = ctx.params.pdq_probe_rtts * ctx.base_rtt;
    return new (mem) transport::PdqSender(ctx.sim, src, flow, o);
  }
};

}  // namespace

std::unique_ptr<TransportProfile> make_pdq_profile() {
  return std::make_unique<PdqProfile>();
}

}  // namespace pase::proto
