// The pluggable seam between "which transport" and "how to run a scenario".
//
// A TransportProfile bundles everything that used to be a per-protocol branch
// in the scenario monolith:
//   (a) the fabric: which queue discipline each link gets, with the paper's
//       Table 3 capacities/ECN thresholds as defaults;
//   (b) the endpoints: sender/receiver factories invoked per flow by the
//       harness as the workload arrives;
//   (c) optional control-plane setup: PASE's arbitration plane, PDQ's
//       per-port controllers — built once per run, owned by the run.
//
// Profiles are stateless; all per-run state lives in the RunContext and the
// ControlPlane object the profile returns. Registering a profile (see
// proto/registry.h) makes it reachable from every bench, example and test
// by name — the scenario harness itself never names a protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <optional>
#include <string_view>
#include <vector>

#include "core/control_stats.h"
#include "proto/profile_params.h"
#include "proto/protocol.h"
#include "topo/builder.h"
#include "transport/agent.h"
#include "transport/receiver.h"

namespace pase::proto {

// Per-run control-plane state (arbitration plane, PDQ controllers, ...).
// Owned by the scenario run; destroyed after the simulation ends.
class ControlPlane {
 public:
  virtual ~ControlPlane() = default;
  // Counters for ScenarioResult::control; null when the protocol has none.
  virtual const core::ControlPlaneStats* stats() const { return nullptr; }

  // Setup-time calendar events the control plane scheduled while being
  // constructed (PASE's delegation timers), in a globally deterministic
  // order. The parallel harness offsets its flow-launch lineage indices past
  // this count so setup roots stay globally unique and partition-invariant.
  virtual std::uint32_t setup_events() const { return 0; }
  // Appends the nodes at which the control plane spontaneously schedules
  // timer events (as opposed to reacting to packet arrivals). The parallel
  // engine's conditional-horizon probe must treat these nodes as potential
  // event sources alongside the hosts.
  virtual void append_timer_nodes(std::vector<net::NodeId>& out) const {
    (void)out;
  }
};

// Everything a profile may consult while wiring a run. `params` is the run's
// own mutable copy: a profile may tune it from measured facts (PASE derives
// its arbitration period and criterion from the RTT and the workload).
struct RunContext {
  sim::Simulator& sim;
  topo::BuiltTopology& built;
  ProfileParams params;
  sim::Time base_rtt = 0.0;
  bool any_deadline = false;
  ControlPlane* control = nullptr;  // set once make_control_plane returned

  // Parallel runs partition the topology into per-worker domains, each with
  // its own Simulator. Profiles that build per-node machinery (PDQ's
  // per-port rate controllers) must place it on the owning node's domain
  // clock; sequential runs leave the resolver empty and everything lives on
  // `sim`.
  std::function<sim::Simulator&(net::NodeId)> sim_resolver = {};
  sim::Simulator& sim_of(net::NodeId node) {
    return sim_resolver ? sim_resolver(node) : sim;
  }
};

// Concrete storage geometry of a profile's endpoint types. Profiles that
// publish a valid layout let the harness keep senders/receivers in typed slab
// arenas (proto/endpoint_arena.h) sized without per-flow virtual construction;
// an invalid layout (sender_size == 0, the default) keeps the heap-allocating
// make_sender/make_receiver path — external/test profiles need not opt in.
struct EndpointLayout {
  std::size_t sender_size = 0;
  std::size_t sender_align = 0;
  std::size_t receiver_size = sizeof(transport::Receiver);
  std::size_t receiver_align = alignof(transport::Receiver);

  bool valid() const { return sender_size > 0 && sender_align > 0; }
};

class TransportProfile {
 public:
  virtual ~TransportProfile() = default;

  // The enum identity for the six paper protocols; nullopt for registered
  // extras, which are reachable by name only.
  virtual std::optional<Protocol> protocol() const { return std::nullopt; }
  // Registry/CLI key, lowercase ("pase"). Unique across the registry.
  virtual std::string_view name() const = 0;
  virtual std::string_view display_name() const { return name(); }

  // Rejects nonsensical knob combinations with std::invalid_argument; called
  // by the harness before anything is built.
  virtual void validate(const ProfileParams& params) const { (void)params; }

  // Whether the protocol tolerates domain-partitioned parallel execution:
  // all of its runtime state must be per-node (endpoint loops, per-port
  // controllers, arbitration shards), with cross-node interaction only via
  // Link deliveries — which the engine routes through cut-link mailboxes.
  // Conservative default: profiles must opt in. All six built-ins are
  // parallel-safe; when an external profile declines, the harness falls back
  // to sequential execution and records why in
  // ScenarioResult::parallel_fallback_reason.
  virtual bool parallel_safe() const { return false; }

  // (a) fabric.
  virtual topo::QueueFactory make_queue_factory(
      const ProfileParams& params) const = 0;

  // (c) control plane; called once after the topology is built, before any
  // flow starts. Default: the protocol needs none.
  virtual std::unique_ptr<ControlPlane> make_control_plane(
      RunContext& ctx) const {
    (void)ctx;
    return nullptr;
  }

  // (b) endpoints, invoked per flow at its start time.
  virtual std::unique_ptr<transport::Sender> make_sender(
      RunContext& ctx, const transport::Flow& flow, net::Host& src) const = 0;
  virtual std::unique_ptr<transport::Receiver> make_receiver(
      RunContext& ctx, const transport::Flow& flow, net::Host& dst) const;

  // (b') slab variants. A profile advertising a valid endpoint_layout()
  // promises construct_sender/construct_receiver placement-construct exactly
  // the advertised types into caller-owned slots of that size/alignment. The
  // caller (workload/endpoint_table.h) owns the storage and runs the virtual
  // destructor before recycling the slot; ordinary profiles inherit the
  // invalid layout and are served by the unique_ptr factories above.
  virtual EndpointLayout endpoint_layout() const { return {}; }
  virtual transport::Sender* construct_sender(void* mem, RunContext& ctx,
                                              const transport::Flow& flow,
                                              net::Host& src) const;
  // Default: placement-new of the base transport::Receiver, mirroring
  // make_receiver — correct for every profile that keeps receiver_size at its
  // default, i.e. all six built-ins.
  virtual transport::Receiver* construct_receiver(void* mem, RunContext& ctx,
                                                  const transport::Flow& flow,
                                                  net::Host& dst) const;

  // Called after the pair exists and completion callbacks are wired, before
  // the sender starts (PASE hooks the receiver into the arbitration plane).
  virtual void before_flow_start(RunContext& ctx, transport::Sender& sender,
                                 transport::Receiver& receiver) const {
    (void)ctx;
    (void)sender;
    (void)receiver;
  }
};

// Measured base RTT between the two most distant hosts: propagation plus a
// nominal per-hop serialization allowance for a data packet.
sim::Time estimate_base_rtt(topo::Topology& topo, double host_rate_bps);

}  // namespace pase::proto
