// Default protocol/fabric parameters, following the paper's Table 3 and §4.1.
#pragma once

#include <cstddef>

#include "sim/simulator.h"

namespace pase::proto {

struct Table3 {
  // DCTCP / D2TCP / L2DCT
  static constexpr std::size_t kDctcpQueuePkts = 225;
  static constexpr std::size_t kMarkThreshold1G = 20;   // DCTCP guidance, 1 Gbps
  static constexpr std::size_t kMarkThreshold10G = 65;  // Table 3, 10 Gbps
  static constexpr sim::Time kDctcpMinRto = 10e-3;

  // pFabric
  static constexpr std::size_t kPfabricQueuePkts = 76;  // 2 x BDP
  static constexpr double kPfabricInitCwnd = 38.0;      // BDP
  static constexpr sim::Time kPfabricMinRto = 1e-3;     // ~3.3 x RTT

  // PASE
  static constexpr std::size_t kPaseQueuePkts = 500;
  static constexpr sim::Time kPaseMinRtoTop = 10e-3;
  static constexpr sim::Time kPaseMinRtoLow = 200e-3;
  static constexpr int kPaseNumQueues = 8;

  // PDQ (droptail fabric; rates keep queues short)
  static constexpr std::size_t kPdqQueuePkts = 225;
};

// Mark threshold appropriate for a link speed (K scales with BDP).
inline std::size_t mark_threshold_for(double rate_bps) {
  return rate_bps > 5e9 ? Table3::kMarkThreshold10G : Table3::kMarkThreshold1G;
}

}  // namespace pase::proto
