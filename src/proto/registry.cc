#include "proto/registry.h"

#include <cctype>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "proto/builtin_profiles.h"

namespace pase::proto {

namespace {

std::string lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

struct ProfileRegistry::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<TransportProfile>> owned;
  std::unordered_map<std::string, const TransportProfile*> by_name;
};

ProfileRegistry::ProfileRegistry() : impl_(new Impl) {
  add(make_dctcp_profile());
  add(make_d2tcp_profile());
  add(make_l2dct_profile());
  add(make_pdq_profile());
  add(make_pfabric_profile());
  add(make_pase_profile());
}

ProfileRegistry& ProfileRegistry::instance() {
  static ProfileRegistry* reg = new ProfileRegistry;
  return *reg;
}

const TransportProfile* ProfileRegistry::add(
    std::unique_ptr<TransportProfile> p) {
  if (!p) throw std::invalid_argument("cannot register a null profile");
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string key = lower(p->name());
  if (key.empty()) throw std::invalid_argument("profile name must not be empty");
  if (impl_->by_name.count(key)) {
    throw std::invalid_argument("transport profile '" + key +
                                "' is already registered");
  }
  const TransportProfile* raw = p.get();
  impl_->owned.push_back(std::move(p));
  impl_->by_name.emplace(key, raw);
  return raw;
}

const TransportProfile* ProfileRegistry::by_name(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->by_name.find(lower(name));
  return it == impl_->by_name.end() ? nullptr : it->second;
}

const TransportProfile* ProfileRegistry::by_protocol(Protocol p) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& prof : impl_->owned) {
    if (prof->protocol() == p) return prof.get();
  }
  return nullptr;
}

std::vector<const TransportProfile*> ProfileRegistry::profiles() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<const TransportProfile*> out;
  out.reserve(impl_->owned.size());
  for (const auto& prof : impl_->owned) out.push_back(prof.get());
  return out;
}

const TransportProfile& profile_for(Protocol p) {
  const TransportProfile* prof = ProfileRegistry::instance().by_protocol(p);
  if (!prof) {
    throw std::logic_error(std::string("no profile registered for protocol ") +
                           protocol_name(p));
  }
  return *prof;
}

const TransportProfile* profile_for(std::string_view name) {
  return ProfileRegistry::instance().by_name(name);
}

}  // namespace pase::proto
