// The protocol identifier shared by configs, CLIs and the profile registry.
// A Protocol value names one of the paper's six transports; arbitrary
// additional transports can be registered by string name only (see
// proto/registry.h), so the enum never has to grow for an experiment.
#pragma once

#include <optional>
#include <string_view>

namespace pase::proto {

enum class Protocol { kDctcp, kD2tcp, kL2dct, kPdq, kPfabric, kPase };

// Canonical display name, e.g. "DCTCP", "pFabric".
const char* protocol_name(Protocol p);

// Canonical lowercase registry/CLI key, e.g. "dctcp", "pfabric".
const char* protocol_key(Protocol p);

// Inverse of protocol_name/protocol_key: case-insensitive, accepts both the
// display and the key spelling ("pFabric" == "pfabric" == "PFABRIC").
// Returns nullopt for anything else.
std::optional<Protocol> parse_protocol(std::string_view name);

}  // namespace pase::proto
