// Per-run protocol knobs a TransportProfile consumes. ScenarioConfig derives
// from this, so experiment code keeps writing `cfg.pase.num_queues = 4` while
// the profile layer stays independent of the workload layer.
#pragma once

#include <cstddef>

#include "core/pase_config.h"
#include "transport/pdq_options.h"

namespace pase::proto {

struct ProfileParams {
  core::PaseConfig pase;      // PASE knobs (criterion picked from deadlines)
  transport::PdqOptions pdq;  // PDQ knobs
  double pdq_probe_rtts = 8.0;           // paused-sender probe period, in RTTs
  double arbitration_period_rtts = 1.0;  // PASE source refresh period, in RTTs

  // Fabric overrides; 0 = per-protocol Table 3 default.
  std::size_t queue_capacity_pkts = 0;
  std::size_t mark_threshold_pkts = 0;
};

}  // namespace pase::proto
