// Typed slab arena for per-flow endpoint objects.
//
// The scenario driver used to heap-allocate a unique_ptr<Sender> /
// unique_ptr<Receiver> pair per flow and keep every pair alive to the end of
// the run — a setup-time and memory wall at 10^6 flows. An EndpointArena
// holds one endpoint type in contiguous fixed-size slots (the slot size and
// alignment come from the profile's EndpointLayout, so no virtual
// construction is needed to size storage): acquire() hands out a recycled
// slot or bumps into the current chunk, release() returns a slot to the free
// list when its flow retires. Chunks are never freed mid-run and never move,
// so endpoint pointers stay stable for the objects' lifetimes; memory
// therefore tracks peak live concurrency, not total flow count.
//
// grow_events() counts chunk allocations — the slab analogue of
// Simulator::heap_closure_events(): a warmed steady state of arrivals and
// recycles must hold it constant (pinned by tests/endpoint_slab_test.cc and
// the lazy-activation case in tests/alloc_free_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "sim/dcheck.h"

namespace pase::proto {

class EndpointArena {
 public:
  EndpointArena() = default;
  EndpointArena(const EndpointArena&) = delete;
  EndpointArena& operator=(const EndpointArena&) = delete;
  ~EndpointArena() { clear(); }

  // Fixes the slot geometry. Must be called before the first acquire();
  // calling it again resets the arena (drops all chunks).
  void init(std::size_t slot_size, std::size_t slot_align,
            std::size_t slots_per_chunk = 256) {
    PASE_DCHECK(slot_size > 0 && slot_align > 0);
    clear();
    align_ = slot_align < alignof(std::max_align_t) ? alignof(std::max_align_t)
                                                    : slot_align;
    slot_size_ = (slot_size + align_ - 1) / align_ * align_;
    slots_per_chunk_ = slots_per_chunk;
  }

  bool initialized() const { return slot_size_ != 0; }

  // Pre-allocates capacity for at least n concurrently live slots, so a
  // warmed run never grows (reserve is setup-time; its chunks still count in
  // grow_events(), which is why tests snapshot the counter after warmup).
  void reserve(std::size_t n) {
    while (capacity() < n) grow();
  }

  void* acquire() {
    PASE_DCHECK(initialized());
    if (!free_.empty()) {
      void* p = free_.back();
      free_.pop_back();
      ++live_;
      return p;
    }
    if (cursor_ == chunks_.size()) grow();
    void* p = chunks_[cursor_].get() + bump_ * slot_size_;
    if (++bump_ == slots_per_chunk_) {
      ++cursor_;
      bump_ = 0;
    }
    ++live_;
    return p;
  }

  void release(void* p) {
    PASE_DCHECK(live_ > 0);
    --live_;
    free_.push_back(p);
  }

  std::size_t live() const { return live_; }
  std::size_t capacity() const { return chunks_.size() * slots_per_chunk_; }
  std::uint64_t grow_events() const { return grow_events_; }
  std::size_t slot_size() const { return slot_size_; }

 private:
  struct Free {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{align});
    }
    std::size_t align;
  };
  using Chunk = std::unique_ptr<std::byte[], Free>;

  // Appends a chunk without moving the bump cursor: chunks pre-allocated by
  // reserve() sit ahead of the cursor and are consumed before any further
  // growth.
  void grow() {
    auto* raw = static_cast<std::byte*>(::operator new[](
        slot_size_ * slots_per_chunk_, std::align_val_t{align_}));
    chunks_.emplace_back(raw, Free{align_});
    ++grow_events_;
  }

  void clear() {
    free_.clear();
    chunks_.clear();
    cursor_ = 0;
    bump_ = 0;
    live_ = 0;
  }

  std::size_t slot_size_ = 0;
  std::size_t align_ = alignof(std::max_align_t);
  std::size_t slots_per_chunk_ = 256;
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  // chunk the bump allocator is filling
  std::size_t bump_ = 0;    // next unused slot in chunks_[cursor_]
  std::vector<void*> free_;
  std::size_t live_ = 0;
  std::uint64_t grow_events_ = 0;
};

}  // namespace pase::proto
