#include "proto/transport_profile.h"

#include <new>

#include "sim/dcheck.h"

namespace pase::proto {

std::unique_ptr<transport::Receiver> TransportProfile::make_receiver(
    RunContext& ctx, const transport::Flow& flow, net::Host& dst) const {
  return std::make_unique<transport::Receiver>(ctx.sim, dst, flow);
}

transport::Sender* TransportProfile::construct_sender(
    void* mem, RunContext& ctx, const transport::Flow& flow,
    net::Host& src) const {
  // Only reachable if a profile advertises a valid layout without overriding
  // the placement constructor — a contract violation, not a runtime state.
  (void)mem;
  (void)ctx;
  (void)flow;
  (void)src;
  PASE_DCHECK(!endpoint_layout().valid() &&
              "profile advertises a slab layout but does not implement "
              "construct_sender");
  return nullptr;
}

transport::Receiver* TransportProfile::construct_receiver(
    void* mem, RunContext& ctx, const transport::Flow& flow,
    net::Host& dst) const {
  return new (mem) transport::Receiver(ctx.sim, dst, flow);
}

sim::Time estimate_base_rtt(topo::Topology& topo, double host_rate_bps) {
  const net::NodeId a = topo.host(0)->id();
  const net::NodeId b = topo.host(topo.num_hosts() - 1)->id();
  const sim::Time prop = topo.propagation_rtt(a, b);
  const sim::Time serial =
      4.0 * (net::kMss + net::kDataHeaderBytes) * 8.0 / host_rate_bps;
  return prop + serial;
}

}  // namespace pase::proto
