#include "transport/pdq.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/trace.h"

namespace pase::transport {

// ---------------------------------------------------------------------------
// PdqController

PdqController::PdqController(sim::Simulator& sim, net::NodeId node,
                             double capacity_bps, PdqOptions opts)
    : sim_(&sim), node_(node), capacity_(capacity_bps), opts_(opts) {}

bool PdqController::more_critical(const Entry& a, const Entry& b) {
  const bool da = a.deadline > 0.0;
  const bool db = b.deadline > 0.0;
  if (da != db) return da;  // deadline flows outrank no-deadline flows
  if (da && a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.remaining != b.remaining) return a.remaining < b.remaining;
  return a.id < b.id;
}

PdqController::Entry& PdqController::find_or_insert(const net::Packet& p) {
  for (auto& e : flows_) {
    if (e.id == p.flow) return e;
  }
  Entry e{p.flow, p.pdq.expected_remaining, p.pdq.deadline, p.pdq.demand,
          net::kInvalidNode, sim_->now()};
  auto it = std::lower_bound(
      flows_.begin(), flows_.end(), e,
      [](const Entry& a, const Entry& b) { return more_critical(a, b); });
  return *flows_.insert(it, e);
}

void PdqController::reposition(std::size_t idx) {
  Entry e = flows_[idx];
  flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(idx));
  auto it = std::lower_bound(
      flows_.begin(), flows_.end(), e,
      [](const Entry& a, const Entry& b) { return more_critical(a, b); });
  flows_.insert(it, e);
}

void PdqController::erase_flow(net::FlowId id) {
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->id == id) {
      flows_.erase(it);
      return;
    }
  }
}

void PdqController::prune_stale() {
  if (sim_->now() - last_prune_ < opts_.entry_timeout) return;
  last_prune_ = sim_->now();
  const sim::Time cutoff = sim_->now() - opts_.entry_timeout;
  std::erase_if(flows_, [cutoff](const Entry& e) { return e.last_seen < cutoff; });
}

double PdqController::allocate(net::FlowId flow, double demand) {
  double avail = capacity_ * opts_.utilization;
  double blocker_finish = sim::kTimeInfinity;  // soonest finish among blockers
  bool exhausted = false;
  bool next_in_line = true;  // is `flow` first in line once capacity is full?
  for (const auto& e : flows_) {
    if (e.id == flow) break;  // flows_ is sorted; everything before is more critical
    if (e.pauser != net::kInvalidNode && e.pauser != node_) {
      continue;  // paused elsewhere: consumes nothing here
    }
    if (exhausted) {
      // Another waiting flow outranks `flow`; the early start is its, not ours.
      next_in_line = false;
      break;
    }
    const double share =
        std::min(e.remaining > 0 ? std::min(e.demand, capacity_) : 0.0, avail);
    if (share > 0) {
      blocker_finish =
          std::min(blocker_finish, e.remaining * 8.0 / share);
    }
    avail -= share;
    if (avail <= 0.0) exhausted = true;
  }
  if (!exhausted) return std::min(demand, std::max(avail, 0.0));
  // Early Start: only the next flow in criticality order may spin up, and
  // only while the blocking flow is within K RTTs of finishing — the link
  // never idles across the switchover, yet the fabric is not flooded by
  // every waiting flow at once.
  if (opts_.early_start && next_in_line &&
      blocker_finish < opts_.early_start_rtts * opts_.rtt) {
    return demand;
  }
  return 0.0;
}

void PdqController::process(net::Packet& p) {
  if (p.type != net::PacketType::kData && p.type != net::PacketType::kProbe) {
    return;
  }
  prune_stale();
  Entry& e = find_or_insert(p);
  e.remaining = p.pdq.expected_remaining;
  e.deadline = p.pdq.deadline;
  e.demand = p.pdq.demand;
  e.last_seen = sim_->now();
  // The sender echoes the pauser it learned last round; a foreign pauser
  // means this flow consumes no capacity here.
  if (p.pdq.pauser != net::kInvalidNode && p.pdq.pauser != node_) {
    e.pauser = p.pdq.pauser;
  } else {
    e.pauser = net::kInvalidNode;
  }
  // Keep the criticality order correct after the remaining-size update.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].id == p.flow) {
      reposition(i);
      break;
    }
  }

  // Early termination: even the full link cannot meet the deadline.
  if (opts_.early_termination && p.pdq.deadline > 0.0) {
    const double best_finish =
        sim_->now() + p.pdq.expected_remaining * 8.0 / capacity_;
    if (best_finish > p.pdq.deadline) {
      p.pdq.terminated = true;
    }
  }

  if (p.fin) {
    // Grant the final packet whatever the header already carries and drop
    // our state; a retransmission would simply re-add it.
    erase_flow(p.flow);
    return;
  }
  if (p.pdq.paused) return;  // an upstream controller already paused it

  const double granted =
      allocate(p.flow, std::min(p.pdq.demand, capacity_));
  if (granted > 0.0) {
    p.pdq.rate = std::min(p.pdq.rate, granted);
  } else {
    p.pdq.rate = 0.0;
    p.pdq.paused = true;
    p.pdq.pauser = node_;
    for (auto& f : flows_) {
      if (f.id == p.flow) {
        f.pauser = node_;
        break;
      }
    }
  }
}

std::vector<std::unique_ptr<PdqController>> PdqController::attach(
    sim::Simulator& sim, net::Switch& sw, PdqOptions opts) {
  std::vector<std::unique_ptr<PdqController>> controllers;
  for (int port = 0; port < sw.num_ports(); ++port) {
    controllers.push_back(std::make_unique<PdqController>(
        sim, sw.id(), sw.port_link(port).rate_bps(), opts));
  }
  std::vector<PdqController*> raw;
  raw.reserve(controllers.size());
  for (auto& c : controllers) raw.push_back(c.get());
  sw.add_forward_hook([raw](net::Packet& p, int out_port) {
    raw[static_cast<std::size_t>(out_port)]->process(p);
  });
  return controllers;
}

// ---------------------------------------------------------------------------
// PdqSender

PdqSender::PdqSender(sim::Simulator& sim, net::Host& host, Flow flow,
                     PdqSenderOptions opts)
    : Sender(host, flow),
      sim_(&sim),
      opts_(opts),
      total_(flow.num_packets()),
      pace_timer_(sim, [this] { pace_next(); }),
      probe_timer_(sim, [this] { send_probe(); }),
      rto_timer_(sim, [this] { on_rto(); }) {
  assert(total_ > 0);
}

void PdqSender::fill_pdq(net::Packet& p) {
  p.pdq.rate = std::numeric_limits<double>::infinity();
  p.pdq.paused = false;
  p.pdq.deadline = flow().deadline;
  p.pdq.expected_remaining =
      static_cast<double>(flow().size_bytes) -
      static_cast<double>(snd_una_) * net::kMss;
  p.pdq.demand = host().nic_rate_bps();
  p.pdq.pauser = known_pauser_;
  p.deadline = flow().deadline;
}

void PdqSender::start() {
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kFlowCat, obs::EventType::kFlowStart, flow().id,
             static_cast<double>(flow().size_bytes), flow().deadline);
  }
  // 1-RTT setup: a SYN-like probe fetches the initial rate before any data
  // moves — the flow-switching cost arbitration-only designs pay.
  send_probe();
}

void PdqSender::send_probe() {
  auto p = net::make_control_packet(net::PacketType::kProbe, flow().id,
                                    flow().src, flow().dst);
  p->ts = sim_->now();
  fill_pdq(*p);
  host().send(std::move(p));
  probe_timer_.restart(opts_.probe_interval);
  if (!rto_timer_.pending()) rto_timer_.restart(opts_.min_rto);
}

void PdqSender::apply_feedback(const net::PdqHeader& h) {
  if (h.terminated && flow().deadline > 0.0) {
    pace_timer_.cancel();
    probe_timer_.cancel();
    rto_timer_.cancel();
    mark_terminated();
    return;
  }
  known_pauser_ = h.paused ? h.pauser : net::kInvalidNode;
  const double new_rate = h.paused || !std::isfinite(h.rate) ? 0.0 : h.rate;
  rate_ = new_rate;
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kEndpointCat, obs::EventType::kRateSample, flow().id, rate_,
             0.0, h.paused ? 1u : 0u);
  }
  if (rate_ > 0.0) {
    probe_timer_.cancel();
    if (!pacing_scheduled_ && next_to_send_ < total_) {
      pacing_scheduled_ = true;
      pace_timer_.restart(0.0);
    }
  } else {
    pace_timer_.cancel();
    pacing_scheduled_ = false;
    if (!probe_timer_.pending()) probe_timer_.restart(opts_.probe_interval);
  }
}

void PdqSender::process_cumulative_ack(const net::Packet& ack) {
  if (ack.ack_seq > snd_una_) {
    snd_una_ = ack.ack_seq;
    if (next_to_send_ < snd_una_) next_to_send_ = snd_una_;
    publish_bytes_left(static_cast<double>(flow().size_bytes) -
                       static_cast<double>(snd_una_) * net::kMss);
    if (snd_una_ >= total_) {
      pace_timer_.cancel();
      probe_timer_.cancel();
      rto_timer_.cancel();
      mark_finished();
      return;
    }
    rto_timer_.restart(opts_.min_rto);
  }
}

void PdqSender::deliver(net::PacketPtr p) {
  if (finished()) return;
  if (p->type != net::PacketType::kAck &&
      p->type != net::PacketType::kProbeAck) {
    return;
  }
  apply_feedback(p->pdq);
  if (finished()) return;  // terminated
  process_cumulative_ack(*p);
}

void PdqSender::pace_next() {
  pacing_scheduled_ = false;
  if (finished() || rate_ <= 0.0) return;
  if (next_to_send_ >= total_) return;  // all data out; wait for ACKs/RTO
  const std::uint32_t seq = next_to_send_++;
  auto p = net::make_data_packet(flow().id, flow().src, flow().dst, seq,
                                 flow().payload_of(seq));
  p->fin = (seq + 1 == total_);
  p->ts = sim_->now();
  fill_pdq(*p);
  ++packets_sent_;
  const auto wire_bytes = p->size_bytes;
  host().send(std::move(p));
  if (!rto_timer_.pending()) rto_timer_.restart(opts_.min_rto);
  if (next_to_send_ < total_) {
    pacing_scheduled_ = true;
    pace_timer_.restart(wire_bytes * 8.0 / rate_);
  }
}

void PdqSender::on_rto() {
  if (finished()) return;
  // Resume from the first unacknowledged packet.
  next_to_send_ = snd_una_;
  ++retransmissions_;
  if (rate_ > 0.0) {
    if (!pacing_scheduled_) {
      pacing_scheduled_ = true;
      pace_timer_.restart(0.0);
    }
  } else {
    send_probe();
  }
  rto_timer_.restart(opts_.min_rto);
}

}  // namespace pase::transport
