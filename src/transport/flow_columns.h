// Struct-of-arrays columns for the hot per-flow transport scalars.
//
// Every observer that used to poke into scattered heap-allocated sender
// objects (stats probes, tracing, capacity benches scanning live flows) now
// reads four dense double columns indexed by endpoint-table slot. Senders
// publish into their bound row from the ack path; a scan over live flows is
// a linear walk instead of a pointer chase through arena slots of varying
// concrete types.
//
// Rows are recycled with their slot: the workload resets a row on activation
// and nothing reads a row whose slot is free. Columns grow only when the
// live-slot table grows (never per flow), and in parallel runs growth happens
// only at barriers while domains are quiescent — concurrent senders then
// write disjoint rows, which is race-free.
#pragma once

#include <cstddef>
#include <vector>

namespace pase::transport {

struct FlowStateColumns {
  std::vector<double> cwnd;        // packets; 0 for rate-based senders (PDQ)
  std::vector<double> srtt;        // seconds; 0 until the first RTT sample
  std::vector<double> bytes_left;  // bytes not yet cumulatively acked
  std::vector<double> deadline;    // absolute deadline (s), 0 = none

  std::size_t size() const { return cwnd.size(); }

  void resize(std::size_t n) {
    cwnd.resize(n, 0.0);
    srtt.resize(n, 0.0);
    bytes_left.resize(n, 0.0);
    deadline.resize(n, 0.0);
  }

  // Re-initializes a recycled row for a newly activated flow.
  void reset_row(std::size_t row, double flow_bytes, double abs_deadline) {
    cwnd[row] = 0.0;
    srtt[row] = 0.0;
    bytes_left[row] = flow_bytes;
    deadline[row] = abs_deadline;
  }
};

}  // namespace pase::transport
