// L2DCT (Munir et al., INFOCOM'13): size-aware DCTCP that approximates
// least-attained-service scheduling from the endpoints.
//
// A flow's weight decays as it sends more data:
//   frac = min(1, bytes_sent / size_ref)
//   increase gain  k_c = k_max - (k_max - k_min) * frac   (short flows grow fast)
//   backoff weight b_c = b_min + (b_max - b_min) * frac   (long flows back off hard)
//   on a marked window: cwnd <- cwnd * (1 - alpha * b_c / 2)
// There is still no strict priority scheduling — every flow keeps sending at
// least one packet per RTT — which is exactly the limitation the paper's §2
// measures against PASE.
#pragma once

#include "transport/dctcp.h"

namespace pase::transport {

struct L2dctOptions {
  double k_min = 0.125;
  double k_max = 2.5;
  double b_min = 0.5;
  double b_max = 1.0;
  double size_ref_bytes = 500e3;  // weight saturates past this many bytes
};

class L2dctSender : public DctcpSender {
 public:
  L2dctSender(sim::Simulator& sim, net::Host& host, Flow flow,
              WindowSenderOptions wopts = {}, DctcpOptions dopts = {},
              L2dctOptions lopts = {});

  double weight_fraction() const;  // frac above

 protected:
  double ecn_decrease_factor() override;
  double increase_gain() override;

 private:
  L2dctOptions lopts_;
};

}  // namespace pase::transport
