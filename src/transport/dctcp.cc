#include "transport/dctcp.h"

#include "obs/trace.h"

namespace pase::transport {

DctcpSender::DctcpSender(sim::Simulator& sim, net::Host& host, Flow flow,
                         WindowSenderOptions wopts, DctcpOptions dopts)
    : WindowSender(sim, host, flow, wopts),
      dopts_(dopts),
      alpha_(dopts.initial_alpha),
      ssthresh_(wopts.max_cwnd) {}

void DctcpSender::on_ack(const net::Packet& ack) {
  ++acks_in_window_;
  if (ack.ecn_echo) ++marked_in_window_;

  if (ack.ack_seq >= window_end_) end_of_window_update();

  if (!ack.ecn_echo) increase_window();
}

void DctcpSender::increase_window() {
  if (in_slow_start()) {
    set_cwnd(cwnd() + 1.0);
  } else {
    set_cwnd(cwnd() + increase_gain() / cwnd());
  }
}

void DctcpSender::end_of_window_update() {
  const double frac =
      acks_in_window_ > 0
          ? static_cast<double>(marked_in_window_) / acks_in_window_
          : 0.0;
  alpha_ = (1.0 - dopts_.g) * alpha_ + dopts_.g * frac;
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kEndpointCat, obs::EventType::kAlphaSample, flow().id,
             alpha_, frac);
  }
  if (marked_in_window_ > 0) {
    set_cwnd(cwnd() * (1.0 - ecn_decrease_factor()));
    ssthresh_ = cwnd();  // marks end slow start
  }
  acks_in_window_ = 0;
  marked_in_window_ = 0;
  window_end_ = snd_next();
}

}  // namespace pase::transport
