#include "transport/pfabric.h"

namespace pase::transport {

PfabricSender::PfabricSender(sim::Simulator& sim, net::Host& host, Flow flow,
                             WindowSenderOptions wopts, PfabricOptions popts)
    : WindowSender(sim, host, flow, wopts),
      popts_(popts),
      full_cwnd_(wopts.init_cwnd) {}

void PfabricSender::on_ack(const net::Packet& ack) {
  (void)ack;
  consecutive_timeouts_ = 0;
  if (probe_mode_) {
    probe_mode_ = false;
    set_cwnd(full_cwnd_);
  }
}

void PfabricSender::handle_timeout() {
  ++consecutive_timeouts_;
  if (consecutive_timeouts_ >= popts_.probe_mode_timeouts) {
    probe_mode_ = true;
    set_cwnd(1.0);
  }
  // pFabric keeps its RTO small and fixed — no exponential backoff; recovery
  // is driven by the fabric's priority scheduling, not the endpoint.
  timeout_retransmit_fixed_window();
}

void PfabricSender::timeout_retransmit_fixed_window() {
  // pFabric's endpoints keep the window pinned: a timeout re-blasts the
  // entire unacknowledged window at line rate (the fabric's priority
  // dropping, not the endpoint, decides what survives). No cwnd collapse,
  // no timer backoff.
  record_timeout();
  rewind_to_una();
  try_send();
  restart_rto();
}

}  // namespace pase::transport
