// Transport agent interfaces.
//
// A flow is served by a Sender on its source host and a Receiver on its
// destination host. Both are PacketSinks registered with the host demux.
#pragma once

#include <cstdint>
#include <functional>

#include "net/host.h"
#include "transport/flow.h"
#include "transport/flow_columns.h"

namespace pase::transport {

class Sender : public net::PacketSink {
 public:
  Sender(net::Host& host, Flow flow) : host_(&host), flow_(flow) {}

  // Begins transmitting at the current simulation time.
  virtual void start() = 0;

  const Flow& flow() const { return flow_; }
  Flow& flow() { return flow_; }
  net::Host& host() { return *host_; }
  const net::Host& host() const { return *host_; }

  bool finished() const { return finished_; }
  // Set when the flow was killed before completing (PDQ early termination).
  bool terminated() const { return terminated_; }

  // Invoked once, when the last byte has been acknowledged (or the flow was
  // terminated early).
  std::function<void(Sender&)> on_complete;

  // Data packets this sender has put on the wire (incl. retransmissions).
  virtual std::uint64_t data_packets_sent() const { return 0; }
  // Loss-recovery probes sent (PASE/PDQ style); 0 for other protocols.
  virtual std::uint64_t probes_sent() const { return 0; }

  // Binds this sender to one row of the workload's SoA state columns
  // (transport/flow_columns.h); publish_* below become cheap stores into that
  // row. Unbound senders (tests and benches that build endpoints directly)
  // publish into nothing.
  void bind_state_columns(FlowStateColumns* cols, std::uint32_t row) {
    cols_ = cols;
    col_row_ = row;
  }

 protected:
  void publish_cwnd(double packets) {
    if (cols_) cols_->cwnd[col_row_] = packets;
  }
  void publish_srtt(double seconds) {
    if (cols_) cols_->srtt[col_row_] = seconds;
  }
  void publish_bytes_left(double bytes) {
    if (cols_) cols_->bytes_left[col_row_] = bytes;
  }
  void mark_finished() {
    if (finished_) return;
    finished_ = true;
    if (on_complete) on_complete(*this);
  }
  void mark_terminated() {
    terminated_ = true;
    mark_finished();
  }

 private:
  net::Host* host_;
  Flow flow_;
  bool finished_ = false;
  bool terminated_ = false;
  FlowStateColumns* cols_ = nullptr;
  std::uint32_t col_row_ = 0;
};

}  // namespace pase::transport
