// Transport agent interfaces.
//
// A flow is served by a Sender on its source host and a Receiver on its
// destination host. Both are PacketSinks registered with the host demux.
#pragma once

#include <functional>

#include "net/host.h"
#include "transport/flow.h"

namespace pase::transport {

class Sender : public net::PacketSink {
 public:
  Sender(net::Host& host, Flow flow) : host_(&host), flow_(flow) {}

  // Begins transmitting at the current simulation time.
  virtual void start() = 0;

  const Flow& flow() const { return flow_; }
  Flow& flow() { return flow_; }
  net::Host& host() { return *host_; }
  const net::Host& host() const { return *host_; }

  bool finished() const { return finished_; }
  // Set when the flow was killed before completing (PDQ early termination).
  bool terminated() const { return terminated_; }

  // Invoked once, when the last byte has been acknowledged (or the flow was
  // terminated early).
  std::function<void(Sender&)> on_complete;

  // Data packets this sender has put on the wire (incl. retransmissions).
  virtual std::uint64_t data_packets_sent() const { return 0; }
  // Loss-recovery probes sent (PASE/PDQ style); 0 for other protocols.
  virtual std::uint64_t probes_sent() const { return 0; }

 protected:
  void mark_finished() {
    if (finished_) return;
    finished_ = true;
    if (on_complete) on_complete(*this);
  }
  void mark_terminated() {
    terminated_ = true;
    mark_finished();
  }

 private:
  net::Host* host_;
  Flow flow_;
  bool finished_ = false;
  bool terminated_ = false;
};

}  // namespace pase::transport
