#include "transport/window_sender.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace pase::transport {

WindowSender::WindowSender(sim::Simulator& sim, net::Host& host, Flow flow,
                           WindowSenderOptions opts)
    : Sender(host, flow),
      sim_(&sim),
      opts_(opts),
      total_(flow.num_packets()),
      cwnd_(opts.init_cwnd),
      srtt_(opts.initial_rtt),
      rttvar_(opts.initial_rtt / 2),
      retransmitted_(flow.num_packets(), false),
      rto_timer_(sim, [this] { handle_timeout(); }) {
  assert(total_ > 0 && "empty flow");
  assert(host.id() == flow.src && "sender must live on the flow source");
}

void WindowSender::start() {
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    tb->emit(obs::kFlowCat, obs::EventType::kFlowStart, flow().id,
             static_cast<double>(flow().size_bytes), flow().deadline);
  }
  on_start();
  try_send();
}

void WindowSender::set_cwnd(double w) {
  cwnd_ = std::clamp(w, 1.0, opts_.max_cwnd);
  publish_cwnd(cwnd_);
}

sim::Time WindowSender::base_rto() const {
  return std::max(opts_.min_rto, srtt_ + 4 * rttvar_);
}

void WindowSender::restart_rto() {
  rto_timer_.restart(base_rto() * rto_backoff_);
}

void WindowSender::try_send() {
  if (finished()) return;
  const auto window =
      static_cast<std::uint32_t>(std::max(1.0, cwnd_)) + dup_inflation_;
  while (snd_next_ < total_ && in_flight() < window) {
    send_packet(snd_next_, /*is_retransmission=*/false);
    ++snd_next_;
  }
  if (in_flight() > 0 && !rto_timer_.pending()) restart_rto();
}

void WindowSender::send_packet(std::uint32_t seq, bool is_retransmission) {
  auto p = net::make_data_packet(flow().id, flow().src, flow().dst, seq,
                                 flow().payload_of(seq));
  p->fin = (seq + 1 == total_);
  p->ts = sim_->now();
  p->deadline = flow().deadline;
  p->remaining_size = remaining_bytes();
  fill_data(*p);
  ++packets_sent_;
  if (is_retransmission) {
    ++retransmissions_;
    retransmitted_[seq] = true;
  }
  host().send(std::move(p));
}

void WindowSender::deliver(net::PacketPtr p) {
  if (finished()) return;
  if (p->type == net::PacketType::kAck) process_ack(*p);
  // kProbeAck is ignored here; PASE overrides deliver() to use it.
}

void WindowSender::process_ack(const net::Packet& ack) {
  if (ack.ack_seq > snd_una_) {
    // New data acknowledged.
    snd_una_ = ack.ack_seq;
    dupacks_ = 0;
    dup_inflation_ = 0;
    rto_backoff_ = 1.0;
    if (ack.seq < total_ && !retransmitted_[ack.seq]) {
      // Karn's rule: only un-retransmitted packets give RTT samples.
      const sim::Time sample = sim_->now() - ack.echo_ts;
      if (sample > 0) {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
        srtt_ = 0.875 * srtt_ + 0.125 * sample;
        publish_srtt(srtt_);
      }
    }
    publish_bytes_left(remaining_bytes());
    if (snd_una_ >= total_) {
      rto_timer_.cancel();
      mark_finished();
      return;
    }
    if (in_recovery_) {
      if (snd_una_ >= recovery_point_) {
        in_recovery_ = false;
      } else {
        // Partial ACK: the next hole is known; retransmit it immediately.
        send_packet(snd_una_, /*is_retransmission=*/true);
      }
    }
    on_ack(ack);
    if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
      tb->emit(obs::kEndpointCat, obs::EventType::kCwndSample, flow().id,
               cwnd_, srtt_);
    }
    restart_rto();
  } else if (ack.ack_seq == snd_una_ && in_flight() > 0) {
    ++dupacks_;
    if (dupacks_ == opts_.dupack_threshold && !in_recovery_) {
      enter_recovery();
    } else if (in_recovery_ && dupacks_ > opts_.dupack_threshold) {
      // NewReno window inflation: every further dupack means a packet left
      // the network, so one new packet may enter and keep the pipe full.
      ++dup_inflation_;
    }
  }
  try_send();
}

void WindowSender::enter_recovery() {
  in_recovery_ = true;
  recovery_point_ = snd_next_;
  set_cwnd(cwnd_ * (1.0 - loss_decrease_factor()));
  send_packet(snd_una_, /*is_retransmission=*/true);
  restart_rto();
}

void WindowSender::timeout_retransmit() {
  record_timeout();
  backoff_rto();
  set_cwnd(1.0);
  in_recovery_ = false;
  dupacks_ = 0;
  dup_inflation_ = 0;
  send_packet(snd_una_, /*is_retransmission=*/true);
  restart_rto();
  on_timeout();
}

void WindowSender::handle_timeout() { timeout_retransmit(); }

}  // namespace pase::transport
