// Flow descriptor shared by all transports and the workload generator.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/simulator.h"

namespace pase::transport {

struct Flow {
  net::FlowId id = 0;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::uint64_t size_bytes = 0;
  sim::Time start_time = 0.0;
  sim::Time deadline = 0.0;  // absolute; 0 = no deadline
  // Task (coflow) this flow belongs to; 0 = none. Under task-aware
  // scheduling all flows of a task share its priority (paper §3.1.1 / [17]).
  std::uint64_t task_id = 0;
  bool background = false;   // long-running background flow (lowest priority)

  std::uint32_t num_packets() const {
    return static_cast<std::uint32_t>((size_bytes + net::kMss - 1) / net::kMss);
  }
  std::uint32_t payload_of(std::uint32_t seq) const {
    const std::uint64_t sent = static_cast<std::uint64_t>(seq) * net::kMss;
    const std::uint64_t left = size_bytes - sent;
    return static_cast<std::uint32_t>(left < net::kMss ? left : net::kMss);
  }
  bool has_deadline() const { return deadline > 0.0; }
};

}  // namespace pase::transport
