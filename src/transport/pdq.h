// PDQ (Hong et al., SIGCOMM'12): preemptive distributed quick flow scheduling.
//
// Arbitration lives in the data plane: every link has a PdqController that
// keeps per-flow state (remaining size, deadline) and, packet by packet,
// grants the link's capacity to the most critical flows — earliest deadline
// first, then smallest remaining size. Less critical flows are paused
// (rate 0) and keep probing. The sender paces packets at the minimum rate
// granted along the path, which the receiver echoes back in ACKs. Includes
// the paper's flow-switching optimizations: Early Start (grant the next flow
// when the blocking flow is within K RTTs of finishing) and Early Termination
// (kill flows whose deadline has become infeasible).
//
// The 1-RTT lag between a flow finishing and the next one learning its new
// rate is PDQ's "flow switching overhead" — the cost PASE's §2.1 experiment
// (our Fig. 2 bench) measures at high load.
#pragma once

#include <vector>

#include "net/switch.h"
#include "sim/timer.h"
#include "transport/agent.h"
#include "transport/pdq_options.h"

namespace pase::transport {

class PdqController {
 public:
  PdqController(sim::Simulator& sim, net::NodeId node, double capacity_bps,
                PdqOptions opts = {});

  // Inspects/updates the PDQ header of a forward-direction packet.
  void process(net::Packet& p);

  std::size_t active_flows() const { return flows_.size(); }

  // Convenience: builds a controller per output port of `sw` (each sized to
  // that port's link rate) and registers the forwarding hook. Returned
  // controllers are owned by the caller.
  static std::vector<std::unique_ptr<PdqController>> attach(
      sim::Simulator& sim, net::Switch& sw, PdqOptions opts = {});

 private:
  struct Entry {
    net::FlowId id;
    double remaining;     // bytes
    double deadline;      // absolute, 0 = none
    double demand;        // sender's max rate (bps)
    net::NodeId pauser;   // controller currently pausing this flow, if any
    sim::Time last_seen;
  };

  // True if a is more critical than b (EDF, then SJF, then flow id).
  static bool more_critical(const Entry& a, const Entry& b);

  Entry& find_or_insert(const net::Packet& p);
  void reposition(std::size_t idx);
  void erase_flow(net::FlowId id);
  void prune_stale();
  // Capacity available to `flow` after more-critical flows take their share.
  double allocate(net::FlowId flow, double demand);

  sim::Simulator* sim_;
  net::NodeId node_;
  double capacity_;
  PdqOptions opts_;
  std::vector<Entry> flows_;  // sorted, most critical first
  sim::Time last_prune_ = 0.0;
};

class PdqSender : public Sender {
 public:
  PdqSender(sim::Simulator& sim, net::Host& host, Flow flow,
            PdqSenderOptions opts = {});

  void start() override;
  void deliver(net::PacketPtr p) override;

  double rate_bps() const { return rate_; }
  bool paused() const { return rate_ <= 0.0; }
  std::uint32_t snd_una() const { return snd_una_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t data_packets_sent() const override { return packets_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  void fill_pdq(net::Packet& p);
  void send_probe();
  void apply_feedback(const net::PdqHeader& h);
  void process_cumulative_ack(const net::Packet& ack);
  void pace_next();
  void on_rto();

  sim::Simulator* sim_;
  PdqSenderOptions opts_;
  std::uint32_t total_;
  std::uint32_t snd_una_ = 0;
  std::uint32_t next_to_send_ = 0;
  double rate_ = 0.0;
  net::NodeId known_pauser_ = net::kInvalidNode;
  bool pacing_scheduled_ = false;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  sim::Timer pace_timer_;
  sim::Timer probe_timer_;
  sim::Timer rto_timer_;
};

}  // namespace pase::transport
