// pFabric endpoint (Alizadeh et al., SIGCOMM'13).
//
// "Minimal" rate control: flows blast at a fixed window (~BDP) and rely on
// the fabric's priority dropping + a very small RTO. Every data packet
// carries its flow's remaining size as the in-fabric priority. After
// `probe_mode_timeouts` consecutive RTOs the sender falls back to a
// one-packet probe window until an ACK arrives (pFabric's escape hatch from
// persistent congestion collapse).
#pragma once

#include "transport/window_sender.h"

namespace pase::transport {

struct PfabricOptions {
  int probe_mode_timeouts = 5;
};

class PfabricSender : public WindowSender {
 public:
  // Table 3: initCwnd = 38 pkts (BDP), minRTO = 1 ms (~3.3 RTT).
  static WindowSenderOptions default_window_options() {
    WindowSenderOptions o;
    o.init_cwnd = 38.0;
    o.min_rto = 1e-3;
    return o;
  }

  PfabricSender(sim::Simulator& sim, net::Host& host, Flow flow,
                WindowSenderOptions wopts = default_window_options(),
                PfabricOptions popts = {});

  bool in_probe_mode() const { return probe_mode_; }

 protected:
  void on_ack(const net::Packet& ack) override;
  double loss_decrease_factor() const override { return 0.0; }
  void handle_timeout() override;

 private:
  // Timeout retransmission without collapsing cwnd or backing off the timer.
  void timeout_retransmit_fixed_window();

  PfabricOptions popts_;
  double full_cwnd_;
  int consecutive_timeouts_ = 0;
  bool probe_mode_ = false;
};

}  // namespace pase::transport
