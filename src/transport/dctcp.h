// DCTCP (Alizadeh et al., SIGCOMM'10).
//
// The fabric marks CE when the instantaneous queue exceeds K; the receiver
// echoes marks per packet; the sender keeps an EWMA `alpha` of the marked
// fraction per window and, once per window containing marks, shrinks
// cwnd <- cwnd * (1 - alpha/2). D2TCP and L2DCT reuse all of this and only
// change the penalty/increase laws, so those knobs are virtual.
#pragma once

#include "transport/window_sender.h"

namespace pase::transport {

struct DctcpOptions {
  double g = 1.0 / 16.0;     // alpha EWMA gain
  double initial_alpha = 1.0;
};

class DctcpSender : public WindowSender {
 public:
  DctcpSender(sim::Simulator& sim, net::Host& host, Flow flow,
              WindowSenderOptions wopts = {}, DctcpOptions dopts = {});

  double alpha() const { return alpha_; }

 protected:
  void on_ack(const net::Packet& ack) override;

  // Multiplicative penalty applied at the end of a window that saw marks.
  // DCTCP: alpha/2. D2TCP: p/2 with p = alpha^d. L2DCT: (alpha * b_c)/2.
  virtual double ecn_decrease_factor() { return alpha_ / 2.0; }
  // Additive increase per ACK in congestion avoidance (divided by cwnd).
  virtual double increase_gain() { return 1.0; }
  // Window growth step applied on every unmarked ACK. Default: slow start
  // until the first mark, then additive increase. PASE replaces this with
  // queue-position-dependent behaviour (Algorithm 2).
  virtual void increase_window();

  bool in_slow_start() const { return cwnd() < ssthresh_; }

 private:
  void end_of_window_update();

  DctcpOptions dopts_;
  double alpha_;
  double ssthresh_;
  std::uint32_t window_end_ = 0;  // alpha observation window boundary
  std::uint32_t acks_in_window_ = 0;
  std::uint32_t marked_in_window_ = 0;
};

}  // namespace pase::transport
