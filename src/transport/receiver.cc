#include "transport/receiver.h"

#include <cassert>

#include "obs/trace.h"

namespace pase::transport {

Receiver::Receiver(sim::Simulator& sim, net::Host& host, Flow flow)
    : sim_(&sim),
      host_(&host),
      flow_(flow),
      total_(flow.num_packets()),
      received_(flow.num_packets(), false) {
  assert(host.id() == flow.dst && "receiver must live on the flow destination");
}

void Receiver::deliver(net::PacketPtr p) {
  switch (p->type) {
    case net::PacketType::kData:
      if (on_data) on_data(*p);
      break;
    case net::PacketType::kProbe:
      if (on_data) on_data(*p);
      send_ack(*p, net::PacketType::kProbeAck);
      return;
    default:
      return;  // stray packet (e.g. ACK misrouted); ignore
  }

  if (p->seq < total_ && !received_[p->seq]) {
    received_[p->seq] = true;
    ++received_count_;
    if (received_count_ == 1) {
      if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
        tb->emit(obs::kFlowCat, obs::EventType::kFlowFirstByte, flow_.id);
      }
    }
    while (next_expected_ < total_ && received_[next_expected_]) {
      ++next_expected_;
    }
    if (received_count_ == total_) {
      completion_time_ = sim_->now();
      if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
        tb->emit(obs::kFlowCat, obs::EventType::kFlowComplete, flow_.id,
                 completion_time_ - flow_.start_time);
        if (flow_.has_deadline() && completion_time_ > flow_.deadline) {
          tb->emit(obs::kFlowCat, obs::EventType::kFlowDeadlineMiss, flow_.id,
                   completion_time_ - flow_.deadline);
        }
      }
      if (on_complete) on_complete(*this);
    }
  } else {
    ++duplicates_;
  }
  send_ack(*p, net::PacketType::kAck);
}

void Receiver::send_ack(const net::Packet& data, net::PacketType type) {
  auto ack = net::make_control_packet(type, flow_.id, flow_.dst, flow_.src);
  ack->ack_seq = next_expected_;
  ack->seq = data.seq;  // which packet this ACK answers (dupack detection)
  ack->ecn_echo = data.ecn_ce;
  ack->ecn_capable = false;   // ACKs are not marked
  ack->echo_ts = data.ts;
  ack->pdq = data.pdq;        // PDQ decisions travel back to the sender
  ack->priority = 0;          // small control packets ride the top class
  ack->remaining_size = 0.0;  // ...and win in pFabric queues
  host_->send(std::move(ack));
}

}  // namespace pase::transport
