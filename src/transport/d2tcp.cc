#include "transport/d2tcp.h"

#include <algorithm>
#include <cmath>

namespace pase::transport {

D2tcpSender::D2tcpSender(sim::Simulator& sim, net::Host& host, Flow flow,
                         WindowSenderOptions wopts, DctcpOptions dopts,
                         D2tcpOptions d2opts)
    : DctcpSender(sim, host, flow, wopts, dopts), d2opts_(d2opts) {}

double D2tcpSender::urgency() const {
  if (!flow().has_deadline()) return 1.0;
  const double time_left = flow().deadline - sim_->now();
  if (time_left <= 0.0) return 1.0;  // deadline already missed: plain DCTCP
  const double rate_bps = cwnd() * net::kMss * 8.0 / srtt();
  if (rate_bps <= 0.0) return d2opts_.d_max;
  const double time_to_complete = remaining_bytes() * 8.0 / rate_bps;
  return std::clamp(time_to_complete / time_left, d2opts_.d_min,
                    d2opts_.d_max);
}

double D2tcpSender::ecn_decrease_factor() {
  const double p = std::pow(alpha(), urgency());
  return p / 2.0;
}

}  // namespace pase::transport
