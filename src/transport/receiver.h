// Protocol-agnostic receiver.
//
// Acks every data packet with a cumulative acknowledgement (next expected
// packet index), echoing the fields each protocol needs on the reverse path:
// ECN CE -> ECN-Echo (DCTCP family), the PDQ header (rate/pause decisions
// accumulated along the forward path) and the sender timestamp. Probe packets
// (PASE loss recovery, PDQ paused-flow probes) are answered with probe-acks
// that carry the same cumulative state. Completion time is recorded when the
// last data packet arrives — that instant defines the flow completion time
// used by every experiment.
#pragma once

#include <functional>
#include <vector>

#include "net/host.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace pase::transport {

class Receiver : public net::PacketSink {
 public:
  Receiver(sim::Simulator& sim, net::Host& host, Flow flow);

  void deliver(net::PacketPtr p) override;

  const Flow& flow() const { return flow_; }
  bool complete() const { return received_count_ == total_; }
  sim::Time completion_time() const { return completion_time_; }
  std::uint32_t next_expected() const { return next_expected_; }
  std::uint64_t duplicate_packets() const { return duplicates_; }

  // Invoked once when the final data packet arrives.
  std::function<void(Receiver&)> on_complete;

  // Invoked for every arriving data/probe packet, before the ACK goes out.
  // PASE's control plane uses this to drive receiver-side arbitration.
  std::function<void(const net::Packet&)> on_data;

 private:
  void send_ack(const net::Packet& data, net::PacketType type);

  sim::Simulator* sim_;
  net::Host* host_;
  Flow flow_;
  std::uint32_t total_;
  std::vector<bool> received_;
  std::uint32_t received_count_ = 0;
  std::uint32_t next_expected_ = 0;
  std::uint64_t duplicates_ = 0;
  sim::Time completion_time_ = -1.0;
};

}  // namespace pase::transport
