// PDQ knobs, split from pdq.h so configuration-only headers (profile params,
// scenario configs) can name them without pulling in the controller/sender
// machinery.
#pragma once

#include "sim/simulator.h"

namespace pase::transport {

struct PdqOptions {
  double utilization = 0.98;    // fraction of capacity handed out
  sim::Time rtt = 300e-6;       // RTT estimate for Early Start
  double early_start_rtts = 1;  // K: grant next flow if blocker ends within K RTTs
  sim::Time entry_timeout = 10e-3;  // GC for flows that vanished silently
  bool early_start = true;
  bool early_termination = true;
};

struct PdqSenderOptions {
  sim::Time min_rto = 10e-3;
  sim::Time initial_rtt = 300e-6;
  sim::Time probe_interval = 1.5e-3;  // paused flows probe every ~5 RTTs
};

}  // namespace pase::transport
