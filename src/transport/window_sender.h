// Reliable, self-clocked, window-based sender.
//
// Provides the mechanics every endpoint protocol shares: a packet-granularity
// sequence space, cumulative ACK processing, RTT estimation, retransmission
// timeouts with exponential backoff, and NewReno-style fast retransmit
// (one hole per dupack episode, immediate retransmit on partial ACKs).
// Congestion control is delegated to subclasses via virtual hooks.
#pragma once

#include <algorithm>
#include <vector>

#include "sim/timer.h"
#include "transport/agent.h"

namespace pase::transport {

struct WindowSenderOptions {
  // ns-2-era TCP default; DCTCP/D2TCP/L2DCT ramp from here via slow start.
  double init_cwnd = 3.0;      // packets
  double max_cwnd = 1e6;       // packets
  sim::Time min_rto = 10e-3;   // paper Table 3 default for DCTCP family
  double max_rto_backoff = 64.0;
  int dupack_threshold = 3;
  sim::Time initial_rtt = 300e-6;  // seeds srtt before the first sample
};

class WindowSender : public Sender {
 public:
  WindowSender(sim::Simulator& sim, net::Host& host, Flow flow,
               WindowSenderOptions opts);

  void start() override;
  void deliver(net::PacketPtr p) override;

  // Introspection (tests, stats).
  double cwnd() const { return cwnd_; }
  std::uint32_t snd_una() const { return snd_una_; }
  std::uint32_t snd_next() const { return snd_next_; }
  std::uint32_t total_packets() const { return total_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t data_packets_sent() const override { return packets_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  sim::Time srtt() const { return srtt_; }
  std::uint64_t bytes_acked() const {
    return static_cast<std::uint64_t>(snd_una_) * net::kMss;
  }
  double remaining_bytes() const {
    return static_cast<double>(flow().size_bytes) -
           static_cast<double>(bytes_acked());
  }

 protected:
  // --- hooks for congestion-control subclasses -----------------------------
  // Called once when the flow starts, before the first packet goes out.
  virtual void on_start() {}
  // Called for every ACK that acknowledges new data; adjust cwnd here.
  virtual void on_ack(const net::Packet& ack) { (void)ack; }
  // Multiplicative decrease applied on entering fast recovery (0.5 = halve).
  virtual double loss_decrease_factor() const { return 0.5; }
  // Called after the base handles a retransmission timeout.
  virtual void on_timeout() {}
  // Lets protocols stamp priority / remaining size / deadline / PDQ fields.
  virtual void fill_data(net::Packet& p) { (void)p; }
  // Full override point for RTO behaviour (PASE probes instead of data).
  virtual void handle_timeout();
  // RTO interval before backoff.
  virtual sim::Time base_rto() const;

  // --- services for subclasses ---------------------------------------------
  void set_cwnd(double w);
  // Sends as much as the window allows. Virtual so protocols can gate
  // transmission (PASE holds new packets while a priority barrier drains).
  virtual void try_send();
  // (Re)transmits one specific packet.
  void send_packet(std::uint32_t seq, bool is_retransmission);
  void restart_rto();
  sim::Simulator& simulator() { return *sim_; }
  const WindowSenderOptions& options() const { return opts_; }
  std::uint32_t in_flight() const { return snd_next_ - snd_una_; }
  double rto_backoff() const { return rto_backoff_; }
  bool in_recovery() const { return in_recovery_; }
  // Retransmits the data packet at snd_una and applies timeout bookkeeping;
  // used by PASE when a probe confirms an actual loss.
  void timeout_retransmit();
  void record_timeout() { ++timeouts_; }
  // Rewinds the send pointer to the first unacknowledged packet so the next
  // try_send() re-emits the whole window (pFabric's SACK-free re-blast).
  void rewind_to_una() { snd_next_ = snd_una_; }
  void backoff_rto() {
    rto_backoff_ = std::min(rto_backoff_ * 2.0, opts_.max_rto_backoff);
  }

  sim::Simulator* sim_;

 private:
  void process_ack(const net::Packet& ack);
  void enter_recovery();

  WindowSenderOptions opts_;
  std::uint32_t total_;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_next_ = 0;
  double cwnd_;
  int dupacks_ = 0;
  std::uint32_t dup_inflation_ = 0;  // NewReno inflation during recovery
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  double rto_backoff_ = 1.0;
  sim::Time srtt_;
  sim::Time rttvar_;
  std::vector<bool> retransmitted_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
  sim::Timer rto_timer_;
};

}  // namespace pase::transport
