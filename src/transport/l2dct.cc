#include "transport/l2dct.h"

#include <algorithm>

namespace pase::transport {

L2dctSender::L2dctSender(sim::Simulator& sim, net::Host& host, Flow flow,
                         WindowSenderOptions wopts, DctcpOptions dopts,
                         L2dctOptions lopts)
    : DctcpSender(sim, host, flow, wopts, dopts), lopts_(lopts) {}

double L2dctSender::weight_fraction() const {
  return std::min(1.0, static_cast<double>(bytes_acked()) /
                           lopts_.size_ref_bytes);
}

double L2dctSender::increase_gain() {
  const double frac = weight_fraction();
  return lopts_.k_max - (lopts_.k_max - lopts_.k_min) * frac;
}

double L2dctSender::ecn_decrease_factor() {
  const double frac = weight_fraction();
  const double b = lopts_.b_min + (lopts_.b_max - lopts_.b_min) * frac;
  return std::min(0.5, alpha() * b / 2.0);
}

}  // namespace pase::transport
