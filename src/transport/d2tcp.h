// D2TCP (Vamanan et al., SIGCOMM'12): deadline-aware DCTCP.
//
// The ECN penalty is gamma-corrected by deadline urgency:
//   d = clamp(Tc / D, d_min, d_max)   (Tc = time to finish at current rate,
//                                      D = time left until the deadline)
//   p = alpha^d,  cwnd <- cwnd * (1 - p/2)
// Far-deadline flows (d < 1) back off harder, near-deadline flows (d > 1)
// back off less. Flows without deadlines behave exactly like DCTCP (d = 1).
#pragma once

#include "transport/dctcp.h"

namespace pase::transport {

struct D2tcpOptions {
  double d_min = 0.5;
  double d_max = 2.0;
};

class D2tcpSender : public DctcpSender {
 public:
  D2tcpSender(sim::Simulator& sim, net::Host& host, Flow flow,
              WindowSenderOptions wopts = {}, DctcpOptions dopts = {},
              D2tcpOptions d2opts = {});

  double urgency() const;  // current d

 protected:
  double ecn_decrease_factor() override;

 private:
  D2tcpOptions d2opts_;
};

}  // namespace pase::transport
