// Fixed-memory streaming statistics over flow outcomes.
//
// The exact pipeline keeps one FlowRecord per flow and computes metrics by
// sorting FCT vectors — fine at the paper's ~1200 flows, fatal at 10^6. This
// header provides the streaming alternative selected by
// ScenarioConfig::stats_mode: every completed (or abandoned) flow is folded
// into a few hundred bytes of state and then forgotten, so statistics memory
// is O(1) in the flow count.
//
//   - P2Quantile: the P-squared algorithm (Jain & Chlamtac, CACM 1985) — five
//     markers tracking one quantile with piecewise-parabolic adjustment.
//     Cheap (O(1) per sample) but heuristic; exported as advisory metrics.
//   - LogHistogram: fixed-size log-bucketed counts. percentile() walks the
//     cumulative counts to the bucket holding the requested rank, so its
//     error is bounded by one bucket width by construction — this is the
//     representation ScenarioResult's fct_p99()/fct_cdf() report in
//     streaming mode, and the bound the exact-vs-streaming tolerance tests
//     pin (see tests/streaming_stats_test.cc).
//   - StreamingFlowStats: the FlowRecord sink — running mean/count for AFCT,
//     deadline hit/miss counters for application throughput, unfinished and
//     terminated counts, plus the sketches above for the FCT distribution.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/flow_stats.h"
#include "stats/summary.h"

namespace pase::stats {

// P-squared single-quantile estimator. add() is O(1); value() is exact until
// the fifth sample, then the piecewise-parabolic estimate.
class P2Quantile {
 public:
  explicit P2Quantile(double q) : q_(q) {}

  void add(double x);
  double value() const;
  std::uint64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double q_;
  std::uint64_t count_ = 0;
  std::array<double, 5> height_{};   // marker heights (sorted)
  std::array<double, 5> pos_{};      // actual marker positions (1-based)
  std::array<double, 5> desired_{};  // desired marker positions
  std::array<double, 5> incr_{};     // desired-position increments
};

// Log-spaced fixed-geometry histogram for positive values. Values below
// min_value land in bucket 0, values at or above max_value in the last
// bucket; geometry never adapts, so two histograms built from the same
// stream are identical regardless of arrival order.
class LogHistogram {
 public:
  LogHistogram(double min_value = 1e-7, double max_value = 1e4,
               int buckets_per_decade = 48);

  void add(double x);

  std::uint64_t count() const { return count_; }
  std::size_t num_buckets() const { return counts_.size(); }
  int bucket_of(double x) const;
  double bucket_lo(int b) const;
  double bucket_hi(int b) const;
  std::uint64_t bucket_count(int b) const {
    return counts_[static_cast<std::size_t>(b)];
  }

  // Nearest-rank percentile, reported as the geometric midpoint of the
  // bucket containing the rank: |reported - exact| is bounded by one bucket
  // (a factor of 10^(1/buckets_per_decade) ≈ 4.9% at the default geometry).
  double percentile(double p) const;

  // Empirical CDF sampled at num_points evenly spaced fractions, mirroring
  // stats::fct_cdf over full record vectors.
  std::vector<CdfPoint> cdf(int num_points) const;

  // One bucket width in log space: reported percentiles are within this
  // multiplicative factor of the exact order statistic.
  double bucket_ratio() const { return ratio_; }

 private:
  double min_value_;
  double log_min_;
  double inv_log_ratio_;
  double ratio_;
  std::uint64_t count_ = 0;
  std::vector<std::uint64_t> counts_;
};

// The streaming replacement for a std::vector<FlowRecord>: fold every flow's
// final record exactly once (completed, terminated, or still unfinished at
// run end) and read the paper's metrics back in O(1) memory. Mirrors the
// semantics of stats/summary.h over full record vectors: background flows
// are excluded from FCT statistics, unfinished deadline flows count as
// missed, terminated flows are not "unfinished".
class StreamingFlowStats {
 public:
  void add(const FlowRecord& rec);

  // --- the summary.h metric set -------------------------------------------
  double afct() const {
    return completed_ == 0 ? 0.0
                           : fct_sum_ / static_cast<double>(completed_);
  }
  // p in [0, 100]; histogram-backed (error ≤ one bucket).
  double fct_percentile(double p) const { return hist_.percentile(p); }
  double application_throughput() const {
    return with_deadline_ == 0 ? 1.0
                               : static_cast<double>(met_deadline_) /
                                     static_cast<double>(with_deadline_);
  }
  std::size_t unfinished() const { return unfinished_; }
  std::vector<CdfPoint> fct_cdf(int num_points) const {
    return hist_.cdf(num_points);
  }

  // --- bookkeeping ---------------------------------------------------------
  std::uint64_t total_flows() const { return total_; }
  std::uint64_t completed_flows() const { return completed_; }
  std::uint64_t terminated_flows() const { return terminated_; }
  std::uint64_t background_flows() const { return background_; }
  std::uint64_t deadline_flows() const { return with_deadline_; }
  std::uint64_t deadline_met() const { return met_deadline_; }
  double fct_min() const { return completed_ ? fct_min_ : 0.0; }
  double fct_max() const { return completed_ ? fct_max_ : 0.0; }

  // Advisory P-squared marker estimates (O(1) but heuristic; the histogram
  // is the reported representation).
  double p2_p50() const { return p50_.value(); }
  double p2_p95() const { return p95_.value(); }
  double p2_p99() const { return p99_.value(); }

  const LogHistogram& histogram() const { return hist_; }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t completed_ = 0;   // non-background completions
  std::uint64_t unfinished_ = 0;  // non-background, never finished, not killed
  std::uint64_t terminated_ = 0;
  std::uint64_t background_ = 0;
  std::uint64_t with_deadline_ = 0;
  std::uint64_t met_deadline_ = 0;
  double fct_sum_ = 0.0;
  double fct_min_ = 0.0;
  double fct_max_ = 0.0;
  P2Quantile p50_{0.50};
  P2Quantile p95_{0.95};
  P2Quantile p99_{0.99};
  LogHistogram hist_;
};

}  // namespace pase::stats
