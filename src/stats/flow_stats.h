// Per-flow outcome record, the raw material of every experiment metric.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/simulator.h"

namespace pase::stats {

struct FlowRecord {
  net::FlowId id = 0;
  std::uint64_t size_bytes = 0;
  sim::Time start = 0.0;
  sim::Time finish = -1.0;   // receiver-side completion; -1 = never finished
  sim::Time deadline = 0.0;  // absolute; 0 = none
  bool background = false;
  bool terminated = false;   // killed early (PDQ early termination)

  bool completed() const { return finish >= 0.0; }
  sim::Time fct() const { return finish - start; }
  bool met_deadline() const {
    return deadline <= 0.0 || (completed() && finish <= deadline);
  }
};

}  // namespace pase::stats
