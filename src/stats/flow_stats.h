// Per-flow outcome record, the raw material of every experiment metric.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/dcheck.h"
#include "sim/simulator.h"

namespace pase::stats {

struct FlowRecord {
  net::FlowId id = 0;
  std::uint64_t size_bytes = 0;
  sim::Time start = 0.0;
  sim::Time finish = -1.0;   // receiver-side completion; -1 = never finished
  sim::Time deadline = 0.0;  // absolute; 0 = none
  bool background = false;
  bool terminated = false;   // killed early (PDQ early termination)

  bool completed() const { return finish >= 0.0; }
  // Completion time; only meaningful for completed flows. Asking for the FCT
  // of a never-finished flow used to silently return a negative duration —
  // now it trips a debug check so the bug surfaces at the call site.
  sim::Time fct() const {
    PASE_DCHECK(completed() && "fct() on a flow that never finished");
    return finish - start;
  }
  // A deadline-carrying flow meets its deadline only by completing in time:
  // flows that never finished — including PDQ-terminated ones — count as
  // missed, explicitly, not just via completed() falling through.
  bool met_deadline() const {
    if (deadline <= 0.0) return true;  // no deadline to miss
    return completed() && finish <= deadline;
  }
  bool missed_deadline() const { return deadline > 0.0 && !met_deadline(); }
};

}  // namespace pase::stats
