#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pase::stats {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double percentile(std::span<double> xs, double p) {
  if (xs.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  // Partial selection instead of a full sort: place the lo-th order
  // statistic, then the interpolation partner is the minimum of the tail.
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(lo),
                   xs.end());
  const double v_lo = xs[lo];
  const double v_hi =
      hi == lo ? v_lo
               : *std::min_element(xs.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                                   xs.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

std::vector<double> fcts(const std::vector<FlowRecord>& records) {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    if (!r.background && r.completed()) out.push_back(r.fct());
  }
  return out;
}

double afct(const std::vector<FlowRecord>& records) {
  return mean(fcts(records));
}

double fct_percentile(const std::vector<FlowRecord>& records, double p) {
  std::vector<double> xs = fcts(records);
  return percentile(xs, p);
}

double application_throughput(const std::vector<FlowRecord>& records) {
  std::size_t with_deadline = 0;
  std::size_t met = 0;
  for (const auto& r : records) {
    if (r.background || r.deadline <= 0.0) continue;
    ++with_deadline;
    if (r.completed() && r.finish <= r.deadline) ++met;
  }
  if (with_deadline == 0) return 1.0;
  return static_cast<double>(met) / static_cast<double>(with_deadline);
}

std::size_t unfinished(const std::vector<FlowRecord>& records) {
  std::size_t n = 0;
  for (const auto& r : records) {
    // Early-terminated flows were deliberately killed, not left behind.
    if (!r.background && !r.completed() && !r.terminated) ++n;
  }
  return n;
}

std::vector<CdfPoint> fct_cdf(const std::vector<FlowRecord>& records,
                              int num_points) {
  std::vector<double> xs = fcts(records);
  std::vector<CdfPoint> out;
  if (xs.empty() || num_points <= 0) return out;
  std::sort(xs.begin(), xs.end());
  out.reserve(static_cast<std::size_t>(num_points));
  for (int i = 1; i <= num_points; ++i) {
    const double frac = static_cast<double>(i) / num_points;
    const auto idx = static_cast<std::size_t>(
        std::ceil(frac * static_cast<double>(xs.size())) - 1);
    out.push_back(CdfPoint{xs[idx], frac});
  }
  return out;
}

}  // namespace pase::stats
