#include "stats/streaming.h"

#include <algorithm>
#include <cmath>

namespace pase::stats {

// ---------------------------------------------------------------------------
// P2Quantile (Jain & Chlamtac 1985, "The P² algorithm for dynamic
// calculation of quantiles and histograms without storing observations")

void P2Quantile::add(double x) {
  if (count_ < 5) {
    height_[count_++] = x;
    if (count_ == 5) {
      std::sort(height_.begin(), height_.end());
      for (int i = 0; i < 5; ++i) pos_[i] = i + 1;
      desired_ = {1.0, 1.0 + 2.0 * q_, 1.0 + 4.0 * q_, 3.0 + 2.0 * q_, 5.0};
      incr_ = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
    }
    return;
  }
  ++count_;

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = std::max(height_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += incr_[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    const double below = pos_[i] - pos_[i - 1];
    const double above = pos_[i + 1] - pos_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction...
      const double hp =
          height_[i] +
          s / (pos_[i + 1] - pos_[i - 1]) *
              ((below + s) * (height_[i + 1] - height_[i]) / above +
               (above - s) * (height_[i] - height_[i - 1]) / below);
      // ...falling back to linear when it would leave the bracket.
      if (height_[i - 1] < hp && hp < height_[i + 1]) {
        height_[i] = hp;
      } else {
        const int j = i + static_cast<int>(s);
        height_[i] += s * (height_[j] - height_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    std::array<double, 5> h = height_;
    std::sort(h.begin(), h.begin() + count_);
    const double rank = q_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return h[lo] * (1.0 - frac) + h[hi] * frac;
  }
  return height_[2];
}

// ---------------------------------------------------------------------------
// LogHistogram

LogHistogram::LogHistogram(double min_value, double max_value,
                           int buckets_per_decade)
    : min_value_(min_value), log_min_(std::log10(min_value)) {
  const double decades = std::log10(max_value) - log_min_;
  const auto n =
      static_cast<std::size_t>(std::ceil(decades * buckets_per_decade)) + 1;
  counts_.assign(n, 0);
  inv_log_ratio_ = buckets_per_decade;  // buckets per decade == 1/log10(ratio)
  ratio_ = std::pow(10.0, 1.0 / buckets_per_decade);
}

int LogHistogram::bucket_of(double x) const {
  if (!(x > min_value_)) return 0;
  const double b = (std::log10(x) - log_min_) * inv_log_ratio_;
  const auto i = static_cast<std::size_t>(b);
  return static_cast<int>(std::min(i, counts_.size() - 1));
}

double LogHistogram::bucket_lo(int b) const {
  return std::pow(10.0, log_min_ + static_cast<double>(b) / inv_log_ratio_);
}

double LogHistogram::bucket_hi(int b) const { return bucket_lo(b + 1); }

void LogHistogram::add(double x) {
  ++counts_[static_cast<std::size_t>(bucket_of(x))];
  ++count_;
}

double LogHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  // Nearest-rank over the cumulative counts (rank is 1-based).
  const double want = p / 100.0 * static_cast<double>(count_);
  const auto rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(want)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    cum += counts_[b];
    if (cum >= rank) {
      // Geometric midpoint: at most half a bucket from either edge.
      const int i = static_cast<int>(b);
      return std::sqrt(bucket_lo(i) * bucket_hi(i));
    }
  }
  return bucket_hi(static_cast<int>(counts_.size()) - 1);
}

std::vector<CdfPoint> LogHistogram::cdf(int num_points) const {
  std::vector<CdfPoint> out;
  if (count_ == 0 || num_points <= 0) return out;
  out.reserve(static_cast<std::size_t>(num_points));
  for (int i = 1; i <= num_points; ++i) {
    const double frac = static_cast<double>(i) / num_points;
    out.push_back(CdfPoint{percentile(frac * 100.0), frac});
  }
  return out;
}

// ---------------------------------------------------------------------------
// StreamingFlowStats

void StreamingFlowStats::add(const FlowRecord& rec) {
  ++total_;
  if (rec.background) {
    ++background_;
    return;
  }
  if (rec.terminated) ++terminated_;
  if (rec.deadline > 0.0) {
    ++with_deadline_;
    if (rec.met_deadline()) ++met_deadline_;
  }
  if (!rec.completed()) {
    if (!rec.terminated) ++unfinished_;
    return;
  }
  const double fct = rec.fct();
  ++completed_;
  fct_sum_ += fct;
  fct_min_ = completed_ == 1 ? fct : std::min(fct_min_, fct);
  fct_max_ = completed_ == 1 ? fct : std::max(fct_max_, fct);
  p50_.add(fct);
  p95_.add(fct);
  p99_.add(fct);
  hist_.add(fct);
}

}  // namespace pase::stats
