// Metric computation over flow records: AFCT, tail percentiles, CDFs,
// deadline-based application throughput — the paper's evaluation metrics.
#pragma once

#include <span>
#include <vector>

#include "stats/flow_stats.h"

namespace pase::stats {

// Generic order statistics.
double mean(const std::vector<double>& xs);
// p in [0, 100]; interpolated percentile. Takes the values by span and
// partially sorts them IN PLACE (nth_element) — O(n) instead of the full
// sort-of-a-copy this function used to do, which copied the entire FCT
// vector on every tail-percentile call.
double percentile(std::span<double> xs, double p);

// Completed, non-background flow completion times (seconds).
std::vector<double> fcts(const std::vector<FlowRecord>& records);

// Average FCT over completed non-background flows; flows that never finished
// are excluded (callers should report them separately).
double afct(const std::vector<FlowRecord>& records);
double fct_percentile(const std::vector<FlowRecord>& records, double p);

// Fraction of deadline-carrying flows that finished by their deadline.
// Unfinished or terminated flows count as missed.
double application_throughput(const std::vector<FlowRecord>& records);

// Number of non-background flows that never completed.
std::size_t unfinished(const std::vector<FlowRecord>& records);

// Empirical CDF evaluated at the given FCT values (seconds): fraction of
// completed short flows with fct <= x.
struct CdfPoint {
  double x;
  double fraction;
};
std::vector<CdfPoint> fct_cdf(const std::vector<FlowRecord>& records,
                              int num_points = 50);

}  // namespace pase::stats
