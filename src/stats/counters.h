// Fabric telemetry: periodic sampling of queue occupancy and link
// utilization over a topology. Useful for diagnosing experiments (where does
// the backlog live? is the bottleneck saturated?) and for the examples.
//
// FabricTelemetry samples on the typed raw-event path (no heap closures) and
// can fold its observations into an obs::MetricsRegistry: one gauge series
// per queue (occupancy) plus per-queue drop / ECN-mark counters.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/dcheck.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace pase::stats {

struct QueueSampleSeries {
  std::string name;
  std::vector<std::size_t> occupancy_pkts;  // one entry per sample tick

  std::size_t max_occupancy() const {
    return occupancy_pkts.empty()
               ? 0
               : *std::max_element(occupancy_pkts.begin(),
                                   occupancy_pkts.end());
  }
  double mean_occupancy() const {
    if (occupancy_pkts.empty()) return 0.0;
    double sum = 0;
    for (auto v : occupancy_pkts) sum += static_cast<double>(v);
    return sum / static_cast<double>(occupancy_pkts.size());
  }
};

// Canonical queue order and names for a topology: host uplinks first, then
// every switch port, matching Topology::for_each_queue. Also stamps each
// queue's trace id with its index so packet drop/mark trace events can be
// attributed to a named queue.
inline std::vector<std::string> label_fabric_queues(topo::Topology& topo) {
  std::vector<std::string> names;
  for (const auto& h : topo.hosts()) names.push_back(h->name() + ".up");
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      names.push_back(sw->port_link(p).name());
    }
  }
  std::uint32_t i = 0;
  topo.for_each_queue([&i](net::Queue& q) { q.set_trace_id(i++); });
  PASE_DCHECK(i == names.size() && "queue walk disagrees with labels");
  return names;
}

// Samples every queue in a topology at a fixed period while the simulation
// runs. Construct before sim.run(); read the series afterwards.
class FabricTelemetry {
 public:
  FabricTelemetry(sim::Simulator& sim, topo::Topology& topo,
                  sim::Time period = 100e-6)
      : sim_(&sim), topo_(&topo), period_(period) {
    const auto names = label_fabric_queues(topo);
    series_.resize(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) series_[i].name = names[i];
    schedule_next();
  }

  void stop() { stopped_ = true; }

  std::size_t num_samples() const { return samples_; }
  const std::vector<QueueSampleSeries>& series() const { return series_; }

  // Largest backlog observed anywhere in the fabric.
  std::size_t peak_occupancy() const {
    std::size_t peak = 0;
    for (const auto& s : series_) peak = std::max(peak, s.max_occupancy());
    return peak;
  }

  // The queue with the highest mean backlog — usually the bottleneck.
  const QueueSampleSeries* busiest() const {
    const QueueSampleSeries* best = nullptr;
    for (const auto& s : series_) {
      if (best == nullptr || s.mean_occupancy() > best->mean_occupancy()) {
        best = &s;
      }
    }
    return best;
  }

  // Exports everything observed so far into a metrics registry:
  //   fabric.queue.<name>.occupancy   gauge series (packets per tick)
  //   fabric.queue.<name>.drops       counter
  //   fabric.queue.<name>.marks       counter
  //   fabric.drops / fabric.marks / fabric.enqueues   aggregate counters
  void fold_into(obs::MetricsRegistry& reg) const {
    std::uint64_t drops = 0, marks = 0, enqueues = 0;
    std::size_t i = 0;
    topo_->for_each_queue([&](net::Queue& q) {
      const auto& s = series_[i++];
      auto& occ = reg.series("fabric.queue." + s.name + ".occupancy");
      occ.assign(s.occupancy_pkts.begin(), s.occupancy_pkts.end());
      reg.counter("fabric.queue." + s.name + ".drops") = q.drops();
      reg.counter("fabric.queue." + s.name + ".marks") = q.marks();
      drops += q.drops();
      marks += q.marks();
      enqueues += q.enqueues();
    });
    reg.counter("fabric.drops") = drops;
    reg.counter("fabric.marks") = marks;
    reg.counter("fabric.enqueues") = enqueues;
  }

 private:
  // Sampling rides the allocation-free raw-event path: a fn-pointer trampoline
  // instead of a std::function closure, so telemetry never perturbs the
  // engine's heap-closure count.
  static void on_tick(void* ctx, void*) {
    auto* self = static_cast<FabricTelemetry*>(ctx);
    if (self->stopped_) return;
    self->take_sample();
    self->schedule_next();
  }

  void schedule_next() {
    sim_->schedule_raw(period_, &FabricTelemetry::on_tick, this);
  }

  void take_sample() {
    std::size_t i = 0;
    obs::TraceBuffer* tb = obs::tracer();
    topo_->for_each_queue([this, &i, tb](net::Queue& q) {
      series_[i].occupancy_pkts.push_back(q.len_packets());
      if (tb != nullptr) [[unlikely]] {
        tb->emit(obs::kQueueCat, obs::EventType::kQueueSample, 0,
                 static_cast<double>(q.drops()),
                 static_cast<double>(q.marks()),
                 static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(q.len_packets()));
      }
      ++i;
    });
    ++samples_;
  }

  sim::Simulator* sim_;
  topo::Topology* topo_;
  sim::Time period_;
  std::vector<QueueSampleSeries> series_;
  std::size_t samples_ = 0;
  bool stopped_ = false;
};

// Link utilization over a window: busy time divided by elapsed time.
struct UtilizationProbe {
  const net::Link* link;
  sim::Time t0;
  sim::Time busy0;

  UtilizationProbe(const net::Link& l, sim::Time now)
      : link(&l), t0(now), busy0(l.busy_time()) {}

  double utilization(sim::Time now) const {
    const sim::Time elapsed = now - t0;
    if (elapsed <= 0) return 0.0;
    const sim::Time busy = link->busy_time() - busy0;
    PASE_DCHECK(busy >= 0 && "link busy_time went backwards");
    // busy_time can exceed elapsed by one in-flight serialization; report a
    // physically meaningful fraction.
    return std::clamp(busy / elapsed, 0.0, 1.0);
  }
};

}  // namespace pase::stats
