// Fabric telemetry: periodic sampling of queue occupancy and link
// utilization over a topology. Useful for diagnosing experiments (where does
// the backlog live? is the bottleneck saturated?) and for the examples.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "topo/topology.h"

namespace pase::stats {

struct QueueSampleSeries {
  std::string name;
  std::vector<std::size_t> occupancy_pkts;  // one entry per sample tick

  std::size_t max_occupancy() const {
    return occupancy_pkts.empty()
               ? 0
               : *std::max_element(occupancy_pkts.begin(),
                                   occupancy_pkts.end());
  }
  double mean_occupancy() const {
    if (occupancy_pkts.empty()) return 0.0;
    double sum = 0;
    for (auto v : occupancy_pkts) sum += static_cast<double>(v);
    return sum / static_cast<double>(occupancy_pkts.size());
  }
};

// Samples every queue in a topology at a fixed period while the simulation
// runs. Construct before sim.run(); read the series afterwards.
class FabricTelemetry {
 public:
  FabricTelemetry(sim::Simulator& sim, topo::Topology& topo,
                  sim::Time period = 100e-6)
      : sim_(&sim), topo_(&topo), period_(period) {
    // One series per host uplink and switch port, in visit order.
    std::size_t count = 0;
    topo_->for_each_queue([&count](net::Queue&) { ++count; });
    series_.resize(count);
    std::size_t i = 0;
    for (const auto& h : topo_->hosts()) {
      series_[i++].name = h->name() + ".up";
    }
    for (const auto& sw : topo_->switches()) {
      for (int p = 0; p < sw->num_ports(); ++p) {
        series_[i++].name = sw->port_link(p).name();
      }
    }
    schedule_next();
  }

  void stop() { stopped_ = true; }

  std::size_t num_samples() const { return samples_; }
  const std::vector<QueueSampleSeries>& series() const { return series_; }

  // Largest backlog observed anywhere in the fabric.
  std::size_t peak_occupancy() const {
    std::size_t peak = 0;
    for (const auto& s : series_) peak = std::max(peak, s.max_occupancy());
    return peak;
  }

  // The queue with the highest mean backlog — usually the bottleneck.
  const QueueSampleSeries* busiest() const {
    const QueueSampleSeries* best = nullptr;
    for (const auto& s : series_) {
      if (best == nullptr || s.mean_occupancy() > best->mean_occupancy()) {
        best = &s;
      }
    }
    return best;
  }

 private:
  void schedule_next() {
    sim_->schedule(period_, [this] {
      if (stopped_) return;
      take_sample();
      schedule_next();
    });
  }

  void take_sample() {
    std::size_t i = 0;
    topo_->for_each_queue([this, &i](net::Queue& q) {
      series_[i++].occupancy_pkts.push_back(q.len_packets());
    });
    ++samples_;
  }

  sim::Simulator* sim_;
  topo::Topology* topo_;
  sim::Time period_;
  std::vector<QueueSampleSeries> series_;
  std::size_t samples_ = 0;
  bool stopped_ = false;
};

// Link utilization over a window: busy time divided by elapsed time.
struct UtilizationProbe {
  const net::Link* link;
  sim::Time t0;
  sim::Time busy0;

  UtilizationProbe(const net::Link& l, sim::Time now)
      : link(&l), t0(now), busy0(l.busy_time()) {}

  double utilization(sim::Time now) const {
    const sim::Time elapsed = now - t0;
    if (elapsed <= 0) return 0.0;
    return (link->busy_time() - busy0) / elapsed;
  }
};

}  // namespace pase::stats
