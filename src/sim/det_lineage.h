// Exact, partition-invariant event ordering for conservative-parallel runs.
//
// Sequentially, events at the same instant fire in scheduling (FIFO seq)
// order. That global order is a recursive property: two same-time events
// were scheduled either at different instants (earlier instant first), or by
// the same parent event (the parent's scheduling order decides), or by two
// parent events that themselves executed at the same instant — in which case
// the parents' own order decides, recursively. A fixed-size key cannot carry
// that recursion: synchronized workloads (incast waves ACK-clocked in lock
// step) produce ties whose resolution lives arbitrarily deep in the
// scheduling ancestry.
//
// So parallel mode materializes the ancestry. Every scheduled event appends
// an immutable node {sigma, parent, k} to a per-domain arena:
//   sigma  - the instant it was scheduled (its parent's execution time);
//   parent - the node of the event that scheduled it (kNull for setup);
//   k      - its index among that parent's schedulings (for setup-time
//            roots, a caller-provided global index: the flow launch order).
// less(a, b) then replays the sequential tie-break exactly:
//   walk:  different sigma        -> earlier sigma first
//          same parent            -> smaller k first
//          different parents      -> recurse on the parents (both executed
//                                    at the same instant, so their order is
//                                    the same question one level up)
//          root vs non-root       -> root first (setup precedes execution)
// The walk terminates: chains are finite and converging chains are caught by
// the same-parent test one level before they meet.
//
// Concurrency: arenas are append-only and single-writer (each domain's
// worker appends only to its own arena). Readers in other domains only ever
// follow node ids that crossed a mailbox + barrier, so every node they can
// name — and its whole ancestor chain — was fully written before a
// happens-before edge they are downstream of. Chunk pointers are atomic so
// a reader's walk through old chunks never races the owner publishing a new
// one. Nodes are 24 bytes and live until the run ends; that is the memory
// price of exact parallel determinism, paid only when det mode is on.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/dcheck.h"

namespace pase::sim {

using Time = double;  // mirrors simulator.h (no circular include)

class DetLineage {
 public:
  using NodeId = std::uint64_t;
  static constexpr NodeId kNull = ~NodeId{0};

  explicit DetLineage(int domains) {
    arenas_.reserve(static_cast<std::size_t>(domains));
    for (int d = 0; d < domains; ++d) {
      arenas_.emplace_back();
      arenas_.back().chunks =
          std::make_unique<std::atomic<Node*>[]>(kMaxChunks);
    }
  }

  ~DetLineage() {
    for (Arena& a : arenas_) {
      const std::size_t used = (a.count + kChunkSize - 1) >> kChunkShift;
      for (std::size_t c = 0; c < used; ++c) {
        delete[] a.chunks[c].load(std::memory_order_relaxed);
      }
    }
  }

  DetLineage(const DetLineage&) = delete;
  DetLineage& operator=(const DetLineage&) = delete;

  // Appends a node to `domain`'s arena. Must be called only by the thread
  // running that domain.
  NodeId add(int domain, Time sigma, NodeId parent, std::uint32_t k) {
    Arena& a = arenas_[static_cast<std::size_t>(domain)];
    const std::size_t i = a.count++;
    const std::size_t c = i >> kChunkShift;
    PASE_DCHECK(c < kMaxChunks && "lineage arena exhausted");
    Node* chunk = a.chunks[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) [[unlikely]] {
      chunk = new Node[kChunkSize];
      a.chunks[c].store(chunk, std::memory_order_release);
    }
    chunk[i & (kChunkSize - 1)] = Node{sigma, parent, k, 0};
    return (static_cast<NodeId>(domain) << kDomainShift) |
           static_cast<NodeId>(i);
  }

  // Strict weak order reproducing the sequential same-instant fire order.
  // Both ids (and hence their ancestries) must already be visible to the
  // calling thread; see the file comment.
  bool less(NodeId a, NodeId b) const {
    while (true) {
      if (a == b) return false;
      if (a == kNull) return true;   // setup precedes all execution
      if (b == kNull) return false;
      const Node& na = node(a);
      const Node& nb = node(b);
      if (na.sigma != nb.sigma) return na.sigma < nb.sigma;
      if (na.parent == nb.parent) return na.k < nb.k;
      a = na.parent;
      b = nb.parent;
    }
  }

  // Total nodes currently interned (telemetry; owner threads quiescent).
  std::size_t nodes() const {
    std::size_t n = 0;
    for (const Arena& a : arenas_) n += a.count;
    return n;
  }

 private:
  struct Node {
    Time sigma;       // instant the event was scheduled
    NodeId parent;    // scheduling event's node; kNull for setup roots
    std::uint32_t k;  // index among the parent's schedulings
    std::uint32_t pad_;
  };

  static constexpr std::size_t kChunkShift = 16;  // 64Ki nodes (1.5 MiB)
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 14;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr unsigned kDomainShift = 48;  // id = domain:16 | index:48

  struct Arena {
    std::unique_ptr<std::atomic<Node*>[]> chunks;  // null until allocated
    std::size_t count = 0;                         // owner thread only
  };

  const Node& node(NodeId id) const {
    const std::size_t d = static_cast<std::size_t>(id >> kDomainShift);
    const std::size_t i =
        static_cast<std::size_t>(id & ((NodeId{1} << kDomainShift) - 1));
    const Node* chunk =
        arenas_[d].chunks[i >> kChunkShift].load(std::memory_order_acquire);
    return chunk[i & (kChunkSize - 1)];
  }

  std::vector<Arena> arenas_;
};

}  // namespace pase::sim
