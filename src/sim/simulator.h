// Discrete-event simulation engine.
//
// The engine is a monotonic clock plus a calendar queue (Brown 1988, the
// structure behind ns-2's scheduler): a power-of-two ring of "day" buckets of
// width `width_` seconds, where an event at time t belongs to bucket
// floor(t / width_) mod num_buckets. The next event overall is found by
// walking buckets from the current calendar day — O(1) amortized instead of
// the O(log n) pointer-chasing sift of a binary heap. Events scheduled for
// the same instant fire in scheduling order (FIFO, via a monotonic sequence
// number), which keeps packet pipelines deterministic.
//
// Buckets are intrusive singly-linked lists threaded through the slot table:
// each pending event owns one slot (callback, time, sequence, generation,
// next-link), so scheduling writes only the slot plus a 4-byte bucket head,
// and no allocation happens outside slot-table growth. Slots live in stable
// chunked storage (growth never moves a live std::function) and are recycled
// through a free list; a per-slot generation stamp makes cancelling an
// already-fired, already-cancelled, or reused id a true no-op that returns
// false. Cancellation physically unlinks the event — O(bucket occupancy),
// which resizing keeps at O(1) — so the queue never carries stale entries.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

namespace pase::sim {

using Time = double;  // seconds

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

// Handle for a scheduled event; used to cancel it. Default-constructed
// handles are inert. A handle is invalidated (cancel() returns false) once
// its event fires or is cancelled, even if the underlying slot is reused.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // 0 = inert handle; slot generations start at 1
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Time now() const { return now_; }

  // Schedules `fn` to run `delay` seconds from now. `delay` must be >= 0.
  EventId schedule(Time delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `t` (>= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  // Cancels a pending event. Returns true iff the event was still pending;
  // cancelling a fired, cancelled, or default-constructed id returns false
  // and has no effect on engine state.
  bool cancel(EventId id);

  // Pre-sizes internal structures for a workload of roughly `n` concurrently
  // pending events, avoiding growth rebuilds during the run.
  void reserve(std::size_t n);

  // Runs events until the queue drains or the clock passes `until`.
  void run(Time until = kTimeInfinity);

  // Runs exactly one event if available; returns false when the queue is
  // empty or the next event is past `until`.
  bool step(Time until = kTimeInfinity);

  // Makes run() return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const {
    return finite_entries_ + inf_count_ + staged_count_;
  }
  std::uint64_t executed_events() const { return executed_; }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  static constexpr std::size_t kMinBuckets = 64;

  // Cache-line sized and aligned: scheduling or firing an event touches
  // exactly one line of the slot arena.
  struct alignas(64) Slot {
    std::function<void()> fn;
    std::uint64_t seq = 0;   // scheduling order; breaks time ties (FIFO)
    Time t = 0.0;            // event time; locates the calendar bucket
    std::uint32_t gen = 1;   // bumped on fire/cancel to kill old handles
    std::uint32_t next = kNil;  // intrusive bucket/staging-list link
    bool staged = false;     // on the staging list, not yet in a bucket
  };

  // Stable chunked slot storage: growing never move-constructs the
  // std::functions of live slots (vector reallocation would), and slot
  // references stay valid while a callback schedules new events.
  static constexpr std::size_t kSlotChunkShift = 12;
  static constexpr std::size_t kSlotChunkSize = 1ull << kSlotChunkShift;

  Slot& slot_at(std::uint32_t i) {
    return slot_chunks_[i >> kSlotChunkShift][i & (kSlotChunkSize - 1)];
  }

  // Never lands on the inert generation 0.
  static void bump_gen(Slot& s) {
    if (++s.gen == 0) s.gen = 1;
  }

  void retire_slot(std::uint32_t slot_index, Slot& s) {
    s.seq = 0;
    bump_gen(s);
    free_slots_.push_back(slot_index);
  }

  // Absolute day number of time `t`, or kInfDay when t is infinite (or so
  // large the day number would overflow). day_of is monotone in t, so
  // overflow events sort after everything the calendar can hold; they live
  // in a side list consumed only once all finite events have fired.
  static constexpr std::uint64_t kInfDay = ~std::uint64_t{0};
  std::uint64_t day_of(Time t) const {
    const double d = t * inv_width_;
    return d < 9.2e18 ? static_cast<std::uint64_t>(d) : kInfDay;
  }

  void link(std::uint32_t slot_index, Slot& s);
  void unlink(std::uint32_t slot_index, const Slot& s);
  // Picks a bucket width for `n` pending events: the observed inter-fire gap
  // when enough events have run (robust against a few far-future outliers
  // stretching the pending span), otherwise the span-based estimate.
  double preferred_width(Time lo, Time hi, std::size_t n) const;
  void set_width(double w) {
    if (std::isfinite(w) && w > 0.0) {
      width_ = w;
      inv_width_ = 1.0 / w;
    }
  }
  // Distributes the staging list into calendar buckets (see schedule_at).
  void flush_staged();
  // Finds the earliest pending event, caching it in memo_slot_. Returns
  // false if nothing is pending.
  bool locate_top();
  void rebuild(std::size_t new_num_buckets);
  void maybe_grow();

  std::vector<std::uint32_t> bucket_heads_;  // kNil-terminated lists
  std::size_t bucket_mask_ = 0;
  double width_ = 1e-6;
  double inv_width_ = 1e6;
  std::uint64_t cur_day_ = 0;  // calendar position: no pending event is older
  std::size_t finite_entries_ = 0;

  std::uint32_t inf_list_ = kNil;  // events past the calendar horizon
  std::size_t inf_count_ = 0;

  // Staging list: newly scheduled events accumulate here (O(1) prepend, no
  // bucket traffic) and are distributed in a batch when the next event is
  // needed. The batch's span and size are tracked incrementally so the
  // distribution pass can size the calendar and width up front.
  std::uint32_t staged_list_ = kNil;
  std::size_t staged_count_ = 0;   // live (uncancelled) staged events
  std::size_t staged_finite_ = 0;  // ... of those, finite-time ones
  Time staged_lo_ = kTimeInfinity;
  Time staged_hi_ = -kTimeInfinity;

  // Cached result of locate_top(): the next event to fire. memo_t_/memo_seq_
  // mirror the slot so the scheduling fast path compares without a deref.
  bool memo_valid_ = false;
  std::uint32_t memo_slot_ = 0;
  Time memo_t_ = 0.0;
  std::uint64_t memo_seq_ = 0;

  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t last_rebuild_exec_ = 0;  // rebuild cooldown (see locate_top)
  double fire_gap_ewma_ = 0.0;  // smoothed gap between consecutive fires
  bool stopped_ = false;
};

}  // namespace pase::sim
