// Discrete-event simulation engine.
//
// The engine is a monotonic clock plus a calendar queue (Brown 1988, the
// structure behind ns-2's scheduler): a power-of-two ring of "day" buckets of
// width `width_` seconds, where an event at time t belongs to bucket
// floor(t / width_) mod num_buckets. The next event overall is found by
// walking buckets from the current calendar day — O(1) amortized instead of
// the O(log n) pointer-chasing sift of a binary heap. Events scheduled for
// the same instant fire in scheduling order (FIFO, via a monotonic sequence
// number), which keeps packet pipelines deterministic.
//
// Events are typed, fixed-size payloads, not std::functions. A slot holds a
// raw invoker `void(*)(void* ctx, void* arg)` plus a 24-byte payload that is
// one of three things, discriminated by a kind tag:
//   - kRaw: {ctx, arg} passed straight to the invoker — the packet hot path
//     (link hops, timer fires) schedules this form, writing one cache line
//     with zero allocations and zero virtual/std::function indirections;
//   - kInlineClosure: a lambda placement-constructed into the payload, chosen
//     at compile time when it is trivially copyable, at most 24 bytes and at
//     most 8-aligned (the trampoline is a template instantiated per lambda
//     type, so the call is a direct function-pointer call);
//   - kHeapClosure: {object pointer, destroy fn} for closures too big or
//     non-trivial to inline (owning captures, std::function) — the only form
//     that allocates, counted in heap_closure_events() so tests can pin the
//     steady state to zero.
//
// Buckets are intrusive doubly-linked lists threaded through the slot table:
// each pending event owns one slot (invoker, payload, time, sequence,
// generation, prev/next links), so scheduling writes only the slot plus a
// 4-byte bucket head, and no allocation happens outside slot-table growth.
// The prev link makes unlink O(1) — popping the top no longer rescans its
// bucket — and a sorted top cache (the K smallest pending events, captured
// by the day scan that located the top) lets one day-walk serve up to K
// consecutive pops. Slots live in stable chunked storage and are recycled
// through a
// free list; a per-slot generation stamp makes cancelling an already-fired,
// already-cancelled, or reused id a true no-op that returns false.
// Cancellation physically unlinks the event, so the queue never carries
// stale entries.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/dcheck.h"
#include "sim/det_lineage.h"

namespace pase::sim {

using Time = double;  // seconds

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

// The typed-event invoker signature. `ctx` is the scheduling site's context
// (an object pointer, or the inline payload buffer); `arg` is the optional
// second word (e.g. a released Packet*), null for closures.
using RawFn = void (*)(void* ctx, void* arg);

// Handle for a scheduled event; used to cancel it. Default-constructed
// handles are inert. A handle is invalidated (cancel() returns false) once
// its event fires or is cancelled, even if the underlying slot is reused.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;  // 0 = inert handle; slot generations start at 1
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Time now() const { return now_; }

  // Schedules a raw typed event: `fn(ctx, arg)` fires `delay` seconds from
  // now. The zero-overhead form for hot-path call sites that already have a
  // stable object to point at (links, timers, queues).
  EventId schedule_raw(Time delay, RawFn fn, void* ctx, void* arg = nullptr) {
    return schedule_raw_at(now_ + delay, fn, ctx, arg);
  }
  EventId schedule_raw_at(Time t, RawFn fn, void* ctx,
                          void* arg = nullptr);  // defined after the class

  // Schedules any callable to run `delay` seconds from now (>= 0). Small
  // trivially-copyable closures are stored inline in the event slot (no
  // allocation); larger or non-trivial ones fall back to the heap.
  template <typename Fn>
  EventId schedule(Time delay, Fn&& fn) {
    PASE_DCHECK(delay >= 0.0 && "cannot schedule in the past");
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules any callable at absolute time `t` (>= now()).
  template <typename Fn>
  EventId schedule_at(Time t, Fn&& fn) {
    PASE_DCHECK(t >= now_ && "cannot schedule in the past");
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_at(slot);
    using F = std::decay_t<Fn>;
    static_assert(std::is_invocable_v<F&>, "event callbacks take no args");
    if constexpr (kInlineEligible<F>) {
      ::new (static_cast<void*>(s.payload)) F(std::forward<Fn>(fn));
      s.fn = &invoke_inline_closure<F>;
      s.kind = Kind::kInlineClosure;
    } else {
      HeapPayload hp{new F(std::forward<Fn>(fn)), &destroy_heap_closure<F>};
      std::memcpy(s.payload, &hp, sizeof(hp));
      s.fn = &invoke_heap_closure<F>;
      s.kind = Kind::kHeapClosure;
      ++heap_closure_events_;
    }
    return commit_slot(slot, t);
  }

  // Cancels a pending event. Returns true iff the event was still pending;
  // cancelling a fired, cancelled, or default-constructed id returns false
  // and has no effect on engine state.
  bool cancel(EventId id);

  // Pre-sizes internal structures for a workload of roughly `n` concurrently
  // pending events: calendar buckets, free-list capacity, and enough slot
  // chunks that the first `n` concurrent events never allocate.
  void reserve(std::size_t n);

  // Runs events until the queue drains or the clock passes `until`.
  void run(Time until = kTimeInfinity);

  // Runs exactly one event if available; returns false when the queue is
  // empty or the next event is past `until`.
  bool step(Time until = kTimeInfinity);

  // Makes run() return after the current event completes.
  void stop() { stopped_ = true; }

  // --- Conservative-parallel execution support ----------------------------
  //
  // A parallel run partitions the network into domains, one Simulator each,
  // and executes them in barrier-synchronized windows (see sim/parallel.h).
  // Sequential runs break same-instant ties with the FIFO sequence number;
  // per-domain counters cannot reproduce that global order, so in det mode
  // every scheduled event interns a lineage node {sigma, parent, k} in a
  // shared DetLineage and same-time ties compare by walking the ancestry —
  // which replays the sequential order exactly, at any tie depth (see
  // sim/det_lineage.h). Cross-domain link deliveries carry their node
  // through the mailbox (make_post_node consumes the k slot the delivery
  // would have taken locally) and are re-injected with schedule_injected.

  // Turns on lineage tracking for this domain. Must be called before any
  // event is scheduled into this simulator. Sequential runs never call this
  // and pay only a predictable not-taken branch per schedule/step.
  void enable_det(std::uint32_t domain_id, DetLineage* lineage);
  bool det_enabled() const { return det_; }
  // Global index for the NEXT setup-time scheduling (e.g. the flow launch
  // order), so setup roots order identically across partitionings. Must be
  // called from outside event execution (between chunks); it re-enters the
  // setup context — cur_node_ still points at the chunk's last executed
  // event, and a harness staging flows lazily at a barrier needs its
  // schedulings interned as setup roots, not as that event's children.
  void set_setup_index(std::uint32_t k) {
    cur_node_ = DetLineage::kNull;
    cur_k_ = k;
  }
  // Lineage node for a cross-domain post (or any out-of-band record) made by
  // the currently executing event: takes the child slot `k` the event would
  // have consumed scheduling it locally, keeping sibling order exact.
  DetLineage::NodeId make_post_node() {
    PASE_DCHECK(det_);
    return lineage_->add(static_cast<int>(domain_id_), now_, cur_node_,
                         cur_k_++);
  }
  // Injects a cross-domain event carrying a node captured in the source
  // domain.
  EventId schedule_injected(Time t, DetLineage::NodeId node, RawFn fn,
                            void* ctx,
                            void* arg = nullptr);  // defined after the class

  // Time of the earliest pending event (kTimeInfinity when none): the
  // per-domain input to the safe-horizon computation.
  Time next_event_time();
  // Runs events strictly before `bound` (exclusive, unlike run()): a
  // conservative window [now, bound) may not execute events at the horizon
  // itself, since a cross-domain delivery can still arrive exactly there.
  // Does not advance the clock to `bound`.
  void run_before(Time bound);

  std::size_t pending_events() const {
    return finite_entries_ + inf_count_ + staged_count_;
  }
  std::uint64_t executed_events() const { return executed_; }

  // Allocation telemetry for the zero-alloc steady-state tests: cumulative
  // heap-fallback closures scheduled, calendar rebuilds performed, and slot
  // chunks allocated. A warmed steady state must hold all three constant.
  std::uint64_t heap_closure_events() const { return heap_closure_events_; }
  std::uint64_t calendar_rebuilds() const { return calendar_rebuilds_; }
  std::size_t slot_chunks_allocated() const { return slot_chunks_.size(); }

  // Registers a prefetch helper for a raw-event function. While an event
  // executes, the engine prefetches the payload pointers of the next two
  // pending events; when the *next* event's fn has a registered hint, the
  // hint is also invoked with that event's payload — its objects were
  // prefetched one event earlier, so the hint can cheaply chase one pointer
  // deeper (e.g. a link delivery prefetching the destination node). Hints
  // must be pure prefetch: no state changes, no scheduling, no reliance on
  // being called at all. Re-registering the same fn overwrites its hint.
  using PrefetchHint = void (*)(void* ctx, void* arg);
  void set_prefetch_hint(RawFn fn, PrefetchHint hint) {
    for (std::uint32_t i = 0; i < num_hints_; ++i) {
      if (hints_[i].fn == fn) {
        hints_[i].hint = hint;
        return;
      }
    }
    PASE_DCHECK(num_hints_ < kMaxPrefetchHints && "too many prefetch hints");
    if (num_hints_ < kMaxPrefetchHints) {
      hints_[num_hints_++] = HintEntry{fn, hint};
    }
  }

  // --- Engine self-profiler -----------------------------------------------
  //
  // Off by default: the per-dispatch cost is one predictable not-taken
  // branch. When enabled (the harness's --profile flag), every dispatch is
  // tallied by payload kind and by registered raw-fn label, calendar day
  // scans record their walk lengths, and the pending-event high-water mark
  // is tracked — the inputs to the "where do the events go and how long are
  // the bucket chains" analysis that previously required a hand-run
  // profiler.
  void enable_profiling() { profiling_ = true; }
  bool profiling_enabled() const { return profiling_; }

  // Human-readable label for a raw event function (e.g. "link.deliver").
  // Registered alongside prefetch hints; re-registering is idempotent.
  void set_profile_label(RawFn fn, const char* label) {
    for (std::uint32_t i = 0; i < num_profiled_fns_; ++i) {
      if (profiled_fns_[i].fn == fn) return;
    }
    if (num_profiled_fns_ < kMaxProfiledFns) {
      profiled_fns_[num_profiled_fns_++] = ProfiledFn{fn, label, 0};
    }
  }

  std::uint64_t profile_raw_dispatches() const { return profile_raw_; }
  std::uint64_t profile_inline_dispatches() const { return profile_inline_; }
  std::uint64_t profile_heap_dispatches() const { return profile_heap_; }
  // Raw dispatches whose fn carries no registered label.
  std::uint64_t profile_unlabeled_dispatches() const { return profile_other_; }
  // Calendar-queue behavior: day walks performed by the top locator, total
  // and maximum entries visited per walk, and the pending-set high-water
  // mark (bucket occupancy pressure).
  std::uint64_t profile_top_walks() const { return profile_walks_; }
  std::uint64_t profile_scan_sum() const { return profile_scan_sum_; }
  std::uint64_t profile_scan_max() const { return profile_scan_max_; }
  std::uint64_t profile_peak_pending() const { return profile_peak_pending_; }
  // Labeled raw-fn dispatch counts, in registration order.
  std::vector<std::pair<const char*, std::uint64_t>> profiled_fn_counts()
      const {
    std::vector<std::pair<const char*, std::uint64_t>> out;
    out.reserve(num_profiled_fns_);
    for (std::uint32_t i = 0; i < num_profiled_fns_; ++i) {
      out.emplace_back(profiled_fns_[i].label, profiled_fns_[i].count);
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  static std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kInlinePayloadSize = 24;

  enum class Kind : std::uint8_t {
    kRaw = 0,         // payload = RawPayload{ctx, arg}; nothing owned
    kInlineClosure,   // payload = the closure object (trivially copyable)
    kHeapClosure,     // payload = HeapPayload{object, destroy}
  };

  struct RawPayload {
    void* ctx;
    void* arg;
  };
  struct HeapPayload {
    void* obj;
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool kInlineEligible =
      sizeof(F) <= kInlinePayloadSize && alignof(F) <= 8 &&
      std::is_trivially_copyable_v<F>;

  template <typename F>
  static void invoke_inline_closure(void* ctx, void* /*arg*/) {
    (*std::launder(reinterpret_cast<F*>(ctx)))();
  }
  template <typename F>
  static void invoke_heap_closure(void* ctx, void* /*arg*/) {
    std::unique_ptr<F> obj(static_cast<F*>(ctx));  // freed even on throw
    (*obj)();
  }
  template <typename F>
  static void destroy_heap_closure(void* obj) {
    delete static_cast<F*>(obj);
  }

  // Cache-line sized and aligned: scheduling or firing an event touches
  // exactly one line of the slot arena.
  struct alignas(64) Slot {
    RawFn fn = nullptr;
    alignas(8) unsigned char payload[kInlinePayloadSize];
    std::uint64_t seq = 0;   // scheduling order; breaks time ties (FIFO)
    Time t = 0.0;            // event time; locates the calendar bucket
    std::uint32_t gen = 1;   // bumped on fire/cancel to kill old handles
    std::uint32_t next = kNil;  // intrusive bucket/staging-list links
    std::uint32_t prev = kNil;  // (prev maintained for linked events only)
    Kind kind = Kind::kRaw;
    bool staged = false;     // on the staging list, not yet in a bucket
  };
  static_assert(sizeof(Slot) == 64);

  // Stable chunked slot storage: growth never moves a live slot (vector
  // reallocation would), so slot references stay valid while a callback
  // schedules new events, and inline payloads never relocate.
  static constexpr std::size_t kSlotChunkShift = 12;
  static constexpr std::size_t kSlotChunkSize = 1ull << kSlotChunkShift;

  Slot& slot_at(std::uint32_t i) {
    return slot_chunks_[i >> kSlotChunkShift][i & (kSlotChunkSize - 1)];
  }

  // Never lands on the inert generation 0.
  static void bump_gen(Slot& s) {
    if (++s.gen == 0) s.gen = 1;
  }

  void retire_slot(std::uint32_t slot_index, Slot& s) {
    s.seq = 0;
    bump_gen(s);
    free_slots_.push_back(slot_index);
  }

  // Frees whatever the payload owns (heap closures only) and downgrades the
  // slot to kRaw so a later destroy is a no-op. Used by cancel and teardown;
  // step() instead transfers ownership to the invoke.
  void destroy_payload(Slot& s) {
    if (s.kind == Kind::kHeapClosure) {
      HeapPayload hp;
      std::memcpy(&hp, s.payload, sizeof(hp));
      hp.destroy(hp.obj);
    }
    s.kind = Kind::kRaw;
  }


  // Absolute day number of time `t`, or kInfDay when t is infinite (or so
  // large the day number would overflow). day_of is monotone in t, so
  // overflow events sort after everything the calendar can hold; they live
  // in a side list consumed only once all finite events have fired.
  static constexpr std::uint64_t kInfDay = ~std::uint64_t{0};
  std::uint64_t day_of(Time t) const {
    const double d = t * inv_width_;
    return d < 9.2e18 ? static_cast<std::uint64_t>(d) : kInfDay;
  }

  void unlink(std::uint32_t slot_index, const Slot& s);
  // Picks a bucket width for `n` pending events: the observed inter-fire gap
  // when enough events have run (robust against a few far-future outliers
  // stretching the pending span), otherwise the span-based estimate.
  double preferred_width(Time lo, Time hi, std::size_t n) const;
  void set_width(double w) {
    if (std::isfinite(w) && w > 0.0) {
      width_ = w;
      inv_width_ = 1.0 / w;
    }
  }
  // Distributes the staging list into calendar buckets (see commit_slot).
  void flush_staged();
  // Ensures the top cache is non-empty (its head is the earliest pending
  // event). Returns false if nothing is pending.
  bool locate_top();
  void rebuild(std::size_t new_num_buckets);

  std::vector<std::uint32_t> bucket_heads_;  // kNil-terminated lists
  std::size_t bucket_mask_ = 0;
  double width_ = 1e-6;
  double inv_width_ = 1e6;
  std::uint64_t cur_day_ = 0;  // calendar position: no pending event is older
  std::size_t finite_entries_ = 0;

  std::uint32_t inf_list_ = kNil;  // events past the calendar horizon
  std::size_t inf_count_ = 0;

  // Staging list: newly scheduled events accumulate here (O(1) prepend, no
  // bucket traffic) and are distributed in a batch when the next event is
  // needed. The batch's span and size are tracked incrementally so the
  // distribution pass can size the calendar and width up front.
  std::uint32_t staged_list_ = kNil;
  std::size_t staged_count_ = 0;   // live (uncancelled) staged events
  std::size_t staged_finite_ = 0;  // ... of those, finite-time ones
  Time staged_lo_ = kTimeInfinity;
  Time staged_hi_ = -kTimeInfinity;

  // Top cache: the first top_count_ entries of the global (t, seq) pending
  // order, sorted. The day scan that locates the next event visits every
  // event of that day anyway, so it captures the day's K smallest — provably
  // the K globally smallest, since later days hold strictly later times —
  // and one walk then serves up to K consecutive pops. link() keeps the
  // prefix exact (insert when the new event beats the cached tail, skip
  // otherwise); unlink() removes in place. An empty cache means "unknown",
  // never "no events".
  struct TopEntry {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kTopCacheSize = 16;
  TopEntry top_cache_[kTopCacheSize];
  std::uint32_t top_count_ = 0;

  // Prefetch-hint registry (see set_prefetch_hint). Two or three distinct
  // raw fns in practice (link tx-done / delivery), so a linear scan over a
  // tiny array beats any map.
  static constexpr std::uint32_t kMaxPrefetchHints = 4;
  struct HintEntry {
    RawFn fn;
    PrefetchHint hint;
  };
  HintEntry hints_[kMaxPrefetchHints] = {};
  std::uint32_t num_hints_ = 0;

  // Profiler registry and tallies (cold; only touched when profiling_).
  // profile_count stays out of line so the step() hot loop carries nothing
  // but the flag test.
  void profile_count(RawFn fn, Kind kind);
  static constexpr std::uint32_t kMaxProfiledFns = 8;
  struct ProfiledFn {
    RawFn fn;
    const char* label;
    std::uint64_t count;
  };
  ProfiledFn profiled_fns_[kMaxProfiledFns] = {};
  std::uint32_t num_profiled_fns_ = 0;
  std::uint64_t profile_raw_ = 0;
  std::uint64_t profile_inline_ = 0;
  std::uint64_t profile_heap_ = 0;
  std::uint64_t profile_other_ = 0;
  std::uint64_t profile_walks_ = 0;
  std::uint64_t profile_scan_sum_ = 0;
  std::uint64_t profile_scan_max_ = 0;
  std::uint64_t profile_peak_pending_ = 0;
  bool profiling_ = false;

  // Same-time ties fall back to the FIFO seq sequentially, or to the
  // partition-invariant lineage order when det mode is on (the slot indices
  // locate the nodes). Time-distinct comparisons never touch the lineage.
  bool entry_before(Time t, std::uint64_t seq, std::uint32_t slot,
                    const TopEntry& e) const {
    if (t != e.t) return t < e.t;
    if (!det_) return seq < e.seq;
    return lineage_->less(det_nodes_[slot], det_nodes_[e.slot]);
  }
  // Inserts into the sorted cache if (t, seq) beats the tail (or there is
  // room to grow the prefix during a scan); drops the overflow.
  void top_insert(Time t, std::uint64_t seq, std::uint32_t slot) {
    std::uint32_t n = top_count_;
    if (n == kTopCacheSize) {
      if (!entry_before(t, seq, slot, top_cache_[n - 1])) return;
      --n;  // tail falls out
    }
    std::uint32_t i = n;
    while (i > 0 && entry_before(t, seq, slot, top_cache_[i - 1])) {
      top_cache_[i] = top_cache_[i - 1];
      --i;
    }
    top_cache_[i] = TopEntry{t, seq, slot};
    top_count_ = n + 1;
  }


  // --- Hot-path scheduling, defined in-class so call sites (links, timers,
  // hosts) compile the whole schedule to straight-line code. The cold
  // restructuring operations (rebuild, flush_staged, locate_top) stay in
  // simulator.cc.
  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint32_t slot = num_slots_++;
    PASE_DCHECK(slot != kNil && "pending-event slot space exhausted");
    if ((slot >> kSlotChunkShift) >= slot_chunks_.size()) {
      slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    }
    return slot;
  }

  EventId commit_slot(std::uint32_t slot, Time t) {
    Slot& s = slot_at(slot);
    s.seq = next_seq_++;
    s.t = t;
    if (det_) [[unlikely]] record_det_node(slot);
    // Steady state: link straight into the calendar — everything lands on the
    // slot line just written plus one bucket head, and the memo update inside
    // link() usually keeps the next pop O(1).
    if (staged_list_ == kNil && finite_entries_ + inf_count_ > 0) {
      s.staged = false;
      link(slot, s);
      maybe_grow();
      return EventId{slot, s.gen};
    }
    // Empty calendar (or a staged batch already accumulating): stage instead,
    // so the whole burst is distributed — and the calendar sized and its
    // bucket width derived for it in one pass — when the next event is
    // actually needed (see flush_staged).
    s.staged = true;
    s.next = staged_list_;
    staged_list_ = slot;
    ++staged_count_;
    if (std::isfinite(t)) {
      ++staged_finite_;
      staged_lo_ = std::min(staged_lo_, t);
      staged_hi_ = std::max(staged_hi_, t);
    }
    return EventId{slot, s.gen};
  }


  // Interns the lineage node of a freshly committed event from the execution
  // context: scheduled now, by the event currently firing, as its next child.
  // An injected event instead adopts the node carried from its source domain
  // (set by schedule_injected) — and it must be in place here, before link()
  // runs top-cache comparisons against it.
  void record_det_node(std::uint32_t slot) {
    if (slot >= det_nodes_.size()) {
      det_nodes_.resize(slot_chunks_.size() << kSlotChunkShift);
    }
    if (injected_node_ != DetLineage::kNull) {
      det_nodes_[slot] = injected_node_;
      injected_node_ = DetLineage::kNull;
    } else {
      // Out-of-event schedulings are setup roots no matter when they happen
      // on the wall clock: the harness may stage them lazily at a chunk
      // barrier, but sequentially every one of them was scheduled before the
      // run began, so their sigma must compare as "before all execution"
      // (0), leaving the caller-provided setup index as the tie-break.
      const Time sigma = cur_node_ == DetLineage::kNull ? 0.0 : now_;
      det_nodes_[slot] = lineage_->add(static_cast<int>(domain_id_), sigma,
                                       cur_node_, cur_k_++);
    }
  }

  void link(std::uint32_t slot_index, Slot& s) {
    const std::uint64_t day = day_of(s.t);
    std::uint32_t& head =
        day == kInfDay ? inf_list_ : bucket_heads_[day & bucket_mask_];
    s.next = head;
    s.prev = kNil;
    if (head != kNil) slot_at(head).prev = slot_index;
    head = slot_index;
    if (day == kInfDay) {
      ++inf_count_;
    } else {
      ++finite_entries_;
    }
    if (top_count_ > 0 &&
        entry_before(s.t, s.seq, slot_index, top_cache_[top_count_ - 1])) {
      // The new event lands inside the cached prefix; insert it (dropping the
      // overflow — still a valid, shorter prefix). Events past the cached tail
      // must be skipped, not appended: pending events outside the cache may
      // sort between the tail and the newcomer. If the newcomer preempts the
      // cached top, rewind the calendar cursor so the next walk starts no
      // later than its day.
      if (entry_before(s.t, s.seq, slot_index, top_cache_[0]) &&
          day < cur_day_) {
        cur_day_ = day;
      }
      top_insert(s.t, s.seq, slot_index);
    }
  }

  void maybe_grow() {
    // Jump past the trigger point (2x occupancy) so refill-heavy workloads see
    // O(log n) rebuilds totalling O(n) relinks, not O(n log n).
    if (finite_entries_ > bucket_heads_.size() * 2) {
      rebuild(next_pow2(finite_entries_ * 2));
    }
  }


  std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
  std::uint32_t num_slots_ = 0;
  std::vector<std::uint32_t> free_slots_;

  // Parallel-mode ordering state (see the det section above). det_nodes_ is
  // a slot-indexed side table so the 64-byte Slot stays untouched; it is
  // only consulted on exact time ties.
  std::vector<DetLineage::NodeId> det_nodes_;
  DetLineage* lineage_ = nullptr;
  DetLineage::NodeId cur_node_ = DetLineage::kNull;  // executing event's node
  DetLineage::NodeId injected_node_ = DetLineage::kNull;  // pending adoption
  std::uint32_t cur_k_ = 0;  // its next child index
  std::uint32_t domain_id_ = 0;
  bool det_ = false;

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t last_rebuild_exec_ = 0;  // rebuild cooldown (see locate_top)
  std::uint64_t heap_closure_events_ = 0;
  std::uint64_t calendar_rebuilds_ = 0;
  double fire_gap_ewma_ = 0.0;  // smoothed gap between consecutive fires
  bool stopped_ = false;
};

inline EventId Simulator::schedule_raw_at(Time t, RawFn fn, void* ctx, void* arg) {
  PASE_DCHECK(t >= now_ && "cannot schedule in the past");
  PASE_DCHECK(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_at(slot);
  s.fn = fn;
  const RawPayload rp{ctx, arg};
  std::memcpy(s.payload, &rp, sizeof(rp));
  s.kind = Kind::kRaw;
  return commit_slot(slot, t);
}

inline EventId Simulator::schedule_injected(Time t, DetLineage::NodeId node,
                                            RawFn fn, void* ctx, void* arg) {
  PASE_DCHECK(det_ && "schedule_injected requires det mode");
  PASE_DCHECK(node != DetLineage::kNull);
  // Ordering uses the carried node, interned when the source domain posted
  // the event; record_det_node adopts it during commit so every comparison
  // made while linking already sees the right key.
  injected_node_ = node;
  return schedule_raw_at(t, fn, ctx, arg);
}

}  // namespace pase::sim
