// Discrete-event simulation engine.
//
// The engine is a monotonic clock plus a min-heap of (time, sequence) ordered
// events. Events scheduled for the same instant fire in scheduling order
// (FIFO), which keeps packet pipelines deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_set>
#include <vector>

namespace pase::sim {

using Time = double;  // seconds

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

// Handle for a scheduled event; used to cancel it. Default-constructed
// handles are inert.
class EventId {
 public:
  EventId() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class Simulator;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  // Schedules `fn` to run `delay` seconds from now. `delay` must be >= 0.
  EventId schedule(Time delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `t` (>= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  // Runs events until the queue drains or the clock passes `until`.
  void run(Time until = kTimeInfinity);

  // Runs exactly one event if available; returns false when the queue is
  // empty or the next event is past `until`.
  bool step(Time until = kTimeInfinity);

  // Makes run() return after the current event completes.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return heap_.size() - cancelled_ids_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<std::uint64_t> cancelled_ids_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace pase::sim
