// PASE_DCHECK: debug-only invariant checks for the packet hot path.
//
// `assert` disappears under NDEBUG — which includes the sanitizer CI legs,
// because they build RelWithDebInfo — so hot-path invariants guarded by
// plain asserts are never exercised where they matter most. PASE_DCHECK is
// active in any of:
//   - debug builds (NDEBUG unset),
//   - sanitizer builds (ASan/TSan detected via compiler macros), regardless
//     of NDEBUG, so the CI sanitizer matrix checks invariants too,
//   - builds defining PASE_FORCE_DCHECK.
// Everywhere else it compiles to nothing: release hot paths pay zero
// instructions per check. The condition stays inside an unevaluated sizeof
// so variables referenced only by checks don't warn as unused.
#pragma once

#include <cstdio>
#include <cstdlib>

#ifndef __has_feature
#define __has_feature(x) 0  // non-clang compilers
#endif

#if !defined(PASE_DCHECK_ENABLED)
#if !defined(NDEBUG) || defined(PASE_FORCE_DCHECK) ||         \
    defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PASE_DCHECK_ENABLED 1
#else
#define PASE_DCHECK_ENABLED 0
#endif
#endif

#if PASE_DCHECK_ENABLED
#define PASE_DCHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PASE_DCHECK failed: %s (%s:%d)\n", #cond,       \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
#else
#define PASE_DCHECK(cond) static_cast<void>(sizeof((cond) ? 0 : 0))
#endif
