#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace pase::sim {

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0.0 && "cannot schedule in the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Event{t, seq, std::move(fn)});
  return EventId{seq};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.seq_ >= next_seq_) return false;
  // Lazy cancellation: remember the id and skip it when popped.
  return cancelled_ids_.insert(id.seq_).second;
}

bool Simulator::step(Time until) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (!cancelled_ids_.empty() && cancelled_ids_.erase(top.seq) > 0) {
      heap_.pop();
      continue;
    }
    if (top.t > until) return false;
    // Move the callback out before popping so it may schedule new events.
    Event ev{top.t, top.seq, std::move(const_cast<Event&>(top).fn)};
    heap_.pop();
    now_ = ev.t;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_ && step(until)) {
  }
  if (until != kTimeInfinity && now_ < until && !stopped_) now_ = until;
}

}  // namespace pase::sim
