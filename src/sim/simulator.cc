#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"

namespace pase::sim {

double Simulator::preferred_width(Time lo, Time hi, std::size_t n) const {
  if (executed_ > 64 && fire_gap_ewma_ > 0.0 &&
      std::isfinite(fire_gap_ewma_)) {
    // A few events per day keeps day scans short while the top cache still
    // amortizes one walk over several pops (the multiplier is empirical:
    // wider days make buckets — and every scan — proportionally longer).
    return fire_gap_ewma_ * 4.0;
  }
  if (n > 1 && hi > lo) return (hi - lo) * 2.0 / static_cast<double>(n);
  return width_;  // degenerate: keep the current width
}

Simulator::Simulator() {
  bucket_heads_.assign(kMinBuckets, kNil);
  bucket_mask_ = kMinBuckets - 1;
  free_slots_.reserve(256);
}

Simulator::~Simulator() {
  // Pending heap closures (and cancelled-while-staged leftovers) are the
  // only slot contents that own memory; fired and cancelled slots were
  // already downgraded to kRaw.
  for (std::uint32_t i = 0; i < num_slots_; ++i) destroy_payload(slot_at(i));
}



void Simulator::unlink(std::uint32_t slot_index, const Slot& s) {
  const std::uint64_t day = day_of(s.t);
  if (s.prev != kNil) {
    slot_at(s.prev).next = s.next;
  } else {
    std::uint32_t& head =
        day == kInfDay ? inf_list_ : bucket_heads_[day & bucket_mask_];
    PASE_DCHECK(head == slot_index && "pending event missing from its bucket");
    head = s.next;
  }
  if (s.next != kNil) slot_at(s.next).prev = s.prev;
  if (day == kInfDay) {
    --inf_count_;
  } else {
    --finite_entries_;
  }
  if (top_count_ > 0) {
    if (top_cache_[0].slot == slot_index) {
      // Popping the cached top (the common case): promote the rest of the
      // prefix. The new head is by construction the minimum of the remaining
      // pending set, and every other event is at or past its day, so the
      // calendar cursor may jump forward to it.
      --top_count_;
      for (std::uint32_t i = 0; i < top_count_; ++i) {
        top_cache_[i] = top_cache_[i + 1];
      }
      if (top_count_ > 0) {
        const std::uint64_t d = day_of(top_cache_[0].t);
        if (d != kInfDay && d > cur_day_) cur_day_ = d;
      } else {
        // Cache exhausted; restart the next walk from the clock's day.
        cur_day_ = day_of(now_);
      }
    } else {
      // Cancellation of a non-top event: drop it from the prefix if cached.
      for (std::uint32_t i = 1; i < top_count_; ++i) {
        if (top_cache_[i].slot == slot_index) {
          --top_count_;
          for (std::uint32_t j = i; j < top_count_; ++j) {
            top_cache_[j] = top_cache_[j + 1];
          }
          break;
        }
      }
    }
  }
}

void Simulator::flush_staged() {
  std::uint32_t chain = staged_list_;
  staged_list_ = kNil;
  const std::size_t incoming = staged_count_;
  staged_count_ = 0;

  // If the calendar is empty, size it and derive the bucket width from the
  // batch itself (its span/size were tracked at schedule time), so the batch
  // is linked exactly once — no growth rebuilds mid-distribution.
  if (finite_entries_ == 0 && inf_count_ == 0 && incoming > 0) {
    set_width(preferred_width(staged_lo_, staged_hi_, staged_finite_));
    const std::size_t want = std::max(kMinBuckets, next_pow2(incoming * 2));
    if (want != bucket_heads_.size()) {
      bucket_heads_.assign(want, kNil);
      bucket_mask_ = want - 1;
    }
    cur_day_ = day_of(now_);
    top_count_ = 0;
  }
  staged_finite_ = 0;
  staged_lo_ = kTimeInfinity;
  staged_hi_ = -kTimeInfinity;

  while (chain != kNil) {
    const std::uint32_t i = chain;
    Slot& s = slot_at(i);
    chain = s.next;
    s.staged = false;
    if (s.seq == 0) {
      // Cancelled while staged (payload already freed); reclaim the slot now
      // that it is unchained.
      free_slots_.push_back(i);
    } else {
      link(i, s);
    }
  }
  maybe_grow();
}

bool Simulator::locate_top() {
  if (staged_list_ != kNil) flush_staged();
  if (top_count_ > 0) return true;
  if (finite_entries_ > 0) {
    const std::size_t nb = bucket_heads_.size();
    for (std::size_t k = 0; k < nb; ++k) {
      const std::uint64_t day = cur_day_ + k;
      std::uint32_t i = bucket_heads_[day & bucket_mask_];
      if (i == kNil) continue;
      // Bucket lists are unsorted; scan for the day's (t, seq)-smallest
      // events — the day's m smallest are the globally m smallest, since
      // every later day holds strictly later times — capturing up to
      // kTopCacheSize of them, and skipping events a full rotation (or
      // more) ahead.
      std::size_t scanned = 0;
      for (; i != kNil;) {
        const Slot& s = slot_at(i);
        const std::uint32_t nx = s.next;
        // Bucket neighbours live on unrelated cache lines; overlap the next
        // fetch with this entry's day check and cache insert.
        if (nx != kNil) __builtin_prefetch(&slot_at(nx));
        ++scanned;
        if (day_of(s.t) == day) top_insert(s.t, s.seq, i);
        i = nx;
      }
      if (top_count_ > 0) {
        // A grossly overfull bucket means the width no longer matches the
        // event density (the workload's timescale changed); re-derive it.
        // The cooldown keeps coincident-time pileups, which no width can
        // spread, from triggering a rebuild per pop.
        if (scanned > 64 &&
            executed_ - last_rebuild_exec_ > finite_entries_) {
          rebuild(bucket_heads_.size());
          return locate_top();
        }
        if (profiling_) [[unlikely]] {
          ++profile_walks_;
          profile_scan_sum_ += scanned;
          profile_scan_max_ =
              std::max<std::uint64_t>(profile_scan_max_, scanned);
        }
        cur_day_ = day;
        return true;
      }
    }
    // Nothing within one full rotation: the calendar is too sparse for its
    // size. Shrink it (also re-deriving the width) while the occupancy
    // invariant is off, then retry; once sized to the population, fall
    // through to a direct search over every finite event (whose smallest
    // prefix is global: infinite-time events sort after all of them).
    const std::size_t want =
        std::max(kMinBuckets, next_pow2(finite_entries_ * 2));
    if (want < nb) {
      rebuild(want);
      return locate_top();
    }
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::uint32_t i = bucket_heads_[b]; i != kNil; i = slot_at(i).next) {
        const Slot& s = slot_at(i);
        top_insert(s.t, s.seq, i);
      }
    }
    PASE_DCHECK(top_count_ > 0);
    cur_day_ = day_of(top_cache_[0].t);
    return true;
  }
  if (inf_count_ > 0) {
    // Only past-horizon events remain; their smallest prefix is global.
    for (std::uint32_t i = inf_list_; i != kNil; i = slot_at(i).next) {
      const Slot& s = slot_at(i);
      top_insert(s.t, s.seq, i);
    }
    return true;
  }
  return false;
}

void Simulator::rebuild(std::size_t new_num_buckets) {
  // Gather every pending event into a temporary chain (no allocation: the
  // links are intrusive) while measuring the finite-time span.
  std::uint32_t chain = kNil;
  double lo = kTimeInfinity, hi = -kTimeInfinity;
  std::size_t finite_count = 0;
  const auto gather = [&](std::uint32_t head) {
    std::uint32_t i = head;
    while (i != kNil) {
      Slot& s = slot_at(i);
      const std::uint32_t nx = s.next;
      s.next = chain;
      chain = i;
      if (std::isfinite(s.t)) {
        lo = std::min(lo, s.t);
        hi = std::max(hi, s.t);
        ++finite_count;
      }
      i = nx;
    }
  };
  for (const std::uint32_t head : bucket_heads_) gather(head);
  gather(inf_list_);
  inf_list_ = kNil;
  inf_count_ = 0;

  bucket_heads_.assign(new_num_buckets, kNil);
  bucket_mask_ = new_num_buckets - 1;

  set_width(preferred_width(lo, hi, finite_count));

  finite_entries_ = 0;
  cur_day_ = day_of(now_);
  top_count_ = 0;  // cleared before relinking: link() must not see stale entries
  last_rebuild_exec_ = executed_;
  ++calendar_rebuilds_;
  while (chain != kNil) {
    const std::uint32_t i = chain;
    Slot& s = slot_at(i);
    chain = s.next;
    link(i, s);
  }
}

void Simulator::reserve(std::size_t n) {
  free_slots_.reserve(n);
  while (slot_chunks_.size() * kSlotChunkSize < n) {
    slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
  }
  if (n > bucket_heads_.size()) rebuild(next_pow2(n));
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= num_slots_) return false;
  Slot& s = slot_at(id.slot_);
  if (s.gen != id.gen_) return false;  // already fired, cancelled, or reused
  if (s.staged) {
    // Cheaply unlinking from the middle of the staging list isn't possible,
    // so mark the node dead (seq = 0) and leave it chained; the slot is
    // retired — and removed — when the staging list is next flushed.
    --staged_count_;
    if (std::isfinite(s.t)) --staged_finite_;
    s.seq = 0;
    destroy_payload(s);
    bump_gen(s);
    return true;
  }
  unlink(id.slot_, s);
  destroy_payload(s);
  retire_slot(id.slot_, s);
  return true;
}

bool Simulator::step(Time until) {
  // Fast path: the top cache already knows the next event (~(K-1)/K of
  // pops); fall into the full locator only on a cache miss or staged batch.
  if (staged_list_ != kNil || top_count_ == 0) {
    if (!locate_top()) return false;
  }
  if (top_cache_[0].t > until) return false;
  const std::uint32_t slot = top_cache_[0].slot;
  const Time t = top_cache_[0].t;
  Slot& s = slot_at(slot);
  // Unlink, copy the event out, and retire before invoking, so the callback
  // may freely schedule (possibly reusing this very slot) or cancel. The
  // payload is 24 trivially-copyable bytes; heap-closure ownership transfers
  // to the invoker (which frees it), so the slot is downgraded to kRaw.
  unlink(slot, s);
  const RawFn fn = s.fn;
  const Kind kind = s.kind;
  if (profiling_) [[unlikely]] profile_count(fn, kind);
  alignas(8) unsigned char payload[kInlinePayloadSize];
  std::memcpy(payload, s.payload, sizeof(payload));
  s.kind = Kind::kRaw;
  retire_slot(slot, s);
  if (executed_ > 0) {
    fire_gap_ewma_ = fire_gap_ewma_ * 0.98 + (t - now_) * 0.02;
  }
  now_ = t;
  ++executed_;
  if (det_) [[unlikely]] {
    // Everything this callback schedules (or posts cross-domain) becomes a
    // child of the firing event's lineage node, numbered from zero.
    cur_node_ = det_nodes_[slot];
    cur_k_ = 0;
  }
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    // Stamp the tracing context once per dispatch: everything the callback
    // emits (queue drops, cwnd samples, ...) inherits this event's time and
    // lineage order key, so emit sites need neither a clock nor the engine.
    tb->begin_event(t, det_ ? det_nodes_[slot] : obs::kNoOrder);
  }
  // Overlap upcoming events' cache misses with this callback's execution.
  // The promoted top cache names the upcoming slots, so the objects the next
  // raw payloads point at (a Link, a Packet in flight, a timer context) can
  // be fetched while the current event runs — at fabric scale those lines
  // have been evicted between a packet's consecutive hops, and this serial
  // miss chain otherwise dominates the event loop. Reading the payload of a
  // pending slot is safe (single-threaded engine, slots are stable), and a
  // prefetch of whatever bytes a closure payload holds is harmless.
  //
  // The pipeline is two events deep: depth 1's payload objects were already
  // prefetched while the previous event ran (when it sat at depth 2), so a
  // registered hint can chase one pointer further (e.g. a delivery
  // prefetching the destination node); depth 2's slot line was prefetched
  // one step early, so its payload read below lands warm and its objects
  // start fetching now.
  if (top_count_ > 0) {
    const Slot& n0 = slot_at(top_cache_[0].slot);
    RawPayload np;
    std::memcpy(&np, n0.payload, sizeof(np));
    if (np.ctx != nullptr) __builtin_prefetch(np.ctx);
    if (np.arg != nullptr) __builtin_prefetch(np.arg);
    if (n0.kind == Kind::kRaw) {
      for (std::uint32_t i = 0; i < num_hints_; ++i) {
        if (hints_[i].fn == n0.fn) {
          hints_[i].hint(np.ctx, np.arg);
          break;
        }
      }
    }
    if (top_count_ > 1) {
      const Slot& n1 = slot_at(top_cache_[1].slot);
      RawPayload n1p;
      std::memcpy(&n1p, n1.payload, sizeof(n1p));
      if (n1p.ctx != nullptr) __builtin_prefetch(n1p.ctx);
      if (n1p.arg != nullptr) __builtin_prefetch(n1p.arg);
      if (top_count_ > 2) __builtin_prefetch(&slot_at(top_cache_[2].slot));
    }
  }
  switch (kind) {
    case Kind::kRaw: {
      RawPayload rp;
      std::memcpy(&rp, payload, sizeof(rp));
      fn(rp.ctx, rp.arg);
      break;
    }
    case Kind::kInlineClosure:
      fn(payload, nullptr);
      break;
    case Kind::kHeapClosure: {
      HeapPayload hp;
      std::memcpy(&hp, payload, sizeof(hp));
      fn(hp.obj, nullptr);
      break;
    }
  }
  return true;
}

void Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_ && step(until)) {
  }
  if (until != kTimeInfinity && now_ < until && !stopped_) now_ = until;
}

void Simulator::profile_count(RawFn fn, Kind kind) {
  switch (kind) {
    case Kind::kRaw: ++profile_raw_; break;
    case Kind::kInlineClosure: ++profile_inline_; break;
    case Kind::kHeapClosure: ++profile_heap_; break;
  }
  const std::size_t pending = pending_events();
  if (pending > profile_peak_pending_) profile_peak_pending_ = pending;
  if (kind != Kind::kRaw) return;
  for (std::uint32_t i = 0; i < num_profiled_fns_; ++i) {
    if (profiled_fns_[i].fn == fn) {
      ++profiled_fns_[i].count;
      return;
    }
  }
  ++profile_other_;
}

void Simulator::enable_det(std::uint32_t domain_id, DetLineage* lineage) {
  PASE_DCHECK(lineage != nullptr);
  PASE_DCHECK(pending_events() == 0 && executed_ == 0 &&
              "det mode must be enabled before any scheduling");
  det_ = true;
  domain_id_ = domain_id;
  lineage_ = lineage;
  det_nodes_.resize(slot_chunks_.size() << kSlotChunkShift);
}

Time Simulator::next_event_time() {
  if (staged_list_ != kNil || top_count_ == 0) {
    if (!locate_top()) return kTimeInfinity;
  }
  return top_cache_[0].t;
}

void Simulator::run_before(Time bound) {
  stopped_ = false;
  while (!stopped_) {
    if (staged_list_ != kNil || top_count_ == 0) {
      if (!locate_top()) return;
    }
    if (top_cache_[0].t >= bound) return;
    step(kTimeInfinity);
  }
}

}  // namespace pase::sim
