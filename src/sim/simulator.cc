#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace pase::sim {

namespace {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

double Simulator::preferred_width(Time lo, Time hi, std::size_t n) const {
  if (executed_ > 64 && fire_gap_ewma_ > 0.0 &&
      std::isfinite(fire_gap_ewma_)) {
    return fire_gap_ewma_ * 3.0;
  }
  if (n > 1 && hi > lo) return (hi - lo) * 2.0 / static_cast<double>(n);
  return width_;  // degenerate: keep the current width
}

Simulator::Simulator() {
  bucket_heads_.assign(kMinBuckets, kNil);
  bucket_mask_ = kMinBuckets - 1;
  free_slots_.reserve(256);
}

Simulator::~Simulator() = default;

void Simulator::link(std::uint32_t slot_index, Slot& s) {
  const std::uint64_t day = day_of(s.t);
  std::uint32_t& head =
      day == kInfDay ? inf_list_ : bucket_heads_[day & bucket_mask_];
  s.next = head;
  head = slot_index;
  if (day == kInfDay) {
    ++inf_count_;
  } else {
    ++finite_entries_;
  }
  if (memo_valid_ &&
      (s.t < memo_t_ || (s.t == memo_t_ && s.seq < memo_seq_))) {
    // The new event preempts the cached top; rewind the calendar cursor so
    // the next walk starts no later than its day.
    memo_slot_ = slot_index;
    memo_t_ = s.t;
    memo_seq_ = s.seq;
    if (day < cur_day_) cur_day_ = day;
  }
}

void Simulator::unlink(std::uint32_t slot_index, const Slot& s) {
  const std::uint64_t day = day_of(s.t);
  std::uint32_t* plink =
      day == kInfDay ? &inf_list_ : &bucket_heads_[day & bucket_mask_];
  while (*plink != slot_index) {
    assert(*plink != kNil && "pending event missing from its bucket");
    plink = &slot_at(*plink).next;
  }
  *plink = s.next;
  if (day == kInfDay) {
    --inf_count_;
  } else {
    --finite_entries_;
  }
  if (memo_valid_ && memo_slot_ == slot_index) {
    // The cached top went away; restart the walk from the clock's day.
    memo_valid_ = false;
    cur_day_ = day_of(now_);
  }
}

void Simulator::flush_staged() {
  std::uint32_t chain = staged_list_;
  staged_list_ = kNil;
  const std::size_t incoming = staged_count_;
  staged_count_ = 0;

  // If the calendar is empty, size it and derive the bucket width from the
  // batch itself (its span/size were tracked at schedule time), so the batch
  // is linked exactly once — no growth rebuilds mid-distribution.
  if (finite_entries_ == 0 && inf_count_ == 0 && incoming > 0) {
    set_width(preferred_width(staged_lo_, staged_hi_, staged_finite_));
    const std::size_t want = std::max(kMinBuckets, next_pow2(incoming * 2));
    if (want != bucket_heads_.size()) {
      bucket_heads_.assign(want, kNil);
      bucket_mask_ = want - 1;
    }
    cur_day_ = day_of(now_);
    memo_valid_ = false;
  }
  staged_finite_ = 0;
  staged_lo_ = kTimeInfinity;
  staged_hi_ = -kTimeInfinity;

  while (chain != kNil) {
    const std::uint32_t i = chain;
    Slot& s = slot_at(i);
    chain = s.next;
    s.staged = false;
    if (s.seq == 0) {
      // Cancelled while staged; reclaim the slot now that it is unchained.
      free_slots_.push_back(i);
    } else {
      link(i, s);
    }
  }
  maybe_grow();
}

bool Simulator::locate_top() {
  if (staged_list_ != kNil) flush_staged();
  if (memo_valid_) return true;
  if (finite_entries_ > 0) {
    const std::size_t nb = bucket_heads_.size();
    for (std::size_t k = 0; k < nb; ++k) {
      const std::uint64_t day = cur_day_ + k;
      std::uint32_t i = bucket_heads_[day & bucket_mask_];
      if (i == kNil) continue;
      // Bucket lists are unsorted; scan for the (t, seq)-minimum belonging
      // to this day, skipping events a full rotation (or more) ahead.
      std::uint32_t best = kNil;
      Time bt = 0.0;
      std::uint64_t bs = 0;
      std::size_t scanned = 0;
      for (; i != kNil; i = slot_at(i).next) {
        const Slot& s = slot_at(i);
        ++scanned;
        if (day_of(s.t) != day) continue;
        if (best == kNil || s.t < bt || (s.t == bt && s.seq < bs)) {
          best = i;
          bt = s.t;
          bs = s.seq;
        }
      }
      if (best != kNil) {
        // A grossly overfull bucket means the width no longer matches the
        // event density (the workload's timescale changed); re-derive it.
        // The cooldown keeps coincident-time pileups, which no width can
        // spread, from triggering a rebuild per pop.
        if (scanned > 64 && executed_ - last_rebuild_exec_ > finite_entries_) {
          rebuild(bucket_heads_.size());
          return locate_top();
        }
        cur_day_ = day;
        memo_slot_ = best;
        memo_t_ = bt;
        memo_seq_ = bs;
        memo_valid_ = true;
        return true;
      }
    }
    // Nothing within one full rotation: the calendar is too sparse for its
    // size. Shrink it (also re-deriving the width) while the occupancy
    // invariant is off, then retry; once sized to the population, fall
    // through to a direct search for the globally earliest pending event.
    const std::size_t want =
        std::max(kMinBuckets, next_pow2(finite_entries_ * 2));
    if (want < nb) {
      rebuild(want);
      return locate_top();
    }
    std::uint32_t best = kNil;
    Time bt = 0.0;
    std::uint64_t bs = 0;
    for (std::size_t b = 0; b < nb; ++b) {
      for (std::uint32_t i = bucket_heads_[b]; i != kNil; i = slot_at(i).next) {
        const Slot& s = slot_at(i);
        if (best == kNil || s.t < bt || (s.t == bt && s.seq < bs)) {
          best = i;
          bt = s.t;
          bs = s.seq;
        }
      }
    }
    assert(best != kNil);
    cur_day_ = day_of(bt);
    memo_slot_ = best;
    memo_t_ = bt;
    memo_seq_ = bs;
    memo_valid_ = true;
    return true;
  }
  if (inf_count_ > 0) {
    std::uint32_t best = kNil;
    Time bt = 0.0;
    std::uint64_t bs = 0;
    for (std::uint32_t i = inf_list_; i != kNil; i = slot_at(i).next) {
      const Slot& s = slot_at(i);
      if (best == kNil || s.t < bt || (s.t == bt && s.seq < bs)) {
        best = i;
        bt = s.t;
        bs = s.seq;
      }
    }
    memo_slot_ = best;
    memo_t_ = bt;
    memo_seq_ = bs;
    memo_valid_ = true;
    return true;
  }
  return false;
}

void Simulator::rebuild(std::size_t new_num_buckets) {
  // Gather every pending event into a temporary chain (no allocation: the
  // links are intrusive) while measuring the finite-time span.
  std::uint32_t chain = kNil;
  double lo = kTimeInfinity, hi = -kTimeInfinity;
  std::size_t finite_count = 0;
  const auto gather = [&](std::uint32_t head) {
    std::uint32_t i = head;
    while (i != kNil) {
      Slot& s = slot_at(i);
      const std::uint32_t nx = s.next;
      s.next = chain;
      chain = i;
      if (std::isfinite(s.t)) {
        lo = std::min(lo, s.t);
        hi = std::max(hi, s.t);
        ++finite_count;
      }
      i = nx;
    }
  };
  for (const std::uint32_t head : bucket_heads_) gather(head);
  gather(inf_list_);
  inf_list_ = kNil;
  inf_count_ = 0;

  bucket_heads_.assign(new_num_buckets, kNil);
  bucket_mask_ = new_num_buckets - 1;

  set_width(preferred_width(lo, hi, finite_count));

  finite_entries_ = 0;
  cur_day_ = day_of(now_);
  memo_valid_ = false;
  last_rebuild_exec_ = executed_;
  while (chain != kNil) {
    const std::uint32_t i = chain;
    Slot& s = slot_at(i);
    chain = s.next;
    link(i, s);
  }
}

void Simulator::maybe_grow() {
  // Jump past the trigger point (2x occupancy) so refill-heavy workloads see
  // O(log n) rebuilds totalling O(n) relinks, not O(n log n).
  if (finite_entries_ > bucket_heads_.size() * 2) {
    rebuild(next_pow2(finite_entries_ * 2));
  }
}

void Simulator::reserve(std::size_t n) {
  free_slots_.reserve(n);
  if (n > bucket_heads_.size()) rebuild(next_pow2(n));
}

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  assert(delay >= 0.0 && "cannot schedule in the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = num_slots_++;
    assert(slot != kNil && "pending-event slot space exhausted");
    if ((slot >> kSlotChunkShift) >= slot_chunks_.size()) {
      slot_chunks_.push_back(std::make_unique<Slot[]>(kSlotChunkSize));
    }
  }
  Slot& s = slot_at(slot);
  s.fn = std::move(fn);
  s.seq = next_seq_++;
  s.t = t;
  // Stage rather than bucket: everything here lands on the slot line we just
  // wrote, so a schedule burst costs no bucket traffic and no growth
  // rebuilds — the batch is distributed (and the calendar sized for it in
  // one pass) when the next event is actually needed.
  s.staged = true;
  s.next = staged_list_;
  staged_list_ = slot;
  ++staged_count_;
  if (std::isfinite(t)) {
    ++staged_finite_;
    staged_lo_ = std::min(staged_lo_, t);
    staged_hi_ = std::max(staged_hi_, t);
  }
  return EventId{slot, s.gen};
}

bool Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= num_slots_) return false;
  Slot& s = slot_at(id.slot_);
  if (s.gen != id.gen_) return false;  // already fired, cancelled, or reused
  if (s.staged) {
    // Cheaply unlinking from the middle of the staging list isn't possible,
    // so mark the node dead (seq = 0) and leave it chained; the slot is
    // retired — and removed — when the staging list is next flushed.
    --staged_count_;
    if (std::isfinite(s.t)) --staged_finite_;
    s.seq = 0;
    s.fn = nullptr;
    bump_gen(s);
    return true;
  }
  unlink(id.slot_, s);
  s.fn = nullptr;
  retire_slot(id.slot_, s);
  return true;
}

bool Simulator::step(Time until) {
  if (!locate_top()) return false;
  if (memo_t_ > until) return false;
  const std::uint32_t slot = memo_slot_;
  const Time t = memo_t_;
  Slot& s = slot_at(slot);
  // Unlink and retire before invoking, so the callback may freely schedule
  // (possibly reusing this very slot) or cancel.
  unlink(slot, s);
  std::function<void()> fn = std::move(s.fn);
  retire_slot(slot, s);
  if (executed_ > 0) {
    fire_gap_ewma_ = fire_gap_ewma_ * 0.98 + (t - now_) * 0.02;
  }
  now_ = t;
  ++executed_;
  fn();
  return true;
}

void Simulator::run(Time until) {
  stopped_ = false;
  while (!stopped_ && step(until)) {
  }
  if (until != kTimeInfinity && now_ < until && !stopped_) now_ = until;
}

}  // namespace pase::sim
