// Conservative barrier-synchronous parallel execution of one simulation.
//
// The network is partitioned into domains, one Simulator (and one worker
// thread) each. Every cross-domain interaction is a Link delivery whose
// propagation delay is at least the partition lookahead L, so the classic
// conservative-PDES window applies: with m = min over domains of the next
// pending event time, every event in [m, H) can run without hearing from any
// other domain, for any horizon H that no cross-domain delivery can undercut.
// The engine runs three kinds of barrier-separated rounds:
//
//   drain   — every domain empties its incoming mailboxes into its calendar
//             (after which the union of calendars is the complete global
//             pending set) and publishes {next event time, safe bound};
//             the barrier leader picks H = min bound.
//   window  — every domain runs up to (exclusive) H, posting cross-domain
//             deliveries into mailboxes. If nobody posted, the published
//             values are still complete — the leader picks the next H at the
//             same barrier and the drain round is skipped entirely (one
//             barrier per quiet round instead of two).
//   finish  — H passed the caller's target: every domain runs inclusively to
//             the target and sets its clock there, exactly the semantics of
//             Simulator::run(target), so the chunked scenario driver behaves
//             identically to its sequential form.
//
// The safe bound defaults to next_t + L (the static min-cut window). A
// caller-installed horizon probe can widen it per domain per round to
// next_t + D, where D is a certified lower bound on the delay before *this
// round's actual pending work* can reach a cut link (conditional lookahead):
// when the only pending events sit several store-and-forward hops from the
// nearest cut, D spans those hops and one round swallows what the static
// window would have split into many.
//
// Determinism: no decision depends on thread scheduling. The horizon is
// computed by whichever thread arrives last from published per-domain
// bounds; mailbox records carry DetLineage nodes interned in the source
// domain, so injected deliveries sort against local events exactly where the
// sequential FIFO order would place them (see det_lineage.h). All mailbox
// access is separated by barriers: producers append only during run phases,
// consumers drain only between them. The probe influences only *when* events
// run, never their order, so traces stay bit-identical across worker counts
// and probe choices.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace pase::sim {

class ParallelEngine {
 public:
  // Creates `domains` Simulators. Worker threads (one per domain beyond the
  // caller's, which executes domain 0) start lazily on the first run_until.
  explicit ParallelEngine(int domains);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int num_domains() const { return static_cast<int>(sims_.size()); }
  Simulator& domain(int d) { return *sims_[static_cast<std::size_t>(d)]; }
  // The shared lineage arena (every domain runs in det mode); exposed so
  // callers can order out-of-band records (e.g. deferred completion
  // callbacks) exactly as the sequential run would have fired them.
  DetLineage& lineage() { return lineage_; }

  // Minimum propagation delay over all cut links; must be positive and set
  // before the first run_until.
  void set_lookahead(Time lookahead) { lookahead_ = lookahead; }
  Time lookahead() const { return lookahead_; }

  // Conditional-lookahead hook. Called on domain d's own thread while every
  // mailbox is empty (drain rounds and quiet windows); returns an absolute
  // bound B >= next_t + lookahead() such that no event chain starting from
  // d's pending work can deliver into another domain before B. Unset: the
  // engine uses the static bound next_t + lookahead(). Never called with
  // next_t == infinity.
  using HorizonProbe = std::function<Time(int domain, Time next_t)>;
  void set_horizon_probe(HorizonProbe probe) { probe_ = std::move(probe); }

  // Runs once on each worker thread before its first round (and once on the
  // caller's thread for domain 0): thread-local warmup such as packet-pool
  // prewarming.
  void set_thread_init(std::function<void(int domain)> fn) {
    thread_init_ = std::move(fn);
  }

  // Frees the payload of records still in flight at destruction (a run may
  // end with cross-domain deliveries pending). The engine does not know what
  // `arg` owns; the network layer does.
  void set_orphan_deleter(std::function<void(RawFn, void*, void*)> fn) {
    orphan_deleter_ = std::move(fn);
  }

  // Posts a cross-domain event: fires at `deliver_t` in `dst`, ordered by a
  // lineage node captured from `src`'s executing event right now. Must be
  // called from the thread running domain `src`, during a run phase.
  void post(int src, int dst, Time deliver_t, RawFn fn, void* ctx, void* arg);

  // Advances every domain clock to exactly `target` (monotonically
  // increasing across calls), executing all events at times <= target.
  void run_until(Time target);

  // Clock reached by run_until so far (all domains agree at return).
  Time now() const { return now_; }

  // Sum of pending events across domains plus undelivered mailbox records;
  // only meaningful between run_until calls.
  std::size_t pending_events() const;

  // --- Self-profiling (read between run_until calls) ----------------------
  // Horizon decisions made so far (each picks one window or ends the chunk).
  std::uint64_t rounds_executed() const { return rounds_; }
  // run_until windows completed.
  std::uint64_t windows_executed() const { return windows_; }
  // Cross-domain mailbox records posted (mailbox traffic).
  std::uint64_t cross_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }
  // Mailbox drain rounds executed (every one is a full barrier crossing; the
  // gap to rounds_executed() is rounds that skipped the drain).
  std::uint64_t drains_executed() const { return drains_; }
  // Windows after which no domain had posted: their drain was elided.
  std::uint64_t quiet_rounds() const { return quiet_rounds_; }
  // Mean width (seconds) of the windows run so far; the static engine pins
  // this at exactly lookahead() plus scheduling slack, the conditional probe
  // widens it.
  double mean_horizon_width() const {
    return window_rounds_ == 0
               ? 0.0
               : horizon_width_sum_ / static_cast<double>(window_rounds_);
  }
  // Total wall-clock seconds threads spent blocked in round barriers after
  // the bounded spin phase (summed over domains; load-imbalance signal).
  double barrier_wait_sec() const {
    double s = 0.0;
    for (const DomainPub& p : pub_) s += p.barrier_wait;
    return s;
  }

 private:
  struct CrossRecord {
    Time t;
    DetLineage::NodeId node;
    RawFn fn;
    void* ctx;
    void* arg;
  };

  // Per-domain slots published between barriers, padded so neighbouring
  // domains never share a cache line.
  struct alignas(64) DomainPub {
    Time next_t = kTimeInfinity;  // next pending event time
    Time bound = kTimeInfinity;   // earliest possible cross-domain delivery
    double barrier_wait = 0.0;    // accumulated post-spin barrier wait (sec)
  };

  // Sense-reversing barrier; the last arriver runs `leader_fn` before
  // releasing the others, which gives every shared decision a happens-before
  // edge to every waiter (acq_rel RMW chain into the release store).
  // Waiters spin (with a CPU pause) for a bounded burst — round trips are
  // usually shorter than a context switch — then fall back to yielding.
  // Returns the wall-clock seconds spent in the yield phase (0 when the
  // release arrived during the spin burst, and for the leader).
  class Barrier {
   public:
    explicit Barrier(int n) : n_(n) {}

    template <typename Fn>
    double arrive_and_wait(Fn&& leader_fn) {
      const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        leader_fn();
        arrived_.store(0, std::memory_order_relaxed);
        epoch_.store(e + 1, std::memory_order_release);
        return 0.0;
      }
      for (int i = 0; i < kSpinIters; ++i) {
        if (epoch_.load(std::memory_order_acquire) != e) return 0.0;
        cpu_pause();
      }
      const auto t0 = std::chrono::steady_clock::now();
      while (epoch_.load(std::memory_order_acquire) == e) {
        std::this_thread::yield();
      }
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    }

   private:
    static constexpr int kSpinIters = 4096;
    static void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#elif defined(__aarch64__)
      asm volatile("yield");
#endif
    }

    const int n_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> epoch_{0};
  };

  std::vector<CrossRecord>& mailbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(num_domains()) +
                 static_cast<std::size_t>(dst)];
  }

  void start_threads();
  void worker_main(int d);
  void run_rounds(int d);
  void drain_inbox(int d);
  void publish(int d, Simulator& sd);
  void decide();  // barrier-leader only

  DetLineage lineage_;  // before sims_: domains intern nodes into it
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::vector<CrossRecord>> mail_;  // [src * W + dst]
  std::vector<DomainPub> pub_;                  // published per round
  HorizonProbe probe_;
  Time lookahead_ = 0.0;
  Time now_ = 0.0;

  // Command state, written by the caller before the start barrier.
  Time target_ = 0.0;
  bool exit_ = false;
  // Round decision, written by the barrier leader (or the caller, who forces
  // a drain at the top of each run_until to pick up finish-phase leftovers).
  enum class Round { kDrain, kWindow, kFinish } round_ = Round::kDrain;
  Time horizon_ = 0.0;

  // Self-profiling. The plain counters are written only by the round-barrier
  // leader (serialized by the barrier itself); cross_posts_ is bumped
  // concurrently from run phases, hence atomic (relaxed: it is a statistic,
  // ordered for readers by the barriers that end each window).
  std::uint64_t rounds_ = 0;
  std::uint64_t windows_ = 0;
  std::uint64_t drains_ = 0;
  std::uint64_t quiet_rounds_ = 0;
  std::uint64_t window_rounds_ = 0;
  double horizon_width_sum_ = 0.0;
  std::uint64_t posts_at_decide_ = 0;
  std::atomic<std::uint64_t> cross_posts_{0};

  Barrier start_barrier_;
  Barrier round_barrier_;
  std::vector<std::thread> threads_;
  bool threads_started_ = false;
  std::function<void(int)> thread_init_;
  std::function<void(RawFn, void*, void*)> orphan_deleter_;
};

}  // namespace pase::sim
