// Conservative barrier-synchronous parallel execution of one simulation.
//
// The network is partitioned into domains, one Simulator (and one worker
// thread) each. Every cross-domain interaction is a Link delivery whose
// propagation delay is at least the partition lookahead L, so the classic
// conservative-PDES window applies: with m = min over domains of the next
// pending event time, every event in [m, m + L) can run without hearing
// from any other domain — a delivery generated at tau >= m arrives at
// tau + L_edge >= m + L. Each round therefore
//   (1) drains the per-pair mailboxes into the destination calendars,
//   (2) agrees on the horizon H = m + L at a barrier,
//   (3) runs every domain up to (exclusive) H, posting new cross-domain
//       deliveries into the mailboxes for the next round's drain.
// Rounds repeat until H passes the caller's target, at which point every
// domain runs inclusively to the target and sets its clock there — exactly
// the semantics of Simulator::run(target), so the chunked scenario driver
// behaves identically to its sequential form.
//
// Determinism: no decision depends on thread scheduling. The horizon is
// computed by whichever thread arrives last from published per-domain next
// event times; mailbox records carry DetLineage nodes interned in the
// source domain, so injected deliveries sort against local events exactly
// where the sequential FIFO order would place them (see det_lineage.h). All
// mailbox access is separated by barriers: producers append only during run
// phases, consumers drain only between them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace pase::sim {

class ParallelEngine {
 public:
  // Creates `domains` Simulators. Worker threads (one per domain beyond the
  // caller's, which executes domain 0) start lazily on the first run_until.
  explicit ParallelEngine(int domains);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int num_domains() const { return static_cast<int>(sims_.size()); }
  Simulator& domain(int d) { return *sims_[static_cast<std::size_t>(d)]; }
  // The shared lineage arena (every domain runs in det mode); exposed so
  // callers can order out-of-band records (e.g. deferred completion
  // callbacks) exactly as the sequential run would have fired them.
  DetLineage& lineage() { return lineage_; }

  // Minimum propagation delay over all cut links; must be positive and set
  // before the first run_until.
  void set_lookahead(Time lookahead) { lookahead_ = lookahead; }
  Time lookahead() const { return lookahead_; }

  // Runs once on each worker thread before its first round (and once on the
  // caller's thread for domain 0): thread-local warmup such as packet-pool
  // prewarming.
  void set_thread_init(std::function<void(int domain)> fn) {
    thread_init_ = std::move(fn);
  }

  // Frees the payload of records still in flight at destruction (a run may
  // end with cross-domain deliveries pending). The engine does not know what
  // `arg` owns; the network layer does.
  void set_orphan_deleter(std::function<void(RawFn, void*, void*)> fn) {
    orphan_deleter_ = std::move(fn);
  }

  // Posts a cross-domain event: fires at `deliver_t` in `dst`, ordered by a
  // lineage node captured from `src`'s executing event right now. Must be
  // called from the thread running domain `src`, during a run phase.
  void post(int src, int dst, Time deliver_t, RawFn fn, void* ctx, void* arg);

  // Advances every domain clock to exactly `target` (monotonically
  // increasing across calls), executing all events at times <= target.
  void run_until(Time target);

  // Clock reached by run_until so far (all domains agree at return).
  Time now() const { return now_; }

  // Sum of pending events across domains plus undelivered mailbox records;
  // only meaningful between run_until calls.
  std::size_t pending_events() const;

  // --- Self-profiling (read between run_until calls) ----------------------
  // Barrier-synchronized rounds executed so far (each round is one drain +
  // horizon agreement + run phase; the terminal finish round included).
  std::uint64_t rounds_executed() const { return rounds_; }
  // run_until windows completed.
  std::uint64_t windows_executed() const { return windows_; }
  // Cross-domain mailbox records posted (mailbox traffic).
  std::uint64_t cross_posts() const {
    return cross_posts_.load(std::memory_order_relaxed);
  }

 private:
  struct CrossRecord {
    Time t;
    DetLineage::NodeId node;
    RawFn fn;
    void* ctx;
    void* arg;
  };

  // Sense-reversing spin barrier; the last arriver runs `leader_fn` before
  // releasing the others, which gives every shared decision a happens-before
  // edge to every waiter (acq_rel RMW chain into the release store).
  class Barrier {
   public:
    explicit Barrier(int n) : n_(n) {}
    template <typename Fn>
    void arrive_and_wait(Fn&& leader_fn) {
      const std::uint64_t e = epoch_.load(std::memory_order_relaxed);
      if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
        leader_fn();
        arrived_.store(0, std::memory_order_relaxed);
        epoch_.store(e + 1, std::memory_order_release);
      } else {
        while (epoch_.load(std::memory_order_acquire) == e) {
          std::this_thread::yield();
        }
      }
    }

   private:
    const int n_;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> epoch_{0};
  };

  std::vector<CrossRecord>& mailbox(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(num_domains()) +
                 static_cast<std::size_t>(dst)];
  }

  void start_threads();
  void worker_main(int d);
  void run_rounds(int d);
  void drain_inbox(int d);

  DetLineage lineage_;  // before sims_: domains intern nodes into it
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::vector<CrossRecord>> mail_;  // [src * W + dst]
  std::vector<Time> next_t_;                    // published per round
  Time lookahead_ = 0.0;
  Time now_ = 0.0;

  // Command state, written by the caller before the start barrier.
  Time target_ = 0.0;
  bool exit_ = false;
  // Round decision, written by the barrier leader.
  enum class Round { kWindow, kFinish } round_ = Round::kWindow;
  Time horizon_ = 0.0;

  // Self-profiling. rounds_ is written only by the round-barrier leader
  // (serialized by the barrier itself); cross_posts_ is bumped concurrently
  // from run phases, hence atomic (relaxed: it is a statistic, ordered for
  // readers by the barriers that end each window).
  std::uint64_t rounds_ = 0;
  std::uint64_t windows_ = 0;
  std::atomic<std::uint64_t> cross_posts_{0};

  Barrier start_barrier_;
  Barrier round_barrier_;
  std::vector<std::thread> threads_;
  bool threads_started_ = false;
  std::function<void(int)> thread_init_;
  std::function<void(RawFn, void*, void*)> orphan_deleter_;
};

}  // namespace pase::sim
