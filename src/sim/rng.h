// Deterministic random number generation for workloads.
//
// A thin wrapper over std::mt19937_64 so every experiment is reproducible
// from a seed printed in its output.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>

namespace pase::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : gen_(seed) {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  // Exponential with the given mean (> 0). Used for Poisson inter-arrivals.
  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(gen_);
  }

  double operator()() { return uniform(0.0, 1.0); }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace pase::sim
