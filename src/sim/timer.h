// Cancellable, restartable one-shot timer built on Simulator events.
//
// Typical use: retransmission timeouts. The owner restarts the timer on every
// ACK; the callback fires only if no restart/cancel intervened. Rearming
// schedules a raw typed event pointing back at the timer — one cache-line
// write, no closure copied, no allocation — so restart-per-ACK churn costs
// the same as any other hot-path event.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.h"

namespace pase::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(&sim), on_fire_(std::move(on_fire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // (Re)arms the timer `delay` seconds from now, replacing any pending one.
  void restart(Time delay) {
    cancel();
    pending_ = true;
    expiry_ = sim_->now() + delay;
    id_ = sim_->schedule_raw(delay, &Timer::fire_trampoline, this);
  }

  void cancel() {
    if (pending_) {
      sim_->cancel(id_);
      pending_ = false;
    }
  }

  bool pending() const { return pending_; }

  // Absolute expiry time of the pending timer (meaningless if !pending()).
  Time expiry() const { return expiry_; }

 private:
  static void fire_trampoline(void* self, void* /*arg*/) {
    auto* timer = static_cast<Timer*>(self);
    timer->pending_ = false;
    timer->on_fire_();
  }

  Simulator* sim_;
  std::function<void()> on_fire_;
  EventId id_;
  Time expiry_ = 0.0;
  bool pending_ = false;
};

}  // namespace pase::sim
