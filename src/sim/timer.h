// Cancellable, restartable one-shot timer built on Simulator events.
//
// Typical use: retransmission timeouts. The owner restarts the timer on every
// ACK; the callback fires only if no restart/cancel intervened.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulator.h"

namespace pase::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(&sim), on_fire_(std::move(on_fire)), fire_([this] {
          pending_ = false;
          on_fire_();
        }) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  // (Re)arms the timer `delay` seconds from now, replacing any pending one.
  // Reuses the trampoline built at construction: rearming copies a small
  // (one-pointer, SBO) closure instead of wrapping `on_fire_` again.
  void restart(Time delay) {
    cancel();
    pending_ = true;
    expiry_ = sim_->now() + delay;
    id_ = sim_->schedule(delay, fire_);
  }

  void cancel() {
    if (pending_) {
      sim_->cancel(id_);
      pending_ = false;
    }
  }

  bool pending() const { return pending_; }

  // Absolute expiry time of the pending timer (meaningless if !pending()).
  Time expiry() const { return expiry_; }

 private:
  Simulator* sim_;
  std::function<void()> on_fire_;
  std::function<void()> fire_;  // reusable trampoline, captures only `this`
  EventId id_;
  Time expiry_ = 0.0;
  bool pending_ = false;
};

}  // namespace pase::sim
