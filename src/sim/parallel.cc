#include "sim/parallel.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/dcheck.h"

namespace pase::sim {

ParallelEngine::ParallelEngine(int domains)
    : lineage_(domains), start_barrier_(domains), round_barrier_(domains) {
  PASE_DCHECK(domains >= 1);
  sims_.reserve(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->enable_det(static_cast<std::uint32_t>(d), &lineage_);
  }
  mail_.resize(static_cast<std::size_t>(domains) *
               static_cast<std::size_t>(domains));
  for (auto& box : mail_) box.reserve(256);
  pub_.resize(static_cast<std::size_t>(domains));
}

ParallelEngine::~ParallelEngine() {
  if (threads_started_) {
    exit_ = true;
    start_barrier_.arrive_and_wait([] {});
    for (auto& t : threads_) t.join();
  }
  if (orphan_deleter_) {
    for (auto& box : mail_) {
      for (const CrossRecord& r : box) orphan_deleter_(r.fn, r.ctx, r.arg);
      box.clear();
    }
  }
}

void ParallelEngine::post(int src, int dst, Time deliver_t, RawFn fn,
                          void* ctx, void* arg) {
  mailbox(src, dst).push_back(
      CrossRecord{deliver_t, domain(src).make_post_node(), fn, ctx, arg});
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ParallelEngine::pending_events() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->pending_events();
  for (const auto& box : mail_) n += box.size();
  return n;
}

void ParallelEngine::start_threads() {
  threads_started_ = true;
  threads_.reserve(sims_.size() - 1);
  for (int d = 1; d < num_domains(); ++d) {
    threads_.emplace_back([this, d] { worker_main(d); });
  }
  if (thread_init_) thread_init_(0);
}

void ParallelEngine::worker_main(int d) {
  if (thread_init_) thread_init_(d);
  for (;;) {
    start_barrier_.arrive_and_wait([] {});
    if (exit_) return;
    run_rounds(d);
  }
}

void ParallelEngine::drain_inbox(int d) {
  Simulator& sd = domain(d);
  for (int s = 0; s < num_domains(); ++s) {
    if (s == d) continue;
    auto& box = mailbox(s, d);
    for (const CrossRecord& r : box) {
      // A sound horizon keeps every delivery strictly ahead of the
      // destination: the poster's published bound capped this domain's last
      // window. Equality would already be an ordering hazard — this domain
      // may have executed same-instant events that sort after the record.
      PASE_DCHECK(r.t > sd.now() && "cross delivery behind the horizon");
      sd.schedule_injected(r.t, r.node, r.fn, r.ctx, r.arg);
    }
    box.clear();
  }
}

void ParallelEngine::publish(int d, Simulator& sd) {
  DomainPub& pub = pub_[static_cast<std::size_t>(d)];
  const Time nt = sd.next_event_time();
  pub.next_t = nt;
  if (nt == kTimeInfinity) {
    pub.bound = kTimeInfinity;
  } else if (probe_) {
    pub.bound = probe_(d, nt);
    PASE_DCHECK(pub.bound >= nt + lookahead_ &&
                "horizon probe returned less than the static bound");
  } else {
    pub.bound = nt + lookahead_;
  }
}

void ParallelEngine::decide() {
  // Leader-only, inside a barrier: every domain published its slot (and any
  // cross posts it made) before arriving, and the acq_rel arrival chain
  // makes those writes visible here.
  ++rounds_;
  Time m = kTimeInfinity;
  Time h = kTimeInfinity;
  for (const DomainPub& p : pub_) {
    m = std::min(m, p.next_t);
    h = std::min(h, p.bound);
  }
  if (h > target_) {
    // Every remaining event <= target is safe: any delivery it generates
    // lands at >= its domain's bound >= h > target, i.e. in a later chunk.
    round_ = Round::kFinish;
  } else {
    round_ = Round::kWindow;
    horizon_ = h;
    horizon_width_sum_ += h - m;
    ++window_rounds_;
  }
  posts_at_decide_ = cross_posts_.load(std::memory_order_relaxed);
}

void ParallelEngine::run_rounds(int d) {
  Simulator& sd = domain(d);
  DomainPub& pub = pub_[static_cast<std::size_t>(d)];
  double waited = 0.0;
  for (;;) {
    switch (round_) {
      case Round::kDrain:
        // Mailboxes were last written during a run phase sealed by the
        // barrier that ended it; after this drain the union of all calendars
        // is the complete global pending set, so the published minima are
        // exact and the probe sees empty mailboxes.
        drain_inbox(d);
        publish(d, sd);
        waited += round_barrier_.arrive_and_wait([this] {
          ++drains_;
          decide();
        });
        break;

      case Round::kWindow:
        sd.run_before(horizon_);
        publish(d, sd);
        waited += round_barrier_.arrive_and_wait([this] {
          if (cross_posts_.load(std::memory_order_relaxed) ==
              posts_at_decide_) {
            // Quiet window: nobody posted, so the mailboxes are still empty
            // and the values just published are complete — decide the next
            // horizon right here and skip the drain round entirely.
            ++quiet_rounds_;
            decide();
          } else {
            // Published minima exclude the mailbox contents; discard them
            // and drain first.
            round_ = Round::kDrain;
          }
        });
        break;

      case Round::kFinish:
        sd.run(target_);  // inclusive; also advances the clock to target
        waited += round_barrier_.arrive_and_wait([] {});
        pub.barrier_wait += waited;
        // Seals the barrier_wait writes: the caller reads them only after
        // domain 0 passes this barrier.
        round_barrier_.arrive_and_wait([] {});
        return;
    }
  }
}

void ParallelEngine::run_until(Time target) {
  PASE_DCHECK(lookahead_ > 0.0 && "parallel run requires positive lookahead");
  if (num_domains() == 1) {
    // Degenerate single-domain engine: plain sequential execution.
    domain(0).run(target);
    now_ = target;
    return;
  }
  if (!threads_started_) start_threads();
  const std::uint64_t rounds_before = rounds_;
  const std::uint64_t posts_before = cross_posts();
  const std::uint64_t drains_before = drains_;
  const std::uint64_t wrounds_before = window_rounds_;
  const double width_before = horizon_width_sum_;
  target_ = target;
  // The finish phase of the previous chunk may have posted deliveries that
  // land in this chunk; always open with a drain.
  round_ = Round::kDrain;
  start_barrier_.arrive_and_wait([] {});
  run_rounds(0);
  now_ = target;
  ++windows_;
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    // Engine self-profiling is inherently worker-count dependent; it lives
    // in its own category so determinism tests can filter it out.
    const std::uint64_t dw = window_rounds_ - wrounds_before;
    const double mean_width =
        dw == 0 ? 0.0 : (horizon_width_sum_ - width_before) /
                            static_cast<double>(dw);
    tb->emit_at(target, obs::kEngineCat, obs::EventType::kParallelRound, 0,
                mean_width, static_cast<double>(drains_ - drains_before),
                static_cast<std::uint32_t>(rounds_ - rounds_before),
                static_cast<std::uint32_t>(cross_posts() - posts_before));
  }
}

}  // namespace pase::sim
