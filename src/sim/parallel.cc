#include "sim/parallel.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/dcheck.h"

namespace pase::sim {

ParallelEngine::ParallelEngine(int domains)
    : lineage_(domains), start_barrier_(domains), round_barrier_(domains) {
  PASE_DCHECK(domains >= 1);
  sims_.reserve(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) {
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->enable_det(static_cast<std::uint32_t>(d), &lineage_);
  }
  mail_.resize(static_cast<std::size_t>(domains) *
               static_cast<std::size_t>(domains));
  for (auto& box : mail_) box.reserve(256);
  next_t_.assign(static_cast<std::size_t>(domains), kTimeInfinity);
}

ParallelEngine::~ParallelEngine() {
  if (threads_started_) {
    exit_ = true;
    start_barrier_.arrive_and_wait([] {});
    for (auto& t : threads_) t.join();
  }
  if (orphan_deleter_) {
    for (auto& box : mail_) {
      for (const CrossRecord& r : box) orphan_deleter_(r.fn, r.ctx, r.arg);
      box.clear();
    }
  }
}

void ParallelEngine::post(int src, int dst, Time deliver_t, RawFn fn,
                          void* ctx, void* arg) {
  mailbox(src, dst).push_back(
      CrossRecord{deliver_t, domain(src).make_post_node(), fn, ctx, arg});
  cross_posts_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t ParallelEngine::pending_events() const {
  std::size_t n = 0;
  for (const auto& s : sims_) n += s->pending_events();
  for (const auto& box : mail_) n += box.size();
  return n;
}

void ParallelEngine::start_threads() {
  threads_started_ = true;
  threads_.reserve(sims_.size() - 1);
  for (int d = 1; d < num_domains(); ++d) {
    threads_.emplace_back([this, d] { worker_main(d); });
  }
  if (thread_init_) thread_init_(0);
}

void ParallelEngine::worker_main(int d) {
  if (thread_init_) thread_init_(d);
  for (;;) {
    start_barrier_.arrive_and_wait([] {});
    if (exit_) return;
    run_rounds(d);
  }
}

void ParallelEngine::drain_inbox(int d) {
  Simulator& sd = domain(d);
  for (int s = 0; s < num_domains(); ++s) {
    if (s == d) continue;
    auto& box = mailbox(s, d);
    for (const CrossRecord& r : box) {
      sd.schedule_injected(r.t, r.node, r.fn, r.ctx, r.arg);
    }
    box.clear();
  }
}

void ParallelEngine::run_rounds(int d) {
  Simulator& sd = domain(d);
  for (;;) {
    // Mailboxes were last written during the previous run phase, sealed by
    // the barrier that ended it; after this drain the union of all calendars
    // is the complete global pending set, so the minimum below is the true
    // global next event time.
    drain_inbox(d);
    next_t_[static_cast<std::size_t>(d)] = sd.next_event_time();
    round_barrier_.arrive_and_wait([this] {
      ++rounds_;  // leader-only write; the barrier serializes it
      Time m = kTimeInfinity;
      for (const Time t : next_t_) m = std::min(m, t);
      if (m + lookahead_ > target_) {
        // Every remaining event <= target is safe: deliveries it generates
        // land at >= m + lookahead > target, i.e. in a later chunk.
        round_ = Round::kFinish;
      } else {
        round_ = Round::kWindow;
        horizon_ = m + lookahead_;
      }
    });
    if (round_ == Round::kFinish) {
      sd.run(target_);  // inclusive; also advances the clock to target
      round_barrier_.arrive_and_wait([] {});
      return;
    }
    sd.run_before(horizon_);
    // Seals this round's mailbox appends before anyone drains them.
    round_barrier_.arrive_and_wait([] {});
  }
}

void ParallelEngine::run_until(Time target) {
  PASE_DCHECK(lookahead_ > 0.0 && "parallel run requires positive lookahead");
  if (num_domains() == 1) {
    // Degenerate single-domain engine: plain sequential execution.
    domain(0).run(target);
    now_ = target;
    return;
  }
  if (!threads_started_) start_threads();
  const std::uint64_t rounds_before = rounds_;
  const std::uint64_t posts_before = cross_posts();
  target_ = target;
  start_barrier_.arrive_and_wait([] {});
  run_rounds(0);
  now_ = target;
  ++windows_;
  if (obs::TraceBuffer* tb = obs::tracer(); tb != nullptr) [[unlikely]] {
    // Engine self-profiling is inherently worker-count dependent; it lives
    // in its own category so determinism tests can filter it out.
    tb->emit_at(target, obs::kEngineCat, obs::EventType::kParallelRound, 0,
                0.0, 0.0, static_cast<std::uint32_t>(rounds_ - rounds_before),
                static_cast<std::uint32_t>(cross_posts() - posts_before));
  }
}

}  // namespace pase::sim
