#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <thread>
#include <utility>

namespace pase::exp {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PASE_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

SweepRunner::SweepRunner(unsigned threads) : threads_(resolve_threads(threads)) {}

std::vector<workload::ScenarioResult> SweepRunner::run(
    const std::vector<workload::ScenarioConfig>& configs) const {
  std::vector<workload::ScenarioResult> results(configs.size());
  std::vector<std::exception_ptr> errors(configs.size());

  // Results land in the slot matching the config's index, so the output
  // order never depends on scheduling; each scenario's simulation is a pure
  // function of its config.
  const auto run_one = [&](std::size_t i) {
    try {
      results[i] = workload::run_scenario(configs[i]);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const std::size_t n = configs.size();
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, n));
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
          run_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

namespace {

// Shortest round-trippable representation of a double; JSON-safe (inf/nan
// become null, which the schema allows for undefined metrics).
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest form that still parses back exactly.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      break;
    }
  }
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_field(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\": ";
  append_number(out, v);
}

}  // namespace

std::string sweep_to_json(
    const std::string& name, const std::vector<SweepCase>& cases,
    const std::vector<workload::ScenarioResult>& results) {
  assert(cases.size() == results.size());
  std::string out;
  out.reserve(512 + 512 * cases.size());
  out += "{\n  \"name\": ";
  append_string(out, name);
  out += ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SweepCase& c = cases[i];
    const workload::ScenarioResult& r = results[i];
    out += "    {";
    out += "\"label\": ";
    append_string(out, c.label);
    out += ", \"protocol\": ";
    append_string(out, workload::protocol_name(c.config.protocol));
    out += ", \"topology\": ";
    switch (c.config.topology) {
      case workload::ScenarioConfig::TopologyKind::kSingleRack:
        append_string(out, "single_rack");
        break;
      case workload::ScenarioConfig::TopologyKind::kFatTree:
        append_string(out, "fat_tree");
        break;
      case workload::ScenarioConfig::TopologyKind::kThreeTier:
        append_string(out, "three_tier");
        break;
    }
    out += ", ";
    append_field(out, "load", c.config.traffic.load);
    out += ", \"num_flows\": " + std::to_string(c.config.traffic.num_flows);
    out += ", \"seed\": " + std::to_string(c.config.traffic.seed);
    out += ", ";
    append_field(out, "afct_s", r.afct());
    out += ", ";
    append_field(out, "fct_p99_s", r.fct_p99());
    out += ", ";
    append_field(out, "app_throughput_bps", r.app_throughput());
    out += ", ";
    append_field(out, "loss_rate", r.loss_rate());
    out += ", \"unfinished\": " + std::to_string(r.unfinished());
    out += ", \"flows\": " + std::to_string(r.total_flows());
    out += ", \"fabric_drops\": " + std::to_string(r.fabric_drops);
    out += ", \"data_packets_sent\": " + std::to_string(r.data_packets_sent);
    out += ", \"probes_sent\": " + std::to_string(r.probes_sent);
    out += ", \"control_messages_sent\": " +
           std::to_string(r.control.messages_sent);
    out += ", ";
    append_field(out, "end_time_s", r.end_time);
    out += ", \"workers_used\": " + std::to_string(r.workers_used);
    out += ", \"parallel_fallback_reason\": ";
    append_string(out, r.parallel_fallback_reason);
    out += ", \"metrics\": {";
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      if (m > 0) out += ", ";
      append_string(out, r.metrics[m].name);
      out += ": ";
      append_number(out, r.metrics[m].value);
    }
    out += '}';
    out += '}';
    if (i + 1 < cases.size()) out += ',';
    out += '\n';
  }
  out += "  ]\n}\n";
  return out;
}

bool write_sweep_json(const std::string& path, const std::string& name,
                      const std::vector<SweepCase>& cases,
                      const std::vector<workload::ScenarioResult>& results) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string doc = sweep_to_json(name, cases, results);
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}

}  // namespace pase::exp
