// Parallel scenario sweep runner.
//
// Every figure in the paper is a grid of independent simulations (loads x
// protocols). Each scenario owns its own Simulator, fabric, and RNG, so the
// sweep is embarrassingly parallel: SweepRunner fans the configs out over a
// fixed pool of worker threads and returns results in submission order,
// making the output bit-identical to a sequential loop regardless of thread
// count or completion order. sweep_to_json() turns a labelled sweep into a
// machine-readable BENCH_*.json document alongside the stdout tables.
#pragma once

#include <string>
#include <vector>

#include "workload/scenario.h"

namespace pase::exp {

// Worker-thread count resolution, first match wins:
//   1. `requested` if nonzero (e.g. a --threads=N flag);
//   2. the PASE_THREADS environment variable if set and positive;
//   3. std::thread::hardware_concurrency() (at least 1).
unsigned resolve_threads(unsigned requested = 0);

class SweepRunner {
 public:
  // threads == 0 defers to resolve_threads().
  explicit SweepRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  // Runs every config (each in its own Simulator) and returns the results in
  // submission order. Never runs more workers than scenarios. If a scenario
  // throws, the first exception (by submission order) is rethrown after all
  // workers finish.
  std::vector<workload::ScenarioResult> run(
      const std::vector<workload::ScenarioConfig>& configs) const;

 private:
  unsigned threads_;
};

// One labelled cell of a sweep grid, e.g. {"PASE load=0.7", cfg}.
struct SweepCase {
  std::string label;
  workload::ScenarioConfig config;
};

// Renders a completed sweep as a JSON document (see EXPERIMENTS.md for the
// schema). `results` must be positionally parallel to `cases`.
std::string sweep_to_json(
    const std::string& name, const std::vector<SweepCase>& cases,
    const std::vector<workload::ScenarioResult>& results);

// Writes sweep_to_json() to `path`. Returns false on I/O failure.
bool write_sweep_json(const std::string& path, const std::string& name,
                      const std::vector<SweepCase>& cases,
                      const std::vector<workload::ScenarioResult>& results);

}  // namespace pase::exp
