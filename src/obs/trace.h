// Zero-overhead-when-off tracing primitives.
//
// This is the bottom layer of the tree: it includes nothing from the rest of
// the codebase (only the standard library), so every other layer — sim, net,
// transport, core — may emit trace events without violating the layering
// bans in tools/check_includes.sh.
//
// The contract:
//   - Disabled at compile time (PASE_OBS_ENABLED=0): tracer() is a constexpr
//     nullptr, every emit site folds to nothing, and the subsystem costs
//     zero bytes and zero cycles.
//   - Disabled at run time (no buffer installed, the default): an emit site
//     costs one thread-local load plus one predictable not-taken branch —
//     no allocation, no virtual call, no change to simulation behaviour.
//   - Enabled: the harness preallocates one TraceBuffer per execution
//     domain and installs it on the thread that runs that domain. Emitting
//     writes one fixed-size record into the ring; the ring never grows, so
//     an enabled run stays allocation-free in steady state too.
//
// Determinism: records carry the executing event's time and lineage order
// key (stamped once per event dispatch by Simulator::step through
// begin_event), so per-domain buffers from a parallel run merge into exactly
// the sequential emission order (see trace_sink.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef PASE_OBS_ENABLED
#define PASE_OBS_ENABLED 1
#endif

namespace pase::obs {

// --- Event taxonomy --------------------------------------------------------

// Category bitmask, used both for runtime filtering (TraceBuffer accepts a
// subset) and for --trace-filter parsing.
enum Category : std::uint32_t {
  kFlowCat = 1u << 0,      // flow lifecycle: start / first byte / complete
  kPacketCat = 1u << 1,    // per-packet fabric events: drops, ECN marks
  kArbCat = 1u << 2,       // PASE arbitration decisions (prio queue, Rref)
  kEndpointCat = 1u << 3,  // endpoint state samples: cwnd, alpha, rate
  kQueueCat = 1u << 4,     // queue occupancy samples (telemetry plane)
  kEngineCat = 1u << 5,    // engine self-profiling (worker-count dependent!)
  kAllCategories = (1u << 6) - 1,
};

enum class EventType : std::uint8_t {
  kFlowStart = 0,      // flow=id, v0=size_bytes, v1=deadline (0 = none)
  kFlowFirstByte,      // flow=id
  kFlowComplete,       // flow=id, v0=completion time - start time (FCT)
  kFlowDeadlineMiss,   // flow=id, v0=lateness (completion - absolute deadline)
  kPktDrop,            // flow=id, a=seq, b=queue id, v0=size_bytes
  kPktEcnMark,         // flow=id, a=seq, b=queue id, v0=size_bytes
  kArbDecision,        // flow=id, a=prio queue, b=half (0=src,1=rx), v0=Rref
  kCwndSample,         // flow=id, v0=cwnd (pkts), v1=srtt (s)
  kAlphaSample,        // flow=id, v0=alpha, v1=marked fraction this window
  kRateSample,         // flow=id, v0=rate_bps, a=paused (0/1)
  kQueueSample,        // a=queue id, b=occupancy pkts, v0=drops, v1=marks
  kEngineSample,       // a=domain, v0=events executed, v1=heap closures
  kParallelRound,      // a=rounds, b=cross posts, v0=mean horizon width (s),
                       // v1=drain rounds — all deltas for this window
};

// Category a type belongs to; drives accepts() at emit sites that batch
// several types.
std::uint32_t category_of(EventType type);
// Stable wire name, e.g. "flow.start", "pkt.drop" (JSONL `type` field).
const char* type_name(EventType type);
// "flow,packet" -> mask; "all"/"" -> kAllCategories. Unknown names are
// ignored (a mask of 0 disables everything). Also accepts "engine", etc.
std::uint32_t parse_categories(const std::string& spec);
// Canonical comma-separated list for a mask, in bit order.
std::string categories_string(std::uint32_t mask);

// --- Records ---------------------------------------------------------------

// One fixed-size, trivially-copyable record. `t` and `order` are stamped
// from the buffer's per-event context (begin_event); emit sites fill the
// rest. `order` is the executing event's DetLineage node id in a parallel
// run and kNoOrder otherwise; it never appears in serialized output — it
// only drives the deterministic merge.
struct TraceEvent {
  double t = 0.0;
  std::uint64_t order = 0;
  std::uint64_t flow = 0;
  double v0 = 0.0;
  double v1 = 0.0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  EventType type = EventType::kFlowStart;
};
static_assert(sizeof(TraceEvent) <= 64, "keep trace records cache-friendly");

inline constexpr std::uint64_t kNoOrder = ~std::uint64_t{0};

// --- Ring buffer -----------------------------------------------------------

// Single-producer ring of TraceEvents. Capacity is rounded up to a power of
// two and fully preallocated at construction; when the ring wraps, the
// oldest records are overwritten and dropped() counts what was lost. All
// methods are called from the one thread the buffer is installed on.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity, std::uint32_t categories);

  bool accepts(std::uint32_t category) const {
    return (categories_ & category) != 0;
  }
  std::uint32_t categories() const { return categories_; }

  // Stamps the context every subsequent emit() inherits: the executing
  // event's time and lineage order key. Called once per event dispatch by
  // the simulator, so emit sites (queues, senders) need no clock access.
  void begin_event(double t, std::uint64_t order) {
    t_ = t;
    order_ = order;
  }

  // Records one event with the current context. The category check is
  // repeated here so direct callers stay correct; call sites that already
  // checked accepts() pay one redundant predictable branch.
  void emit(std::uint32_t category, EventType type, std::uint64_t flow,
            double v0 = 0.0, double v1 = 0.0, std::uint32_t a = 0,
            std::uint32_t b = 0) {
    if (!accepts(category)) return;
    TraceEvent& e = ring_[head_ & mask_];
    ++head_;
    e = TraceEvent{t_, order_, flow, v0, v1, a, b, type};
  }

  // Records one event at an explicit time with no lineage order (engine
  // self-profiling emitted between windows, end-of-run samples).
  void emit_at(double t, std::uint32_t category, EventType type,
               std::uint64_t flow, double v0 = 0.0, double v1 = 0.0,
               std::uint32_t a = 0, std::uint32_t b = 0) {
    if (!accepts(category)) return;
    TraceEvent& e = ring_[head_ & mask_];
    ++head_;
    e = TraceEvent{t, kNoOrder, flow, v0, v1, a, b, type};
  }

  std::size_t capacity() const { return ring_.size(); }
  // Records currently retained (<= capacity).
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  // Records overwritten by ring wrap.
  std::uint64_t dropped() const {
    return head_ < ring_.size() ? 0 : head_ - ring_.size();
  }
  // i-th retained record, oldest first.
  const TraceEvent& at(std::size_t i) const {
    const std::uint64_t first = head_ < ring_.size() ? 0 : head_ - ring_.size();
    return ring_[(first + i) & mask_];
  }

 private:
  std::vector<TraceEvent> ring_;
  std::uint64_t mask_;
  std::uint64_t head_ = 0;  // total records ever emitted
  std::uint32_t categories_;
  double t_ = 0.0;
  std::uint64_t order_ = kNoOrder;
};

// --- Thread-local installation --------------------------------------------

#if PASE_OBS_ENABLED
namespace detail {
extern thread_local TraceBuffer* tls_buffer;
}
// The per-thread trace sink, or nullptr (the default). Emit sites branch on
// this; the harness installs a buffer only for traced runs.
inline TraceBuffer* tracer() { return detail::tls_buffer; }
inline void install_tracer(TraceBuffer* buffer) {
  detail::tls_buffer = buffer;
}
#else
constexpr TraceBuffer* tracer() { return nullptr; }
inline void install_tracer(TraceBuffer*) {}
#endif

// RAII install/uninstall for the calling thread.
class ScopedTracer {
 public:
  explicit ScopedTracer(TraceBuffer* buffer) { install_tracer(buffer); }
  ~ScopedTracer() { install_tracer(nullptr); }
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;
};

// --- Configuration ---------------------------------------------------------

// Carried by ScenarioConfig; plain data so the workload layer needs nothing
// beyond this header.
struct TraceConfig {
  bool enabled = false;
  std::uint32_t categories = kAllCategories;
  // Ring capacity per execution domain, in records (rounded up to a power
  // of two). 1<<18 records is ~14 MiB per domain.
  std::size_t buffer_capacity = std::size_t{1} << 18;
};

}  // namespace pase::obs
