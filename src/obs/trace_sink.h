// Merged trace container and serialization sinks.
//
// A run produces one TraceBuffer per execution domain; merge_buffers folds
// them into a single Trace in deterministic order: records sort by time,
// with same-time ties broken by the lineage order key each record carries
// (the executing event's DetLineage node). Sequential runs have no lineage
// (order == kNoOrder on every record) and a single buffer already in
// execution order, which IS the (time, lineage) order a parallel run
// replays — so the merged trace of a 4-worker run is byte-identical to the
// sequential one. The comparator is injected as a plain function pointer so
// this layer stays independent of sim/.
//
// Two sinks:
//   - JSONL: schema-versioned, one event per line, first line is a header
//     object ({"schema":"pase-trace","version":1,...}). Validated by
//     tools/check_trace_schema.py.
//   - Chrome trace_event JSON for chrome://tracing / about://tracing:
//     flow lifetimes as async b/e pairs, drops and marks as instants,
//     cwnd/rate/occupancy as counter series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace pase::obs {

inline constexpr const char* kTraceSchemaName = "pase-trace";
inline constexpr int kTraceSchemaVersion = 1;

// Strict-weak "before" for lineage order keys; ctx is the caller's lineage
// arena. Only consulted for same-time records that both carry real keys.
using OrderLessFn = bool (*)(const void* ctx, std::uint64_t a,
                             std::uint64_t b);

struct Trace {
  std::vector<TraceEvent> events;  // merged, deterministic order
  // Queue trace_id -> human-readable name (e.g. "h0.up", "tor->h2");
  // resolved by the sinks. Records referencing an id outside this table
  // serialize as "q<id>".
  std::vector<std::string> queue_names;
  std::uint32_t categories = kAllCategories;
  std::uint64_t dropped = 0;  // records lost to ring wrap, summed

  // Serialized forms; deterministic (shortest round-trip doubles, fixed
  // field order).
  std::string to_jsonl() const;
  std::string to_chrome_json() const;
  bool write_jsonl(const std::string& path) const;
  bool write_chrome_json(const std::string& path) const;
};

// Merges per-domain buffers. `less` may be null (sequential run: records
// keep concatenation order within equal times, which is execution order).
Trace merge_buffers(const std::vector<const TraceBuffer*>& buffers,
                    OrderLessFn less, const void* less_ctx);

}  // namespace pase::obs
