// Fabric telemetry plane: fixed sim-time-interval sampling of per-link
// utilization and per-queue depth/ECN-mark/drop rates, rolled up into
// windowed time series by fabric tier and pod, with space-saving heavy-hitter
// tracking for the hottest links and flows.
//
// The design goal is scale-invariant output: a k=32 fat-tree has ~49k queues,
// so per-queue series are unaffordable. The plane keeps O(queues) running
// state (previous cumulative counters plus one mean/max accumulator per
// queue) but emits O(groups x windows + K) — a group is a tier ("tier:core")
// or a pod ("pod:3"), a window is samples_per_window consecutive sample
// ticks, and K is the heavy-hitter capacity.
//
// Determinism contract: sample() reads only simulation-domain state (queue
// lengths, cumulative drop/mark counters, link busy time and byte counts) at
// domain-quiescent instants chosen on the sample grid t = n * sample_period.
// The scenario harness drives it at sub-chunk boundaries where every domain
// clock sits exactly on the grid, so the sample stream — and therefore the
// serialized "pase-telemetry" JSONL — is byte-identical at any worker count.
// Standalone users (tests, examples) can instead arm() the plane on a
// simulator; sampling then rides the allocation-free raw typed-event path,
// exactly like the FabricTelemetry sampler this plane replaces.
//
// Per-window statistics reuse the stats/streaming estimators: mean/max are
// exact, p99 comes from a fixed-geometry LogHistogram (order-independent by
// construction), and whole-run per-group p99 is a P² marker estimate fed in
// canonical sample order.
//
// This header sits above sim/net/topo/stats (it reads their state), unlike
// the rest of obs/ which is stdlib-pure — tools/check_includes.sh carves out
// obs/telemetry.* explicitly, and no lower layer may include it back.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/dcheck.h"
#include "sim/simulator.h"
#include "stats/streaming.h"
#include "topo/builder.h"
#include "topo/topology.h"

namespace pase::obs {

inline constexpr const char* kTelemetrySchemaName = "pase-telemetry";
inline constexpr int kTelemetrySchemaVersion = 1;

// Canonical queue order and names for a topology: host uplinks first, then
// every switch port, matching Topology::for_each_queue. Also stamps each
// queue's trace id with its index so packet drop/mark trace events can be
// attributed to a named queue.
inline std::vector<std::string> label_fabric_queues(topo::Topology& topo) {
  std::vector<std::string> names;
  for (const auto& h : topo.hosts()) names.push_back(h->name() + ".up");
  for (const auto& sw : topo.switches()) {
    for (int p = 0; p < sw->num_ports(); ++p) {
      names.push_back(sw->port_link(p).name());
    }
  }
  std::uint32_t i = 0;
  topo.for_each_queue([&i](net::Queue& q) { q.set_trace_id(i++); });
  PASE_DCHECK(i == names.size() && "queue walk disagrees with labels");
  return names;
}

// Link utilization over a window: busy time divided by elapsed time.
struct UtilizationProbe {
  const net::Link* link;
  sim::Time t0;
  sim::Time busy0;

  UtilizationProbe(const net::Link& l, sim::Time now)
      : link(&l), t0(now), busy0(l.busy_time()) {}

  double utilization(sim::Time now) const {
    const sim::Time elapsed = now - t0;
    if (elapsed <= 0) return 0.0;
    const sim::Time busy = link->busy_time() - busy0;
    PASE_DCHECK(busy >= 0 && "link busy_time went backwards");
    // busy_time can exceed elapsed by one in-flight serialization; report a
    // physically meaningful fraction.
    return std::clamp(busy / elapsed, 0.0, 1.0);
  }
};

// Carried by ScenarioConfig; plain data, defaults tuned so an enabled run
// stays under the 5% overhead budget at fat-tree scale (one fabric walk per
// millisecond of sim time).
struct TelemetryConfig {
  bool enabled = false;
  // Sample grid: the fabric is read at t = n * sample_period (multiplied,
  // never accumulated, so the grid is bit-identical across drivers).
  sim::Time sample_period = 1e-3;
  // Samples folded into one rollup window (window span = period * this).
  int samples_per_window = 10;
  // Heavy hitters reported per class (links, flows).
  std::size_t top_k = 8;
  // Internal space-saving capacity; larger = tighter error bounds. Keys
  // whose true byte count exceeds total_bytes / sketch_entries are
  // guaranteed tracked.
  std::size_t sketch_entries = 128;
};

// Space-saving sketch (Metwally, Agrawal & El Abbadi, ICDT 2005) with
// weighted updates. Invariants, with m = capacity():
//   - estimate(k) >= true_weight(k) >= estimate(k) - error(k) for tracked k;
//   - any key whose true weight exceeds min_estimate() is tracked — and
//     min_estimate() <= total_weight / m, which is the guaranteed-top-K
//     property the unit tests pin.
// Victim selection is deterministic (minimum count, lowest slot index), so
// two sketches fed the same sequence are identical.
class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void add(std::uint64_t key, std::uint64_t weight);

  struct Item {
    std::uint64_t key = 0;
    std::uint64_t estimate = 0;  // upper bound on the key's true weight
    std::uint64_t error = 0;     // estimate - error lower-bounds the weight
  };
  // Top n tracked keys, estimate-descending, key-ascending on ties.
  std::vector<Item> top(std::size_t n) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t tracked() const { return slots_.size(); }
  std::uint64_t total_weight() const { return total_; }
  // Smallest tracked estimate (0 while the sketch has free slots): the
  // eviction floor, and the guarantee threshold for top-K membership.
  std::uint64_t min_estimate() const;

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::size_t find(std::uint64_t key) const;

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Slot> slots_;  // unsorted; linear scans — capacity is O(100)
};

// One rollup window for one group. `group` indexes
// TelemetrySummary::group_names; depth is in packets, utilization in [0, 1].
struct TelemetryWindowRow {
  std::uint32_t window = 0;
  std::uint32_t group = 0;
  double t0 = 0.0;
  double t1 = 0.0;
  std::uint64_t samples = 0;  // queue-samples folded in (queues x ticks)
  double util_mean = 0.0;
  double util_max = 0.0;
  double util_p99 = 0.0;  // LogHistogram nearest-rank (0 when all idle)
  double depth_mean = 0.0;
  std::uint64_t depth_max = 0;
  double depth_p99 = 0.0;
  std::uint64_t drops = 0;  // window delta, summed over the group's queues
  std::uint64_t marks = 0;
  std::uint64_t bytes = 0;
};

// Whole-run aggregate for one group. util_p99 here is the P² marker
// estimate over every per-sample link utilization in the group.
struct TelemetryGroupTotal {
  std::uint32_t group = 0;
  std::uint64_t samples = 0;
  double util_mean = 0.0;
  double util_max = 0.0;
  double util_p99 = 0.0;
  double depth_mean = 0.0;
  std::uint64_t depth_max = 0;
  std::uint64_t drops = 0;
  std::uint64_t marks = 0;
  std::uint64_t bytes = 0;
};

struct HeavyHitter {
  std::string name;  // link name, or "flow:<id>"
  std::uint64_t key = 0;
  std::uint64_t bytes = 0;  // estimate (upper bound)
  std::uint64_t error = 0;
};

// The rendered result of a telemetry run: everything the "pase-telemetry"
// JSONL sink serializes, O(groups x windows + K) regardless of fabric size.
struct TelemetrySummary {
  sim::Time sample_period = 0.0;
  int samples_per_window = 0;
  std::uint64_t samples = 0;  // sample ticks taken
  sim::Time end_time = 0.0;
  std::size_t num_queues = 0;
  std::vector<std::string> group_names;         // "tier:core", "pod:3", ...
  std::vector<TelemetryWindowRow> windows;      // window-major, group-minor
  std::vector<TelemetryGroupTotal> totals;      // one per group
  std::vector<HeavyHitter> hot_links;
  std::vector<HeavyHitter> hot_flows;

  // Schema-versioned JSONL ({"schema":"pase-telemetry","version":1,...}
  // header, then one record per line). Deterministic: shortest round-trip
  // number formatting, fixed field order — byte-identical for identical
  // sample streams. Validated by tools/check_trace_schema.py.
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;
};

// The sampling plane. Construct over a built topology, then either let the
// scenario harness call sample() on the grid at quiescent instants, or arm()
// it on a simulator for standalone event-driven sampling. finish() flushes
// the trailing partial window and renders the summary.
class TelemetryPlane {
 public:
  TelemetryPlane(topo::BuiltTopology& built, const TelemetryConfig& cfg);

  sim::Time sample_period() const { return cfg_.sample_period; }
  std::uint64_t samples_taken() const { return samples_; }
  // Grid time of sample n (1-based); the harness runs each domain clock to
  // exactly this instant before calling sample().
  sim::Time sample_time(std::uint64_t n) const {
    return cfg_.sample_period * static_cast<double>(n);
  }

  // Reads every queue and link once and folds the tick into the live window.
  // `now` must be non-decreasing across calls.
  void sample(sim::Time now);

  // Heavy-hitter feed for flows: called once per flow at launch with its
  // size. (Links feed themselves from per-sample byte deltas.)
  void note_flow(std::uint64_t flow_id, std::uint64_t size_bytes);

  // Standalone mode: schedules a periodic sample on the raw typed-event
  // path (no heap closures, engine counters unchanged). stop() ends it.
  void arm(sim::Simulator& sim);
  void stop() { armed_ = false; }

  // Flushes the trailing partial window and builds the summary.
  std::shared_ptr<const TelemetrySummary> finish(sim::Time end_time);

  // --- Introspection (tests, examples) -----------------------------------
  const std::vector<std::string>& queue_names() const { return names_; }
  std::size_t num_queues() const { return names_.size(); }
  const std::vector<std::string>& group_names() const { return group_names_; }
  // Largest backlog observed anywhere in the fabric.
  std::size_t peak_occupancy() const;
  // Name of the queue with the highest mean backlog — usually the bottleneck.
  const std::string* busiest() const;

  // Exports per-queue aggregates into a metrics registry:
  //   fabric.queue.<name>.occupancy_mean / .occupancy_max   gauges
  //   fabric.queue.<name>.drops / .marks                    counters
  //   fabric.drops / fabric.marks / fabric.enqueues         aggregates
  void fold_into(MetricsRegistry& reg) const;

 private:
  // Raw-event trampoline for armed (standalone) mode.
  static void on_tick(void* ctx, void* arg);

  struct QueueState {
    net::Queue* queue = nullptr;
    const net::Link* link = nullptr;
    std::uint16_t tier_group = 0;
    std::int16_t pod_group = -1;  // -1: topology has no pod for this queue
    // Previous cumulative counters (deltas per tick are derived from these).
    sim::Time prev_busy = 0.0;
    std::uint64_t prev_bytes = 0;
    std::uint64_t prev_drops = 0;
    std::uint64_t prev_marks = 0;
    // Whole-run per-queue aggregates (O(queues), not O(queues x samples)).
    double occ_sum = 0.0;
    std::uint64_t occ_max = 0;
  };

  // Live accumulator for the current window of one group.
  struct WindowAccum {
    std::uint64_t samples = 0;
    double util_sum = 0.0;
    double util_max = 0.0;
    double depth_sum = 0.0;
    std::uint64_t depth_max = 0;
    std::uint64_t drops = 0;
    std::uint64_t marks = 0;
    std::uint64_t bytes = 0;
    stats::LogHistogram util_hist;
    stats::LogHistogram depth_hist;
  };

  // Whole-run accumulator for one group.
  struct RunAccum {
    std::uint64_t samples = 0;
    double util_sum = 0.0;
    double util_max = 0.0;
    double depth_sum = 0.0;
    std::uint64_t depth_max = 0;
    std::uint64_t drops = 0;
    std::uint64_t marks = 0;
    std::uint64_t bytes = 0;
    stats::P2Quantile util_p99{0.99};
  };

  static stats::LogHistogram make_util_hist() {
    // Utilization lives in [0, 1]: 1e-4..2 at 24 buckets/decade keeps the
    // p99 within ~10% multiplicative error in ~104 buckets.
    return stats::LogHistogram(1e-4, 2.0, 24);
  }
  static stats::LogHistogram make_depth_hist() {
    // Queue depths in packets: 1..1e6 at 12 buckets/decade.
    return stats::LogHistogram(1.0, 1e6, 12);
  }

  void fold_queue_sample(QueueState& qs, sim::Time now, sim::Time elapsed);
  void flush_window(sim::Time t_end);

  TelemetryConfig cfg_;
  std::vector<std::string> names_;        // canonical queue order
  std::vector<QueueState> queues_;        // parallel to names_
  std::vector<std::string> group_names_;  // tiers first, then pods
  std::vector<WindowAccum> window_;       // one per group, live window
  std::vector<RunAccum> run_;             // one per group, whole run
  std::vector<TelemetryWindowRow> rows_;  // flushed windows
  SpaceSavingSketch link_sketch_;
  SpaceSavingSketch flow_sketch_;
  std::uint64_t samples_ = 0;
  std::uint32_t windows_flushed_ = 0;
  sim::Time prev_sample_t_ = 0.0;
  sim::Time window_t0_ = 0.0;
  sim::Simulator* armed_sim_ = nullptr;  // standalone mode only
  bool armed_ = false;
};

}  // namespace pase::obs
