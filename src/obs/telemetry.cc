#include "obs/telemetry.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "net/link.h"
#include "net/queue.h"

namespace pase::obs {

// ---------------------------------------------------------------------------
// SpaceSavingSketch

std::size_t SpaceSavingSketch::find(std::uint64_t key) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].key == key) return i;
  }
  return slots_.size();
}

void SpaceSavingSketch::add(std::uint64_t key, std::uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  const std::size_t i = find(key);
  if (i < slots_.size()) {
    slots_[i].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    slots_.push_back({key, weight, 0});
    return;
  }
  // Evict the minimum-count slot (lowest index on ties — deterministic) and
  // inherit its count as the new key's error bound.
  std::size_t victim = 0;
  for (std::size_t j = 1; j < slots_.size(); ++j) {
    if (slots_[j].count < slots_[victim].count) victim = j;
  }
  Slot& s = slots_[victim];
  s.error = s.count;
  s.count += weight;
  s.key = key;
}

std::uint64_t SpaceSavingSketch::min_estimate() const {
  if (slots_.size() < capacity_) return 0;
  std::uint64_t m = slots_[0].count;
  for (const Slot& s : slots_) m = std::min(m, s.count);
  return m;
}

std::vector<SpaceSavingSketch::Item> SpaceSavingSketch::top(
    std::size_t n) const {
  std::vector<Item> items;
  items.reserve(slots_.size());
  for (const Slot& s : slots_) items.push_back({s.key, s.count, s.error});
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.estimate != b.estimate) return a.estimate > b.estimate;
    return a.key < b.key;
  });
  if (items.size() > n) items.resize(n);
  return items;
}

// ---------------------------------------------------------------------------
// TelemetryPlane

TelemetryPlane::TelemetryPlane(topo::BuiltTopology& built,
                               const TelemetryConfig& cfg)
    : cfg_(cfg),
      link_sketch_(cfg.sketch_entries),
      flow_sketch_(cfg.sketch_entries) {
  PASE_DCHECK(cfg_.sample_period > 0 && "telemetry needs a positive period");
  if (cfg_.samples_per_window < 1) cfg_.samples_per_window = 1;

  topo::Topology& topo = built.topo();
  names_ = label_fabric_queues(topo);
  const std::vector<topo::QueueClass> classes = built.queue_classes();
  PASE_DCHECK(classes.size() == names_.size() &&
              "queue classes disagree with queue labels");

  // Group ids: the four tiers first (dense, whether present or not would
  // waste rows — only tiers that actually occur get a group), then pods in
  // ascending order. Group order is structural, never sample-dependent.
  int max_pod = -1;
  bool tier_present[4] = {false, false, false, false};
  for (const topo::QueueClass& c : classes) {
    tier_present[static_cast<int>(c.tier)] = true;
    max_pod = std::max(max_pod, c.pod);
  }
  std::uint16_t tier_group[4] = {0, 0, 0, 0};
  for (int t = 0; t < 4; ++t) {
    if (!tier_present[t]) continue;
    tier_group[t] = static_cast<std::uint16_t>(group_names_.size());
    group_names_.push_back(
        std::string("tier:") +
        topo::link_tier_name(static_cast<topo::LinkTier>(t)));
  }
  const std::size_t first_pod_group = group_names_.size();
  for (int p = 0; p <= max_pod; ++p) {
    group_names_.push_back("pod:" + std::to_string(p));
  }

  queues_.reserve(names_.size());
  std::size_t i = 0;
  topo.for_each_queue([&](net::Queue& q) {
    QueueState qs;
    qs.queue = &q;
    qs.link = q.link();
    const topo::QueueClass& c = classes[i];
    qs.tier_group = tier_group[static_cast<int>(c.tier)];
    qs.pod_group = c.pod < 0 ? std::int16_t{-1}
                             : static_cast<std::int16_t>(first_pod_group +
                                                         c.pod);
    queues_.push_back(qs);
    ++i;
  });
  PASE_DCHECK(queues_.size() == names_.size());

  window_.resize(group_names_.size());
  run_.resize(group_names_.size());
  for (std::size_t g = 0; g < group_names_.size(); ++g) {
    window_[g].util_hist = make_util_hist();
    window_[g].depth_hist = make_depth_hist();
  }
}

void TelemetryPlane::fold_queue_sample(QueueState& qs, sim::Time /*now*/,
                                       sim::Time elapsed) {
  const std::uint64_t depth = qs.queue->len_packets();
  const std::uint64_t drops = qs.queue->drops();
  const std::uint64_t marks = qs.queue->marks();
  const sim::Time busy = qs.link->busy_time();
  const std::uint64_t bytes = qs.link->bytes_sent();

  double util = 0.0;
  if (elapsed > 0) {
    util = std::clamp((busy - qs.prev_busy) / elapsed, 0.0, 1.0);
  }
  const std::uint64_t d_drops = drops - qs.prev_drops;
  const std::uint64_t d_marks = marks - qs.prev_marks;
  const std::uint64_t d_bytes = bytes - qs.prev_bytes;
  qs.prev_busy = busy;
  qs.prev_drops = drops;
  qs.prev_marks = marks;
  qs.prev_bytes = bytes;

  qs.occ_sum += static_cast<double>(depth);
  qs.occ_max = std::max(qs.occ_max, depth);

  if (d_bytes > 0) {
    // Links feed the heavy-hitter sketch with their per-tick byte delta; the
    // key is the queue's canonical index.
    link_sketch_.add(static_cast<std::uint64_t>(&qs - queues_.data()),
                     d_bytes);
  }

  const auto fold = [&](std::size_t g) {
    WindowAccum& w = window_[g];
    ++w.samples;
    w.util_sum += util;
    w.util_max = std::max(w.util_max, util);
    w.depth_sum += static_cast<double>(depth);
    w.depth_max = std::max(w.depth_max, depth);
    w.drops += d_drops;
    w.marks += d_marks;
    w.bytes += d_bytes;
    w.util_hist.add(util);
    w.depth_hist.add(static_cast<double>(depth));

    RunAccum& r = run_[g];
    ++r.samples;
    r.util_sum += util;
    r.util_max = std::max(r.util_max, util);
    r.depth_sum += static_cast<double>(depth);
    r.depth_max = std::max(r.depth_max, depth);
    r.drops += d_drops;
    r.marks += d_marks;
    r.bytes += d_bytes;
    r.util_p99.add(util);
  };
  fold(qs.tier_group);
  if (qs.pod_group >= 0) fold(static_cast<std::size_t>(qs.pod_group));
}

void TelemetryPlane::sample(sim::Time now) {
  PASE_DCHECK(now >= prev_sample_t_ && "telemetry samples must advance");
  const sim::Time elapsed = now - prev_sample_t_;
  for (QueueState& qs : queues_) fold_queue_sample(qs, now, elapsed);
  prev_sample_t_ = now;
  ++samples_;
  if (samples_ % static_cast<std::uint64_t>(cfg_.samples_per_window) == 0) {
    flush_window(now);
  }
}

void TelemetryPlane::note_flow(std::uint64_t flow_id,
                               std::uint64_t size_bytes) {
  flow_sketch_.add(flow_id, size_bytes);
}

void TelemetryPlane::flush_window(sim::Time t_end) {
  for (std::size_t g = 0; g < window_.size(); ++g) {
    WindowAccum& w = window_[g];
    TelemetryWindowRow row;
    row.window = windows_flushed_;
    row.group = static_cast<std::uint32_t>(g);
    row.t0 = window_t0_;
    row.t1 = t_end;
    row.samples = w.samples;
    if (w.samples > 0) {
      const double n = static_cast<double>(w.samples);
      row.util_mean = w.util_sum / n;
      row.util_max = w.util_max;
      // A LogHistogram maps zeros to its floor bucket, which would report an
      // all-idle window's p99 as the bucket midpoint — an idle window's p99
      // is simply zero — and reports bucket upper bounds, which can exceed
      // the true maximum; clamp so p99 <= max always holds.
      row.util_p99 =
          w.util_max > 0 ? std::min(w.util_hist.percentile(99), w.util_max)
                         : 0.0;
      row.depth_mean = w.depth_sum / n;
      row.depth_max = w.depth_max;
      row.depth_p99 =
          w.depth_max > 0 ? std::min(w.depth_hist.percentile(99),
                                     static_cast<double>(w.depth_max))
                          : 0.0;
      row.drops = w.drops;
      row.marks = w.marks;
      row.bytes = w.bytes;
    }
    rows_.push_back(row);
    w = WindowAccum{};
    w.util_hist = make_util_hist();
    w.depth_hist = make_depth_hist();
  }
  ++windows_flushed_;
  window_t0_ = t_end;
}

void TelemetryPlane::arm(sim::Simulator& sim) {
  PASE_DCHECK(!armed_ && "telemetry plane armed twice");
  armed_sim_ = &sim;
  armed_ = true;
  sim.schedule_raw(cfg_.sample_period, &TelemetryPlane::on_tick, this);
}

void TelemetryPlane::on_tick(void* ctx, void*) {
  auto* self = static_cast<TelemetryPlane*>(ctx);
  if (!self->armed_) return;
  self->sample(self->armed_sim_->now());
  // Standalone mode also mirrors each tick onto the trace stream when a
  // tracer is installed, preserving the kQueueSample records the old
  // FabricTelemetry emitted.
  if (TraceBuffer* tb = tracer(); tb != nullptr) [[unlikely]] {
    std::size_t i = 0;
    for (const QueueState& qs : self->queues_) {
      tb->emit(kQueueCat, EventType::kQueueSample, 0,
               static_cast<double>(qs.queue->drops()),
               static_cast<double>(qs.queue->marks()),
               static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>(qs.queue->len_packets()));
      ++i;
    }
  }
  self->armed_sim_->schedule_raw(self->cfg_.sample_period,
                                 &TelemetryPlane::on_tick, self);
}

std::shared_ptr<const TelemetrySummary> TelemetryPlane::finish(
    sim::Time end_time) {
  armed_ = false;
  // Flush a trailing partial window so late activity is never dropped.
  bool partial = false;
  for (const WindowAccum& w : window_) partial = partial || w.samples > 0;
  if (partial) flush_window(prev_sample_t_);

  auto out = std::make_shared<TelemetrySummary>();
  out->sample_period = cfg_.sample_period;
  out->samples_per_window = cfg_.samples_per_window;
  out->samples = samples_;
  out->end_time = end_time;
  out->num_queues = queues_.size();
  out->group_names = group_names_;
  out->windows = rows_;

  out->totals.reserve(run_.size());
  for (std::size_t g = 0; g < run_.size(); ++g) {
    const RunAccum& r = run_[g];
    TelemetryGroupTotal t;
    t.group = static_cast<std::uint32_t>(g);
    t.samples = r.samples;
    if (r.samples > 0) {
      const double n = static_cast<double>(r.samples);
      t.util_mean = r.util_sum / n;
      t.util_max = r.util_max;
      // The P² markers interpolate and can overshoot the observed extremum.
      t.util_p99 =
          r.util_max > 0 ? std::min(r.util_p99.value(), r.util_max) : 0.0;
      t.depth_mean = r.depth_sum / n;
      t.depth_max = r.depth_max;
      t.drops = r.drops;
      t.marks = r.marks;
      t.bytes = r.bytes;
    }
    out->totals.push_back(t);
  }

  for (const SpaceSavingSketch::Item& it : link_sketch_.top(cfg_.top_k)) {
    HeavyHitter h;
    h.key = it.key;
    h.name = it.key < names_.size() ? names_[static_cast<std::size_t>(it.key)]
                                    : "?";
    h.bytes = it.estimate;
    h.error = it.error;
    out->hot_links.push_back(std::move(h));
  }
  for (const SpaceSavingSketch::Item& it : flow_sketch_.top(cfg_.top_k)) {
    HeavyHitter h;
    h.key = it.key;
    h.name = "flow:" + std::to_string(it.key);
    h.bytes = it.estimate;
    h.error = it.error;
    out->hot_flows.push_back(std::move(h));
  }
  return out;
}

std::size_t TelemetryPlane::peak_occupancy() const {
  std::size_t peak = 0;
  for (const QueueState& qs : queues_) {
    peak = std::max(peak, static_cast<std::size_t>(qs.occ_max));
  }
  return peak;
}

const std::string* TelemetryPlane::busiest() const {
  const std::string* best = nullptr;
  double best_sum = -1.0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i].occ_sum > best_sum) {
      best_sum = queues_[i].occ_sum;
      best = &names_[i];
    }
  }
  return best;
}

void TelemetryPlane::fold_into(MetricsRegistry& reg) const {
  std::uint64_t drops = 0, marks = 0, enqueues = 0;
  const double n = samples_ > 0 ? static_cast<double>(samples_) : 1.0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    const QueueState& qs = queues_[i];
    reg.gauge("fabric.queue." + names_[i] + ".occupancy_mean") =
        qs.occ_sum / n;
    reg.gauge("fabric.queue." + names_[i] + ".occupancy_max") =
        static_cast<double>(qs.occ_max);
    reg.counter("fabric.queue." + names_[i] + ".drops") = qs.queue->drops();
    reg.counter("fabric.queue." + names_[i] + ".marks") = qs.queue->marks();
    drops += qs.queue->drops();
    marks += qs.queue->marks();
    enqueues += qs.queue->enqueues();
  }
  reg.counter("fabric.drops") = drops;
  reg.counter("fabric.marks") = marks;
  reg.counter("fabric.enqueues") = enqueues;
}

// ---------------------------------------------------------------------------
// JSONL sink

namespace {

// Shortest round-trippable representation of a double (same idiom as the
// sweep/trace sinks): deterministic bytes for identical values.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      break;
    }
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string TelemetrySummary::to_jsonl() const {
  std::string out;
  out.reserve(256 + windows.size() * 192 + totals.size() * 160);

  out += "{\"schema\":\"";
  out += kTelemetrySchemaName;
  out += "\",\"version\":";
  append_u64(out, static_cast<std::uint64_t>(kTelemetrySchemaVersion));
  out += ",\"period\":";
  append_number(out, sample_period);
  out += ",\"samples_per_window\":";
  append_u64(out, static_cast<std::uint64_t>(samples_per_window));
  out += ",\"samples\":";
  append_u64(out, samples);
  out += ",\"end_time\":";
  append_number(out, end_time);
  out += ",\"queues\":";
  append_u64(out, num_queues);
  out += ",\"groups\":";
  append_u64(out, group_names.size());
  out += ",\"windows\":";
  append_u64(out, windows.empty() ? 0 : windows.size() / group_names.size());
  out += ",\"top_k\":";
  append_u64(out, std::max(hot_links.size(), hot_flows.size()));
  out += "}\n";

  for (std::size_t g = 0; g < group_names.size(); ++g) {
    out += "{\"type\":\"group\",\"id\":";
    append_u64(out, g);
    out += ",\"name\":";
    append_string(out, group_names[g]);
    out += "}\n";
  }

  for (const TelemetryWindowRow& w : windows) {
    out += "{\"type\":\"window\",\"w\":";
    append_u64(out, w.window);
    out += ",\"group\":";
    append_u64(out, w.group);
    out += ",\"t0\":";
    append_number(out, w.t0);
    out += ",\"t1\":";
    append_number(out, w.t1);
    out += ",\"samples\":";
    append_u64(out, w.samples);
    out += ",\"util_mean\":";
    append_number(out, w.util_mean);
    out += ",\"util_max\":";
    append_number(out, w.util_max);
    out += ",\"util_p99\":";
    append_number(out, w.util_p99);
    out += ",\"depth_mean\":";
    append_number(out, w.depth_mean);
    out += ",\"depth_max\":";
    append_u64(out, w.depth_max);
    out += ",\"depth_p99\":";
    append_number(out, w.depth_p99);
    out += ",\"drops\":";
    append_u64(out, w.drops);
    out += ",\"marks\":";
    append_u64(out, w.marks);
    out += ",\"bytes\":";
    append_u64(out, w.bytes);
    out += "}\n";
  }

  for (const TelemetryGroupTotal& t : totals) {
    out += "{\"type\":\"total\",\"group\":";
    append_u64(out, t.group);
    out += ",\"samples\":";
    append_u64(out, t.samples);
    out += ",\"util_mean\":";
    append_number(out, t.util_mean);
    out += ",\"util_max\":";
    append_number(out, t.util_max);
    out += ",\"util_p99\":";
    append_number(out, t.util_p99);
    out += ",\"depth_mean\":";
    append_number(out, t.depth_mean);
    out += ",\"depth_max\":";
    append_u64(out, t.depth_max);
    out += ",\"drops\":";
    append_u64(out, t.drops);
    out += ",\"marks\":";
    append_u64(out, t.marks);
    out += ",\"bytes\":";
    append_u64(out, t.bytes);
    out += "}\n";
  }

  for (std::size_t r = 0; r < hot_links.size(); ++r) {
    out += "{\"type\":\"hot_link\",\"rank\":";
    append_u64(out, r);
    out += ",\"name\":";
    append_string(out, hot_links[r].name);
    out += ",\"bytes\":";
    append_u64(out, hot_links[r].bytes);
    out += ",\"error\":";
    append_u64(out, hot_links[r].error);
    out += "}\n";
  }
  for (std::size_t r = 0; r < hot_flows.size(); ++r) {
    out += "{\"type\":\"hot_flow\",\"rank\":";
    append_u64(out, r);
    out += ",\"flow\":";
    append_u64(out, hot_flows[r].key);
    out += ",\"bytes\":";
    append_u64(out, hot_flows[r].bytes);
    out += ",\"error\":";
    append_u64(out, hot_flows[r].error);
    out += "}\n";
  }
  return out;
}

bool TelemetrySummary::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string body = to_jsonl();
  f.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(f);
}

}  // namespace pase::obs
