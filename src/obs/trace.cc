#include "obs/trace.h"

namespace pase::obs {

#if PASE_OBS_ENABLED
namespace detail {
thread_local TraceBuffer* tls_buffer = nullptr;
}
#endif

TraceBuffer::TraceBuffer(std::size_t capacity, std::uint32_t categories)
    : categories_(categories) {
  std::size_t cap = 1;
  while (cap < capacity) cap <<= 1;
  ring_.resize(cap);
  mask_ = cap - 1;
}

std::uint32_t category_of(EventType type) {
  switch (type) {
    case EventType::kFlowStart:
    case EventType::kFlowFirstByte:
    case EventType::kFlowComplete:
    case EventType::kFlowDeadlineMiss:
      return kFlowCat;
    case EventType::kPktDrop:
    case EventType::kPktEcnMark:
      return kPacketCat;
    case EventType::kArbDecision:
      return kArbCat;
    case EventType::kCwndSample:
    case EventType::kAlphaSample:
    case EventType::kRateSample:
      return kEndpointCat;
    case EventType::kQueueSample:
      return kQueueCat;
    case EventType::kEngineSample:
    case EventType::kParallelRound:
      return kEngineCat;
  }
  return 0;
}

const char* type_name(EventType type) {
  switch (type) {
    case EventType::kFlowStart: return "flow.start";
    case EventType::kFlowFirstByte: return "flow.first_byte";
    case EventType::kFlowComplete: return "flow.complete";
    case EventType::kFlowDeadlineMiss: return "flow.deadline_miss";
    case EventType::kPktDrop: return "pkt.drop";
    case EventType::kPktEcnMark: return "pkt.ecn_mark";
    case EventType::kArbDecision: return "arb.decision";
    case EventType::kCwndSample: return "ep.cwnd";
    case EventType::kAlphaSample: return "ep.alpha";
    case EventType::kRateSample: return "ep.rate";
    case EventType::kQueueSample: return "queue.sample";
    case EventType::kEngineSample: return "engine.sample";
    case EventType::kParallelRound: return "engine.round";
  }
  return "unknown";
}

namespace {

struct CategoryName {
  const char* name;
  std::uint32_t bit;
};

constexpr CategoryName kCategoryNames[] = {
    {"flow", kFlowCat},   {"packet", kPacketCat}, {"arb", kArbCat},
    {"endpoint", kEndpointCat}, {"queue", kQueueCat}, {"engine", kEngineCat},
};

}  // namespace

std::uint32_t parse_categories(const std::string& spec) {
  if (spec.empty() || spec == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok = spec.substr(
        pos, comma == std::string::npos ? comma : comma - pos);
    if (tok == "all") mask |= kAllCategories;
    for (const CategoryName& c : kCategoryNames) {
      if (tok == c.name) mask |= c.bit;
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

std::string categories_string(std::uint32_t mask) {
  std::string out;
  for (const CategoryName& c : kCategoryNames) {
    if ((mask & c.bit) == 0) continue;
    if (!out.empty()) out += ',';
    out += c.name;
  }
  return out;
}

}  // namespace pase::obs
