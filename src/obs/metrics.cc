#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace pase::obs {

namespace {

template <typename Entry>
Entry* find_entry(const std::vector<std::unique_ptr<Entry>>& entries,
                  const std::string& name) {
  for (const auto& e : entries) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

// Nearest-rank p99 over an unsorted series (copy + sort; series are short
// and snapshot() is an end-of-run operation).
double series_p99(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  std::vector<double> sorted(v);
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: ceil(0.99 n), 1-based — the smallest value with at least
  // 99% of the samples at or below it.
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(0.99 * static_cast<double>(sorted.size())));
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank == 0 ? 0 : rank - 1];
}

}  // namespace

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  if (auto* e = find_entry(counters_, name)) return e->value;
  counters_.push_back(
      std::make_unique<Entry<std::uint64_t>>(Entry<std::uint64_t>{name, 0}));
  return counters_.back()->value;
}

double& MetricsRegistry::gauge(const std::string& name) {
  if (auto* e = find_entry(gauges_, name)) return e->value;
  gauges_.push_back(std::make_unique<Entry<double>>(Entry<double>{name, 0.0}));
  return gauges_.back()->value;
}

std::vector<double>& MetricsRegistry::series(const std::string& name) {
  if (auto* e = find_entry(series_, name)) return e->value;
  series_.push_back(std::make_unique<Entry<std::vector<double>>>(
      Entry<std::vector<double>>{name, {}}));
  return series_.back()->value;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  if (auto* e = find_entry(counters_, name)) return e->value;
  return 0;
}

const std::vector<double>* MetricsRegistry::find_series(
    const std::string& name) const {
  if (auto* e = find_entry(series_, name)) return &e->value;
  return nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.reserve(counters_.size() + gauges_.size() + series_.size() * 5);
  for (const auto& e : counters_) {
    out.push_back({e->name, static_cast<double>(e->value)});
  }
  for (const auto& e : gauges_) out.push_back({e->name, e->value});
  for (const auto& e : series_) {
    const std::vector<double>& v = e->value;
    double max = 0.0, sum = 0.0;
    double min = v.empty() ? 0.0 : v.front();
    for (const double x : v) {
      max = std::max(max, x);
      min = std::min(min, x);
      sum += x;
    }
    out.push_back({e->name + ".count", static_cast<double>(v.size())});
    out.push_back({e->name + ".max", max});
    out.push_back(
        {e->name + ".mean", v.empty() ? 0.0 : sum / static_cast<double>(v.size())});
    out.push_back({e->name + ".min", min});
    out.push_back({e->name + ".p99", series_p99(v)});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace pase::obs
