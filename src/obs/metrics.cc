#include "obs/metrics.h"

#include <algorithm>

namespace pase::obs {

namespace {

template <typename EntryPtr>
EntryPtr find_entry(const std::vector<EntryPtr>& entries,
                    const std::string& name) {
  for (EntryPtr e : entries) {
    if (e->name == name) return e;
  }
  return nullptr;
}

}  // namespace

MetricsRegistry::~MetricsRegistry() {
  for (auto* e : counters_) delete e;
  for (auto* e : gauges_) delete e;
  for (auto* e : series_) delete e;
}

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  if (auto* e = find_entry(counters_, name)) return e->value;
  counters_.push_back(new Entry<std::uint64_t>{name, 0});
  return counters_.back()->value;
}

double& MetricsRegistry::gauge(const std::string& name) {
  if (auto* e = find_entry(gauges_, name)) return e->value;
  gauges_.push_back(new Entry<double>{name, 0.0});
  return gauges_.back()->value;
}

std::vector<double>& MetricsRegistry::series(const std::string& name) {
  if (auto* e = find_entry(series_, name)) return e->value;
  series_.push_back(new Entry<std::vector<double>>{name, {}});
  return series_.back()->value;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  if (auto* e = find_entry(counters_, name)) return e->value;
  return 0;
}

const std::vector<double>* MetricsRegistry::find_series(
    const std::string& name) const {
  if (auto* e = find_entry(series_, name)) return &e->value;
  return nullptr;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.reserve(counters_.size() + gauges_.size() + series_.size() * 3);
  for (const auto* e : counters_) {
    out.push_back({e->name, static_cast<double>(e->value)});
  }
  for (const auto* e : gauges_) out.push_back({e->name, e->value});
  for (const auto* e : series_) {
    const std::vector<double>& v = e->value;
    double max = 0.0, sum = 0.0;
    for (const double x : v) {
      max = std::max(max, x);
      sum += x;
    }
    out.push_back({e->name + ".count", static_cast<double>(v.size())});
    out.push_back({e->name + ".max", max});
    out.push_back(
        {e->name + ".mean", v.empty() ? 0.0 : sum / static_cast<double>(v.size())});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace pase::obs
