#include "obs/trace_sink.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace pase::obs {

namespace {

// Shortest round-trippable representation of a double (same approach as
// exp's sweep_to_json; duplicated because obs sits below exp). Deterministic
// for a given value, so serialized traces are byte-comparable.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::strtod(probe, nullptr) == v) {
      std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
      break;
    }
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

// Queue names come from Link names (letters, digits, '.', '-', '>'), so a
// plain copy with the two JSON-critical escapes is sufficient.
void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_queue_name(std::string& out, const Trace& tr, std::uint32_t id) {
  if (id < tr.queue_names.size()) {
    append_string(out, tr.queue_names[id]);
  } else {
    out += "\"q";
    append_u64(out, id);
    out += '"';
  }
}

}  // namespace

Trace merge_buffers(const std::vector<const TraceBuffer*>& buffers,
                    OrderLessFn less, const void* less_ctx) {
  Trace tr;
  std::size_t total = 0;
  std::uint32_t cats = 0;
  for (const TraceBuffer* b : buffers) {
    total += b->size();
    tr.dropped += b->dropped();
    cats |= b->categories();
  }
  tr.categories = cats;
  tr.events.reserve(total);
  for (const TraceBuffer* b : buffers) {
    for (std::size_t i = 0; i < b->size(); ++i) tr.events.push_back(b->at(i));
  }
  // Within one buffer records are already in (t, lineage) order — a domain
  // executes its events in exactly that order — so a stable sort by time
  // plus the cross-domain lineage tie-break reproduces the global
  // sequential emission order. Records without a lineage key (sequential
  // runs, engine self-profiling) compare equal at their time and keep
  // concatenation order.
  std::stable_sort(tr.events.begin(), tr.events.end(),
                   [less, less_ctx](const TraceEvent& a, const TraceEvent& b) {
                     if (a.t != b.t) return a.t < b.t;
                     if (less == nullptr || a.order == kNoOrder ||
                         b.order == kNoOrder) {
                       return false;  // stable sort keeps input order
                     }
                     return less(less_ctx, a.order, b.order);
                   });
  return tr;
}

std::string Trace::to_jsonl() const {
  std::string out;
  out.reserve(64 + events.size() * 96);
  out += "{\"schema\":\"";
  out += kTraceSchemaName;
  out += "\",\"version\":";
  append_u64(out, kTraceSchemaVersion);
  out += ",\"categories\":";
  append_string(out, categories_string(categories));
  out += ",\"events\":";
  append_u64(out, events.size());
  out += ",\"dropped\":";
  append_u64(out, dropped);
  out += "}\n";

  for (const TraceEvent& e : events) {
    out += "{\"t\":";
    append_number(out, e.t);
    out += ",\"type\":\"";
    out += type_name(e.type);
    out += '"';
    switch (e.type) {
      case EventType::kFlowStart:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"size\":";
        append_number(out, e.v0);
        out += ",\"deadline\":";
        append_number(out, e.v1);
        break;
      case EventType::kFlowFirstByte:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        break;
      case EventType::kFlowComplete:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"fct\":";
        append_number(out, e.v0);
        break;
      case EventType::kFlowDeadlineMiss:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"late_by\":";
        append_number(out, e.v0);
        break;
      case EventType::kPktDrop:
      case EventType::kPktEcnMark:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"seq\":";
        append_u64(out, e.a);
        out += ",\"queue\":";
        append_queue_name(out, *this, e.b);
        out += ",\"bytes\":";
        append_number(out, e.v0);
        break;
      case EventType::kArbDecision:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"prio\":";
        append_u64(out, e.a);
        out += ",\"half\":\"";
        out += (e.b == 0 ? "src" : "rx");
        out += "\",\"rref\":";
        append_number(out, e.v0);
        break;
      case EventType::kCwndSample:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"cwnd\":";
        append_number(out, e.v0);
        out += ",\"srtt\":";
        append_number(out, e.v1);
        break;
      case EventType::kAlphaSample:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"alpha\":";
        append_number(out, e.v0);
        out += ",\"frac\":";
        append_number(out, e.v1);
        break;
      case EventType::kRateSample:
        out += ",\"flow\":";
        append_u64(out, e.flow);
        out += ",\"rate\":";
        append_number(out, e.v0);
        out += ",\"paused\":";
        append_u64(out, e.a);
        break;
      case EventType::kQueueSample:
        out += ",\"queue\":";
        append_queue_name(out, *this, e.a);
        out += ",\"occupancy\":";
        append_u64(out, e.b);
        out += ",\"drops\":";
        append_number(out, e.v0);
        out += ",\"marks\":";
        append_number(out, e.v1);
        break;
      case EventType::kEngineSample:
        out += ",\"domain\":";
        append_u64(out, e.a);
        out += ",\"events\":";
        append_number(out, e.v0);
        out += ",\"heap_closures\":";
        append_number(out, e.v1);
        break;
      case EventType::kParallelRound:
        out += ",\"rounds\":";
        append_u64(out, e.a);
        out += ",\"posts\":";
        append_u64(out, e.b);
        out += ",\"horizon\":";
        append_number(out, e.v0);
        out += ",\"drains\":";
        append_number(out, e.v1);
        break;
    }
    out += "}\n";
  }
  return out;
}

std::string Trace::to_chrome_json() const {
  std::string out;
  out.reserve(64 + events.size() * 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  const auto begin_record = [&](const char* ph, const std::string& name,
                                const char* cat, double t) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"ph\":\"";
    out += ph;
    out += "\",\"name\":";
    append_string(out, name);
    out += ",\"cat\":\"";
    out += cat;
    out += "\",\"pid\":0,\"tid\":0,\"ts\":";
    append_number(out, t * 1e6);  // trace_event timestamps are microseconds
  };
  const auto flow_name = [](std::uint64_t id) {
    return "flow " + std::to_string(id);
  };
  const auto queue_name = [this](std::uint32_t id) {
    return id < queue_names.size() ? queue_names[id]
                                   : "q" + std::to_string(id);
  };
  char buf[64];
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case EventType::kFlowStart:
        begin_record("b", flow_name(e.flow), "flow", e.t);
        out += ",\"id\":";
        append_u64(out, e.flow);
        out += ",\"args\":{\"size\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kFlowComplete:
        begin_record("e", flow_name(e.flow), "flow", e.t);
        out += ",\"id\":";
        append_u64(out, e.flow);
        out += ",\"args\":{\"fct\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kFlowFirstByte:
      case EventType::kFlowDeadlineMiss:
        begin_record("i", type_name(e.type), "flow", e.t);
        out += ",\"s\":\"t\",\"args\":{\"flow\":";
        append_u64(out, e.flow);
        out += "}}";
        break;
      case EventType::kPktDrop:
      case EventType::kPktEcnMark:
        begin_record("i", std::string(type_name(e.type)) + " @ " +
                              queue_name(e.b), "packet", e.t);
        out += ",\"s\":\"t\",\"args\":{\"flow\":";
        append_u64(out, e.flow);
        out += ",\"seq\":";
        append_u64(out, e.a);
        out += "}}";
        break;
      case EventType::kArbDecision:
        begin_record("i", "arb " + flow_name(e.flow), "arb", e.t);
        out += ",\"s\":\"t\",\"args\":{\"prio\":";
        append_u64(out, e.a);
        out += ",\"rref\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kCwndSample:
        std::snprintf(buf, sizeof(buf), "flow%llu.cwnd",
                      static_cast<unsigned long long>(e.flow));
        begin_record("C", buf, "endpoint", e.t);
        out += ",\"args\":{\"cwnd\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kAlphaSample:
        std::snprintf(buf, sizeof(buf), "flow%llu.alpha",
                      static_cast<unsigned long long>(e.flow));
        begin_record("C", buf, "endpoint", e.t);
        out += ",\"args\":{\"alpha\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kRateSample:
        std::snprintf(buf, sizeof(buf), "flow%llu.rate",
                      static_cast<unsigned long long>(e.flow));
        begin_record("C", buf, "endpoint", e.t);
        out += ",\"args\":{\"rate_bps\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kQueueSample:
        begin_record("C", queue_name(e.a) + ".occupancy", "queue", e.t);
        out += ",\"args\":{\"pkts\":";
        append_u64(out, e.b);
        out += "}}";
        break;
      case EventType::kEngineSample:
        begin_record("i", "engine.sample", "engine", e.t);
        out += ",\"s\":\"g\",\"args\":{\"domain\":";
        append_u64(out, e.a);
        out += ",\"events\":";
        append_number(out, e.v0);
        out += "}}";
        break;
      case EventType::kParallelRound:
        begin_record("i", "engine.round", "engine", e.t);
        out += ",\"s\":\"g\",\"args\":{\"rounds\":";
        append_u64(out, e.a);
        out += ",\"posts\":";
        append_u64(out, e.b);
        out += ",\"horizon\":";
        append_number(out, e.v0);
        out += ",\"drains\":";
        append_number(out, e.v1);
        out += "}}";
        break;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

namespace {
bool write_file(const std::string& path, const std::string& doc) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  return static_cast<bool>(f);
}
}  // namespace

bool Trace::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

bool Trace::write_chrome_json(const std::string& path) const {
  return write_file(path, to_chrome_json());
}

}  // namespace pase::obs
