// Named counters, gauges and sampled series.
//
// A MetricsRegistry is a cheap bag of named scalars owned by whoever wants
// aggregate numbers without the event-level detail of a trace: the scenario
// harness folds one into ScenarioResult (and sweep_to_json serializes it),
// and the telemetry plane records per-queue occupancy aggregates plus
// drop/mark counters through one. Everything here is simulation-domain data —
// event counts, sim-time series — never wall-clock, so snapshots are
// deterministic for a fixed configuration.
//
// Like the rest of obs/, this header depends only on the standard library.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pase::obs {

// One exported value. Snapshot order is sorted by name, so serializations
// are stable regardless of registration order.
struct MetricSample {
  std::string name;
  double value = 0.0;
};
using MetricsSnapshot = std::vector<MetricSample>;

class MetricsRegistry {
 public:
  // Monotonic counter. Creating is idempotent; the returned reference is
  // stable for the registry's lifetime.
  std::uint64_t& counter(const std::string& name);
  // Last-write-wins scalar.
  double& gauge(const std::string& name);
  // Appendable sample series (e.g. a queue's occupancy over time).
  std::vector<double>& series(const std::string& name);

  std::uint64_t counter_value(const std::string& name) const;
  const std::vector<double>* find_series(const std::string& name) const;

  // Flattens everything into name-sorted samples. Counters and gauges
  // export verbatim; a series exports "<name>.count", "<name>.max",
  // "<name>.mean", "<name>.min" and "<name>.p99" (nearest-rank) summaries.
  MetricsSnapshot snapshot() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    T value{};
  };
  // Linear storage behind stable heap nodes: registries hold tens of entries
  // and the references handed out by counter()/gauge()/series() must survive
  // vector growth.
  std::vector<std::unique_ptr<Entry<std::uint64_t>>> counters_;
  std::vector<std::unique_ptr<Entry<double>>> gauges_;
  std::vector<std::unique_ptr<Entry<std::vector<double>>>> series_;

 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
};

}  // namespace pase::obs
