// Workload synthesis per the paper's §4.1: Poisson flow arrivals, uniform
// flow sizes, optional uniform deadlines, and the traffic patterns used in
// the evaluation (left-right inter-rack, intra-rack random/all-to-all,
// worker->aggregator), plus long-lived background flows.
#pragma once

#include <vector>

#include "sim/rng.h"
#include "transport/flow.h"
#include "workload/distributions.h"

namespace pase::workload {

enum class Pattern {
  // src, dst drawn uniformly (src != dst) from the rack / host set —
  // the "all-to-all" intra-rack scenario.
  kIntraRackRandom,
  // src uniform over the left subtree's hosts, dst uniform over the right's —
  // front-end/back-end racks separated by the core (Fig. 9a/10a).
  kLeftRight,
  // dst rotates round-robin over hosts (the aggregator), src uniform != dst —
  // each flow is an independent worker response.
  kWorkerAggregator,
  // Search-style partition/aggregate fan-in: each query picks the next
  // aggregator round-robin and `incast_fanout` distinct random workers send
  // their responses simultaneously (Fig. 4 scenario).
  kIncast,
};

enum class SizeDistribution {
  kUniform,     // U[size_min, size_max] — the paper's default (§4.1)
  kWebSearch,   // empirical heavy-tailed (DCTCP study)
  kDataMining,  // empirical, heavier tail (VL2 study)
};

struct WorkloadConfig {
  Pattern pattern = Pattern::kIntraRackRandom;
  double load = 0.5;  // of the reference capacity (see flows/sec derivation)
  int num_flows = 1000;
  SizeDistribution size_dist = SizeDistribution::kUniform;
  double size_min_bytes = 2e3;    // U[2 KB, 198 KB] default (§4.1)
  double size_max_bytes = 198e3;
  // Deadlines: 0/0 disables. The D2TCP scenario uses U[5 ms, 25 ms].
  double deadline_min = 0.0;
  double deadline_max = 0.0;
  int incast_fanout = 8;         // workers per query (kIncast)
  // Tag kIncast queries with task ids (for task-aware scheduling).
  bool assign_task_ids = false;
  int num_background_flows = 2;  // long-lived flows (§4.1)
  std::uint64_t seed = 1;

  // Host population the pattern draws from.
  int num_hosts = 0;         // total hosts (intra-rack patterns)
  int left_hosts = 0;        // for kLeftRight: hosts [0, left) -> [left, total)
  double host_rate_bps = 1e9;
  double bottleneck_rate_bps = 1e9;  // capacity the load is defined against
};

// The arrival rate that produces `load` on the pattern's reference links:
//   - kLeftRight: the shared agg->core bottleneck (`bottleneck_rate_bps`);
//   - intra-rack patterns: each host's access link.
double arrival_rate_per_sec(const WorkloadConfig& cfg);

// Materializes the flow list (sorted by start time). Flow ids start at 1;
// background flows get the highest ids and Flow::background = true.
std::vector<transport::Flow> generate_flows(const WorkloadConfig& cfg);

}  // namespace pase::workload
