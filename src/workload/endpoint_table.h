// Slab-backed table of live flow endpoints.
//
// The scenario driver keeps one EndpointSlot per *concurrently live* flow
// instead of one heap sender/receiver pair per flow in the workload. Slots
// hold raw endpoint pointers whose storage lives in two typed
// proto::EndpointArena slabs (sized from the profile's EndpointLayout) or,
// for profiles that do not advertise a layout, on the heap. Completed flows
// retire through a short quarantine managed by the driver, then their slot —
// arena bytes, SoA column row, and slot index — is recycled for a future
// arrival, so memory tracks peak concurrency rather than total flow count.
//
// Single-writer: only the driver thread (sequential loop, or the parallel
// engine's barrier code) touches the table. Endpoint *objects* run on their
// domain's clock as usual; the table only constructs and destroys them while
// domains are quiescent.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "proto/endpoint_arena.h"
#include "proto/transport_profile.h"
#include "stats/flow_stats.h"
#include "transport/agent.h"
#include "transport/flow_columns.h"
#include "transport/receiver.h"

namespace pase::workload {

struct EndpointSlot {
  transport::Sender* sender = nullptr;
  transport::Receiver* receiver = nullptr;
  void* sender_mem = nullptr;    // arena slot backing `sender` (null = heap)
  void* receiver_mem = nullptr;  // arena slot backing `receiver` (null = heap)
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  net::FlowId flow_id = 0;
  std::uint32_t flow_index = 0;  // index into the pending-descriptor table
  // The flow's outcome. In exact-stats mode this mirrors into the run's
  // records vector; in streaming mode it is the only copy and is folded into
  // the StreamingFlowStats when the slot retires.
  stats::FlowRecord record;
  bool receiver_done = false;  // receiver reported completion
  bool done = false;           // record finalized (finished or terminated)
  bool queued_retire = false;  // already on a retire list
  bool in_use = false;
};

class EndpointTable {
 public:
  void init(const proto::TransportProfile& profile) {
    layout_ = profile.endpoint_layout();
    if (layout_.valid()) {
      sender_arena_.init(layout_.sender_size, layout_.sender_align);
      receiver_arena_.init(layout_.receiver_size, layout_.receiver_align);
    }
  }

  bool slab() const { return layout_.valid(); }

  // Pre-sizes the table for an expected live-flow population.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
    if (slab()) {
      sender_arena_.reserve(n);
      receiver_arena_.reserve(n);
    }
  }

  std::uint32_t acquire() {
    std::uint32_t s;
    if (!free_.empty()) {
      s = free_.back();
      free_.pop_back();
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
      columns_.resize(slots_.size());
    }
    slots_[s] = EndpointSlot{};
    slots_[s].in_use = true;
    ++live_;
    peak_live_ = std::max(peak_live_, live_);
    return s;
  }

  // Builds both endpoints for `flow` into slot `s` (receiver first, like the
  // heap path always did) and binds the sender to the slot's SoA row. `sctx`
  // and `rctx` carry the domain clocks the sender/receiver must live on —
  // identical in sequential runs.
  void construct(std::uint32_t s, const proto::TransportProfile& profile,
                 proto::RunContext& sctx, proto::RunContext& rctx,
                 const transport::Flow& flow, net::Host& src, net::Host& dst) {
    EndpointSlot& slot = slots_[s];
    slot.src = &src;
    slot.dst = &dst;
    slot.flow_id = flow.id;
    if (slab()) {
      slot.receiver_mem = receiver_arena_.acquire();
      slot.receiver = profile.construct_receiver(slot.receiver_mem, rctx, flow,
                                                 dst);
      slot.sender_mem = sender_arena_.acquire();
      slot.sender = profile.construct_sender(slot.sender_mem, sctx, flow, src);
    } else {
      slot.receiver = profile.make_receiver(rctx, flow, dst).release();
      slot.sender = profile.make_sender(sctx, flow, src).release();
    }
    columns_.reset_row(s, static_cast<double>(flow.size_bytes), flow.deadline);
    slot.sender->bind_state_columns(&columns_, s);
  }

  // Runs the endpoint destructors and returns their storage to the arenas
  // (or the heap). The slot stays marked in_use until release().
  void destroy(std::uint32_t s) {
    EndpointSlot& slot = slots_[s];
    if (slot.sender_mem != nullptr) {
      slot.sender->~Sender();
      sender_arena_.release(slot.sender_mem);
    } else {
      delete slot.sender;
    }
    slot.sender = nullptr;
    slot.sender_mem = nullptr;
    if (slot.receiver_mem != nullptr) {
      slot.receiver->~Receiver();
      receiver_arena_.release(slot.receiver_mem);
    } else {
      delete slot.receiver;
    }
    slot.receiver = nullptr;
    slot.receiver_mem = nullptr;
  }

  // Returns the slot index (and its SoA row) to the free list.
  void release(std::uint32_t s) {
    PASE_DCHECK(slots_[s].in_use && slots_[s].sender == nullptr);
    slots_[s].in_use = false;
    free_.push_back(s);
    --live_;
  }

  EndpointSlot& slot(std::uint32_t s) { return slots_[s]; }
  std::size_t size() const { return slots_.size(); }
  std::size_t live() const { return live_; }
  std::size_t peak_live() const { return peak_live_; }
  transport::FlowStateColumns& columns() { return columns_; }

  // Arena chunk allocations — constant in a warmed steady state of arrivals
  // and recycles (0 for heap-fallback profiles, where the analogue is the
  // allocator's own behavior).
  std::uint64_t slab_grow_events() const {
    return sender_arena_.grow_events() + receiver_arena_.grow_events();
  }

  // Destroys every still-live endpoint pair (run teardown). Callers that
  // need counters or records from live slots must scan before this.
  ~EndpointTable() {
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      if (slots_[s].in_use && slots_[s].sender != nullptr) destroy(s);
    }
  }

 private:
  proto::EndpointLayout layout_;
  proto::EndpointArena sender_arena_;
  proto::EndpointArena receiver_arena_;
  std::vector<EndpointSlot> slots_;
  std::vector<std::uint32_t> free_;
  transport::FlowStateColumns columns_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace pase::workload
