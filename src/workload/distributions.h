// Flow-size distributions.
//
// Besides the paper's uniform ranges, the library ships the two empirical
// distributions every data-center transport paper evaluates against
// (web search and data mining, from the DCTCP/pFabric measurement studies),
// as piecewise-linear interpolations of their published CDFs. Both are
// heavy-tailed: most flows are tiny, most *bytes* live in elephants.
#pragma once

#include <cassert>
#include <utility>
#include <vector>

#include "sim/rng.h"

namespace pase::workload {

// Inverse-CDF sampler over a piecewise-linear CDF given as
// (size_bytes, cumulative_probability) points with increasing probability.
class PiecewiseCdf {
 public:
  explicit PiecewiseCdf(std::vector<std::pair<double, double>> points)
      : points_(std::move(points)) {
    assert(points_.size() >= 2);
    assert(points_.front().second == 0.0);
    assert(points_.back().second == 1.0);
  }

  double sample(sim::Rng& rng) const {
    const double u = rng();
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (u <= points_[i].second) {
        const auto& [x0, p0] = points_[i - 1];
        const auto& [x1, p1] = points_[i];
        const double frac = p1 == p0 ? 0.0 : (u - p0) / (p1 - p0);
        return x0 + frac * (x1 - x0);
      }
    }
    return points_.back().first;
  }

  double mean() const {
    // Mean of the piecewise-linear interpolation: sum of trapezoids.
    double m = 0.0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      const auto& [x0, p0] = points_[i - 1];
      const auto& [x1, p1] = points_[i];
      m += (p1 - p0) * (x0 + x1) / 2.0;
    }
    return m;
  }

  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

// Web-search workload (DCTCP measurement study): mean ~1.6 MB, >95% of
// bytes from flows > 1 MB.
inline const PiecewiseCdf& web_search_cdf() {
  static const PiecewiseCdf cdf({{6e3, 0.0},
                                 {6e3, 0.15},
                                 {13e3, 0.2},
                                 {19e3, 0.3},
                                 {33e3, 0.4},
                                 {53e3, 0.53},
                                 {133e3, 0.6},
                                 {667e3, 0.7},
                                 {1333e3, 0.8},
                                 {3333e3, 0.9},
                                 {6667e3, 0.97},
                                 {20e6, 1.0}});
  return cdf;
}

// Data-mining workload (VL2 measurement study): even heavier tail; ~80% of
// flows under 10 KB but elephants reach 1 GB (clamped to 100 MB here to keep
// single experiments bounded).
inline const PiecewiseCdf& data_mining_cdf() {
  static const PiecewiseCdf cdf({{1e3, 0.0},
                                 {1e3, 0.5},
                                 {2e3, 0.6},
                                 {3e3, 0.7},
                                 {7e3, 0.8},
                                 {267e3, 0.9},
                                 {2107e3, 0.95},
                                 {66667e3, 0.99},
                                 {100e6, 1.0}});
  return cdf;
}

}  // namespace pase::workload
