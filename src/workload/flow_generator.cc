#include "workload/flow_generator.h"

#include <algorithm>
#include <cassert>

namespace pase::workload {

namespace {
// Short flows begin after a brief warm-up so background flows are already
// occupying the fabric, as in the paper's setup.
constexpr sim::Time kArrivalsBegin = 10e-3;
// Background flows are sized to outlast any experiment.
constexpr std::uint64_t kBackgroundBytes = 10'000'000'000ULL;
}  // namespace

namespace {
double mean_flow_size(const WorkloadConfig& cfg) {
  switch (cfg.size_dist) {
    case SizeDistribution::kWebSearch:
      return web_search_cdf().mean();
    case SizeDistribution::kDataMining:
      return data_mining_cdf().mean();
    case SizeDistribution::kUniform:
      break;
  }
  return (cfg.size_min_bytes + cfg.size_max_bytes) / 2.0;
}

double sample_size(const WorkloadConfig& cfg, sim::Rng& rng) {
  switch (cfg.size_dist) {
    case SizeDistribution::kWebSearch:
      return web_search_cdf().sample(rng);
    case SizeDistribution::kDataMining:
      return data_mining_cdf().sample(rng);
    case SizeDistribution::kUniform:
      break;
  }
  return rng.uniform(cfg.size_min_bytes, cfg.size_max_bytes);
}
}  // namespace

double arrival_rate_per_sec(const WorkloadConfig& cfg) {
  const double mean_size = mean_flow_size(cfg);
  const double ref_capacity = cfg.pattern == Pattern::kLeftRight
                                  ? cfg.bottleneck_rate_bps
                                  : cfg.host_rate_bps * cfg.num_hosts;
  return cfg.load * ref_capacity / (mean_size * 8.0);
}

namespace {

// Appends one query's worth of incast flows: `fanout` distinct workers all
// answering the same aggregator at the same instant.
void emit_incast_query(const WorkloadConfig& cfg, sim::Rng& rng, double t,
                       int aggregator, net::FlowId& next_id,
                       std::uint64_t task_id,
                       std::vector<transport::Flow>& flows) {
  std::vector<int> workers;
  while (static_cast<int>(workers.size()) <
         std::min(cfg.incast_fanout, cfg.num_hosts - 1)) {
    const int w = static_cast<int>(rng.uniform_int(0, cfg.num_hosts - 1));
    if (w == aggregator) continue;
    bool dup = false;
    for (int x : workers) dup |= (x == w);
    if (!dup) workers.push_back(w);
  }
  for (int w : workers) {
    transport::Flow f;
    f.id = next_id++;
    f.start_time = t;
    f.src = static_cast<net::NodeId>(w);
    f.dst = static_cast<net::NodeId>(aggregator);
    f.size_bytes = static_cast<std::uint64_t>(sample_size(cfg, rng));
    if (f.size_bytes == 0) f.size_bytes = 1;
    if (cfg.deadline_max > 0.0) {
      f.deadline = t + rng.uniform(cfg.deadline_min, cfg.deadline_max);
    }
    if (cfg.assign_task_ids) f.task_id = task_id;
    flows.push_back(f);
  }
}

}  // namespace

std::vector<transport::Flow> generate_flows(const WorkloadConfig& cfg) {
  assert(cfg.num_hosts >= 2);
  assert(cfg.pattern != Pattern::kLeftRight ||
         (cfg.left_hosts > 0 && cfg.left_hosts < cfg.num_hosts));
  sim::Rng rng(cfg.seed);
  std::vector<transport::Flow> flows;
  flows.reserve(static_cast<std::size_t>(cfg.num_flows) +
                static_cast<std::size_t>(cfg.num_background_flows));

  const double rate = arrival_rate_per_sec(cfg);
  double t = kArrivalsBegin;
  int next_aggregator = 0;
  net::FlowId next_id = 1;

  if (cfg.pattern == Pattern::kIncast) {
    // Flows arrive in query bursts: the per-query rate divides the flow
    // arrival rate by the fanout so the offered load stays `load`.
    const int fanout = std::min(cfg.incast_fanout, cfg.num_hosts - 1);
    const double query_rate = rate / fanout;
    std::uint64_t task_id = 1;
    while (static_cast<int>(flows.size()) < cfg.num_flows) {
      t += rng.exponential(1.0 / query_rate);
      emit_incast_query(cfg, rng, t, next_aggregator, next_id, task_id++,
                        flows);
      next_aggregator = (next_aggregator + 1) % cfg.num_hosts;
    }
    while (static_cast<int>(flows.size()) > cfg.num_flows) flows.pop_back();
  } else
  for (int i = 0; i < cfg.num_flows; ++i) {
    t += rng.exponential(1.0 / rate);
    transport::Flow f;
    f.id = next_id++;
    f.start_time = t;
    f.size_bytes = static_cast<std::uint64_t>(sample_size(cfg, rng));
    if (f.size_bytes == 0) f.size_bytes = 1;
    if (cfg.deadline_max > 0.0) {
      f.deadline = t + rng.uniform(cfg.deadline_min, cfg.deadline_max);
    }
    switch (cfg.pattern) {
      case Pattern::kLeftRight:
        f.src = static_cast<net::NodeId>(rng.uniform_int(0, cfg.left_hosts - 1));
        f.dst = static_cast<net::NodeId>(
            rng.uniform_int(cfg.left_hosts, cfg.num_hosts - 1));
        break;
      case Pattern::kIntraRackRandom: {
        f.src = static_cast<net::NodeId>(rng.uniform_int(0, cfg.num_hosts - 1));
        do {
          f.dst =
              static_cast<net::NodeId>(rng.uniform_int(0, cfg.num_hosts - 1));
        } while (f.dst == f.src);
        break;
      }
      case Pattern::kWorkerAggregator: {
        f.dst = static_cast<net::NodeId>(next_aggregator);
        next_aggregator = (next_aggregator + 1) % cfg.num_hosts;
        do {
          f.src =
              static_cast<net::NodeId>(rng.uniform_int(0, cfg.num_hosts - 1));
        } while (f.src == f.dst);
        break;
      }
    }
    flows.push_back(f);
  }

  for (int i = 0; i < cfg.num_background_flows; ++i) {
    transport::Flow f;
    f.id = next_id++;
    f.start_time = 0.0;
    f.size_bytes = kBackgroundBytes;
    f.background = true;
    if (cfg.pattern == Pattern::kLeftRight) {
      f.src = static_cast<net::NodeId>(rng.uniform_int(0, cfg.left_hosts - 1));
      f.dst = static_cast<net::NodeId>(
          rng.uniform_int(cfg.left_hosts, cfg.num_hosts - 1));
    } else {
      f.src = static_cast<net::NodeId>(rng.uniform_int(0, cfg.num_hosts - 1));
      do {
        f.dst = static_cast<net::NodeId>(rng.uniform_int(0, cfg.num_hosts - 1));
      } while (f.dst == f.src);
    }
    flows.push_back(f);
  }
  return flows;
}

}  // namespace pase::workload
