// Experiment harness: builds a topology + fabric for the chosen protocol,
// instantiates per-flow senders/receivers as the workload arrives, runs the
// simulation to completion and returns the flow records plus fabric and
// control-plane counters. Every bench and example drives this one entry
// point, so an experiment is ~20 lines of configuration.
#pragma once

#include <memory>
#include <vector>

#include "core/arbitration_plane.h"
#include "core/pase_sender.h"
#include "stats/flow_stats.h"
#include "stats/summary.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"
#include "transport/pdq.h"
#include "workload/defaults.h"
#include "workload/flow_generator.h"

namespace pase::workload {

enum class Protocol { kDctcp, kD2tcp, kL2dct, kPdq, kPfabric, kPase };

const char* protocol_name(Protocol p);

struct ScenarioConfig {
  Protocol protocol = Protocol::kDctcp;

  enum class TopologyKind { kSingleRack, kThreeTier };
  TopologyKind topology = TopologyKind::kSingleRack;
  topo::SingleRackConfig rack;   // used when topology == kSingleRack
  topo::ThreeTierConfig tree;    // used when topology == kThreeTier

  WorkloadConfig traffic;  // host counts/rates are filled in from the topology

  core::PaseConfig pase;            // PASE knobs (criterion picked from deadlines)
  transport::PdqOptions pdq;        // PDQ knobs
  double pdq_probe_rtts = 8.0;      // paused-sender probe period, in RTTs
  double arbitration_period_rtts = 1.0;  // PASE source refresh period, in RTTs

  // Fabric overrides; 0 = per-protocol Table 3 default.
  std::size_t queue_capacity_pkts = 0;
  std::size_t mark_threshold_pkts = 0;

  sim::Time max_duration = 30.0;  // hard stop for the simulation clock
};

struct ScenarioResult {
  std::vector<stats::FlowRecord> records;
  std::uint64_t fabric_drops = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t probes_sent = 0;
  sim::Time end_time = 0.0;
  core::ControlPlaneStats control;

  double afct() const { return stats::afct(records); }
  double fct_p99() const { return stats::fct_percentile(records, 99.0); }
  double app_throughput() const {
    return stats::application_throughput(records);
  }
  std::size_t unfinished() const { return stats::unfinished(records); }
  // Fraction of transmitted data packets dropped inside the fabric.
  double loss_rate() const {
    return data_packets_sent == 0
               ? 0.0
               : static_cast<double>(fabric_drops) /
                     static_cast<double>(data_packets_sent);
  }
  double control_msgs_per_sec() const {
    return end_time > 0.0
               ? static_cast<double>(control.messages_sent) / end_time
               : 0.0;
  }
};

// Generates the workload from cfg.traffic and runs it.
ScenarioResult run_scenario(ScenarioConfig cfg);

// Runs an explicit flow list (src/dst are HOST INDICES, not node ids).
ScenarioResult run_scenario_with_flows(ScenarioConfig cfg,
                                       std::vector<transport::Flow> flows);

}  // namespace pase::workload
