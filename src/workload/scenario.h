// Experiment harness: pure assembly. Resolves the transport profile from the
// registry, builds the fabric through a topo::TopologyBuilder, instantiates
// per-flow senders/receivers via the profile as the workload arrives, runs
// the simulation to completion and returns flow records plus fabric and
// control-plane counters. Every bench and example drives this one entry
// point; protocol-specific knowledge lives behind proto::TransportProfile
// and topology-specific knowledge behind topo::TopologyBuilder.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/control_stats.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "proto/profile_params.h"
#include "proto/protocol.h"
#include "stats/flow_stats.h"
#include "stats/streaming.h"
#include "stats/summary.h"
#include "topo/fat_tree.h"
#include "topo/single_rack.h"
#include "topo/three_tier.h"
#include "workload/flow_generator.h"

namespace pase::obs {
struct Trace;  // trace_sink.h; results only carry a pointer
}

namespace pase::workload {

// The protocol identity and its string forms live in the proto layer; the
// historical workload:: spellings keep working.
using proto::Protocol;
using proto::parse_protocol;
using proto::protocol_name;

// Per-protocol knobs (pase, pdq, pdq_probe_rtts, arbitration_period_rtts)
// and fabric overrides (queue_capacity_pkts, mark_threshold_pkts) are
// inherited from proto::ProfileParams.
struct ScenarioConfig : proto::ProfileParams {
  Protocol protocol = Protocol::kDctcp;
  // When non-empty, selects the transport by registry name instead of the
  // enum, so profiles registered outside the built-in six can run without
  // touching this struct (see proto/registry.h).
  std::string profile_name;

  enum class TopologyKind { kSingleRack, kThreeTier, kFatTree };
  TopologyKind topology = TopologyKind::kSingleRack;
  topo::SingleRackConfig rack;   // used when topology == kSingleRack
  topo::ThreeTierConfig tree;    // used when topology == kThreeTier
  topo::FatTreeConfig fattree;   // used when topology == kFatTree

  WorkloadConfig traffic;  // host counts/rates are filled in from the topology

  sim::Time max_duration = 30.0;  // hard stop for the simulation clock

  // Conservative-parallel execution: partition the topology into this many
  // domains, one worker thread each, synchronized on certified per-round
  // horizons (see HorizonMode). Results are bit-identical to workers == 1 at
  // any count. Falls back to sequential execution when the profile is not
  // parallel-safe, a cut link has zero propagation delay, or the partition
  // degenerates to one domain; the fallback reports workers_used == 1 and
  // names its cause in ScenarioResult::parallel_fallback_reason. Composes
  // with exp::SweepRunner: each sweep thread runs its own engine.
  int workers = 1;

  // How the parallel engine bounds each synchronization window (ignored when
  // the run is sequential).
  //   kConditional  — per-domain, per-round bound derived from where this
  //                   round's pending events actually sit: the certified
  //                   store-and-forward distance from any possible event
  //                   source to the nearest cut link. Wider windows, fewer
  //                   rounds; the default.
  //   kStaticMinCut — the classic conservative window: next event time plus
  //                   the minimum cut-link propagation delay. Kept as the
  //                   baseline the bench compares against.
  // Both modes execute the same events in the same order; only the round
  // count differs.
  enum class HorizonMode { kConditional, kStaticMinCut };
  HorizonMode horizon_mode = HorizonMode::kConditional;

  // How per-flow outcomes are aggregated.
  //   kExact     — keep every FlowRecord in ScenarioResult::records; metrics
  //                are computed over the full vector (the historical
  //                behavior, and what the golden-fingerprint tests consume).
  //   kStreaming — fold each record into O(1)-memory estimators
  //                (stats/streaming.h: running mean, P² quantiles, a
  //                log-bucketed histogram) as flows retire and keep NO
  //                per-flow records. Million-flow runs then carry no
  //                O(flows) stats state; percentiles are accurate to within
  //                one histogram bucket (~5% width by default).
  // The simulation event path is identical in both modes — only the
  // aggregation differs.
  enum class StatsMode { kExact, kStreaming };
  StatsMode stats_mode = StatsMode::kExact;

  // Recycle endpoint slots: when a flow's sender has finished and its
  // receiver completed (or the flow was terminated), its sender/receiver are
  // destroyed after a one-chunk (>= 10 ms simulated) quarantine and their
  // slab slots are reused for future arrivals, so live endpoint memory
  // tracks concurrency instead of total flow count. The quarantine exceeds
  // any in-flight packet lifetime (path delays are microseconds, min RTO is
  // 10 ms and sender timers are canceled on finish), so recycling is
  // event-path invisible — the golden fingerprints pin that. Off keeps every
  // endpoint alive to the end of the run (the historical behavior).
  bool recycle_endpoints = true;

  // Per-switch path-cache (ECMP memo) capacity, rounded up to a power of
  // two; 0 disables the memo. Selections are bit-identical at any value —
  // the cache is a pure memo over the per-flow path hash — so this is a
  // perf/memory knob only (≈24 B/entry/switch once a switch sees grouped
  // traffic).
  std::size_t path_cache_entries = 1024;

  // Structured tracing (src/obs/). Off by default: the harness then never
  // allocates a buffer and the simulation takes the exact same event path
  // (the 18 golden fingerprints pin this). When enabled, one ring buffer
  // per execution domain records events in the selected categories and the
  // merged trace lands in ScenarioResult::trace — byte-identical for any
  // worker count (modulo the engine category, which is worker-dependent by
  // nature).
  obs::TraceConfig trace;

  // Fabric telemetry plane (src/obs/telemetry.h). Off by default: no plane
  // is constructed and the event path is untouched. When enabled, the
  // harness samples every queue/link on the plane's time grid at
  // domain-quiescent instants — event execution is identical to a
  // telemetry-off run, and the summary (ScenarioResult::telemetry) is
  // byte-identical in JSONL form at any worker count.
  obs::TelemetryConfig telemetry;

  // Engine self-profiler (--profile): tallies per-event-type dispatches,
  // calendar scan lengths, pending high-water mark and path-cache hit rates
  // into the metrics snapshot as profile.* entries. Purely observational —
  // the event path is identical with it on or off.
  bool profile = false;
};

struct ScenarioResult {
  // Per-flow outcomes in flow-arrival order. Empty in streaming-stats mode
  // (use the metric methods below, which dispatch to `streaming`).
  std::vector<stats::FlowRecord> records;
  // Constant-memory aggregation; set iff the run used StatsMode::kStreaming.
  // Shared so results stay copyable.
  std::shared_ptr<const stats::StreamingFlowStats> streaming;
  std::uint64_t fabric_drops = 0;
  std::uint64_t data_packets_sent = 0;
  std::uint64_t probes_sent = 0;
  sim::Time end_time = 0.0;
  core::ControlPlaneStats control;
  // Events whose closure spilled to the heap (summed over all domains in a
  // parallel run). The steady state of every built-in profile is zero; the
  // alloc-free tests pin that.
  std::uint64_t heap_closure_events = 0;
  // Endpoint-slab chunk allocations (proto/endpoint_arena.h). Constant after
  // warmup when endpoint recycling is on: an arrival reuses a retired slot
  // instead of growing a slab.
  std::uint64_t slab_grow_events = 0;
  // High-water mark of concurrently live endpoint pairs — what endpoint
  // memory actually scales with under recycling.
  std::size_t peak_live_flows = 0;
  // Wall-clock seconds from harness entry until the event loop started:
  // topology build, control plane, record/descriptor setup. O(pending
  // descriptors), not O(endpoints) — endpoints are constructed lazily.
  double setup_wall_sec = 0.0;
  // Actual domain count the run executed with: cfg.workers unless the
  // harness fell back to sequential execution (then 1).
  int workers_used = 1;
  // Why a workers > 1 request fell back to sequential execution; empty when
  // the parallel engine ran (or was never requested). Sweep JSON carries
  // this so a silent fallback can't masquerade as a parallel result.
  std::string parallel_fallback_reason;
  // Wall-clock seconds worker threads spent blocked in round barriers past
  // the spin burst (parallel runs only; load-imbalance signal). Wall time,
  // so it lives here rather than in the deterministic metrics snapshot.
  double parallel_barrier_wait_sec = 0.0;
  // Merged trace when cfg.trace.enabled, else null. Shared so results stay
  // copyable (exp::SweepRunner copies them into its grid).
  std::shared_ptr<const obs::Trace> trace;
  // Telemetry summary when cfg.telemetry.enabled, else null. Shared for the
  // same copyability reason; serialize with TelemetrySummary::write_jsonl.
  std::shared_ptr<const obs::TelemetrySummary> telemetry;
  // Aggregate run metrics (fabric drop/mark totals, engine event counts,
  // parallel round statistics), name-sorted. sweep_to_json serializes this.
  obs::MetricsSnapshot metrics;

  // Metric accessors dispatch on the aggregation the run used: exact
  // (records) or streaming (histogram/counter-backed, see stats/streaming.h).
  // Consumers — summary printers, sweep JSON, figure benches — use these and
  // never care which representation is underneath.
  double afct() const {
    return streaming ? streaming->afct() : stats::afct(records);
  }
  double fct_p99() const {
    return streaming ? streaming->fct_percentile(99.0)
                     : stats::fct_percentile(records, 99.0);
  }
  double fct_percentile(double p) const {
    return streaming ? streaming->fct_percentile(p)
                     : stats::fct_percentile(records, p);
  }
  double app_throughput() const {
    return streaming ? streaming->application_throughput()
                     : stats::application_throughput(records);
  }
  std::size_t unfinished() const {
    return streaming ? streaming->unfinished() : stats::unfinished(records);
  }
  // Total flows the run covered (records.size() in exact mode; streaming
  // keeps no records, only the count).
  std::size_t total_flows() const {
    return streaming ? static_cast<std::size_t>(streaming->total_flows())
                     : records.size();
  }
  std::vector<stats::CdfPoint> fct_cdf(int num_points = 50) const {
    return streaming ? streaming->fct_cdf(num_points)
                     : stats::fct_cdf(records, num_points);
  }
  // Fraction of transmitted data packets dropped inside the fabric.
  double loss_rate() const {
    return data_packets_sent == 0
               ? 0.0
               : static_cast<double>(fabric_drops) /
                     static_cast<double>(data_packets_sent);
  }
  double control_msgs_per_sec() const {
    return end_time > 0.0
               ? static_cast<double>(control.messages_sent) / end_time
               : 0.0;
  }
};

// Checks cfg for nonsense (non-positive durations/rates/sizes, impossible
// topology dimensions, pattern/topology mismatches) and then runs the
// resolved profile's own validate() (e.g. mark threshold vs queue capacity).
// Throws std::invalid_argument with a descriptive message. run_scenario and
// run_scenario_with_flows call this on entry; it is exposed so front ends
// can fail fast before generating a workload.
void validate_config(const ScenarioConfig& cfg);

// Generates the workload from cfg.traffic and runs it.
ScenarioResult run_scenario(ScenarioConfig cfg);

// Runs an explicit flow list (src/dst are HOST INDICES, not node ids).
ScenarioResult run_scenario_with_flows(ScenarioConfig cfg,
                                       std::vector<transport::Flow> flows);

}  // namespace pase::workload
